//! Minimal CSV reading/writing for the `utk` command-line tool.
//!
//! Supported dialect: comma-separated numeric columns, an optional
//! header row (detected: any non-numeric field), and an optional
//! leading label column (detected per row: non-numeric first field).
//! No quoting or escaping — record labels must not contain commas.

use crate::dataset::Dataset;

/// A parsed CSV: the dataset plus optional column names and per-record
/// labels.
#[derive(Debug, Clone)]
pub struct CsvData {
    /// The numeric payload.
    pub dataset: Dataset,
    /// Column names from the header row, if present (numeric columns
    /// only, label column excluded).
    pub columns: Option<Vec<String>>,
    /// Per-record labels from a leading non-numeric column.
    pub labels: Option<Vec<String>>,
}

impl CsvData {
    /// A display name for record `id`: its label, or `#id` (also the
    /// fallback for ids past the label column, which cannot arise
    /// from parsing but keeps a racing rename/update safe).
    pub fn name(&self, id: u32) -> String {
        match self.labels.as_ref().and_then(|l| l.get(id as usize)) {
            Some(l) => l.clone(),
            None => format!("#{id}"),
        }
    }

    /// Applies a dataset mutation to the parsed payload, mirroring
    /// `UtkEngine::apply_update` semantics exactly: rows named by
    /// `deletes` (validated ids, applied simultaneously) are removed
    /// with survivors keeping their order, then `inserts` are
    /// appended. Labels move with their rows.
    ///
    /// Label policy: a labeled dataset requires one label per
    /// inserted row (and rejects duplicates — labels are record ids);
    /// an unlabeled one rejects labels. Errors leave the data
    /// unchanged.
    ///
    /// NOTE: the id/dimension/finiteness checks here deliberately
    /// mirror `UtkEngine::apply_update` (utk-core), which cannot be
    /// referenced from this crate. The server registry stages this
    /// method *before* the engine mutation and discards the staging
    /// if the engine rejects, so a divergence between the two
    /// validators degrades to a spurious error, never to labels and
    /// rows going out of step — but keep them in agreement anyway.
    pub fn apply_update(
        &mut self,
        deletes: &[u32],
        inserts: &[Vec<f64>],
        insert_labels: Option<&[String]>,
    ) -> Result<(), String> {
        let dim = self.dataset.dim();
        for row in inserts {
            if row.len() != dim {
                return Err(format!(
                    "inserted row has {} values, dataset is {dim}-dimensional",
                    row.len()
                ));
            }
            if row.iter().any(|v| !v.is_finite()) {
                return Err("inserted row contains a NaN or infinite value".into());
            }
        }
        let n = self.dataset.points.len();
        let mut deleted = vec![false; n];
        for &id in deletes {
            if id as usize >= n {
                return Err(format!("record id {id} does not exist ({n} records)"));
            }
            if deleted[id as usize] {
                return Err(format!("duplicate record id {id}"));
            }
            deleted[id as usize] = true;
        }
        let new_labels = match (&self.labels, insert_labels) {
            (Some(_), None) if !inserts.is_empty() => {
                return Err("dataset has a label column; supply one label per inserted row".into())
            }
            (None, Some(_)) => {
                return Err(
                    "dataset has no label column; inserted rows must not carry labels".into(),
                )
            }
            (Some(existing), provided) => {
                let provided = provided.unwrap_or(&[]);
                if provided.len() != inserts.len() {
                    return Err(format!(
                        "{} inserted rows but {} labels",
                        inserts.len(),
                        provided.len()
                    ));
                }
                let mut kept: Vec<String> = existing
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !deleted[*i])
                    .map(|(_, l)| l.clone())
                    .collect();
                let mut seen: std::collections::HashSet<&str> =
                    kept.iter().map(String::as_str).collect();
                for label in provided {
                    if !seen.insert(label.as_str()) {
                        return Err(format!("duplicate record label {label:?}"));
                    }
                }
                kept.extend(provided.iter().cloned());
                Some(kept)
            }
            (None, None) => None,
        };
        let mut points: Vec<Vec<f64>> = Vec::with_capacity(n - deletes.len() + inserts.len());
        for (i, p) in self.dataset.points.iter().enumerate() {
            if !deleted[i] {
                points.push(p.clone());
            }
        }
        points.extend(inserts.iter().cloned());
        if points.is_empty() {
            return Err("update would leave the dataset empty".into());
        }
        self.dataset.points = points;
        self.labels = new_labels;
        Ok(())
    }
}

/// Parsing failure with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CSV line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

fn is_numeric(field: &str) -> bool {
    field.trim().parse::<f64>().is_ok()
}

/// Parses CSV text into a dataset (see module docs for the dialect).
pub fn parse_csv(text: &str, name: &str) -> Result<CsvData, CsvError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let Some((first_no, first)) = lines.next() else {
        return Err(CsvError {
            line: 1,
            message: "no data rows".into(),
        });
    };

    // Header detection: a row with any non-numeric field beyond a
    // possible label column is a header.
    let first_fields: Vec<&str> = first.split(',').map(str::trim).collect();
    let has_header = first_fields.iter().skip(1).any(|f| !is_numeric(f))
        || (first_fields.len() == 1 && !is_numeric(first_fields[0]));

    let mut columns: Option<Vec<String>> = None;
    let mut rows: Vec<(usize, Vec<&str>)> = Vec::new();
    if has_header {
        columns = Some(first_fields.iter().map(|s| s.to_string()).collect());
    } else {
        rows.push((first_no, first_fields));
    }
    for (no, line) in lines {
        rows.push((no, line.split(',').map(str::trim).collect()));
    }
    if rows.is_empty() {
        return Err(CsvError {
            line: first_no,
            message: "header only, no data rows".into(),
        });
    }

    // Label column detection: every data row starts non-numeric.
    let has_labels = rows.iter().all(|(_, f)| !is_numeric(f[0]));
    let mut labels = if has_labels { Some(Vec::new()) } else { None };
    if has_labels {
        if let Some(c) = &mut columns {
            c.remove(0);
        }
    }

    let mut points = Vec::with_capacity(rows.len());
    let mut width = None;
    let mut seen_labels: std::collections::HashSet<String> = std::collections::HashSet::new();
    for (no, fields) in rows {
        let start = usize::from(has_labels);
        if let Some(l) = &mut labels {
            // The label column is the record's identity: a repeat
            // would make two records indistinguishable to every
            // consumer that resolves ids through names.
            if !seen_labels.insert(fields[0].to_string()) {
                return Err(CsvError {
                    line: no,
                    message: format!("duplicate record id {:?}", fields[0]),
                });
            }
            l.push(fields[0].to_string());
        }
        let mut p = Vec::with_capacity(fields.len() - start);
        for f in &fields[start..] {
            let v = f.parse::<f64>().map_err(|_| CsvError {
                line: no,
                message: format!("not a number: {f:?}"),
            })?;
            // `f64::parse` happily accepts "NaN" and "inf", which
            // would poison every score downstream; the store only
            // ever holds finite coordinates.
            if !v.is_finite() {
                return Err(CsvError {
                    line: no,
                    message: format!("non-finite value {f:?} (NaN/inf records are rejected)"),
                });
            }
            p.push(v);
        }
        match width {
            None => width = Some(p.len()),
            Some(w) if w != p.len() => {
                return Err(CsvError {
                    line: no,
                    message: format!("expected {w} values, found {}", p.len()),
                })
            }
            _ => {}
        }
        points.push(p);
    }

    Ok(CsvData {
        dataset: Dataset::new(name, points),
        columns,
        labels,
    })
}

/// Serializes a dataset (with optional labels) back to CSV.
pub fn write_csv(ds: &Dataset, labels: Option<&[String]>) -> String {
    let mut out = String::new();
    for (i, p) in ds.points.iter().enumerate() {
        if let Some(l) = labels {
            out.push_str(&l[i]);
            out.push(',');
        }
        let nums: Vec<String> = p.iter().map(|v| format!("{v}")).collect();
        out.push_str(&nums.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_numeric_rows() {
        let csv = "1.0,2.0,3.0\n4.0,5.0,6.0\n";
        let d = parse_csv(csv, "t").unwrap();
        assert_eq!(d.dataset.len(), 2);
        assert_eq!(d.dataset.dim(), 3);
        assert!(d.columns.is_none());
        assert!(d.labels.is_none());
        assert_eq!(d.name(1), "#1");
    }

    #[test]
    fn header_and_labels() {
        let csv = "hotel,service,cleanliness\np1,8.3,9.1\np2,2.4,9.6\n";
        let d = parse_csv(csv, "t").unwrap();
        assert_eq!(
            d.columns,
            Some(vec!["service".into(), "cleanliness".into()])
        );
        assert_eq!(d.labels, Some(vec!["p1".into(), "p2".into()]));
        assert_eq!(d.dataset.points[1], vec![2.4, 9.6]);
        assert_eq!(d.name(0), "p1");
    }

    #[test]
    fn labels_without_header() {
        let csv = "a,1,2\nb,3,4\n";
        let d = parse_csv(csv, "t").unwrap();
        assert!(d.columns.is_none());
        assert_eq!(d.labels, Some(vec!["a".into(), "b".into()]));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let csv = "# comment\n\n1,2\n\n3,4\n";
        let d = parse_csv(csv, "t").unwrap();
        assert_eq!(d.dataset.len(), 2);
    }

    #[test]
    fn ragged_rows_rejected_with_line_number() {
        let csv = "1,2\n3,4,5\n";
        let err = parse_csv(csv, "t").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("expected 2"));
    }

    #[test]
    fn garbage_rejected() {
        let csv = "1,2\n3,x\n";
        let err = parse_csv(csv, "t").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(parse_csv("", "t").is_err());
        assert!(parse_csv("only,header\n", "t").is_err());
    }

    #[test]
    fn non_finite_values_rejected_with_line_numbers() {
        for bad in ["nan", "NaN", "inf", "-inf", "Infinity"] {
            let csv = format!("1,2\n3,{bad}\n");
            let err = parse_csv(&csv, "t").unwrap_err();
            assert_eq!(err.line, 2, "{bad}");
            assert!(err.message.contains("non-finite"), "{bad}: {}", err.message);
        }
    }

    #[test]
    fn duplicate_labels_rejected_with_line_numbers() {
        let err = parse_csv("a,1,2\nb,3,4\na,5,6\n", "t").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(
            err.message.contains("duplicate record id"),
            "{}",
            err.message
        );
        // Unlabeled rows can repeat freely — only identities are unique.
        assert!(parse_csv("1,2\n1,2\n", "t").is_ok());
    }

    #[test]
    fn apply_update_mirrors_engine_mutation_semantics() {
        let mut d = parse_csv("a,1,2\nb,3,4\nc,5,6\n", "t").unwrap();
        d.apply_update(&[1], &[vec![7.0, 8.0]], Some(&["d".to_string()]))
            .unwrap();
        assert_eq!(
            d.dataset.points,
            vec![vec![1.0, 2.0], vec![5.0, 6.0], vec![7.0, 8.0]]
        );
        assert_eq!(d.name(0), "a");
        assert_eq!(d.name(1), "c");
        assert_eq!(d.name(2), "d");
    }

    #[test]
    fn apply_update_rejections_leave_data_unchanged() {
        let mut d = parse_csv("a,1,2\nb,3,4\n", "t").unwrap();
        let before = d.dataset.points.clone();
        // Unknown id, duplicate delete, missing labels, duplicate
        // label, ragged row, non-finite row, emptying update.
        assert!(d.apply_update(&[9], &[], None).is_err());
        assert!(d.apply_update(&[0, 0], &[], None).is_err());
        assert!(d.apply_update(&[], &[vec![1.0, 1.0]], None).is_err());
        assert!(d
            .apply_update(&[], &[vec![1.0, 1.0]], Some(&["a".to_string()]))
            .is_err());
        assert!(d
            .apply_update(&[], &[vec![1.0]], Some(&["x".to_string()]))
            .is_err());
        assert!(d
            .apply_update(&[], &[vec![f64::NAN, 1.0]], Some(&["x".to_string()]))
            .is_err());
        assert!(d.apply_update(&[0, 1], &[], None).is_err());
        assert_eq!(d.dataset.points, before);
        assert_eq!(d.name(1), "b");

        // An unlabeled dataset takes unlabeled inserts only.
        let mut plain = parse_csv("1,2\n3,4\n", "t").unwrap();
        assert!(plain
            .apply_update(&[], &[vec![5.0, 6.0]], Some(&["x".to_string()]))
            .is_err());
        plain.apply_update(&[0], &[vec![5.0, 6.0]], None).unwrap();
        assert_eq!(plain.dataset.points, vec![vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(plain.name(1), "#1");
    }

    #[test]
    fn round_trip() {
        let ds = Dataset::new("t", vec![vec![1.5, 2.0], vec![0.25, 4.0]]);
        let labels = vec!["a".to_string(), "b".to_string()];
        let csv = write_csv(&ds, Some(&labels));
        let back = parse_csv(&csv, "t").unwrap();
        assert_eq!(back.dataset.points, ds.points);
        assert_eq!(back.labels.as_deref(), Some(labels.as_slice()));
    }
}
