//! Minimal CSV reading/writing for the `utk` command-line tool.
//!
//! Supported dialect: comma-separated numeric columns, an optional
//! header row (detected: any non-numeric field), and an optional
//! leading label column (detected per row: non-numeric first field).
//! No quoting or escaping — record labels must not contain commas.

use crate::dataset::Dataset;

/// A parsed CSV: the dataset plus optional column names and per-record
/// labels.
#[derive(Debug, Clone)]
pub struct CsvData {
    /// The numeric payload.
    pub dataset: Dataset,
    /// Column names from the header row, if present (numeric columns
    /// only, label column excluded).
    pub columns: Option<Vec<String>>,
    /// Per-record labels from a leading non-numeric column.
    pub labels: Option<Vec<String>>,
}

impl CsvData {
    /// A display name for record `id`: its label, or `#id`.
    pub fn name(&self, id: u32) -> String {
        match &self.labels {
            Some(l) => l[id as usize].clone(),
            None => format!("#{id}"),
        }
    }
}

/// Parsing failure with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CSV line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

fn is_numeric(field: &str) -> bool {
    field.trim().parse::<f64>().is_ok()
}

/// Parses CSV text into a dataset (see module docs for the dialect).
pub fn parse_csv(text: &str, name: &str) -> Result<CsvData, CsvError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let Some((first_no, first)) = lines.next() else {
        return Err(CsvError {
            line: 1,
            message: "no data rows".into(),
        });
    };

    // Header detection: a row with any non-numeric field beyond a
    // possible label column is a header.
    let first_fields: Vec<&str> = first.split(',').map(str::trim).collect();
    let has_header = first_fields.iter().skip(1).any(|f| !is_numeric(f))
        || (first_fields.len() == 1 && !is_numeric(first_fields[0]));

    let mut columns: Option<Vec<String>> = None;
    let mut rows: Vec<(usize, Vec<&str>)> = Vec::new();
    if has_header {
        columns = Some(first_fields.iter().map(|s| s.to_string()).collect());
    } else {
        rows.push((first_no, first_fields));
    }
    for (no, line) in lines {
        rows.push((no, line.split(',').map(str::trim).collect()));
    }
    if rows.is_empty() {
        return Err(CsvError {
            line: first_no,
            message: "header only, no data rows".into(),
        });
    }

    // Label column detection: every data row starts non-numeric.
    let has_labels = rows.iter().all(|(_, f)| !is_numeric(f[0]));
    let mut labels = if has_labels { Some(Vec::new()) } else { None };
    if has_labels {
        if let Some(c) = &mut columns {
            c.remove(0);
        }
    }

    let mut points = Vec::with_capacity(rows.len());
    let mut width = None;
    for (no, fields) in rows {
        let start = usize::from(has_labels);
        if let Some(l) = &mut labels {
            l.push(fields[0].to_string());
        }
        let mut p = Vec::with_capacity(fields.len() - start);
        for f in &fields[start..] {
            p.push(f.parse::<f64>().map_err(|_| CsvError {
                line: no,
                message: format!("not a number: {f:?}"),
            })?);
        }
        match width {
            None => width = Some(p.len()),
            Some(w) if w != p.len() => {
                return Err(CsvError {
                    line: no,
                    message: format!("expected {w} values, found {}", p.len()),
                })
            }
            _ => {}
        }
        points.push(p);
    }

    Ok(CsvData {
        dataset: Dataset::new(name, points),
        columns,
        labels,
    })
}

/// Serializes a dataset (with optional labels) back to CSV.
pub fn write_csv(ds: &Dataset, labels: Option<&[String]>) -> String {
    let mut out = String::new();
    for (i, p) in ds.points.iter().enumerate() {
        if let Some(l) = labels {
            out.push_str(&l[i]);
            out.push(',');
        }
        let nums: Vec<String> = p.iter().map(|v| format!("{v}")).collect();
        out.push_str(&nums.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_numeric_rows() {
        let csv = "1.0,2.0,3.0\n4.0,5.0,6.0\n";
        let d = parse_csv(csv, "t").unwrap();
        assert_eq!(d.dataset.len(), 2);
        assert_eq!(d.dataset.dim(), 3);
        assert!(d.columns.is_none());
        assert!(d.labels.is_none());
        assert_eq!(d.name(1), "#1");
    }

    #[test]
    fn header_and_labels() {
        let csv = "hotel,service,cleanliness\np1,8.3,9.1\np2,2.4,9.6\n";
        let d = parse_csv(csv, "t").unwrap();
        assert_eq!(
            d.columns,
            Some(vec!["service".into(), "cleanliness".into()])
        );
        assert_eq!(d.labels, Some(vec!["p1".into(), "p2".into()]));
        assert_eq!(d.dataset.points[1], vec![2.4, 9.6]);
        assert_eq!(d.name(0), "p1");
    }

    #[test]
    fn labels_without_header() {
        let csv = "a,1,2\nb,3,4\n";
        let d = parse_csv(csv, "t").unwrap();
        assert!(d.columns.is_none());
        assert_eq!(d.labels, Some(vec!["a".into(), "b".into()]));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let csv = "# comment\n\n1,2\n\n3,4\n";
        let d = parse_csv(csv, "t").unwrap();
        assert_eq!(d.dataset.len(), 2);
    }

    #[test]
    fn ragged_rows_rejected_with_line_number() {
        let csv = "1,2\n3,4,5\n";
        let err = parse_csv(csv, "t").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("expected 2"));
    }

    #[test]
    fn garbage_rejected() {
        let csv = "1,2\n3,x\n";
        let err = parse_csv(csv, "t").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(parse_csv("", "t").is_err());
        assert!(parse_csv("only,header\n", "t").is_err());
    }

    #[test]
    fn round_trip() {
        let ds = Dataset::new("t", vec![vec![1.5, 2.0], vec![0.25, 4.0]]);
        let labels = vec!["a".to_string(), "b".to_string()];
        let csv = write_csv(&ds, Some(&labels));
        let back = parse_csv(&csv, "t").unwrap();
        assert_eq!(back.dataset.points, ds.points);
        assert_eq!(back.labels.as_deref(), Some(labels.as_slice()));
    }
}
