//! Random query regions (the `R` inputs of every experiment).
//!
//! §7 of the paper: *"Every reported measurement is the average of 50
//! UTK queries, for axis-parallel hyper-cubes R randomly generated in
//! the preference domain. The side-length of R is expressed as a
//! percentage σ of the axis length."* The preference-domain axes have
//! length 1, so a query is a hyper-cube of side `σ` placed uniformly
//! at random subject to lying fully inside the preference simplex
//! `{ w ≥ 0, Σ w ≤ 1 }`.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// One axis-parallel query box `lo ≤ w ≤ hi` in the preference domain.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryBox {
    /// Lower corner.
    pub lo: Vec<f64>,
    /// Upper corner.
    pub hi: Vec<f64>,
}

/// Generates `count` random hyper-cubes of side `sigma` in the
/// `dp`-dimensional preference domain, fully inside the simplex.
///
/// # Panics
/// Panics if `sigma` is not in `(0, 1)` or no placement fits
/// (`dp · sigma ≥ 1` leaves no room inside the simplex).
pub fn random_regions(dp: usize, sigma: f64, count: usize, seed: u64) -> Vec<QueryBox> {
    assert!(
        sigma > 0.0 && sigma < 1.0,
        "σ must be a fraction of the axis"
    );
    assert!(
        (dp as f64) * sigma < 1.0,
        "a {sigma}-sided cube cannot fit inside the {dp}-simplex"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5154); // "QT"
    (0..count)
        .map(|_| loop {
            // Uniform corner; accept if the far corner stays inside
            // the simplex (Σ (lo_i + σ) ≤ 1).
            let lo: Vec<f64> = (0..dp).map(|_| rng.gen_range(0.0..1.0 - sigma)).collect();
            if lo.iter().map(|l| l + sigma).sum::<f64>() <= 1.0 {
                let hi = lo.iter().map(|l| l + sigma).collect();
                return QueryBox { lo, hi };
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxes_fit_the_simplex() {
        for dp in 1..=6 {
            let sigma = 0.05;
            for qb in random_regions(dp, sigma, 50, 1) {
                assert_eq!(qb.lo.len(), dp);
                assert!(qb.lo.iter().all(|&l| l >= 0.0));
                assert!(qb.hi.iter().sum::<f64>() <= 1.0 + 1e-12);
                for i in 0..dp {
                    assert!((qb.hi[i] - qb.lo[i] - sigma).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(random_regions(3, 0.01, 5, 7), random_regions(3, 0.01, 5, 7));
        assert_ne!(random_regions(3, 0.01, 5, 7), random_regions(3, 0.01, 5, 8));
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn oversized_sigma_rejected() {
        random_regions(6, 0.2, 1, 1);
    }
}
