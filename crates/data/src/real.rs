//! Simulated stand-ins for the paper's real datasets.
//!
//! The originals (hotels-base.com, ipums.org, basketball-reference.com
//! snapshots from 2017) are not redistributable; these generators
//! reproduce their cardinality, dimensionality and correlation
//! structure, which are the properties the UTK algorithms are
//! sensitive to (see the substitution table in `DESIGN.md`):
//!
//! * [`hotel`] — 418,843 × 4D guest ratings: mildly correlated through
//!   a latent quality factor (well-run hotels score high across the
//!   board), moderate skyband sizes;
//! * [`house`] — 315,265 × 6D household expenditure shares: two
//!   correlated blocks with a budget constraint that induces mild
//!   anticorrelation across blocks, heavier tails;
//! * [`nba`] — 21,960 × 8D player-season box-score statistics: a
//!   latent skill factor correlates everything while a guard/big role
//!   axis anticorrelates playmaking and interior statistics — few
//!   all-round stars dominate, giving small skybands despite d = 8.
//!
//! A `scale` multiplier shrinks cardinality for CI-sized runs
//! (`scale = 1.0` reproduces the paper's sizes).

use crate::dataset::Dataset;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Paper cardinality of the HOTEL dataset.
pub const HOTEL_N: usize = 418_843;
/// Paper cardinality of the HOUSE dataset.
pub const HOUSE_N: usize = 315_265;
/// Paper cardinality of the NBA dataset.
pub const NBA_N: usize = 21_960;

fn scaled(n: usize, scale: f64) -> usize {
    ((n as f64 * scale) as usize).max(100)
}

/// Simulated HOTEL: 4 guest-rating dimensions in `[0, 1]`.
pub fn hotel(scale: f64, seed: u64) -> Dataset {
    let n = scaled(HOTEL_N, scale);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x4854); // "HT"
    let points = (0..n)
        .map(|_| {
            // Latent quality blended with per-dimension idiosyncrasy:
            // ratings correlate moderately (ρ ≈ 0.4), as real guest
            // ratings do — well-run hotels score high across the
            // board but no dimension is redundant.
            let q: f64 = rng.gen_range(0.0..1.0);
            (0..4)
                .map(|_| 0.45 * q + 0.55 * rng.gen_range(0.0..1.0))
                .collect()
        })
        .collect();
    Dataset::new(format!("HOTEL-{n}x4"), points)
}

/// Simulated HOUSE: 6 expenditure dimensions in `[0, 1]`.
pub fn house(scale: f64, seed: u64) -> Dataset {
    let n = scaled(HOUSE_N, scale);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x4855); // "HU"
    let points = (0..n)
        .map(|_| {
            // Heavy-tailed budget level (sum of uniforms squared).
            let budget: f64 = {
                let u: f64 = rng.gen_range(0.0..1.0);
                u * u
            };
            // Two spending blocks share the budget: a household that
            // spends proportionally more on block A spends less on B.
            let split: f64 = rng.gen_range(0.2..0.8);
            let block = [budget * split, budget * (1.0 - split)];
            (0..6)
                .map(|i| {
                    let base = block[i / 3] * 2.0; // rescale toward [0,1]
                    let noise = rng.gen_range(-0.15..0.15);
                    (base + noise).clamp(0.0, 1.0)
                })
                .collect()
        })
        .collect();
    Dataset::new(format!("HOUSE-{n}x6"), points)
}

/// Simulated NBA: 8 per-season box-score dimensions in `[0, 1]`
/// (points, rebounds, assists, steals, blocks, fg%, ft%, threes).
pub fn nba(scale: f64, seed: u64) -> Dataset {
    let n = scaled(NBA_N, scale);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x4E42); // "NB"
                                                            // Role affinity per dimension: +1 favours guards, −1 favours bigs.
    const ROLE: [f64; 8] = [0.0, -1.0, 1.0, 0.5, -1.0, -0.3, 0.6, 1.0];
    let points = (0..n)
        .map(|_| {
            // Latent skill: right-skewed (most player-seasons are
            // marginal, a few are stars).
            let skill: f64 = {
                let u: f64 = rng.gen_range(0.0f64..1.0);
                u.powf(2.5)
            };
            // Role: −1 (pure big) … +1 (pure guard).
            let role: f64 = rng.gen_range(-1.0..1.0);
            (0..8)
                .map(|i| {
                    let affinity = 1.0 - 0.45 * (role - ROLE[i]).abs();
                    let noise = rng.gen_range(-0.08..0.08);
                    (skill * affinity.max(0.05) + noise).clamp(0.0, 1.0)
                })
                .collect()
        })
        .collect();
    Dataset::new(format!("NBA-{n}x8"), points)
}

/// The three simulated real datasets in the paper's k/σ-sweep order
/// (NBA, HOUSE, HOTEL as plotted in Figures 15–16).
pub fn all_real(scale: f64, seed: u64) -> Vec<Dataset> {
    vec![nba(scale, seed), house(scale, seed), hotel(scale, seed)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_and_dims() {
        let h = hotel(0.001, 1);
        assert_eq!(h.dim(), 4);
        assert!(h.len() >= 100);
        let u = house(0.001, 1);
        assert_eq!(u.dim(), 6);
        let n = nba(0.01, 1);
        assert_eq!(n.dim(), 8);
        assert!((n.len() as f64 - NBA_N as f64 * 0.01).abs() < 10.0);
    }

    #[test]
    fn full_scale_matches_paper_sizes() {
        // Only check arithmetic, not actually generating 400K records.
        assert_eq!(scaled(HOTEL_N, 1.0), 418_843);
        assert_eq!(scaled(HOUSE_N, 1.0), 315_265);
        assert_eq!(scaled(NBA_N, 1.0), 21_960);
    }

    #[test]
    fn values_in_unit_cube() {
        for ds in all_real(0.002, 3) {
            for p in &ds.points {
                assert!(p.iter().all(|x| (0.0..=1.0).contains(x)), "{}", ds.name);
            }
        }
    }

    #[test]
    fn hotel_ratings_are_correlated() {
        let ds = hotel(0.01, 5);
        let xs: Vec<f64> = ds.points.iter().map(|p| p[0]).collect();
        let ys: Vec<f64> = ds.points.iter().map(|p| p[1]).collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
        assert!(cov / (vx.sqrt() * vy.sqrt()) > 0.3);
    }

    #[test]
    fn nba_role_anticorrelates_assists_and_rebounds() {
        let ds = nba(0.05, 7);
        // Among strong players, rebounds (dim 1) and threes (dim 7)
        // should show the guard/big split: conditional on skill they
        // anticorrelate. Test on top-quartile scorers.
        let mut top: Vec<&Vec<f64>> = ds.points.iter().collect();
        top.sort_by(|a, b| b[0].partial_cmp(&a[0]).unwrap());
        top.truncate(ds.len() / 4);
        let xs: Vec<f64> = top.iter().map(|p| p[1]).collect();
        let ys: Vec<f64> = top.iter().map(|p| p[7]).collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
        assert!(cov / (vx.sqrt() * vy.sqrt()) < -0.1);
    }

    #[test]
    fn deterministic() {
        assert_eq!(nba(0.01, 1).points, nba(0.01, 1).points);
        assert_ne!(nba(0.01, 1).points, nba(0.01, 2).points);
    }
}
