//! Workloads for the UTK experiments (§7 of the paper).
//!
//! * [`synthetic`] — the standard preference-query benchmarks of
//!   Börzsönyi et al.: Independent (IND), Correlated (COR) and
//!   Anticorrelated (ANTI) point sets;
//! * [`real`] — deterministic simulators standing in for the paper's
//!   real datasets HOTEL (418,843 × 4D), HOUSE (315,265 × 6D) and NBA
//!   (21,960 × 8D), matching their cardinality, dimensionality and
//!   correlation structure (see `DESIGN.md` for the substitution
//!   rationale);
//! * [`embedded`] — small exact datasets: the Figure 1 hotel example
//!   and the curated NBA 2016–17 season table behind the Figure 9
//!   case studies;
//! * [`queries`] — random query regions `R` (axis-parallel hyper-cubes
//!   of side `σ`, uniformly placed in the preference domain) as used
//!   by every experiment.
//!
//! All generators are seeded and fully deterministic.

#![warn(missing_docs)]
// The 2026 unsafe audit found zero unsafe blocks workspace-wide;
// keep it that way. Any future unsafe must demote this to deny,
// carry a `// SAFETY:` comment (utk-lint enforces it), and say why
// no safe formulation works.
#![forbid(unsafe_code)]

pub mod csv;
pub mod dataset;
pub mod embedded;
pub mod queries;
pub mod real;
pub mod synthetic;
pub mod wal;

pub use dataset::Dataset;
pub use queries::random_regions;
pub use synthetic::Distribution;
