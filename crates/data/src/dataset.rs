//! Dataset container and normalization helpers.

/// An in-memory multi-criteria dataset: `n` records with `d`
/// non-negative attributes where *higher is better* in every
/// dimension (§3.1 of the paper).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name (used in experiment reports).
    pub name: String,
    /// Record attribute vectors, all of equal length.
    pub points: Vec<Vec<f64>>,
}

impl Dataset {
    /// Wraps points under a name.
    ///
    /// # Panics
    /// Panics on empty data or inconsistent dimensionality.
    pub fn new(name: impl Into<String>, points: Vec<Vec<f64>>) -> Self {
        assert!(!points.is_empty(), "empty dataset");
        let d = points[0].len();
        assert!(
            points.iter().all(|p| p.len() == d),
            "inconsistent dimensionality"
        );
        Self {
            name: name.into(),
            points,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Never true (construction forbids empty data).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Attribute dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.points[0].len()
    }

    /// Scales every dimension by its maximum, mapping data into
    /// `[0, 1]^d` while preserving per-dimension ratios. This is the
    /// scaling under which the paper's NBA case study reproduces.
    pub fn normalize_max(&mut self) {
        let d = self.dim();
        let mut maxs = vec![f64::MIN; d];
        for p in &self.points {
            for i in 0..d {
                maxs[i] = maxs[i].max(p[i]);
            }
        }
        for p in &mut self.points {
            for i in 0..d {
                if maxs[i] > 0.0 {
                    p[i] /= maxs[i];
                }
            }
        }
    }

    /// Min-max normalization into `[0, 1]^d`.
    pub fn normalize_minmax(&mut self) {
        let d = self.dim();
        let mut lo = vec![f64::MAX; d];
        let mut hi = vec![f64::MIN; d];
        for p in &self.points {
            for i in 0..d {
                lo[i] = lo[i].min(p[i]);
                hi[i] = hi[i].max(p[i]);
            }
        }
        for p in &mut self.points {
            for i in 0..d {
                let span = hi[i] - lo[i];
                p[i] = if span > 0.0 {
                    (p[i] - lo[i]) / span
                } else {
                    0.0
                };
            }
        }
    }

    /// Keeps the first `d` attributes of every record (the case
    /// studies project NBA data onto 2 or 3 of its 8 dimensions).
    pub fn project(&self, dims: &[usize]) -> Dataset {
        let points = self
            .points
            .iter()
            .map(|p| dims.iter().map(|&i| p[i]).collect())
            .collect();
        Dataset::new(format!("{}[{:?}]", self.name, dims), points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_max_scales_to_unit() {
        let mut ds = Dataset::new("t", vec![vec![2.0, 10.0], vec![4.0, 5.0]]);
        ds.normalize_max();
        assert_eq!(ds.points[1], vec![1.0, 0.5]);
        assert_eq!(ds.points[0], vec![0.5, 1.0]);
    }

    #[test]
    fn normalize_minmax_hits_bounds() {
        let mut ds = Dataset::new("t", vec![vec![2.0], vec![4.0], vec![3.0]]);
        ds.normalize_minmax();
        assert_eq!(ds.points[0], vec![0.0]);
        assert_eq!(ds.points[1], vec![1.0]);
        assert_eq!(ds.points[2], vec![0.5]);
    }

    #[test]
    fn project_selects_dims() {
        let ds = Dataset::new("t", vec![vec![1.0, 2.0, 3.0]]);
        let p = ds.project(&[2, 0]);
        assert_eq!(p.points[0], vec![3.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn rejects_ragged_data() {
        Dataset::new("bad", vec![vec![1.0], vec![1.0, 2.0]]);
    }
}
