//! Per-dataset write-ahead log: the durability seam of the `update`
//! op.
//!
//! A dataset's WAL is a single append-only file holding every
//! mutation applied since the base CSV (or since the last
//! compaction's snapshot). The write protocol is *log first*: a
//! mutation record is appended and fsynced **before** the in-memory
//! engine commits its epoch bump, so an epoch that was ever visible
//! to a query is always reconstructible by replay — crash, evict or
//! restart notwithstanding.
//!
//! # On-disk format
//!
//! ```text
//! file   := magic record*
//! magic  := "UTKWAL01"                          (8 bytes)
//! record := len:u32le crc:u32le payload         (len = payload bytes)
//! payload:= kind:u8 epoch:u64le body
//! kind   := 1 insert | 2 delete | 3 compact | 4 update
//! ```
//!
//! Bodies (all little-endian): `insert` is `count:u32 dim:u32` then
//! `count × dim` f64 bit patterns, then `has_labels:u8` and, when
//! set, `count` length-prefixed UTF-8 labels; `delete` is `count:u32`
//! then `count` u32 record ids; `update` is a delete body followed by
//! an insert body (one atomic mixed mutation); `compact` has an empty
//! body — its epoch is the *base* epoch of the snapshot the rewritten
//! log starts from. The exact bytes are pinned by
//! `tests/wal_golden.rs`.
//!
//! # Torn tails vs corruption
//!
//! A crash mid-append leaves a *torn tail*: a final record whose
//! framing or payload runs past end-of-file. [`WalFile::open`]
//! detects that, truncates the file back to the last complete record,
//! and carries on — by the log-first protocol the half-written
//! mutation was never visible, so dropping it restores the exact
//! pre-mutation state. Anything else — a bad magic, a checksum
//! mismatch on a *complete* record, a non-sequential epoch, an
//! oversized length — is real corruption and surfaces as a typed
//! [`WalError`]; it is never truncated away silently and never
//! panics.
//!
//! # Fault injection
//!
//! [`WalFile::fail_after_n_bytes`] arms a failpoint that stops the
//! underlying writes after a byte budget, simulating a crash at an
//! arbitrary point inside an append. The kill-and-replay proptests in
//! `tests/dynamic.rs` drive every crash offset of a record through
//! it and assert replay lands on exactly the pre- or post-mutation
//! epoch, never a torn state.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The 8-byte file header ("UTK WAL, format 01").
pub const WAL_MAGIC: &[u8; 8] = b"UTKWAL01";

/// Upper bound on one record's payload bytes (64 MiB). A length
/// prefix above this is corruption, not a huge mutation — the serving
/// protocol caps request lines far below it.
pub const MAX_RECORD_BYTES: u32 = 64 << 20;

const KIND_INSERT: u8 = 1;
const KIND_DELETE: u8 = 2;
const KIND_COMPACT: u8 = 3;
const KIND_UPDATE: u8 = 4;

/// Typed WAL failure. I/O errors pass through; everything else is a
/// structural finding with enough context to say *where* and *why*.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with [`WAL_MAGIC`].
    BadMagic,
    /// A complete record failed validation (checksum mismatch, bad
    /// kind, malformed body, oversized length, misplaced compact
    /// marker).
    Corrupt {
        /// Byte offset of the offending record's length prefix.
        offset: u64,
        /// What was wrong with it.
        detail: String,
    },
    /// A record's epoch broke the strict `+1` sequence (duplicate or
    /// skipped epoch).
    EpochMismatch {
        /// The epoch the sequence required next.
        expected: u64,
        /// The epoch the record carried.
        got: u64,
    },
    /// Replaying a record against the base data failed (the record is
    /// well-formed but inconsistent with the dataset it claims to
    /// mutate).
    Replay {
        /// The epoch of the record that failed to apply.
        epoch: u64,
        /// The application error.
        message: String,
    },
    /// The armed failpoint tripped mid-write (fault injection only).
    Failpoint,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::BadMagic => write!(f, "not a UTK write-ahead log (bad magic)"),
            WalError::Corrupt { offset, detail } => {
                write!(f, "corrupt wal record at byte {offset}: {detail}")
            }
            WalError::EpochMismatch { expected, got } => {
                write!(
                    f,
                    "wal epoch sequence broken: expected {expected}, got {got}"
                )
            }
            WalError::Replay { epoch, message } => {
                write!(f, "wal replay failed at epoch {epoch}: {message}")
            }
            WalError::Failpoint => write!(f, "wal failpoint tripped (injected fault)"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// One logged mutation (or the compaction marker a rewritten log
/// starts with). `epoch` is the dataset epoch the record *produces*
/// (for `Compact`, the base epoch it snapshots).
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Rows appended (with one label per row on labeled datasets).
    Insert {
        /// The epoch this mutation produced.
        epoch: u64,
        /// The appended rows.
        rows: Vec<Vec<f64>>,
        /// Labels parallel to `rows`, when the dataset is labeled.
        labels: Option<Vec<String>>,
    },
    /// Records removed (current ids, applied simultaneously).
    Delete {
        /// The epoch this mutation produced.
        epoch: u64,
        /// The deleted record ids.
        ids: Vec<u32>,
    },
    /// A mixed mutation: deletes and inserts as one atomic step.
    Update {
        /// The epoch this mutation produced.
        epoch: u64,
        /// The deleted record ids.
        deletes: Vec<u32>,
        /// The appended rows.
        inserts: Vec<Vec<f64>>,
        /// Labels parallel to `inserts`, when the dataset is labeled.
        labels: Option<Vec<String>>,
    },
    /// The log was compacted: everything up to `base_epoch` lives in
    /// the side-by-side snapshot; replay starts there.
    Compact {
        /// The epoch the snapshot captured.
        base_epoch: u64,
    },
}

impl WalRecord {
    /// The canonical record for one `apply_update` call: `Insert` when
    /// nothing is deleted, `Delete` when nothing is inserted, `Update`
    /// otherwise.
    pub fn for_update(
        epoch: u64,
        deletes: &[u32],
        inserts: &[Vec<f64>],
        labels: Option<&[String]>,
    ) -> WalRecord {
        match (deletes.is_empty(), inserts.is_empty()) {
            (true, _) => WalRecord::Insert {
                epoch,
                rows: inserts.to_vec(),
                labels: labels.map(<[String]>::to_vec),
            },
            (false, true) => WalRecord::Delete {
                epoch,
                ids: deletes.to_vec(),
            },
            (false, false) => WalRecord::Update {
                epoch,
                deletes: deletes.to_vec(),
                inserts: inserts.to_vec(),
                labels: labels.map(<[String]>::to_vec),
            },
        }
    }

    /// The epoch this record advances the dataset to (`Compact`: the
    /// base epoch replay resumes from).
    pub fn epoch(&self) -> u64 {
        match self {
            WalRecord::Insert { epoch, .. }
            | WalRecord::Delete { epoch, .. }
            | WalRecord::Update { epoch, .. } => *epoch,
            WalRecord::Compact { base_epoch } => *base_epoch,
        }
    }

    /// The mutation pieces `(deletes, inserts, labels)` this record
    /// carries (`Compact` carries none).
    pub fn mutation(&self) -> (&[u32], &[Vec<f64>], Option<&[String]>) {
        match self {
            WalRecord::Insert { rows, labels, .. } => (&[], rows, labels.as_deref()),
            WalRecord::Delete { ids, .. } => (ids, &[], None),
            WalRecord::Update {
                deletes,
                inserts,
                labels,
                ..
            } => (deletes, inserts, labels.as_deref()),
            WalRecord::Compact { .. } => (&[], &[], None),
        }
    }

    /// Serializes the record payload (kind + epoch + body), *without*
    /// the length/checksum framing.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Insert {
                epoch,
                rows,
                labels,
            } => {
                out.push(KIND_INSERT);
                out.extend_from_slice(&epoch.to_le_bytes());
                encode_insert_body(&mut out, rows, labels.as_deref());
            }
            WalRecord::Delete { epoch, ids } => {
                out.push(KIND_DELETE);
                out.extend_from_slice(&epoch.to_le_bytes());
                encode_delete_body(&mut out, ids);
            }
            WalRecord::Update {
                epoch,
                deletes,
                inserts,
                labels,
            } => {
                out.push(KIND_UPDATE);
                out.extend_from_slice(&epoch.to_le_bytes());
                encode_delete_body(&mut out, deletes);
                encode_insert_body(&mut out, inserts, labels.as_deref());
            }
            WalRecord::Compact { base_epoch } => {
                out.push(KIND_COMPACT);
                out.extend_from_slice(&base_epoch.to_le_bytes());
            }
        }
        out
    }

    /// Serializes the full framed record: length, checksum, payload.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(8 + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parses one payload (the bytes after the length/checksum
    /// framing). `offset` is only used for error context.
    fn decode_payload(payload: &[u8], offset: u64) -> Result<WalRecord, WalError> {
        let corrupt = |detail: &str| WalError::Corrupt {
            offset,
            detail: detail.into(),
        };
        let mut cur = Cursor {
            buf: payload,
            pos: 0,
        };
        let kind = cur.u8().ok_or_else(|| corrupt("missing record kind"))?;
        let epoch = cur.u64().ok_or_else(|| corrupt("missing epoch"))?;
        let record = match kind {
            KIND_INSERT => {
                let (rows, labels) = decode_insert_body(&mut cur, offset)?;
                WalRecord::Insert {
                    epoch,
                    rows,
                    labels,
                }
            }
            KIND_DELETE => WalRecord::Delete {
                epoch,
                ids: decode_delete_body(&mut cur, offset)?,
            },
            KIND_UPDATE => {
                let deletes = decode_delete_body(&mut cur, offset)?;
                let (inserts, labels) = decode_insert_body(&mut cur, offset)?;
                WalRecord::Update {
                    epoch,
                    deletes,
                    inserts,
                    labels,
                }
            }
            KIND_COMPACT => WalRecord::Compact { base_epoch: epoch },
            other => return Err(corrupt(&format!("unknown record kind {other}"))),
        };
        if cur.pos != payload.len() {
            return Err(corrupt("trailing bytes after record body"));
        }
        Ok(record)
    }
}

fn encode_delete_body(out: &mut Vec<u8>, ids: &[u32]) {
    out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
    for &id in ids {
        out.extend_from_slice(&id.to_le_bytes());
    }
}

fn encode_insert_body(out: &mut Vec<u8>, rows: &[Vec<f64>], labels: Option<&[String]>) {
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    let dim = rows.first().map_or(0, Vec::len) as u32;
    out.extend_from_slice(&dim.to_le_bytes());
    for row in rows {
        for &v in row {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    match labels {
        None => out.push(0),
        Some(labels) => {
            out.push(1);
            for label in labels {
                out.extend_from_slice(&(label.len() as u32).to_le_bytes());
                out.extend_from_slice(label.as_bytes());
            }
        }
    }
}

/// A bounds-checked little-endian reader over one payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| {
            let mut a = [0u8; 4];
            a.copy_from_slice(b);
            u32::from_le_bytes(a)
        })
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| {
            let mut a = [0u8; 8];
            a.copy_from_slice(b);
            u64::from_le_bytes(a)
        })
    }
}

fn decode_delete_body(cur: &mut Cursor<'_>, offset: u64) -> Result<Vec<u32>, WalError> {
    let corrupt = |detail: &str| WalError::Corrupt {
        offset,
        detail: detail.into(),
    };
    let count = cur.u32().ok_or_else(|| corrupt("missing delete count"))? as usize;
    if count > MAX_RECORD_BYTES as usize / 4 {
        return Err(corrupt("delete count exceeds the record size cap"));
    }
    let mut ids = Vec::with_capacity(count);
    for _ in 0..count {
        ids.push(cur.u32().ok_or_else(|| corrupt("short delete body"))?);
    }
    Ok(ids)
}

#[allow(clippy::type_complexity)]
fn decode_insert_body(
    cur: &mut Cursor<'_>,
    offset: u64,
) -> Result<(Vec<Vec<f64>>, Option<Vec<String>>), WalError> {
    let corrupt = |detail: &str| WalError::Corrupt {
        offset,
        detail: detail.into(),
    };
    let count = cur.u32().ok_or_else(|| corrupt("missing insert count"))? as usize;
    let dim = cur.u32().ok_or_else(|| corrupt("missing insert dim"))? as usize;
    if count.saturating_mul(dim) > MAX_RECORD_BYTES as usize / 8 {
        return Err(corrupt("insert size exceeds the record size cap"));
    }
    let mut rows = Vec::with_capacity(count);
    for _ in 0..count {
        let mut row = Vec::with_capacity(dim);
        for _ in 0..dim {
            let bits = cur.u64().ok_or_else(|| corrupt("short insert body"))?;
            row.push(f64::from_bits(bits));
        }
        rows.push(row);
    }
    let has_labels = cur.u8().ok_or_else(|| corrupt("missing label flag"))?;
    let labels = match has_labels {
        0 => None,
        1 => {
            let mut labels = Vec::with_capacity(count);
            for _ in 0..count {
                let len = cur.u32().ok_or_else(|| corrupt("short label body"))? as usize;
                let bytes = cur.take(len).ok_or_else(|| corrupt("short label body"))?;
                let label = std::str::from_utf8(bytes)
                    .map_err(|_| corrupt("label is not UTF-8"))?
                    .to_string();
                labels.push(label);
            }
            Some(labels)
        }
        other => return Err(corrupt(&format!("bad label flag {other}"))),
    };
    Ok((rows, labels))
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the record checksum.
/// Hand-rolled nibble-table implementation: this workspace takes no
/// external dependencies, and 16 table entries keep it audit-small.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Nibble table for the reflected polynomial 0xEDB88320.
    const TABLE: [u32; 16] = [
        0x0000_0000,
        0x1DB7_1064,
        0x3B6E_20C8,
        0x26D9_30AC,
        0x76DC_4190,
        0x6B6B_51F4,
        0x4DB2_6158,
        0x5005_713C,
        0xEDB8_8320,
        0xF00F_9344,
        0xD6D6_A3E8,
        0xCB61_B38C,
        0x9B64_C2B0,
        0x86D3_D2D4,
        0xA00A_E278,
        0xBDBD_F21C,
    ];
    let mut crc: u32 = !0;
    for &b in bytes {
        crc = TABLE[((crc ^ u32::from(b)) & 0x0F) as usize] ^ (crc >> 4);
        crc = TABLE[((crc ^ (u32::from(b) >> 4)) & 0x0F) as usize] ^ (crc >> 4);
    }
    !crc
}

/// What [`WalFile::open`] found on disk.
#[derive(Debug)]
pub struct WalOpen {
    /// The open, append-positioned log.
    pub wal: WalFile,
    /// Every complete record, in log order (a leading `Compact`
    /// marker first when the log was ever compacted).
    pub records: Vec<WalRecord>,
    /// Bytes of torn tail truncated away during recovery (0 on a
    /// clean log).
    pub truncated_bytes: u64,
}

/// An open per-dataset write-ahead log: append + fsync, failpoint
/// injection, compaction. See the [module docs](self) for the
/// protocol and format.
#[derive(Debug)]
pub struct WalFile {
    file: File,
    path: PathBuf,
    /// Logical file length — where the next append lands.
    len: u64,
    /// Complete records currently in the log.
    records: u64,
    /// Epoch the log replays to (the last record's epoch, or the
    /// compact base, or 0 for an empty log).
    epoch: u64,
    /// Fault injection: remaining byte budget before writes start
    /// failing (`None` = disabled).
    fail_after: Option<u64>,
}

impl WalFile {
    /// Opens (or creates) the log at `path`, scans it, repairs a torn
    /// tail by truncation, and returns the records to replay. Real
    /// corruption — bad magic, a checksum mismatch on a complete
    /// record, a broken epoch sequence — is a typed error, never a
    /// panic and never silent data loss.
    pub fn open(path: &Path) -> Result<WalOpen, WalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            file.write_all(WAL_MAGIC)?;
            file.sync_data()?;
            return Ok(WalOpen {
                wal: WalFile {
                    file,
                    path: path.to_path_buf(),
                    len: WAL_MAGIC.len() as u64,
                    records: 0,
                    epoch: 0,
                    fail_after: None,
                },
                records: Vec::new(),
                truncated_bytes: 0,
            });
        }
        if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(WalError::BadMagic);
        }
        let (records, clean_len) = scan_records(&bytes)?;
        let truncated_bytes = bytes.len() as u64 - clean_len;
        if truncated_bytes > 0 {
            // Physically drop the torn tail so the next append starts
            // on a clean record boundary.
            file.set_len(clean_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(clean_len))?;
        let epoch = records.last().map_or(0, WalRecord::epoch);
        Ok(WalOpen {
            wal: WalFile {
                file,
                path: path.to_path_buf(),
                len: clean_len,
                records: records.len() as u64,
                epoch,
                fail_after: None,
            },
            records,
            truncated_bytes,
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Logical bytes in the log (header + complete records).
    pub fn bytes(&self) -> u64 {
        self.len
    }

    /// Complete records currently in the log.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The epoch the log currently replays to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Arms (or disarms with `None`) the write failpoint: after `n`
    /// more bytes reach the file, every further byte is dropped and
    /// the append returns [`WalError::Failpoint`] — simulating a
    /// crash at that exact offset. Fault-injection tests only.
    pub fn fail_after_n_bytes(&mut self, n: Option<u64>) {
        self.fail_after = n;
    }

    /// Writes `buf` through the failpoint: on a tripped budget the
    /// allowed prefix still reaches the file (and is synced, like a
    /// real partial write that survived a crash) and the rest is lost.
    fn write_through_failpoint(&mut self, buf: &[u8]) -> Result<(), WalError> {
        match self.fail_after {
            None => {
                self.file.write_all(buf)?;
                Ok(())
            }
            Some(budget) => {
                let allowed = (budget as usize).min(buf.len());
                self.fail_after = Some(budget - allowed as u64);
                self.file.write_all(&buf[..allowed])?;
                if allowed < buf.len() {
                    self.file.sync_data()?;
                    return Err(WalError::Failpoint);
                }
                Ok(())
            }
        }
    }

    /// Appends one record and fsyncs. On success the record is
    /// durable; on any error the caller must treat the mutation as
    /// not-logged (a partial append is recovered as a torn tail on
    /// the next open). Enforces the strict `+1` epoch sequence.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        let expected = self.epoch + 1;
        if record.epoch() != expected {
            return Err(WalError::EpochMismatch {
                expected,
                got: record.epoch(),
            });
        }
        let framed = record.encode();
        self.write_through_failpoint(&framed)?;
        self.file.sync_data()?;
        self.len += framed.len() as u64;
        self.records += 1;
        self.epoch = record.epoch();
        Ok(())
    }

    /// Rewrites the log as a single `Compact { base_epoch }` marker —
    /// called after the caller has durably written a snapshot of the
    /// dataset at `base_epoch`. Crash-safe: the new log is written to
    /// a temp file, fsynced, then renamed over the old one, so either
    /// the full old log or the compacted one exists, never a mix.
    pub fn compact(&mut self, base_epoch: u64) -> Result<(), WalError> {
        let tmp = self.path.with_extension("wal.tmp");
        let mut out = Vec::new();
        out.extend_from_slice(WAL_MAGIC);
        out.extend_from_slice(&WalRecord::Compact { base_epoch }.encode());
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&out)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // Best-effort directory sync so the rename itself is durable.
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_data();
            }
        }
        let file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        let len = out.len() as u64;
        let mut file = file;
        file.seek(SeekFrom::Start(len))?;
        self.file = file;
        self.len = len;
        self.records = 1;
        self.epoch = base_epoch;
        Ok(())
    }
}

/// Scans the byte image of a log: returns every complete, checksummed
/// record plus the clean length (where a torn tail, if any, begins).
/// A complete record that fails its checksum or structural validation
/// is corruption; an *incomplete* final record is a torn tail.
fn scan_records(bytes: &[u8]) -> Result<(Vec<WalRecord>, u64), WalError> {
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    let mut last_epoch: Option<u64> = None;
    while pos < bytes.len() {
        let offset = pos as u64;
        let remaining = &bytes[pos..];
        if remaining.len() < 8 {
            return Ok((records, offset)); // torn framing
        }
        let len = u32::from_le_bytes([remaining[0], remaining[1], remaining[2], remaining[3]]);
        let crc = u32::from_le_bytes([remaining[4], remaining[5], remaining[6], remaining[7]]);
        if len > MAX_RECORD_BYTES {
            return Err(WalError::Corrupt {
                offset,
                detail: format!("record length {len} exceeds the {MAX_RECORD_BYTES}-byte cap"),
            });
        }
        let len = len as usize;
        if remaining.len() < 8 + len {
            return Ok((records, offset)); // torn payload
        }
        let payload = &remaining[8..8 + len];
        if crc32(payload) != crc {
            return Err(WalError::Corrupt {
                offset,
                detail: "checksum mismatch".into(),
            });
        }
        let record = WalRecord::decode_payload(payload, offset)?;
        match (&record, last_epoch, records.is_empty()) {
            (WalRecord::Compact { .. }, _, false) => {
                return Err(WalError::Corrupt {
                    offset,
                    detail: "compact marker after the first record".into(),
                });
            }
            (WalRecord::Compact { .. }, _, true) => {}
            (_, base, _) => {
                let expected = base.map_or(1, |e| e + 1);
                if record.epoch() != expected {
                    return Err(WalError::EpochMismatch {
                        expected,
                        got: record.epoch(),
                    });
                }
            }
        }
        last_epoch = Some(record.epoch());
        records.push(record);
        pos += 8 + len;
    }
    Ok((records, pos as u64))
}

/// Replays `records` over `base`, returning the epoch reached. `base`
/// must be the dataset the log's first mutation applies to (the
/// snapshot at the leading `Compact` marker's epoch, or the original
/// CSV at epoch 0).
pub fn replay(base: &mut crate::csv::CsvData, records: &[WalRecord]) -> Result<u64, WalError> {
    let mut epoch = 0;
    for record in records {
        match record {
            WalRecord::Compact { base_epoch } => epoch = *base_epoch,
            _ => {
                let (deletes, inserts, labels) = record.mutation();
                base.apply_update(deletes, inserts, labels)
                    .map_err(|message| WalError::Replay {
                        epoch: record.epoch(),
                        message,
                    })?;
                epoch = record.epoch();
            }
        }
    }
    Ok(epoch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::parse_csv;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("utk_wal_{tag}_{}.wal", std::process::id()))
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                epoch: 1,
                rows: vec![vec![0.5, 0.25]],
                labels: Some(vec!["p9".into()]),
            },
            WalRecord::Delete {
                epoch: 2,
                ids: vec![0, 3],
            },
            WalRecord::Update {
                epoch: 3,
                deletes: vec![1],
                inserts: vec![vec![0.125, 0.75], vec![1.0, 2.0]],
                labels: Some(vec!["p10".into(), "p11".into()]),
            },
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value ("123456789" → 0xCBF43926) plus the
        // empty string.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_reopen_round_trips_records() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut open = WalFile::open(&path).expect("create");
        assert!(open.records.is_empty());
        for r in sample_records() {
            open.wal.append(&r).expect("append");
        }
        assert_eq!(open.wal.records(), 3);
        assert_eq!(open.wal.epoch(), 3);
        let reopened = WalFile::open(&path).expect("reopen");
        assert_eq!(reopened.records, sample_records());
        assert_eq!(reopened.truncated_bytes, 0);
        assert_eq!(reopened.wal.epoch(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn every_crash_offset_truncates_to_a_record_boundary() {
        // Simulate a crash at every byte offset inside the second
        // append: reopen must recover exactly one record (epoch 1) or
        // both (epoch 2), never anything else.
        let records = sample_records();
        let second_len = records[1].encode().len() as u64;
        for cut in 0..second_len {
            let path = temp_path(&format!("crash_{cut}"));
            let _ = std::fs::remove_file(&path);
            let mut open = WalFile::open(&path).expect("create");
            open.wal.append(&records[0]).expect("first append");
            open.wal.fail_after_n_bytes(Some(cut));
            let err = open.wal.append(&records[1]).expect_err("failpoint");
            assert!(matches!(err, WalError::Failpoint));
            let reopened = WalFile::open(&path).expect("recover");
            assert_eq!(reopened.records.len(), 1, "cut at {cut}");
            assert_eq!(reopened.wal.epoch(), 1);
            assert_eq!(reopened.truncated_bytes, cut);
            // The log is usable again: the retried append lands clean.
            let mut wal = reopened.wal;
            wal.append(&records[1]).expect("retry after recovery");
            let healed = WalFile::open(&path).expect("reopen healed");
            assert_eq!(healed.records.len(), 2);
            assert_eq!(healed.wal.epoch(), 2);
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn flipped_checksum_byte_is_typed_corruption() {
        let path = temp_path("flip");
        let _ = std::fs::remove_file(&path);
        let mut open = WalFile::open(&path).expect("create");
        open.wal.append(&sample_records()[0]).expect("append");
        let mut bytes = std::fs::read(&path).expect("read");
        let crc_at = WAL_MAGIC.len() + 4;
        bytes[crc_at] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("rewrite");
        let err = WalFile::open(&path).expect_err("must reject");
        assert!(
            matches!(err, WalError::Corrupt { .. }),
            "got {err:?} instead of Corrupt"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_epoch_is_typed_mismatch() {
        let path = temp_path("dup");
        let _ = std::fs::remove_file(&path);
        let mut open = WalFile::open(&path).expect("create");
        let r1 = WalRecord::Delete {
            epoch: 1,
            ids: vec![0],
        };
        open.wal.append(&r1).expect("append");
        // A live handle refuses the duplicate outright...
        let err = open.wal.append(&r1).expect_err("duplicate");
        assert!(matches!(
            err,
            WalError::EpochMismatch {
                expected: 2,
                got: 1
            }
        ));
        // ...and a log that already contains one (hand-forged) is
        // rejected at open.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(&r1.encode());
        std::fs::write(&path, &bytes).expect("rewrite");
        let err = WalFile::open(&path).expect_err("must reject");
        assert!(matches!(
            err,
            WalError::EpochMismatch {
                expected: 2,
                got: 1
            }
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_resets_the_log_to_a_single_marker() {
        let path = temp_path("compact");
        let _ = std::fs::remove_file(&path);
        let mut open = WalFile::open(&path).expect("create");
        for r in sample_records() {
            open.wal.append(&r).expect("append");
        }
        open.wal.compact(3).expect("compact");
        assert_eq!(open.wal.records(), 1);
        assert_eq!(open.wal.epoch(), 3);
        // Appends continue from the compacted base.
        open.wal
            .append(&WalRecord::Delete {
                epoch: 4,
                ids: vec![0],
            })
            .expect("append after compact");
        let reopened = WalFile::open(&path).expect("reopen");
        assert_eq!(reopened.records.len(), 2);
        assert_eq!(reopened.records[0], WalRecord::Compact { base_epoch: 3 });
        assert_eq!(reopened.wal.epoch(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_applies_mutations_in_order() {
        let mut data = parse_csv("a,1.0,2.0\nb,3.0,4.0\nc,5.0,6.0\n", "t").expect("parse");
        let records = vec![
            WalRecord::Insert {
                epoch: 1,
                rows: vec![vec![7.0, 8.0]],
                labels: Some(vec!["d".into()]),
            },
            WalRecord::Update {
                epoch: 2,
                deletes: vec![0],
                inserts: vec![vec![9.0, 10.0]],
                labels: Some(vec!["e".into()]),
            },
        ];
        let epoch = replay(&mut data, &records).expect("replay");
        assert_eq!(epoch, 2);
        assert_eq!(
            data.dataset.points,
            vec![
                vec![3.0, 4.0],
                vec![5.0, 6.0],
                vec![7.0, 8.0],
                vec![9.0, 10.0]
            ]
        );
        assert_eq!(
            data.labels.as_deref(),
            Some(&["b".into(), "c".into(), "d".into(), "e".into()][..])
        );
    }

    #[test]
    fn replay_error_is_typed_not_a_panic() {
        let mut data = parse_csv("1.0,2.0\n", "t").expect("parse");
        let records = vec![WalRecord::Delete {
            epoch: 1,
            ids: vec![9],
        }];
        let err = replay(&mut data, &records).expect_err("bad id");
        assert!(matches!(err, WalError::Replay { epoch: 1, .. }));
    }
}
