//! Exact embedded datasets behind the paper's worked examples.
//!
//! * [`figure1_hotels`] — the seven hotels of Figure 1 (Service,
//!   Cleanliness, Location on a 0–10 scale). With `k = 2` and
//!   `R = [0.05, 0.45] × [0.05, 0.25]` the UTK1 answer is
//!   `{p1, p2, p4, p6}` and the UTK2 partitioning runs
//!   `{p2,p4} → {p1,p4} → {p1,p2} → {p1,p6}` left to right.
//! * [`nba_2016_17`] — a curated table of 2016–17 NBA season
//!   per-game averages (rebounds, points, assists) for the league's
//!   statistical leaders, reproducing the Figure 9 case studies. The
//!   figures' results hold under per-dimension max normalization
//!   ([`crate::Dataset::normalize_max`]); the table is a curated
//!   subset of public season averages (see `DESIGN.md`).

use crate::dataset::Dataset;

/// Names of the Figure 1 hotels, aligned with
/// [`figure1_hotels`]' record order.
pub const FIGURE1_NAMES: [&str; 7] = ["p1", "p2", "p3", "p4", "p5", "p6", "p7"];

/// The Figure 1 example: 7 hotels × (Service, Cleanliness, Location).
pub fn figure1_hotels() -> Dataset {
    Dataset::new(
        "Figure1-hotels",
        vec![
            vec![8.3, 9.1, 7.2], // p1
            vec![2.4, 9.6, 8.6], // p2
            vec![5.4, 1.6, 4.1], // p3
            vec![2.6, 6.9, 9.4], // p4
            vec![7.3, 3.1, 2.4], // p5
            vec![7.9, 6.4, 6.6], // p6
            vec![8.6, 7.1, 4.3], // p7
        ],
    )
}

/// One row of the curated NBA 2016–17 table.
#[derive(Debug, Clone, Copy)]
pub struct NbaPlayer {
    /// Player name.
    pub name: &'static str,
    /// Rebounds per game.
    pub rebounds: f64,
    /// Points per game.
    pub points: f64,
    /// Assists per game.
    pub assists: f64,
}

/// Curated 2016–17 season per-game averages (league statistical
/// leaders; approximate public figures).
pub const NBA_2016_17: [NbaPlayer; 27] = [
    NbaPlayer {
        name: "Russell Westbrook",
        rebounds: 10.7,
        points: 31.6,
        assists: 10.4,
    },
    NbaPlayer {
        name: "James Harden",
        rebounds: 8.1,
        points: 29.1,
        assists: 11.2,
    },
    NbaPlayer {
        name: "Isaiah Thomas",
        rebounds: 2.7,
        points: 28.9,
        assists: 5.9,
    },
    NbaPlayer {
        name: "Anthony Davis",
        rebounds: 11.8,
        points: 28.0,
        assists: 2.1,
    },
    NbaPlayer {
        name: "DeMarcus Cousins",
        rebounds: 11.0,
        points: 27.0,
        assists: 4.6,
    },
    NbaPlayer {
        name: "DeMar DeRozan",
        rebounds: 5.2,
        points: 27.3,
        assists: 3.9,
    },
    NbaPlayer {
        name: "Damian Lillard",
        rebounds: 4.9,
        points: 27.0,
        assists: 5.9,
    },
    NbaPlayer {
        name: "LeBron James",
        rebounds: 8.6,
        points: 26.4,
        assists: 8.7,
    },
    NbaPlayer {
        name: "Kawhi Leonard",
        rebounds: 5.8,
        points: 25.5,
        assists: 3.5,
    },
    NbaPlayer {
        name: "Stephen Curry",
        rebounds: 4.5,
        points: 25.3,
        assists: 6.6,
    },
    NbaPlayer {
        name: "Kevin Durant",
        rebounds: 8.3,
        points: 25.1,
        assists: 4.8,
    },
    NbaPlayer {
        name: "Kyrie Irving",
        rebounds: 3.2,
        points: 25.2,
        assists: 5.8,
    },
    NbaPlayer {
        name: "Jimmy Butler",
        rebounds: 6.2,
        points: 23.9,
        assists: 5.5,
    },
    NbaPlayer {
        name: "Paul George",
        rebounds: 6.6,
        points: 23.7,
        assists: 3.3,
    },
    NbaPlayer {
        name: "Kemba Walker",
        rebounds: 3.9,
        points: 23.2,
        assists: 5.5,
    },
    NbaPlayer {
        name: "John Wall",
        rebounds: 4.2,
        points: 23.1,
        assists: 10.7,
    },
    NbaPlayer {
        name: "Giannis Antetokounmpo",
        rebounds: 8.8,
        points: 22.9,
        assists: 5.4,
    },
    NbaPlayer {
        name: "Hassan Whiteside",
        rebounds: 14.1,
        points: 17.0,
        assists: 0.7,
    },
    NbaPlayer {
        name: "Andre Drummond",
        rebounds: 13.8,
        points: 13.6,
        assists: 1.1,
    },
    NbaPlayer {
        name: "Rudy Gobert",
        rebounds: 12.8,
        points: 14.0,
        assists: 1.2,
    },
    NbaPlayer {
        name: "DeAndre Jordan",
        rebounds: 13.8,
        points: 12.7,
        assists: 1.2,
    },
    NbaPlayer {
        name: "Dwight Howard",
        rebounds: 12.7,
        points: 13.5,
        assists: 1.4,
    },
    NbaPlayer {
        name: "Kevin Love",
        rebounds: 11.1,
        points: 19.0,
        assists: 1.9,
    },
    NbaPlayer {
        name: "Nikola Vucevic",
        rebounds: 10.4,
        points: 14.6,
        assists: 2.8,
    },
    NbaPlayer {
        name: "Chris Paul",
        rebounds: 5.0,
        points: 18.1,
        assists: 9.2,
    },
    NbaPlayer {
        name: "Draymond Green",
        rebounds: 7.9,
        points: 10.2,
        assists: 7.0,
    },
    NbaPlayer {
        name: "Nikola Jokic",
        rebounds: 9.8,
        points: 16.7,
        assists: 4.9,
    },
];

/// The curated table as a dataset, dimensions ordered
/// (rebounds, points, assists) as in Figure 9, max-normalized.
pub fn nba_2016_17() -> Dataset {
    let points = NBA_2016_17
        .iter()
        .map(|p| vec![p.rebounds, p.points, p.assists])
        .collect();
    let mut ds = Dataset::new("NBA-2016-17", points);
    ds.normalize_max();
    ds
}

/// Player name for a record index of [`nba_2016_17`].
pub fn nba_player_name(idx: usize) -> &'static str {
    NBA_2016_17[idx].name
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_matches_published_table() {
        let ds = figure1_hotels();
        assert_eq!(ds.len(), 7);
        assert_eq!(ds.dim(), 3);
        assert_eq!(ds.points[6], vec![8.6, 7.1, 4.3]); // p7
    }

    #[test]
    fn nba_normalized_leaders_hit_one() {
        let ds = nba_2016_17();
        // Whiteside leads rebounds, Westbrook points, Harden assists.
        let max = |d: usize| ds.points.iter().map(|p| p[d]).fold(f64::MIN, f64::max);
        assert!((max(0) - 1.0).abs() < 1e-12);
        assert!((max(1) - 1.0).abs() < 1e-12);
        assert!((max(2) - 1.0).abs() < 1e-12);
        let whiteside = NBA_2016_17
            .iter()
            .position(|p| p.name == "Hassan Whiteside")
            .unwrap();
        assert!((ds.points[whiteside][0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn westbrook_drummond_crossover_near_paper_boundary() {
        // The Figure 9(a) partition boundary: Westbrook leaves the
        // top-3 when Drummond overtakes him, at wr ≈ 0.72.
        let ds = nba_2016_17();
        let idx = |name: &str| NBA_2016_17.iter().position(|p| p.name == name).unwrap();
        let (w, d) = (
            &ds.points[idx("Russell Westbrook")],
            &ds.points[idx("Andre Drummond")],
        );
        // Solve wr·w0 + (1−wr)·w1 = wr·d0 + (1−wr)·d1 on (reb, pts).
        let wr = (d[1] - w[1]) / ((w[0] - w[1]) - (d[0] - d[1]));
        assert!((wr - 0.72).abs() < 0.01, "crossover at {wr}");
    }
}
