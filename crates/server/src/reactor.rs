//! The readiness-driven event loop behind [`Transport::Evented`].
//!
//! One reactor thread owns the non-blocking listener and every
//! [`Conn`] state machine, sweeping the ready set each tick: drain
//! executor completions, accept new connections (shedding over-cap
//! ones with a typed `busy` line, exactly like the threads
//! transport's connection cap), then [`Conn::step`] each connection.
//! The workspace forbids `unsafe`, so there is no `poll(2)` FFI —
//! readiness is discovered by `WouldBlock`-aware scans, and the sweep
//! parks on a condvar between ticks. The park is cut short the
//! instant a completion lands (the executor notifies the condvar), so
//! a sequential request/response round trip never waits out a full
//! tick on the compute side; the tick itself adapts to the connection
//! count (finer when few, coarser when thousands) to bound both idle
//! wakeups and per-byte latency.
//!
//! Compute never runs on the reactor thread beyond parsing: work ops
//! (`load`/`query`/`batch`/`update`) have their admission slot
//! claimed **on the reactor** — overload is shed immediately, never
//! queued — and then run on a lazily grown, bounded [`Executor`]
//! pool, which in turn drives the engines' work-stealing pools. The
//! executor hands the fully rendered response bytes back to the
//! reactor, which drains them to the socket as it becomes writable.
//! Control ops (`stats`/`metrics`/`evict`/`shutdown`) are answered
//! inline, slot-free, as on the threads transport.
//!
//! Shutdown drains: accepting stops, executing requests finish, every
//! write buffer empties, then the loop exits and the executor joins.
//!
//! [`Transport::Evented`]: crate::server::Transport::Evented

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::conn::{Conn, Step};
use crate::proto::{code, ProtoError, Request};
use crate::server::{respond_admitted, write_line, AdmitSlot, Listener, Shared, POLL};

/// An admitted work op in flight from reactor to executor. The
/// [`AdmitSlot`] travels with it, so the inflight gauge covers the
/// queue wait as well as execution, and is released on the worker.
pub(crate) struct Job {
    /// Which connection gets the response.
    pub(crate) token: u64,
    pub(crate) request: Request,
    pub(crate) slot: AdmitSlot,
    /// Clock reading when the request line was parsed (latency
    /// histograms measure from here, queue wait included).
    pub(crate) started_at: u64,
}

/// A finished job: the rendered response bytes for one connection.
pub(crate) struct Completion {
    token: u64,
    bytes: Vec<u8>,
}

struct JobQueue {
    queue: VecDeque<Job>,
    /// Workers currently parked in `jobs_cv.wait` — used to decide
    /// whether a submit needs to grow the pool.
    idle: usize,
    stop: bool,
}

struct ExecInner {
    jobs: Mutex<JobQueue>,
    jobs_cv: Condvar,
    done: Mutex<Vec<Completion>>,
    done_cv: Condvar,
}

/// The bounded, lazily grown worker pool that executes admitted work
/// ops off the reactor thread. At most `min(max_inflight, 256)`
/// threads ever exist; since every queued job already holds an
/// [`AdmitSlot`], the queue depth is bounded by `max_inflight` too —
/// admission shed everything beyond it before dispatch.
pub(crate) struct Executor {
    shared: Arc<Shared>,
    inner: Arc<ExecInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
    max_workers: usize,
}

impl Executor {
    fn new(shared: &Arc<Shared>, max_inflight: usize) -> Executor {
        Executor {
            shared: Arc::clone(shared),
            inner: Arc::new(ExecInner {
                jobs: Mutex::new(JobQueue {
                    queue: VecDeque::new(),
                    idle: 0,
                    stop: false,
                }),
                jobs_cv: Condvar::new(),
                done: Mutex::new(Vec::new()),
                done_cv: Condvar::new(),
            }),
            workers: Vec::new(),
            max_workers: max_inflight.clamp(1, 256),
        }
    }

    /// Queues an admitted job, growing the pool by one worker if none
    /// is idle (up to the bound). Called from the reactor thread
    /// only.
    pub(crate) fn submit(&mut self, job: Job) {
        let needs_worker = {
            let Ok(mut q) = self.inner.jobs.lock() else {
                return;
            };
            q.queue.push_back(job);
            q.idle == 0 && self.workers.len() < self.max_workers
        };
        self.inner.jobs_cv.notify_one();
        if needs_worker {
            let shared = Arc::clone(&self.shared);
            let inner = Arc::clone(&self.inner);
            let spawned = std::thread::Builder::new()
                .name("utk-exec".into())
                .spawn(move || worker(shared, inner));
            if let Ok(handle) = spawned {
                self.workers.push(handle);
            }
        }
    }

    /// Takes every completion the workers have produced so far.
    fn drain_completions(&self) -> Vec<Completion> {
        match self.inner.done.lock() {
            Ok(mut done) => std::mem::take(&mut *done),
            Err(_) => Vec::new(),
        }
    }

    /// Parks the reactor until a completion lands or the tick
    /// elapses, whichever is first.
    fn park(&self, tick: Duration) {
        let Ok(done) = self.inner.done.lock() else {
            return;
        };
        if done.is_empty() {
            let _ = self.inner.done_cv.wait_timeout(done, tick);
        }
    }

    /// Stops and joins every worker (the job queue is empty by the
    /// time the reactor calls this — shutdown drained all work).
    fn stop(self) {
        {
            if let Ok(mut q) = self.inner.jobs.lock() {
                q.stop = true;
            }
        }
        self.inner.jobs_cv.notify_all();
        for handle in self.workers {
            let _ = handle.join();
        }
    }
}

/// One executor worker: pop a job, render its response into a
/// buffer (the same [`respond_admitted`] path the threads transport
/// runs, so wire bytes and bookkeeping are identical), hand the bytes
/// back, wake the reactor.
fn worker(shared: Arc<Shared>, inner: Arc<ExecInner>) {
    loop {
        let job = {
            let Ok(mut q) = inner.jobs.lock() else {
                return;
            };
            loop {
                if let Some(job) = q.queue.pop_front() {
                    break job;
                }
                if q.stop {
                    return;
                }
                q.idle += 1;
                q = match inner.jobs_cv.wait(q) {
                    Ok(guard) => guard,
                    Err(_) => return,
                };
                q.idle = q.idle.saturating_sub(1);
            }
        };
        let Job {
            token,
            request,
            slot,
            started_at,
        } = job;
        let mut bytes: Vec<u8> = Vec::new();
        // Writes into a Vec<u8> cannot fail.
        let _ = respond_admitted(&request, Ok(Some(slot)), &shared, &mut bytes, started_at);
        {
            if let Ok(mut done) = inner.done.lock() {
                done.push(Completion { token, bytes });
            }
        }
        inner.done_cv.notify_all();
    }
}

/// The adaptive park interval: fine-grained when few connections (a
/// sequential client's next request is noticed within ~1 ms), coarser
/// as the ready-set scan itself gets more expensive, bounding idle
/// rescans of thousands of sockets.
fn tick_for(connections: usize) -> Duration {
    if connections <= 128 {
        Duration::from_millis(1)
    } else if connections <= 1024 {
        Duration::from_millis(5)
    } else {
        Duration::from_millis(10)
    }
}

/// Sheds an over-cap connection with a best-effort typed `busy` line
/// (the same shape and counter as the threads transport's connection
/// cap) and drops it.
fn refuse(stream: crate::server::Stream, max_connections: usize, shared: &Arc<Shared>) {
    let refusal = ProtoError {
        code: code::BUSY,
        message: format!("server is at {max_connections} connections"),
    };
    let mut stream = stream;
    let _ = stream.set_write_timeout(Some(POLL));
    let _ = write_line(&mut stream, &refusal.to_json());
    shared.busy_rejections.fetch_add(1, Ordering::SeqCst);
}

/// Runs the event loop until a `shutdown` request has been answered
/// and every connection has drained.
pub(crate) fn run(
    listener: &Listener,
    shared: &Arc<Shared>,
    max_connections: usize,
    write_timeout: Duration,
) -> std::io::Result<()> {
    let mut executor = Executor::new(shared, shared.max_inflight());
    let mut conns: BTreeMap<u64, Conn> = BTreeMap::new();
    let mut next_token: u64 = 0;
    let mut closed: Vec<u64> = Vec::new();
    loop {
        let mut progress = false;

        // 1. Hand finished responses to their connections. A missing
        // token means the connection died mid-execution; the bytes
        // are dropped (the slot was already released on the worker).
        for completion in executor.drain_completions() {
            progress = true;
            if let Some(conn) = conns.get_mut(&completion.token) {
                conn.complete(completion.bytes);
            }
        }

        // 2. Accept until the backlog is empty (unless draining).
        while !shared.shutting_down() {
            match listener.accept() {
                Ok(stream) => {
                    progress = true;
                    if conns.len() >= max_connections {
                        refuse(stream, max_connections, shared);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        // Setup failed: drop the stream. Nothing was
                        // counted yet — the connection count is the
                        // map size, so a failed setup can never leak
                        // a slot toward the cap.
                        continue;
                    }
                    conns.insert(next_token, Conn::new(stream, write_timeout));
                    next_token = next_token.wrapping_add(1);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // Transient accept failures (EMFILE under an FD
                    // burst, ECONNABORTED, …) must shed, not kill the
                    // server: overload is a condition to ride out.
                    eprintln!("utk serve: accept error (retrying): {e}");
                    break;
                }
            }
        }

        // 3. Sweep the ready set.
        closed.clear();
        for (token, conn) in conns.iter_mut() {
            match conn.step(*token, shared, &mut executor) {
                Step::Progress => progress = true,
                Step::Idle => {}
                Step::Closed => {
                    progress = true;
                    closed.push(*token);
                }
            }
        }
        for token in &closed {
            conns.remove(token);
        }

        // 4. Drained shutdown: stop once every connection is gone.
        if shared.shutting_down() && conns.is_empty() {
            break;
        }

        // 5. Park until a completion lands or the tick elapses.
        if !progress {
            executor.park(tick_for(conns.len()));
        }
    }
    executor.stop();
    Ok(())
}
