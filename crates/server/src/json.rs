//! A minimal JSON reader for the serving protocol.
//!
//! The workspace has no registry access, so rather than a `serde`
//! dependency this module implements exactly what the protocol needs:
//! parsing one request/response line into a [`Value`] tree and
//! re-serializing it. Two deliberate choices keep round-trips
//! byte-faithful for wire-format lines:
//!
//! * **numbers keep their source text** ([`Value::Num`] stores the raw
//!   literal), so re-serializing never reformats `0.30000000000000004`
//!   or a 64-bit counter;
//! * **objects keep key order** (a `Vec` of pairs, not a map), so
//!   re-serializing preserves the deterministic field order the wire
//!   format promises. Duplicate keys are rejected.
//!
//! Strings are unescaped on parse and re-escaped with
//! [`utk_core::wire::escape`] — the same escaper that produced them —
//! so any line emitted by this workspace re-serializes byte-identical
//! (the determinism tests lock this property).

use std::fmt;
use utk_core::wire::escape;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source text (see module docs).
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The value under `key`, when this is an object holding it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a `u64`, when it is a number that fits one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// This value as an `f64`, when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// This value as a bool, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value's elements, when it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(raw) => write!(f, "{raw}"),
            Value::Str(s) => write!(f, "\"{}\"", escape(s)),
            Value::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Why a line failed to parse, with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting the parser accepts. The recursive
/// descent uses one stack frame per level, and request lines come
/// from untrusted sockets — without a cap, a few hundred KB of `[`
/// characters would overflow the thread stack and abort the whole
/// process. Protocol messages nest 3 levels deep; 64 is generous.
pub const MAX_DEPTH: usize = 64;

/// Parses one JSON document, requiring it to span the whole input
/// (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after the document"));
    }
    Ok(value)
}

fn err(at: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        at,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected {:?}", c as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, JsonError> {
    if depth > MAX_DEPTH {
        return Err(err(*pos, format!("nesting deeper than {MAX_DEPTH} levels")));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: Value,
) -> Result<Value, JsonError> {
    if bytes
        .get(*pos..)
        .is_some_and(|rest| rest.starts_with(lit.as_bytes()))
    {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected {lit:?}")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    // utk-lint: allow(index, panic) -- invariant: start <= pos <= len, and the matched bytes are ASCII
    let raw = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII number slice");
    if raw.is_empty() || raw.parse::<f64>().is_err() {
        return Err(err(start, format!("invalid number {raw:?}")));
    }
    Ok(Value::Num(raw.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(err(*pos, "unterminated string"));
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(err(*pos, "unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, format!("invalid \\u escape {hex:?}")))?;
                        *pos += 4;
                        // Surrogate pairs are not produced by this
                        // workspace's escaper; reject rather than
                        // silently mangle.
                        let c = char::from_u32(code)
                            .ok_or_else(|| err(*pos, "unpaired surrogate in \\u escape"))?;
                        out.push(c);
                    }
                    other => {
                        return Err(err(*pos, format!("unknown escape \\{}", other as char)));
                    }
                }
            }
            // Multi-byte UTF-8: copy the whole character through.
            _ if b >= 0x80 => {
                // utk-lint: allow(index) -- invariant: pos was just advanced past the byte at pos-1
                let s = std::str::from_utf8(&bytes[*pos - 1..])
                    .map_err(|_| err(*pos - 1, "invalid UTF-8"))?;
                // utk-lint: allow(panic) -- invariant: from_utf8 succeeded on a non-empty slice
                let c = s.chars().next().expect("non-empty remainder");
                out.push(c);
                *pos += c.len_utf8() - 1;
            }
            _ if b < 0x20 => return Err(err(*pos - 1, "unescaped control character")),
            _ => out.push(b as char),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut pairs: Vec<(String, Value)> = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key_at = *pos;
        let key = parse_string(bytes, pos)?;
        if pairs.iter().any(|(k, _)| *k == key) {
            return Err(err(key_at, format!("duplicate key {key:?}")));
        }
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_reserializes_wire_shaped_lines() {
        for line in [
            r#"{"query":"utk1","k":2,"records":[{"id":0,"name":"p1"}],"stats":{"candidates":4}}"#,
            r#"{"error":"line 4: unknown query kind \"frobnicate\""}"#,
            r#"{"ok":"stats","requests_served":18446744073709551615,"datasets":[]}"#,
            r#"{"weights":[0.1,0.30000000000000004,-1e-9],"flag":true,"none":null}"#,
            "[1,2.5,\"a\\tb\"]",
        ] {
            let value = parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(value.to_string(), line, "round trip must be byte-exact");
        }
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = parse(r#"{"op":"batch","queries":["a","b"],"n":7,"deep":{"x":true}}"#).unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("batch"));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(7));
        assert_eq!(
            v.get("queries").and_then(Value::as_array).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(
            v.get("deep")
                .and_then(|d| d.get("x"))
                .and_then(Value::as_bool),
            Some(true)
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            r#"{"a":}"#,
            r#"{"a":1,"a":2}"#,
            r#"{"a":1} trailing"#,
            "[1,]",
            "nul",
            "\"unterminated",
            "\"bad \\q escape\"",
            "01a",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn nesting_is_capped_not_stack_overflowed() {
        // Within the cap: fine.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        // Past the cap: a parse error, never a recursion blowup —
        // even at a depth that would overflow the stack.
        let deep = format!("{}1{}", "[".repeat(200_000), "]".repeat(200_000));
        let e = parse(&deep).unwrap_err();
        assert!(e.message.contains("nesting"), "{e}");
        let mixed = format!("{}{}", "{\"a\":[".repeat(100), "1");
        assert!(parse(&mixed).is_err());
    }

    #[test]
    fn unicode_strings_survive() {
        let v = parse("\"héllo → wörld\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → wörld"));
        assert_eq!(parse("\"\\u0041\\n\"").unwrap().as_str(), Some("A\n"));
    }
}
