//! The textual query-line syntax shared by `utk batch` files, the
//! `utk` command line, and the serving protocol's `query`/`batch`
//! ops — one parser, so a query means the same thing everywhere and
//! server output stays **byte-identical** to `utk batch`.
//!
//! ```text
//! utk1 --k <n> <REGION> [--algo <a>] [--lp <p>] [--parallel]
//! utk2 --k <n> <REGION> [--algo <a>] [--lp <p>] [--parallel]
//! topk --k <n> --weights w1,..,wd [--lp <p>]
//! REGION := --lo a,b,.. --hi a,b,..  |  --center a,b,.. --width w
//! ```
//!
//! This module moved out of `src/bin/utk.rs` (which now calls it) so
//! the server crate can parse the same lines without shelling out.
//! Error message wording is part of the wire contract — `utk batch`
//! tests assert on it — so change it deliberately.

use std::sync::Arc;

use utk_core::engine::{Algo, QueryKind, QueryResult, UtkEngine, UtkQuery};
use utk_core::error::UtkError;
use utk_core::obs::{Clock, Phase, PhaseTimings};
use utk_core::scoring::GeneralScoring;
use utk_core::wire;
use utk_data::csv::CsvData;
use utk_geom::{Constraint, Region};

/// Flags that take no value.
pub const BOOL_FLAGS: &[&str] = &["json", "parallel"];
/// Flags that consume the next token as their value (the full CLI
/// vocabulary; each command allows a subset).
pub const VALUE_FLAGS: &[&str] = &[
    "data",
    "k",
    "lo",
    "hi",
    "center",
    "width",
    "weights",
    "lp",
    "algo",
    "threads",
    "dist",
    "n",
    "d",
    "seed",
    "file",
    "cache-budget",
    "datasets",
    "socket",
    "port",
    "transport",
    "max-connections",
    "max-inflight",
    "dataset",
    "op",
    "mutations",
    "insert",
    "delete",
    "labels",
    "wal",
    "wal-dir",
    "wal-compact-every",
    "slow-query-ms",
    "slow-query-log",
    "slow-query-log-max-bytes",
    "format",
    "bench-dir",
    "out",
];

/// The flags one query line of a `batch` file (or a server
/// `query`/`batch` op) may carry — per-query settings only: data,
/// output mode and pool size are batch-level.
pub fn query_line_flags(command: &str) -> Option<&'static [&'static str]> {
    match command {
        "utk1" | "utk2" => Some(&["k", "lo", "hi", "center", "width", "lp", "algo", "parallel"]),
        "topk" => Some(&["k", "weights", "lp"]),
        _ => None,
    }
}

/// A parsed token stream: the command plus its `--flag value` pairs.
#[derive(Debug, Clone)]
pub struct ParsedArgs {
    flags: Vec<(String, String)>,
    /// The leading command token.
    pub command: String,
}

impl ParsedArgs {
    /// Parses one token stream against an allow-list (shared by the
    /// command line proper and each line of a `batch` file),
    /// reporting exactly which token was malformed.
    pub fn from_tokens(
        command: String,
        allowed: &[&str],
        mut it: impl Iterator<Item = String>,
    ) -> Result<ParsedArgs, String> {
        let mut flags = Vec::new();
        while let Some(f) = it.next() {
            let Some(key) = f.strip_prefix("--") else {
                return Err(format!(
                    "expected a --flag, found {f:?} (values belong directly after their flag)"
                ));
            };
            if !BOOL_FLAGS.contains(&key) && !VALUE_FLAGS.contains(&key) {
                return Err(format!("unknown flag --{key}"));
            }
            if !allowed.contains(&key) {
                return Err(format!("flag --{key} does not apply to `{command}`"));
            }
            if BOOL_FLAGS.contains(&key) {
                flags.push((key.to_string(), "true".to_string()));
                continue;
            }
            let Some(val) = it.next() else {
                return Err(format!("flag --{key} is missing its value"));
            };
            flags.push((key.to_string(), val));
        }
        Ok(ParsedArgs { flags, command })
    }

    /// The value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Whether `--key` was passed.
    pub fn has(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// The comma-separated float list of `--key`, if present.
    pub fn floats(&self, key: &str) -> Result<Option<Vec<f64>>, String> {
        let Some(raw) = self.get(key) else {
            return Ok(None);
        };
        raw.split(',')
            .map(|v| {
                v.trim()
                    .parse()
                    .map_err(|_| format!("--{key}: {v:?} is not a number"))
            })
            .collect::<Result<Vec<f64>, String>>()
            .map(Some)
    }
}

/// Builds the box region, reporting malformed bounds as errors —
/// `Region::hyperrect` would panic on them.
fn checked_box(lo: Vec<f64>, hi: Vec<f64>) -> Result<Region, String> {
    if lo.iter().chain(&hi).any(|v| !v.is_finite()) {
        return Err("region bounds must be finite numbers".into());
    }
    if let Some((i, (l, h))) = lo.iter().zip(&hi).enumerate().find(|(_, (l, h))| l > h) {
        return Err(format!(
            "inverted region bounds in coordinate {}: lo {l} > hi {h}",
            i + 1,
        ));
    }
    Ok(Region::hyperrect(lo, hi))
}

/// The region described by `--lo/--hi` or `--center/--width`, in a
/// `dp = d − 1`-dimensional preference domain.
pub fn region_from(args: &ParsedArgs, dp: usize) -> Result<Region, String> {
    if let (Some(lo), Some(hi)) = (args.floats("lo")?, args.floats("hi")?) {
        if lo.len() != dp || hi.len() != dp {
            return Err(format!("region needs {dp} coordinates (d − 1)"));
        }
        return checked_box(lo, hi);
    }
    if let (Some(center), Some(width)) = (args.floats("center")?, args.get("width")) {
        if center.len() != dp {
            return Err(format!("--center needs {dp} coordinates (d − 1)"));
        }
        let w: f64 = width.parse().map_err(|_| "--width must be a number")?;
        if !w.is_finite() || w < 0.0 {
            return Err("--width must be non-negative".into());
        }
        let lo: Vec<f64> = center.iter().map(|c| (c - w / 2.0).max(0.0)).collect();
        let hi: Vec<f64> = center.iter().map(|c| (c + w / 2.0).min(1.0)).collect();
        let outside = hi.iter().sum::<f64>() > 1.0;
        let boxed = checked_box(lo, hi)?;
        // Clip to the simplex when the box pokes out.
        if outside {
            return Ok(boxed.with_constraint(Constraint::le(vec![1.0; dp], 1.0)));
        }
        return Ok(boxed);
    }
    Err("specify a region: --lo/--hi or --center/--width".into())
}

/// The `--k` value.
pub fn parse_k(args: &ParsedArgs) -> Result<usize, String> {
    args.get("k")
        .ok_or("missing --k")?
        .parse()
        .map_err(|_| "--k must be an integer".into())
}

/// The `--lp <p>` generalized scoring, if requested.
pub fn scoring_from(args: &ParsedArgs, d: usize) -> Result<Option<GeneralScoring>, String> {
    match args.get("lp") {
        None => Ok(None),
        Some(p) => {
            let p: f64 = p.parse().map_err(|_| "--lp must be a number")?;
            if p <= 0.0 {
                return Err("--lp must be positive".into());
            }
            Ok(Some(GeneralScoring::weighted_lp(p, d)))
        }
    }
}

/// The `--algo` selection (default [`Algo::Auto`]).
pub fn algo_from(args: &ParsedArgs) -> Result<Algo, String> {
    match args.get("algo") {
        None => Ok(Algo::Auto),
        Some(a) => a.parse::<Algo>(),
    }
}

/// One prepared query, plus the metadata its wire-format output
/// needs.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// The engine query.
    pub query: UtkQuery,
    /// Which kind it is.
    pub kind: QueryKind,
    /// The rank bound.
    pub k: usize,
    /// The requested algorithm (possibly `Auto`).
    pub algo: Algo,
    /// Top-k weights (empty for UTK queries).
    pub weights: Vec<f64>,
}

/// Builds a UTK1/UTK2 query from parsed flags.
pub fn build_utk_query(args: &ParsedArgs, kind: QueryKind, d: usize) -> Result<Prepared, String> {
    let k = parse_k(args)?;
    let algo = algo_from(args)?;
    let region = region_from(args, d - 1)?;
    let mut query = match kind {
        QueryKind::Utk1 => UtkQuery::utk1(k),
        QueryKind::Utk2 => UtkQuery::utk2(k),
        QueryKind::TopK => unreachable!("build_utk_query only handles UTK queries"),
    };
    query = query.region(region).algorithm(algo);
    if let Some(s) = scoring_from(args, d)? {
        query = query.scoring(s);
    }
    // --threads implies parallelism; requiring --parallel as well
    // would silently drop the thread count.
    if args.has("parallel") || args.has("threads") {
        query = query.parallel(true);
    }
    Ok(Prepared {
        query,
        kind,
        k,
        algo,
        weights: Vec::new(),
    })
}

/// Builds a plain top-k query from parsed flags.
pub fn build_topk_query(args: &ParsedArgs, d: usize) -> Result<Prepared, String> {
    let k = parse_k(args)?;
    let w = args.floats("weights")?.ok_or("missing --weights")?;
    if w.len() != d && w.len() != d - 1 {
        return Err(format!("--weights needs {d} (or {}) values", d - 1));
    }
    let mut query = UtkQuery::topk(k).weights(w.clone());
    if let Some(s) = scoring_from(args, d)? {
        query = query.scoring(s);
    }
    Ok(Prepared {
        query,
        kind: QueryKind::TopK,
        k,
        algo: Algo::Auto,
        weights: w,
    })
}

/// Parses one query line (no line-number prefix on errors).
pub fn parse_query_line(line: &str, d: usize) -> Result<Prepared, String> {
    let mut tokens = line.split_whitespace().map(str::to_string);
    let Some(command) = tokens.next() else {
        return Err("empty query line".into());
    };
    let Some(allowed) = query_line_flags(&command) else {
        return Err(format!("unknown query kind {command:?}"));
    };
    let line_args = ParsedArgs::from_tokens(command.clone(), allowed, tokens)?;
    match command.as_str() {
        "utk1" => build_utk_query(&line_args, QueryKind::Utk1, d),
        "utk2" => build_utk_query(&line_args, QueryKind::Utk2, d),
        "topk" => build_topk_query(&line_args, d),
        _ => unreachable!("query_line_flags vetted the command"),
    }
}

/// A parsed query file: one entry per non-blank, non-comment line,
/// parse failures keeping their slot with a `line N:`-prefixed
/// message (1-based over the *raw* file, comments included — exactly
/// `utk batch` numbering).
#[derive(Debug, Clone)]
pub struct ParsedQueryFile {
    /// Per-line outcomes, in file order.
    pub entries: Vec<Result<Prepared, String>>,
}

/// Parses a whole query file for a `d`-dimensional dataset.
pub fn parse_query_file(text: &str, d: usize) -> ParsedQueryFile {
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        entries.push(parse_query_line(line, d).map_err(|e| format!("line {}: {e}", lineno + 1)));
    }
    ParsedQueryFile { entries }
}

/// Answers a parsed query file through [`UtkEngine::run_many`]: one
/// wire-format JSON line per entry, in input order. A malformed or
/// failing line yields an `{"error":…}` object without aborting its
/// siblings. This is the single implementation behind `utk batch`
/// and the server's `batch` op — their outputs are byte-identical by
/// construction.
pub fn answer_query_file(
    engine: &UtkEngine,
    data: &CsvData,
    parsed: &ParsedQueryFile,
) -> Vec<String> {
    answer_query_file_observed(engine, data, parsed).0
}

/// [`answer_query_file`], additionally returning the file's aggregate
/// per-phase timing breakdown: the traced engine phases summed across
/// every answered query, plus the serialization of the output lines
/// (measured on the engine's injected clock, attributed to
/// [`Phase::Serialize`]). The lines are byte-identical to
/// [`answer_query_file`] — timings ride *alongside* the output and
/// never inside it (the wire-format determinism contract).
pub fn answer_query_file_observed(
    engine: &UtkEngine,
    data: &CsvData,
    parsed: &ParsedQueryFile,
) -> (Vec<String>, PhaseTimings) {
    let queries: Vec<UtkQuery> = parsed
        .entries
        .iter()
        .filter_map(|p| p.as_ref().ok())
        .map(|p| p.query.clone())
        .collect();
    let mut answers = engine.run_many(&queries).into_iter();
    let clock = engine.clock();
    let mut timings = PhaseTimings::default();

    let serialize_from = clock.now_nanos();
    let mut out = Vec::with_capacity(parsed.entries.len());
    for entry in &parsed.entries {
        match entry {
            Err(e) => out.push(wire::error_json(e)),
            Ok(p) => {
                // utk-lint: allow(panic) -- invariant: run_batch returns one answer per Ok entry
                let answer = answers.next().expect("one answer per prepared query");
                if let Ok(result) = &answer {
                    timings.absorb(&result.stats().timings);
                }
                out.push(wire_line(p, answer, data));
            }
        }
    }
    let serialized = clock.now_nanos().saturating_sub(serialize_from);
    timings.record(Phase::Serialize, serialized);
    timings.total_nanos = timings.total_nanos.saturating_add(serialized);
    (out, timings)
}

/// Serializes one answered query as its wire line: the result object
/// (reporting the algorithm that actually answered, not the "auto"
/// request) or a plain `{"error":…}` object.
pub fn wire_line(
    prepared: &Prepared,
    answer: Result<QueryResult, UtkError>,
    data: &CsvData,
) -> String {
    match answer {
        Err(e) => wire::error_json(&e.to_string()),
        Ok(result) => wire::result_json(
            &result,
            prepared.k,
            prepared.algo.resolved_for(prepared.kind),
            data.dataset.len(),
            data.dataset.dim(),
            &prepared.weights,
            &|id| data.name(id),
        ),
    }
}

/// Answers one query line (the server's `query` op shape): the wire
/// result line, or a plain `{"error":…}` line — what a one-line batch
/// would produce, minus the `line N:` prefix and batch-group marker.
/// `run` decides *where* the query executes (inline, or on a worker
/// pool — the server passes a pool dispatcher); parsing and
/// serialization stay identical either way.
pub fn answer_query_line_with(
    data: &CsvData,
    line: &str,
    run: impl FnOnce(&UtkQuery) -> Result<QueryResult, UtkError>,
) -> String {
    let prepared = match parse_query_line(line, data.dataset.dim()) {
        Ok(p) => p,
        Err(e) => return wire::error_json(&e),
    };
    let answer = run(&prepared.query);
    wire_line(&prepared, answer, data)
}

/// [`answer_query_line_with`], executing inline on `engine`.
pub fn answer_query_line(engine: &UtkEngine, data: &CsvData, line: &str) -> String {
    answer_query_line_with(data, line, |query| engine.run(query))
}

/// [`answer_query_line_with`], additionally returning the query's
/// timing breakdown: the traced engine phases from the run, plus the
/// serialization of the result line (measured on `clock`, attributed
/// to [`Phase::Serialize`]). `None` when the line failed to parse or
/// the engine erred — there is nothing meaningful to time. The
/// rendered line is byte-identical to [`answer_query_line_with`].
pub fn answer_query_line_observed(
    data: &CsvData,
    line: &str,
    clock: &Arc<dyn Clock>,
    run: impl FnOnce(&UtkQuery) -> Result<QueryResult, UtkError>,
) -> (String, Option<PhaseTimings>) {
    let prepared = match parse_query_line(line, data.dataset.dim()) {
        Ok(p) => p,
        Err(e) => return (wire::error_json(&e), None),
    };
    let answer = run(&prepared.query);
    let mut timings = answer.as_ref().ok().map(|r| r.stats().timings);
    let serialize_from = clock.now_nanos();
    let rendered = wire_line(&prepared, answer, data);
    let serialized = clock.now_nanos().saturating_sub(serialize_from);
    if let Some(t) = &mut timings {
        t.record(Phase::Serialize, serialized);
        t.total_nanos = t.total_nanos.saturating_add(serialized);
    }
    (rendered, timings)
}

/// One step of a `utk batch --mutations` replay file.
#[derive(Debug, Clone, PartialEq)]
pub enum MutationStep {
    /// Apply one dataset mutation (one engine epoch).
    Update {
        /// Ids to delete (against the dataset as of this step).
        deletes: Vec<u32>,
        /// Rows to append.
        inserts: Vec<Vec<f64>>,
        /// Labels for the appended rows, when the rows carried a
        /// leading label field (CSV dialect).
        labels: Option<Vec<String>>,
    },
    /// Run the whole query file at this point of the replay.
    Run,
}

/// Parses a mutation replay file:
///
/// ```text
/// # comments and blank lines are skipped
/// insert 0.4,0.6,0.2 ; 0.1,0.9,0.3     rows split on ';', CSV fields;
/// insert p8,0.4,0.6,0.2                a non-numeric first field is a label
/// delete 3,5                           ids against the dataset *at this step*
/// run                                  answer the whole query file now
/// ```
///
/// Steps apply in file order. A file with no `run` line gets one
/// appended, so "mutate first, then run the batch" is the default
/// shape and interleavings are opt-in. Errors carry 1-based line
/// numbers over the raw file, like query-file errors.
pub fn parse_mutation_file(text: &str) -> Result<Vec<MutationStep>, String> {
    let mut steps = Vec::new();
    let mut saw_run = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let at = |msg: String| format!("line {}: {msg}", lineno + 1);
        let (op, rest) = match line.split_once(char::is_whitespace) {
            Some((op, rest)) => (op, rest.trim()),
            None => (line, ""),
        };
        match op {
            "run" => {
                if !rest.is_empty() {
                    return Err(at(format!("run takes no arguments, found {rest:?}")));
                }
                saw_run = true;
                steps.push(MutationStep::Run);
            }
            "delete" => {
                if rest.is_empty() {
                    return Err(at("delete needs record ids".into()));
                }
                let deletes = rest
                    .split(',')
                    .map(|v| {
                        v.trim()
                            .parse::<u32>()
                            .map_err(|_| at(format!("{:?} is not a record id", v.trim())))
                    })
                    .collect::<Result<Vec<u32>, String>>()?;
                steps.push(MutationStep::Update {
                    deletes,
                    inserts: Vec::new(),
                    labels: None,
                });
            }
            "insert" => {
                if rest.is_empty() {
                    return Err(at("insert needs at least one row".into()));
                }
                let mut inserts = Vec::new();
                let mut labels: Vec<String> = Vec::new();
                let mut labeled: Option<bool> = None;
                for row in rest.split(';') {
                    let fields: Vec<&str> = row.split(',').map(str::trim).collect();
                    let has_label = fields.first().is_some_and(|f| f.parse::<f64>().is_err());
                    match labeled {
                        None => labeled = Some(has_label),
                        Some(l) if l != has_label => {
                            return Err(at(
                                "all rows of one insert must agree on having a label".into()
                            ))
                        }
                        _ => {}
                    }
                    let start = usize::from(has_label);
                    if has_label {
                        // utk-lint: allow(index) -- invariant: has_label proved fields is non-empty
                        labels.push(fields[0].to_string());
                    }
                    if fields.len() <= start {
                        return Err(at("insert row has no values".into()));
                    }
                    let mut p = Vec::with_capacity(fields.len() - start);
                    // utk-lint: allow(index) -- invariant: start <= fields.len() checked just above
                    for f in &fields[start..] {
                        p.push(
                            f.parse::<f64>()
                                .map_err(|_| at(format!("not a number: {f:?}")))?,
                        );
                    }
                    inserts.push(p);
                }
                steps.push(MutationStep::Update {
                    deletes: Vec::new(),
                    inserts,
                    labels: (labeled == Some(true)).then_some(labels),
                });
            }
            other => {
                return Err(at(format!(
                    "unknown mutation op {other:?} (expected insert, delete or run)"
                )))
            }
        }
    }
    if !saw_run {
        steps.push(MutationStep::Run);
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use utk_data::csv::parse_csv;

    const HOTELS: &str = "\
hotel,service,cleanliness,location
p1,8.3,9.1,7.2
p2,2.4,9.6,8.6
p3,5.4,1.6,4.1
p4,2.6,6.9,9.4
p5,7.3,3.1,2.4
p6,7.9,6.4,6.6
p7,8.6,7.1,4.3
";

    #[test]
    fn query_file_keeps_slots_and_numbering() {
        let text = "# header\nutk1 --k 2 --lo 0.05,0.05 --hi 0.45,0.25\n\nfrobnicate --k 2\n";
        let parsed = parse_query_file(text, 3);
        assert_eq!(parsed.entries.len(), 2);
        assert!(parsed.entries[0].is_ok());
        let err = parsed.entries[1].as_ref().unwrap_err();
        assert!(err.starts_with("line 4:"), "{err}");
    }

    #[test]
    fn answer_query_file_matches_run_many_semantics() {
        let data = parse_csv(HOTELS, "hotels").unwrap();
        let engine = UtkEngine::new(data.dataset.points.clone()).unwrap();
        let parsed = parse_query_file(
            "utk1 --k 2 --lo 0.05,0.05 --hi 0.45,0.25\nutk1 --k 0 --lo 0.1,0.1 --hi 0.2,0.2\n",
            3,
        );
        let lines = answer_query_file(&engine, &data, &parsed);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""query":"utk1""#), "{}", lines[0]);
        for p in ["p1", "p2", "p4", "p6"] {
            assert!(lines[0].contains(p), "{}", lines[0]);
        }
        assert!(lines[1].contains(r#"{"error":""#), "{}", lines[1]);
        assert!(lines[1].contains("positive"), "{}", lines[1]);
    }

    #[test]
    fn mutation_files_parse_with_line_numbers() {
        let text = "\
# replay
insert 0.5,0.5,0.5 ; 1,2,3
delete 0,2
run
insert p9,1,2,3
";
        let steps = parse_mutation_file(text).unwrap();
        assert_eq!(steps.len(), 4, "explicit run suppresses the implicit one");
        assert_eq!(
            steps[0],
            MutationStep::Update {
                deletes: vec![],
                inserts: vec![vec![0.5, 0.5, 0.5], vec![1.0, 2.0, 3.0]],
                labels: None,
            }
        );
        assert_eq!(
            steps[1],
            MutationStep::Update {
                deletes: vec![0, 2],
                inserts: vec![],
                labels: None,
            }
        );
        assert_eq!(steps[2], MutationStep::Run);
        assert_eq!(
            steps[3],
            MutationStep::Update {
                deletes: vec![],
                inserts: vec![vec![1.0, 2.0, 3.0]],
                labels: Some(vec!["p9".into()]),
            }
        );
        // A file with no `run` gets exactly one appended.
        let steps = parse_mutation_file("delete 1\n").unwrap();
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[1], MutationStep::Run);

        for (bad, frag) in [
            ("frobnicate 1\n", "unknown mutation op"),
            ("delete\n", "needs record ids"),
            ("delete x\n", "not a record id"),
            ("insert\n", "needs at least one row"),
            ("insert 1,2 ; p,3,4\n", "agree on having a label"),
            ("\n\ninsert 1,x\n", "line 3"),
            ("run now\n", "no arguments"),
        ] {
            let err = parse_mutation_file(bad).unwrap_err();
            assert!(err.contains(frag), "{bad:?}: {err}");
        }
    }

    #[test]
    fn single_line_answers_have_no_batch_marker() {
        let data = parse_csv(HOTELS, "hotels").unwrap();
        let engine = UtkEngine::new(data.dataset.points.clone()).unwrap();
        let line = answer_query_line(&engine, &data, "utk1 --k 2 --lo 0.05,0.05 --hi 0.45,0.25");
        assert!(line.contains(r#""batch_group_count":0"#), "{line}");
        let err = answer_query_line(&engine, &data, "utk1 --k 2");
        assert!(err.contains("region"), "{err}");
    }
}
