//! `utk-server` — the multi-dataset serving subsystem: a long-running
//! process holding one [`UtkEngine`](utk_core::engine::UtkEngine) per
//! dataset behind a TCP or Unix socket, speaking a newline-delimited
//! JSON protocol that reuses the `utk::wire` result format.
//!
//! The pieces, bottom-up:
//!
//! * [`json`] — a minimal, byte-round-trip-faithful JSON reader (the
//!   workspace vendors no `serde`);
//! * [`proto`] — the typed request/response protocol
//!   (`load` / `query` / `batch` / `update` / `stats` / `metrics` /
//!   `evict` / `shutdown`) with its grammar documented on the module;
//! * [`spec`] — the `utk batch` query-line syntax, moved here from
//!   the CLI so both parse identically and server `batch` output is
//!   **byte-identical** to `utk batch`;
//! * [`registry`] — lazily loaded engines under one shared
//!   filter-cache byte budget, dealt proportionally to dataset size
//!   and re-dealt on load/evict and on every `update` (mutations
//!   change dataset sizes); `update` mutates the resident engine and
//!   its CSV payload in memory only — evict-then-reload reverts to
//!   disk;
//! * [`server`] — the serving front end behind two interchangeable
//!   transports (`server::Transport`): the default readiness-driven
//!   **evented** reactor (one event-loop thread, non-blocking
//!   sockets, per-connection state machines, admitted work on a
//!   bounded executor pool) and the legacy thread-per-connection
//!   loop, kept as a differential oracle. Both share the query path
//!   on the engines' work-stealing pools, bounded in-flight
//!   **admission control** (overload is shed with a typed `busy`
//!   error, never queued unboundedly), and graceful drain on
//!   shutdown; `batch` output is byte-identical across them;
//! * [`client`] — the blocking protocol client behind `utk client`.
//!
//! ```no_run
//! use utk_server::server::{Bind, Server, ServerConfig};
//!
//! let config = ServerConfig::new(Bind::Tcp(0), "datasets/".into());
//! let server = Server::bind(config)?;
//! println!("listening on {}", server.bind_addr());
//! let final_stats = server.run()?; // blocks until a shutdown request
//! println!("served {} requests", final_stats.requests_served);
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
// The 2026 unsafe audit found zero unsafe blocks workspace-wide;
// keep it that way. Any future unsafe must demote this to deny,
// carry a `// SAFETY:` comment (utk-lint enforces it), and say why
// no safe formulation works.
#![forbid(unsafe_code)]

pub mod client;
pub(crate) mod conn;
pub mod json;
pub mod proto;
pub(crate) mod reactor;
pub mod registry;
pub mod server;
pub mod spec;

pub use client::{BatchReply, Connection};
pub use proto::{MetricsFormat, ProtoError, Request, Response, StatsBody, WalDatasetStats};
pub use registry::{DatasetRegistry, LoadedDataset};
pub use server::{Bind, ServeSnapshot, Server, ServerConfig, ServerHandle, Transport};
