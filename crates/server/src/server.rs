//! The serving loop: accept connections on a TCP or Unix socket,
//! answer newline-delimited JSON requests ([`crate::proto`]), shed
//! overload, drain cleanly on shutdown.
//!
//! Deliberately std-only, matching the workspace's offline-shim
//! policy. Two transports share every layer above the sockets — the
//! protocol, the [`DatasetRegistry`], admission control, and the wire
//! bytes are transport-independent, with the [`Listener`]/[`Stream`]
//! enums as the seam:
//!
//! * [`Transport::Evented`] (the default) — a readiness-driven event
//!   loop ([`crate::reactor`]): one reactor thread drives every
//!   connection as a non-blocking state machine
//!   ([`crate::conn::Conn`]), and admitted requests execute on a
//!   small executor pool, so the open-connection count is bounded by
//!   [`ServerConfig::max_connections`] (default 4096), not by OS
//!   threads.
//! * [`Transport::Threads`] — the original thread-per-connection
//!   loop, kept as a differential oracle for one release: the accept
//!   loop polls a non-blocking listener, connection reads run under a
//!   short timeout so every thread notices the shutdown flag, and
//!   each connection gets one OS thread for its I/O.
//!
//! Under both transports the *query work* is not tied to transport
//! threads — `batch` ops run through [`UtkEngine::run_many`] and
//! `query` ops are spawned onto the engine's persistent work-stealing
//! pool, so compute parallelism is governed by the per-engine pool
//! size, not by the connection count.
//!
//! # Admission control
//!
//! `query`, `batch` and `load` requests (the ops that do real work —
//! a first load is a CSV parse + R-tree build) are admitted against a
//! bounded in-flight counter; past `max_inflight` the server responds
//! `{"error":…,"code":"busy"}` **immediately** instead of queueing —
//! under overload clients get a fast typed signal to back off, and
//! the work the server takes on stays bounded. Cheap control ops
//! (`stats`, `evict`, `shutdown`) are always admitted. Per-connection
//! resources are bounded separately: at most [`MAX_CONNECTIONS`]
//! connections are open at once (excess ones are refused with a
//! `busy` line), request lines are capped at [`MAX_REQUEST_BYTES`],
//! and responses stream line-by-line.
//!
//! # Shutdown
//!
//! A `shutdown` request flips a flag. The accept loop stops
//! accepting; each connection thread finishes the request it is
//! executing (in-flight queries drain, never abort), notices the flag
//! at its next poll tick, and exits; [`Server::run`] joins every
//! connection thread, removes a Unix socket file, and returns the
//! final counters.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::proto::{
    code, MetricsFormat, ProtoError, Request, Response, StatsBody, WalDatasetStats,
};
use crate::registry::{DatasetRegistry, LoadedDataset};
use crate::spec;
use utk_core::engine::{QueryResult, UtkEngine, UtkQuery};
use utk_core::error::UtkError;
use utk_core::obs::{Clock, MetricsRegistry, MonotonicClock, Phase, PhaseTimings};
use utk_core::wire::escape;

/// How long a blocked connection read waits before re-checking the
/// shutdown flag.
pub(crate) const POLL: Duration = Duration::from_millis(25);

/// Hard cap on one request line's bytes. Admission control bounds
/// concurrent *compute*; this bounds per-connection *memory* — a
/// client streaming an endless unterminated line (or an enormous
/// `batch` array) is disconnected at the cap instead of growing the
/// read buffer without bound. Generous enough for six-figure batch
/// files.
pub const MAX_REQUEST_BYTES: usize = 32 << 20;

/// Default bound on zero-progress response writing. A client that
/// requests a large batch and then stops *reading* would otherwise
/// park the response writer forever — and graceful shutdown waits for
/// in-flight responses, so one stuck writer would wedge the whole
/// drain. Thirty seconds with not a single byte accepted means the
/// peer is gone; the socket is shut down (so the peer sees a clean
/// EOF mid-line, never a torn prefix passing as a complete response)
/// and the connection dropped. Partial writes inside the window are
/// *progress* and always resume — a slow-but-alive reader gets its
/// whole response (see [`PatientWriter`]).
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Default connection cap for [`Transport::Threads`]. Each connection
/// costs one OS thread and up to [`MAX_REQUEST_BYTES`] of read
/// buffer, so without a cap a connection flood (which never trips
/// admission control — that gates *requests*) could exhaust threads
/// and memory. Excess connections get a best-effort `busy` error line
/// and are closed immediately.
pub const MAX_CONNECTIONS: usize = 256;

/// Default connection cap for [`Transport::Evented`]. Connections
/// there cost buffers, not threads, so the ceiling is set by memory
/// and file descriptors rather than the scheduler.
pub const MAX_EVENTED_CONNECTIONS: usize = 4096;

/// Which serving front end [`Server::run`] drives. Everything above
/// the sockets is shared; `batch` output is byte-identical across
/// transports (CI diffs them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Readiness-driven event loop (the default): one reactor thread,
    /// non-blocking sockets, per-connection state machines, admitted
    /// work on a bounded executor pool.
    #[default]
    Evented,
    /// One OS thread per connection — the pre-reactor transport, kept
    /// as a differential oracle for one release.
    Threads,
}

impl Transport {
    /// The wire spelling used by `--transport`.
    pub fn label(self) -> &'static str {
        match self {
            Transport::Evented => "evented",
            Transport::Threads => "threads",
        }
    }

    /// Parses the `--transport` flag value.
    pub fn from_label(label: &str) -> Option<Transport> {
        match label {
            "evented" => Some(Transport::Evented),
            "threads" => Some(Transport::Threads),
            _ => None,
        }
    }

    /// The transport's default connection cap (used when
    /// [`ServerConfig::max_connections`] is 0).
    pub fn default_max_connections(self) -> usize {
        match self {
            Transport::Evented => MAX_EVENTED_CONNECTIONS,
            Transport::Threads => MAX_CONNECTIONS,
        }
    }
}

/// Where the server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bind {
    /// A Unix-domain socket at this path.
    #[cfg(unix)]
    Unix(PathBuf),
    /// TCP on 127.0.0.1 at this port (0 = ephemeral; the resolved
    /// port is reported by [`Server::bind_addr`]).
    Tcp(u16),
}

impl std::fmt::Display for Bind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            #[cfg(unix)]
            Bind::Unix(path) => write!(f, "unix:{}", path.display()),
            Bind::Tcp(port) => write!(f, "tcp:127.0.0.1:{port}"),
        }
    }
}

pub(crate) enum Listener {
    #[cfg(unix)]
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    pub(crate) fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(on),
            Listener::Tcp(l) => l.set_nonblocking(on),
        }
    }

    pub(crate) fn accept(&self) -> std::io::Result<Stream> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

/// One accepted connection, either flavor.
pub(crate) enum Stream {
    #[cfg(unix)]
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    pub(crate) fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    pub(crate) fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(dur),
            Stream::Tcp(s) => s.set_read_timeout(dur),
        }
    }

    pub(crate) fn set_write_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.set_write_timeout(dur),
            Stream::Tcp(s) => s.set_write_timeout(dur),
        }
    }

    pub(crate) fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.set_nonblocking(on),
            Stream::Tcp(s) => s.set_nonblocking(on),
        }
    }

    /// Best-effort full shutdown: the peer sees EOF on its next read,
    /// so an abandoned response is a detectably torn line (no
    /// terminating newline), never a prefix that parses as complete.
    pub(crate) fn shutdown(&self) {
        let _ = match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

pub(crate) fn connect(bind: &Bind) -> std::io::Result<Stream> {
    match bind {
        #[cfg(unix)]
        Bind::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
        Bind::Tcp(port) => TcpStream::connect(("127.0.0.1", *port)).map(Stream::Tcp),
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen.
    pub bind: Bind,
    /// Directory of `<name>.csv` datasets.
    pub datasets_dir: PathBuf,
    /// Admission limit on concurrently executing query/batch/load
    /// requests.
    pub max_inflight: usize,
    /// Total filter-cache bytes shared across resident engines.
    pub cache_budget: usize,
    /// Worker-pool size per engine (0 = one worker per core).
    pub pool_threads: usize,
    /// Per-dataset write-ahead logs live here when set (crash-safe
    /// updates); `None` serves memory-only.
    pub wal_dir: Option<PathBuf>,
    /// Compact a dataset's log into a snapshot once it exceeds this
    /// many records (in addition to the index-rebuild trigger);
    /// `None` compacts on rebuilds only. No effect without `wal_dir`.
    pub wal_compact_every: Option<u64>,
    /// The clock behind every timing the server takes: request
    /// latencies, query phase tracing, slow-query thresholds. The
    /// default [`MonotonicClock`] reads real time; tests inject a
    /// frozen [`utk_core::obs::TestClock`] so the `metrics`
    /// exposition is byte-stable.
    pub clock: Arc<dyn Clock>,
    /// Log queries whose traced total reaches this many milliseconds
    /// as structured JSON lines (0 logs every query); `None` disables
    /// the slow-query log.
    pub slow_query_ms: Option<u64>,
    /// Where slow-query records go. `None` writes them to stderr;
    /// with a path they go to a size-rotated file (see
    /// [`ServerConfig::slow_query_log_max_bytes`]).
    pub slow_query_log: Option<PathBuf>,
    /// Rotate the slow-query log file once it would exceed this many
    /// bytes (the current file moves to `<path>.1`); 0 never rotates.
    pub slow_query_log_max_bytes: u64,
    /// Which serving front end to run (see [`Transport`]).
    pub transport: Transport,
    /// Cap on concurrently open connections; 0 uses the transport's
    /// default ([`MAX_EVENTED_CONNECTIONS`] / [`MAX_CONNECTIONS`]).
    /// Excess connections get a best-effort `busy` line and close.
    pub max_connections: usize,
    /// Bound on *zero-progress* response writing: once a peer has
    /// accepted no bytes for this long, its socket is shut down and
    /// the connection dropped. Partial writes reset the window, so a
    /// slow-but-alive reader always gets a complete, untorn response.
    pub write_timeout: Duration,
}

impl ServerConfig {
    /// A config with serving defaults: 64 in-flight requests, a
    /// 64 MiB shared cache budget, per-core pools.
    pub fn new(bind: Bind, datasets_dir: PathBuf) -> Self {
        Self {
            bind,
            datasets_dir,
            max_inflight: 64,
            cache_budget: 64 << 20,
            pool_threads: 0,
            wal_dir: None,
            wal_compact_every: None,
            clock: Arc::new(MonotonicClock::new()),
            slow_query_ms: None,
            slow_query_log: None,
            slow_query_log_max_bytes: 16 << 20,
            transport: Transport::default(),
            max_connections: 0,
            write_timeout: WRITE_TIMEOUT,
        }
    }
}

/// A snapshot of the server's counters (the `stats` response body is
/// built from this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSnapshot {
    /// Requests fully processed.
    pub requests_served: u64,
    /// Requests shed by admission control.
    pub busy_rejections: u64,
    /// Query/batch requests executing right now.
    pub inflight: usize,
    /// The admission limit.
    pub max_inflight: usize,
    /// Resident dataset count.
    pub datasets_loaded: usize,
    /// Resident dataset names, sorted.
    pub datasets: Vec<String>,
    /// Filter-cache bytes across resident engines.
    pub registry_cache_bytes: usize,
}

pub(crate) struct Shared {
    registry: DatasetRegistry,
    max_inflight: usize,
    inflight: AtomicUsize,
    requests_served: AtomicU64,
    pub(crate) busy_rejections: AtomicU64,
    shutdown: AtomicBool,
    pub(crate) clock: Arc<dyn Clock>,
    metrics: MetricsRegistry,
    slow_query: Option<SlowQueryLog>,
}

/// The structured slow-query log: one JSON line per query/batch op
/// whose traced total reached the threshold, carrying the per-phase
/// breakdown. Strictly best-effort — a failed write or rotation
/// increments `utk_slow_query_dropped_total` and drops the record;
/// the request path never blocks on logging and never panics.
struct SlowQueryLog {
    threshold_nanos: u64,
    /// `None` writes records to stderr (no rotation).
    sink: Option<SlowQuerySink>,
}

/// What one slow-query append attempt did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct AppendReport {
    /// The record landed in the log (possibly after a rotation).
    written: bool,
    /// A rotation was skipped because the on-disk file turned out to
    /// be fresh already: a concurrent rotator on the same path (a
    /// second process, an external logrotate) got there first.
    /// Renaming anyway would clobber the `.1` generation with a
    /// near-empty file — the averted clobber is counted instead.
    averted_double_rotation: bool,
}

impl SlowQueryLog {
    /// Appends one record; the report says whether it was dropped.
    fn append(&self, record: &str) -> AppendReport {
        match &self.sink {
            None => {
                eprintln!("{record}");
                AppendReport {
                    written: true,
                    averted_double_rotation: false,
                }
            }
            Some(sink) => sink.append(record),
        }
    }
}

/// A size-rotated JSON-lines file sink.
struct SlowQuerySink {
    path: PathBuf,
    /// Rotate once the file would exceed this (0 = never rotate).
    max_bytes: u64,
    state: Mutex<SlowSinkState>,
}

#[derive(Default)]
struct SlowSinkState {
    file: Option<std::fs::File>,
    bytes: u64,
}

impl SlowQuerySink {
    fn open(&self, state: &mut SlowSinkState) -> bool {
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
        {
            Ok(file) => {
                state.bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
                state.file = Some(file);
                true
            }
            Err(_) => false,
        }
    }

    fn append(&self, record: &str) -> AppendReport {
        let mut report = AppendReport::default();
        let Ok(mut state) = self.state.lock() else {
            return report;
        };
        let record_bytes = record.len() as u64 + 1;
        if state.file.is_none() && !self.open(&mut state) {
            return report;
        }
        // Rotate before the file would exceed the cap. A single
        // record larger than the cap still lands (alone) in a fresh
        // file — the `bytes > 0` guard prevents rotating forever.
        // In-process writers are fully serialized by the `state` lock
        // held across this whole decide-rename-reopen sequence, so
        // two threads can never both rotate for the same crossing.
        if self.max_bytes > 0
            && state.bytes > 0
            && state.bytes.saturating_add(record_bytes) > self.max_bytes
        {
            // The byte counter is authoritative only in-process; a
            // concurrent rotator on the same *path* (second process,
            // external logrotate) can leave it stale. Re-check the
            // on-disk size under the lock before renaming: a fresh
            // file means the rotation already happened, and renaming
            // again would clobber the `.1` generation with a
            // near-empty file — skip, adopt the fresh file, and let
            // the caller count the averted double-rotation.
            let disk_bytes = std::fs::metadata(&self.path)
                .map(|m| m.len())
                .unwrap_or(state.bytes);
            if disk_bytes > 0 && disk_bytes.saturating_add(record_bytes) > self.max_bytes {
                state.file = None;
                let mut rotated = self.path.clone().into_os_string();
                rotated.push(".1");
                if std::fs::rename(&self.path, PathBuf::from(rotated)).is_err() {
                    return report;
                }
                state.bytes = 0;
                if !self.open(&mut state) {
                    return report;
                }
            } else {
                report.averted_double_rotation = true;
                state.file = None;
                if !self.open(&mut state) {
                    return report;
                }
            }
        }
        let Some(file) = state.file.as_mut() else {
            return report;
        };
        let mut line = Vec::with_capacity(record.len() + 1);
        line.extend_from_slice(record.as_bytes());
        line.push(b'\n');
        // utk-lint: allow(guard-blocking) -- deliberate: this leaf lock IS the log writer; it serializes whole records and the rotation sequence, guards the byte counter, never nests, and is reached only past the slow-query threshold
        if file.write_all(&line).is_err() {
            // Drop the handle so the next record retries a fresh open.
            state.file = None;
            return report;
        }
        state.bytes = state.bytes.saturating_add(record_bytes);
        report.written = true;
        report
    }
}

impl Shared {
    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The admission limit (also bounds the evented executor pool).
    pub(crate) fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    fn snapshot(&self) -> ServeSnapshot {
        let datasets = self.registry.loaded_names();
        ServeSnapshot {
            requests_served: self.requests_served.load(Ordering::SeqCst),
            busy_rejections: self.busy_rejections.load(Ordering::SeqCst),
            inflight: self.inflight.load(Ordering::SeqCst),
            max_inflight: self.max_inflight,
            datasets_loaded: datasets.len(),
            datasets,
            registry_cache_bytes: self.registry.cache_bytes(),
        }
    }

    fn stats_body(&self) -> StatsBody {
        let snap = self.snapshot();
        let (wal_datasets, wal_records, wal_bytes) = self.registry.wal_totals();
        let wal = self
            .registry
            .wal_datasets()
            .into_iter()
            .map(|(dataset, records, bytes, last_epoch)| WalDatasetStats {
                dataset,
                records,
                bytes,
                last_epoch,
            })
            .collect();
        StatsBody {
            requests_served: snap.requests_served,
            busy_rejections: snap.busy_rejections,
            inflight: snap.inflight as u64,
            max_inflight: snap.max_inflight as u64,
            datasets_loaded: snap.datasets_loaded as u64,
            datasets: snap.datasets,
            registry_cache_bytes: snap.registry_cache_bytes as u64,
            wal_enabled: self.registry.wal_dir().is_some(),
            wal_datasets,
            wal_records,
            wal_bytes,
            wal,
        }
    }

    /// Counts one handled request of `op` and observes its wall-clock
    /// latency (from `started_at` to now, on the injected clock) —
    /// per op, and per dataset for the ops that name one.
    pub(crate) fn observe_request(&self, op: &'static str, dataset: Option<&str>, started_at: u64) {
        let labels = format!("op=\"{op}\"");
        let elapsed = self.clock.now_nanos().saturating_sub(started_at);
        self.metrics.counter_add(
            "utk_requests_total",
            "Requests handled, by protocol op (coded-error answers included).",
            &labels,
            1,
        );
        self.metrics.observe(
            "utk_request_nanos",
            "Request latency in nanoseconds, by protocol op.",
            &labels,
            elapsed,
        );
        if let Some(dataset) = dataset {
            self.metrics.observe(
                "utk_dataset_request_nanos",
                "Request latency in nanoseconds, by dataset (dataset-addressed ops only).",
                &format!("dataset=\"{}\"", escape(dataset)),
                elapsed,
            );
        }
    }

    /// Counts one coded protocol error.
    pub(crate) fn count_error(&self, code: &str) {
        self.metrics.counter_add(
            "utk_errors_total",
            "Coded protocol errors, by code.",
            &format!("code=\"{code}\""),
            1,
        );
    }

    /// Records the engine-side observability of one answered
    /// query/batch op: the per-dataset answer count, per-phase time
    /// accumulation, and — past the threshold — a slow-query log
    /// record. `detail` is a pre-rendered JSON fragment for the log
    /// line (`"q":…` or `"queries":…`). Every phase counter is bumped
    /// (by 0 if the phase saw no time), so which series exist depends
    /// only on whether queries ran, never on scheduling.
    fn observe_answers(
        &self,
        op: &'static str,
        dataset: &str,
        answers: u64,
        timings: Option<&PhaseTimings>,
        detail: &str,
    ) {
        self.metrics.counter_add(
            "utk_queries_total",
            "Query lines answered (result or error line), by dataset.",
            &format!("dataset=\"{dataset}\""),
            answers,
        );
        let Some(timings) = timings else { return };
        for phase in Phase::ALL {
            self.metrics.counter_add(
                "utk_phase_nanos_total",
                "Cumulative nanoseconds in each query pipeline phase.",
                &format!("phase=\"{}\"", phase.label()),
                timings.nanos(phase),
            );
        }
        let Some(slow) = &self.slow_query else { return };
        if timings.total_nanos < slow.threshold_nanos {
            return;
        }
        let record = format!(
            r#"{{"ts_nanos":{},"op":"{op}","dataset":"{}",{detail},"timings":{}}}"#,
            self.clock.now_nanos(),
            escape(dataset),
            timings.to_json(),
        );
        let report = slow.append(&record);
        if !report.written {
            self.metrics.counter_add(
                "utk_slow_query_dropped_total",
                "Slow-query records dropped because the log could not be written.",
                "",
                1,
            );
        }
        if report.averted_double_rotation {
            self.metrics.counter_add(
                "utk_slow_query_dropped_total",
                "Slow-query records dropped because the log could not be written.",
                "reason=\"double_rotation\"",
                1,
            );
        }
    }
}

/// RAII slot in the in-flight admission window. Owns its handle on
/// [`Shared`] so the evented transport can claim it on the reactor
/// thread (shed-or-admit happens *before* any queueing) and release
/// it on the executor thread that finishes the request.
pub(crate) struct AdmitSlot(Arc<Shared>);

impl AdmitSlot {
    /// Tries to claim a slot; `None` means the request must be shed.
    fn claim(shared: &Arc<Shared>) -> Option<Self> {
        shared
            .inflight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < shared.max_inflight).then_some(n + 1)
            })
            .ok()
            .map(|_| AdmitSlot(Arc::clone(shared)))
    }
}

impl Drop for AdmitSlot {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Decides admission for one parsed request. Control ops (`stats`,
/// `metrics`, `evict`, `shutdown`) are always admitted slot-free;
/// work ops (`load`/`query`/`batch`/`update` — the ones that parse
/// CSVs, build indexes, run queries) are refused while draining and
/// shed with a typed `busy` error when the in-flight window is full.
/// The claim happens *here*, before any dispatch, so overload is
/// answered immediately — never queued.
pub(crate) fn claim_admission(
    shared: &Arc<Shared>,
    request: &Request,
) -> Result<Option<AdmitSlot>, ProtoError> {
    let is_work = matches!(
        request,
        Request::Load { .. }
            | Request::Query { .. }
            | Request::Batch { .. }
            | Request::Update { .. }
    );
    if !is_work {
        return Ok(None);
    }
    if shared.shutting_down() {
        return Err(ProtoError {
            code: code::SHUTTING_DOWN,
            message: "server is draining after a shutdown request".into(),
        });
    }
    AdmitSlot::claim(shared)
        .map(Some)
        .ok_or_else(|| ProtoError {
            code: code::BUSY,
            message: format!(
                "server is at capacity ({} requests in flight)",
                shared.max_inflight
            ),
        })
}

/// A bound, not-yet-running server. [`Server::run`] blocks;
/// [`Server::spawn`] runs it on a thread and hands back a
/// [`ServerHandle`] (the in-process test/bench driver).
pub struct Server {
    listener: Listener,
    bind: Bind,
    shared: Arc<Shared>,
    transport: Transport,
    max_connections: usize,
    write_timeout: Duration,
    #[cfg(unix)]
    socket_path: Option<PathBuf>,
}

impl Server {
    /// Binds the listener and builds the registry (no datasets are
    /// loaded yet). A **stale** Unix socket file at the requested
    /// path (left by a crashed server) is removed first; a *live* one
    /// — something is still accepting on it — is an `AddrInUse`
    /// error, so a second server can neither hijack a running
    /// server's path nor unlink its socket on shutdown.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        #[cfg(unix)]
        let mut socket_path = None;
        let (listener, bind) = match &config.bind {
            #[cfg(unix)]
            Bind::Unix(path) => {
                if path.exists() {
                    if UnixStream::connect(path).is_ok() {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::AddrInUse,
                            format!("{} is served by a live process", path.display()),
                        ));
                    }
                    std::fs::remove_file(path)?;
                }
                socket_path = Some(path.clone());
                (
                    Listener::Unix(UnixListener::bind(path)?),
                    Bind::Unix(path.clone()),
                )
            }
            Bind::Tcp(port) => {
                let listener = TcpListener::bind(("127.0.0.1", *port))?;
                let resolved = listener.local_addr()?.port();
                (Listener::Tcp(listener), Bind::Tcp(resolved))
            }
        };
        Ok(Server {
            listener,
            bind,
            transport: config.transport,
            max_connections: match config.max_connections {
                0 => config.transport.default_max_connections(),
                n => n,
            },
            write_timeout: config.write_timeout,
            shared: Arc::new(Shared {
                registry: {
                    let registry = DatasetRegistry::new(
                        config.datasets_dir,
                        config.cache_budget,
                        config.pool_threads,
                    )
                    .with_clock(Arc::clone(&config.clock));
                    let registry = match config.wal_dir {
                        Some(dir) => registry.with_wal_dir(dir),
                        None => registry,
                    };
                    match config.wal_compact_every {
                        Some(n) => registry.with_wal_compact_every(n),
                        None => registry,
                    }
                },
                max_inflight: config.max_inflight.max(1),
                inflight: AtomicUsize::new(0),
                requests_served: AtomicU64::new(0),
                busy_rejections: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                clock: Arc::clone(&config.clock),
                metrics: MetricsRegistry::new(),
                slow_query: config.slow_query_ms.map(|ms| SlowQueryLog {
                    threshold_nanos: ms.saturating_mul(1_000_000),
                    sink: config.slow_query_log.map(|path| SlowQuerySink {
                        path,
                        max_bytes: config.slow_query_log_max_bytes,
                        state: Mutex::new(SlowSinkState::default()),
                    }),
                }),
            }),
            #[cfg(unix)]
            socket_path,
        })
    }

    /// The resolved bind address (with the ephemeral TCP port filled
    /// in).
    pub fn bind_addr(&self) -> &Bind {
        &self.bind
    }

    /// Dataset names available in the served directory.
    pub fn available_datasets(&self) -> Vec<String> {
        self.shared.registry.available()
    }

    /// Runs the configured transport until a `shutdown` request, then
    /// drains in-flight work and returns the final counters.
    pub fn run(self) -> std::io::Result<ServeSnapshot> {
        self.listener.set_nonblocking(true)?;
        match self.transport {
            Transport::Threads => self.run_threads()?,
            Transport::Evented => crate::reactor::run(
                &self.listener,
                &self.shared,
                self.max_connections,
                self.write_timeout,
            )?,
        }
        drop(self.listener);
        #[cfg(unix)]
        if let Some(path) = &self.socket_path {
            let _ = std::fs::remove_file(path);
        }
        Ok(self.shared.snapshot())
    }

    /// The thread-per-connection accept loop (the differential oracle
    /// for the evented transport).
    fn run_threads(&self) -> std::io::Result<()> {
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shared.shutting_down() {
            match self.listener.accept() {
                Ok(mut stream) => {
                    // Reap finished connection threads so the handle
                    // list (and the cap below) tracks *live*
                    // connections.
                    connections.retain(|conn| !conn.is_finished());
                    if connections.len() >= self.max_connections {
                        let refusal = ProtoError {
                            code: code::BUSY,
                            message: format!("server is at {} connections", self.max_connections),
                        };
                        let _ = stream.set_write_timeout(Some(POLL));
                        let _ = write_line(&mut stream, &refusal.to_json());
                        self.shared.busy_rejections.fetch_add(1, Ordering::SeqCst);
                        continue;
                    }
                    let shared = Arc::clone(&self.shared);
                    let write_timeout = self.write_timeout;
                    connections.push(std::thread::spawn(move || {
                        handle_connection(stream, &shared, write_timeout);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    // Transient accept failures (EMFILE under an FD
                    // burst, ECONNABORTED, …) must shed, not kill the
                    // server: overload is a condition to ride out.
                    eprintln!("utk serve: accept error (retrying): {e}");
                    std::thread::sleep(POLL);
                }
            }
        }
        // Drain: let every connection finish its in-flight request
        // and notice the flag.
        for conn in connections {
            let _ = conn.join();
        }
        Ok(())
    }

    /// Runs the server on a background thread, returning a handle for
    /// in-process drivers (tests, benches).
    pub fn spawn(self) -> ServerHandle {
        let bind = self.bind.clone();
        let shared = Arc::clone(&self.shared);
        let thread = std::thread::spawn(move || self.run());
        ServerHandle {
            bind,
            shared,
            thread,
        }
    }
}

/// Handle onto a [`Server::spawn`]ed server.
pub struct ServerHandle {
    bind: Bind,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<std::io::Result<ServeSnapshot>>,
}

impl ServerHandle {
    /// The resolved bind address.
    pub fn bind_addr(&self) -> &Bind {
        &self.bind
    }

    /// Live counters.
    pub fn snapshot(&self) -> ServeSnapshot {
        self.shared.snapshot()
    }

    /// Waits for the serving loop to exit (after a `shutdown`
    /// request) and returns its final counters.
    pub fn join(self) -> std::io::Result<ServeSnapshot> {
        self.thread
            .join()
            .unwrap_or_else(|e| std::panic::resume_unwind(e))
    }
}

/// Runs one query on the engine's persistent worker pool (so compute
/// lands on pool workers, not the connection's I/O thread) and waits
/// for it.
fn run_on_pool(engine: &UtkEngine, query: &UtkQuery) -> Result<QueryResult, UtkError> {
    let slot: Arc<Mutex<Option<Result<QueryResult, UtkError>>>> = Arc::new(Mutex::new(None));
    let set = engine.pool().task_set();
    {
        let engine = engine.clone();
        let query = query.clone();
        let slot = Arc::clone(&slot);
        set.spawn(move || {
            *slot.lock().expect("query slot") = Some(engine.run(&query));
        });
    }
    set.wait();
    let result = slot
        .lock()
        .expect("query slot")
        .take()
        // utk-lint: allow(panic) -- invariant: wait() returns only after the task stored its slot
        .expect("pool task filled the slot before wait() returned");
    result
}

/// What one [`read_request_line`] call produced.
enum LineRead {
    /// A complete, newline-terminated line is in the buffer.
    Line,
    /// EOF; the buffer may hold a final unterminated line.
    Eof,
    /// The connection must close: oversized line, or shutdown while a
    /// line was still incomplete.
    Closed,
}

/// Reads one request line into `buf`, checking the shutdown flag and
/// the byte cap between *every* socket read — a peer trickling bytes
/// without a newline can neither stall shutdown (the drain joins this
/// thread) nor grow the buffer past [`MAX_REQUEST_BYTES`]. Bytes, not
/// a `String`: `read_line` discards a tick's consumed bytes when a
/// timeout lands mid-UTF-8-character, silently corrupting the
/// request; raw bytes survive any split.
///
/// `ErrorKind::Interrupted` (EINTR) is a pure retry — a signal landing
/// mid-read is not a poll tick, counts against nothing, and can never
/// close the connection.
fn read_request_line<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    shutdown: &AtomicBool,
) -> std::io::Result<LineRead> {
    loop {
        let chunk = match reader.fill_buf() {
            Ok([]) => return Ok(LineRead::Eof),
            Ok(chunk) => chunk,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(LineRead::Closed);
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        let (consume, complete) = match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (chunk.len(), false),
        };
        if buf.len() + consume > MAX_REQUEST_BYTES {
            return Ok(LineRead::Closed); // oversized request line
        }
        // utk-lint: allow(index) -- invariant: consume <= chunk.len() by construction above
        buf.extend_from_slice(&chunk[..consume]);
        reader.consume(consume);
        if complete {
            return Ok(LineRead::Line);
        }
        if shutdown.load(Ordering::SeqCst) {
            return Ok(LineRead::Closed);
        }
    }
}

/// The write half of a connection: a plain byte sink plus the
/// half-close hook [`PatientWriter`] pulls when a peer stops taking
/// bytes. Implemented by [`Stream`] and by test mocks.
pub(crate) trait StallStream: Write {
    /// Best-effort shutdown so the peer sees EOF instead of a torn
    /// line masquerading as a complete response.
    fn stall_shutdown(&mut self);
}

impl StallStream for Stream {
    fn stall_shutdown(&mut self) {
        self.shutdown();
    }
}

/// Response writer for the threads transport: resumes partial writes
/// instead of dropping the connection mid-line.
///
/// The underlying stream runs a short per-syscall timeout
/// ([`POLL`]-sized), so each `write` call returns quickly with either
/// progress or a timeout kind. A short write is *progress* — the
/// remainder is retried, so a slow-but-alive reader receives its
/// whole response where the old `write_all`-under-`SO_SNDTIMEO` path
/// tore the line. Only a full [`ServerConfig::write_timeout`] window
/// with **zero** bytes accepted means the peer is gone: the socket is
/// shut down first (the peer sees EOF mid-line, never a prefix
/// passing as a complete response), then the connection closes.
/// `ErrorKind::Interrupted` (EINTR) always retries and never counts
/// against the stall window.
pub(crate) struct PatientWriter<S> {
    stream: S,
    clock: Arc<dyn Clock>,
    stall_nanos: u64,
}

impl<S: StallStream> PatientWriter<S> {
    pub(crate) fn new(stream: S, clock: Arc<dyn Clock>, write_timeout: Duration) -> Self {
        PatientWriter {
            stream,
            clock,
            stall_nanos: write_timeout.as_nanos().min(u64::MAX as u128) as u64,
        }
    }
}

impl<S: StallStream> Write for PatientWriter<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut written = 0usize;
        let mut stalled_since: Option<u64> = None;
        while written < buf.len() {
            let pending = buf.get(written..).unwrap_or(&[]);
            match self.stream.write(pending) {
                Ok(0) => {
                    self.stream.stall_shutdown();
                    return Err(std::io::ErrorKind::WriteZero.into());
                }
                Ok(n) => {
                    written += n;
                    stalled_since = None;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    let now = self.clock.now_nanos();
                    let since = *stalled_since.get_or_insert(now);
                    if now.saturating_sub(since) >= self.stall_nanos {
                        self.stream.stall_shutdown();
                        return Err(e);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(written)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.stream.flush()
    }
}

/// Serves one connection: read a request line, write its response
/// line(s), repeat until EOF, error, or shutdown.
fn handle_connection(stream: Stream, shared: &Arc<Shared>, write_timeout: Duration) {
    // Short per-syscall timeouts on both halves: reads poll the
    // shutdown flag, writes poll for progress (the *stall* bound is
    // `write_timeout`, enforced by `PatientWriter` across syscalls).
    if stream.set_read_timeout(Some(POLL)).is_err() || stream.set_write_timeout(Some(POLL)).is_err()
    {
        return;
    }
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let mut writer = PatientWriter::new(writer, Arc::clone(&shared.clock), write_timeout);
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let status = match read_request_line(&mut reader, &mut buf, &shared.shutdown) {
            Ok(LineRead::Closed) | Err(_) => return,
            Ok(status) => status,
        };
        // A final unterminated line (EOF mid-line) is still a
        // request. Invalid UTF-8 becomes U+FFFD, which
        // `Request::parse` rejects as a `bad_request` like any other
        // bad byte.
        let line = String::from_utf8_lossy(&buf).into_owned();
        buf.clear();
        let line = line.trim();
        if !line.is_empty() && respond(line, shared, &mut writer).is_err() {
            return;
        }
        if matches!(status, LineRead::Eof) || shared.shutting_down() {
            return;
        }
    }
}

/// Writes one response line. Streaming each line as it is produced —
/// rather than accumulating a whole batch response in memory — keeps
/// per-connection response memory at one line on the threads
/// transport (the evented transport buffers one whole *response*; see
/// [`crate::reactor`]).
pub(crate) fn write_line<W: Write>(writer: &mut W, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")
}

/// Answers one request line, streaming the response line(s) to
/// `writer`. An `Err` means the peer stopped taking bytes; the
/// connection is closed.
pub(crate) fn respond<W: Write>(
    line: &str,
    shared: &Arc<Shared>,
    writer: &mut W,
) -> std::io::Result<()> {
    let started_at = shared.clock.now_nanos();
    let request = match Request::parse(line) {
        Ok(req) => req,
        Err(e) => {
            shared.count_error(e.code);
            write_line(writer, &e.to_json())?;
            return writer.flush();
        }
    };
    let admission = claim_admission(shared, &request);
    respond_admitted(&request, admission, shared, writer, started_at)
}

/// The transport-shared back half of [`respond`]: executes a parsed
/// request whose admission has already been decided, streams its
/// response line(s), and does every piece of bookkeeping (served /
/// busy / error counters, latency observation). The evented transport
/// calls this from executor threads with a slot claimed on the
/// reactor; the threads transport calls it inline.
pub(crate) fn respond_admitted<W: Write>(
    request: &Request,
    admission: Result<Option<AdmitSlot>, ProtoError>,
    shared: &Arc<Shared>,
    writer: &mut W,
    started_at: u64,
) -> std::io::Result<()> {
    let outcome = match admission {
        Ok(slot) => handle_request(request, shared, writer, slot),
        Err(e) => Err(Handled::Proto(e)),
    };
    match outcome {
        Ok(()) => {
            shared.requests_served.fetch_add(1, Ordering::SeqCst);
        }
        Err(Handled::Proto(e)) => {
            if e.code == code::BUSY {
                shared.busy_rejections.fetch_add(1, Ordering::SeqCst);
            }
            shared.count_error(e.code);
            write_line(writer, &e.to_json())?;
        }
        Err(Handled::Io(e)) => return Err(e),
    }
    shared.observe_request(request.op(), request.dataset(), started_at);
    writer.flush()
}

/// Why a request produced no complete response: a protocol error (to
/// be written back) or a transport failure (to close the connection).
enum Handled {
    Proto(ProtoError),
    Io(std::io::Error),
}

impl From<ProtoError> for Handled {
    fn from(e: ProtoError) -> Self {
        Handled::Proto(e)
    }
}

impl From<std::io::Error> for Handled {
    fn from(e: std::io::Error) -> Self {
        Handled::Io(e)
    }
}

/// Executes a request whose admission was already decided by
/// [`claim_admission`]. `slot` is `Some` for work ops (load / query /
/// batch / update) and held for the duration of execution; control
/// ops (stats / metrics / evict / shutdown) run slot-free.
fn handle_request<W: Write>(
    request: &Request,
    shared: &Shared,
    writer: &mut W,
    slot: Option<AdmitSlot>,
) -> Result<(), Handled> {
    // Held (not consumed) so the inflight gauge covers execution on
    // every arm below, whichever transport called us.
    let _slot = slot;
    match request {
        Request::Load { dataset } => {
            // A first load is a CSV parse + R-tree build — real work,
            // admitted like a query (only stats/evict/shutdown are
            // always-on control ops).
            let (ds, already_loaded) = shared.registry.get_or_load(dataset)?;
            write_line(
                writer,
                &Response::Load {
                    dataset: ds.name.clone(),
                    n: ds.engine.len() as u64,
                    d: ds.engine.dim() as u64,
                    already_loaded,
                }
                .to_json(),
            )?;
            Ok(())
        }
        Request::Query { dataset, q } => {
            let ds = shared.registry.get_or_load(dataset)?.0;
            let (line, timings) = answer_query(&ds, q, &shared.clock);
            write_line(writer, &line)?;
            shared.observe_answers(
                "query",
                &ds.name,
                1,
                timings.as_ref(),
                &format!(r#""q":"{}""#, escape(q)),
            );
            Ok(())
        }
        Request::Batch { dataset, queries } => {
            let ds = shared.registry.get_or_load(dataset)?.0;
            let text = queries.join("\n");
            let parsed = spec::parse_query_file(&text, ds.engine.dim());
            // A payload snapshot, not a held lock: a concurrent
            // `update` never waits on this batch (nor vice versa).
            let data = ds.data_snapshot();
            let (lines, timings) = spec::answer_query_file_observed(&ds.engine, &data, &parsed);
            write_line(
                writer,
                &Response::BatchHeader {
                    dataset: ds.name.clone(),
                    count: lines.len() as u64,
                }
                .to_json(),
            )?;
            for line in &lines {
                write_line(writer, line)?;
            }
            shared.observe_answers(
                "batch",
                &ds.name,
                lines.len() as u64,
                Some(&timings),
                &format!(r#""queries":{}"#, lines.len()),
            );
            Ok(())
        }
        Request::Update {
            dataset,
            delete,
            insert,
            labels,
        } => {
            // A mutation rebuilds indexes and re-screens caches —
            // real work, admitted like a query.
            let (ds, report) =
                shared
                    .registry
                    .update(dataset, delete, insert.clone(), labels.clone())?;
            write_line(
                writer,
                &Response::Update {
                    dataset: ds.name.clone(),
                    epoch: report.epoch,
                    n: report.n as u64,
                    inserted: report.inserted as u64,
                    deleted: report.deleted as u64,
                    filter_invalidated: report.filter_invalidated as u64,
                    filter_retained: report.filter_retained as u64,
                    index_rebuilt: report.index_rebuilt,
                }
                .to_json(),
            )?;
            Ok(())
        }
        Request::Stats => {
            write_line(writer, &Response::Stats(shared.stats_body()).to_json())?;
            Ok(())
        }
        Request::Metrics { format } => {
            // A cheap control op, always admitted (like `stats`).
            // Scrape-time gauges reflect this instant; the op's own
            // request counter lands after rendering, so a scrape
            // never counts itself.
            let snap = shared.snapshot();
            let m = &shared.metrics;
            m.gauge_set(
                "utk_inflight",
                "Query/batch/load requests executing right now.",
                "",
                snap.inflight as u64,
            );
            m.gauge_set(
                "utk_requests_served",
                "Requests fully processed since startup.",
                "",
                snap.requests_served,
            );
            m.gauge_set(
                "utk_busy_rejections",
                "Requests shed by admission control since startup.",
                "",
                snap.busy_rejections,
            );
            m.gauge_set(
                "utk_datasets_loaded",
                "Datasets currently resident.",
                "",
                snap.datasets_loaded as u64,
            );
            let body = match format {
                MetricsFormat::Prometheus => m.render_prometheus(),
                MetricsFormat::Json => m.render_json(),
            };
            write_line(
                writer,
                &Response::Metrics {
                    format: *format,
                    body,
                }
                .to_json(),
            )?;
            Ok(())
        }
        Request::Evict { dataset } => {
            let evicted = shared.registry.evict(dataset)?;
            write_line(
                writer,
                &Response::Evict {
                    dataset: dataset.clone(),
                    evicted,
                }
                .to_json(),
            )?;
            Ok(())
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            write_line(writer, &Response::Shutdown.to_json())?;
            Ok(())
        }
    }
}

/// Answers one `query` op on the dataset's engine pool (on a payload
/// snapshot — no lock held across execution), returning the wire line
/// plus the query's timing breakdown for the metrics/slow-query side
/// channels. The line itself never carries timings.
fn answer_query(
    ds: &LoadedDataset,
    q: &str,
    clock: &Arc<dyn Clock>,
) -> (String, Option<PhaseTimings>) {
    let data = ds.data_snapshot();
    spec::answer_query_line_observed(&data, q, clock, |query| run_on_pool(&ds.engine, query))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use utk_core::obs::TestClock;

    /// A `BufRead` whose `fill_buf` plays back a script of errors and
    /// byte chunks — the EINTR/timeout injection harness for
    /// [`read_request_line`].
    struct ScriptedReader {
        script: VecDeque<std::io::Result<Vec<u8>>>,
        current: Vec<u8>,
    }

    impl ScriptedReader {
        fn new(script: Vec<std::io::Result<Vec<u8>>>) -> Self {
            ScriptedReader {
                script: script.into(),
                current: Vec::new(),
            }
        }
    }

    impl Read for ScriptedReader {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            let n = {
                let chunk = self.fill_buf()?;
                let n = chunk.len().min(out.len());
                out[..n].copy_from_slice(&chunk[..n]);
                n
            };
            self.consume(n);
            Ok(n)
        }
    }

    impl BufRead for ScriptedReader {
        fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
            if self.current.is_empty() {
                match self.script.pop_front() {
                    Some(Ok(bytes)) => self.current = bytes,
                    Some(Err(e)) => return Err(e),
                    None => {} // EOF: empty slice
                }
            }
            Ok(&self.current)
        }

        fn consume(&mut self, n: usize) {
            self.current.drain(..n);
        }
    }

    fn err(kind: std::io::ErrorKind) -> std::io::Result<Vec<u8>> {
        Err(kind.into())
    }

    #[test]
    fn eintr_is_a_pure_retry_in_read_request_line() {
        // EINTR between chunks must not kill the connection: the
        // interrupted reads retry and the complete line arrives.
        let shutdown = AtomicBool::new(false);
        let mut reader = ScriptedReader::new(vec![
            err(std::io::ErrorKind::Interrupted),
            Ok(b"{\"op\":".to_vec()),
            err(std::io::ErrorKind::Interrupted),
            err(std::io::ErrorKind::Interrupted),
            Ok(b"\"stats\"}\n".to_vec()),
        ]);
        let mut buf = Vec::new();
        let status = read_request_line(&mut reader, &mut buf, &shutdown).expect("line");
        assert!(matches!(status, LineRead::Line));
        assert_eq!(buf, b"{\"op\":\"stats\"}\n");

        // And EINTR is not a poll tick: unlike WouldBlock (see the
        // companion test), an interrupted read never consults the
        // shutdown flag — with shutdown already requested it still
        // retries straight through to the line.
        let shutdown = AtomicBool::new(true);
        let mut reader = ScriptedReader::new(vec![
            err(std::io::ErrorKind::Interrupted),
            err(std::io::ErrorKind::Interrupted),
            Ok(b"{\"op\":\"stats\"}\n".to_vec()),
        ]);
        let mut buf = Vec::new();
        let status = read_request_line(&mut reader, &mut buf, &shutdown).expect("line");
        assert!(matches!(status, LineRead::Line));
        assert_eq!(buf, b"{\"op\":\"stats\"}\n");
    }

    #[test]
    fn timeout_mid_line_closes_only_on_shutdown() {
        // A WouldBlock *is* a poll tick: with shutdown requested and
        // the line incomplete, the connection closes...
        let shutdown = AtomicBool::new(true);
        let mut reader = ScriptedReader::new(vec![
            Ok(b"{\"op\":".to_vec()),
            err(std::io::ErrorKind::WouldBlock),
        ]);
        let mut buf = Vec::new();
        let status = read_request_line(&mut reader, &mut buf, &shutdown).expect("closed");
        assert!(matches!(status, LineRead::Closed));

        // ...but without shutdown the same timeout just retries.
        let shutdown = AtomicBool::new(false);
        let mut reader = ScriptedReader::new(vec![
            Ok(b"{\"op\":".to_vec()),
            err(std::io::ErrorKind::TimedOut),
            Ok(b"\"stats\"}\n".to_vec()),
        ]);
        let mut buf = Vec::new();
        let status = read_request_line(&mut reader, &mut buf, &shutdown).expect("line");
        assert!(matches!(status, LineRead::Line));
        assert_eq!(buf, b"{\"op\":\"stats\"}\n");
    }

    /// A write sink that plays back a script of short writes and
    /// errors, recording every byte it accepts and every half-close.
    struct FlakyStream {
        script: VecDeque<std::io::Result<usize>>,
        accepted: Vec<u8>,
        shutdowns: usize,
    }

    impl FlakyStream {
        fn new(script: Vec<std::io::Result<usize>>) -> Self {
            FlakyStream {
                script: script.into(),
                accepted: Vec::new(),
                shutdowns: 0,
            }
        }
    }

    impl Write for FlakyStream {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            match self.script.pop_front() {
                Some(Ok(n)) => {
                    let n = n.min(buf.len());
                    self.accepted.extend_from_slice(&buf[..n]);
                    Ok(n)
                }
                Some(Err(e)) => Err(e),
                None => {
                    self.accepted.extend_from_slice(buf);
                    Ok(buf.len())
                }
            }
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl StallStream for FlakyStream {
        fn stall_shutdown(&mut self) {
            self.shutdowns += 1;
        }
    }

    #[test]
    fn patient_writer_resumes_partial_writes() {
        // The satellite-1 regression in miniature: short writes and
        // timeouts interleave, yet the full line arrives untorn — the
        // writer tracks the written offset and resumes, and timeouts
        // with *progress* in between never trip the stall bound.
        let clock = Arc::new(TestClock::new());
        let stream = FlakyStream::new(vec![
            Ok(3),
            Err(std::io::ErrorKind::TimedOut.into()),
            Ok(4),
            Err(std::io::ErrorKind::WouldBlock.into()),
            Ok(2),
        ]);
        let mut writer = PatientWriter::new(stream, clock as Arc<dyn Clock>, WRITE_TIMEOUT);
        writer.write_all(b"0123456789\n").expect("untorn write");
        assert_eq!(writer.stream.accepted, b"0123456789\n");
        assert_eq!(writer.stream.shutdowns, 0);
    }

    #[test]
    fn patient_writer_retries_eintr_without_consulting_the_clock() {
        // EINTR is a pure retry: a burst of signals neither counts
        // against the stall window nor reaches the clock at all.
        let clock = Arc::new(TestClock::with_step(u64::MAX / 4)); // any read would trip the stall
        let mut script: Vec<std::io::Result<usize>> = Vec::new();
        for _ in 0..16 {
            script.push(Err(std::io::ErrorKind::Interrupted.into()));
        }
        let stream = FlakyStream::new(script);
        let mut writer =
            PatientWriter::new(stream, clock as Arc<dyn Clock>, Duration::from_nanos(1));
        writer.write_all(b"{\"ok\":\"stats\"}\n").expect("written");
        assert_eq!(writer.stream.accepted, b"{\"ok\":\"stats\"}\n");
        assert_eq!(writer.stream.shutdowns, 0);
    }

    #[test]
    fn patient_writer_half_closes_on_a_zero_progress_stall() {
        // Zero progress for a full write_timeout window: the socket is
        // shut down FIRST (peer sees EOF, not a torn prefix passing as
        // a complete response), then the write errors out.
        let clock = Arc::new(TestClock::with_step(600_000)); // 0.6 ms per read
        let stream = FlakyStream::new(vec![
            Err(std::io::ErrorKind::TimedOut.into()),
            Err(std::io::ErrorKind::TimedOut.into()),
            Err(std::io::ErrorKind::TimedOut.into()),
        ]);
        let mut writer =
            PatientWriter::new(stream, clock as Arc<dyn Clock>, Duration::from_millis(1));
        let e = writer.write_all(b"response\n").expect_err("stall");
        assert_eq!(e.kind(), std::io::ErrorKind::TimedOut);
        assert_eq!(writer.stream.shutdowns, 1, "half-close precedes the error");
        assert!(writer.stream.accepted.is_empty());
    }

    #[test]
    fn slow_query_sink_adopts_an_externally_rotated_file() {
        // The satellite-3 hardening: the in-process byte counter says
        // "rotate", but the on-disk file is already fresh — a
        // concurrent rotator (second process, external logrotate) got
        // there first. Renaming anyway would clobber the `.1`
        // generation; instead the sink adopts the fresh file, reports
        // the averted double-rotation, and still writes the record.
        let dir = std::env::temp_dir().join(format!("utk_sink_rotate_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("slow.jsonl");
        let rotated = dir.join("slow.jsonl.1");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rotated);

        let sink = SlowQuerySink {
            path: path.clone(),
            max_bytes: 100,
            state: Mutex::new(SlowSinkState::default()),
        };
        let first = "f".repeat(59);
        let report = sink.append(&first);
        assert!(report.written && !report.averted_double_rotation);

        // An external rotator crosses the sink: rename + fresh file.
        std::fs::rename(&path, &rotated).expect("external rotation");
        std::fs::write(&path, b"fresh\n").expect("fresh file");

        let second = "s".repeat(59);
        let report = sink.append(&second);
        assert!(report.written, "record still lands");
        assert!(report.averted_double_rotation, "clobber averted");
        let kept = std::fs::read_to_string(&rotated).expect(".1 generation");
        assert_eq!(kept, format!("{first}\n"), ".1 generation not clobbered");
        let current = std::fs::read_to_string(&path).expect("current file");
        assert_eq!(current, format!("fresh\n{second}\n"));

        // And a genuine crossing (no concurrent rotator) still
        // rotates: the re-check confirms against the disk.
        let third = "t".repeat(80);
        let report = sink.append(&third);
        assert!(report.written && !report.averted_double_rotation);
        let kept = std::fs::read_to_string(&rotated).expect(".1 generation");
        assert_eq!(kept, format!("fresh\n{second}\n"), "real rotation renames");
        let current = std::fs::read_to_string(&path).expect("current file");
        assert_eq!(current, format!("{third}\n"));

        let _ = std::fs::remove_dir_all(&dir);
    }
}
