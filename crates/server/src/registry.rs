//! The engine registry: one lazily built [`UtkEngine`] per served
//! dataset, under a **shared** filter-cache byte budget.
//!
//! Datasets are CSV files in one directory; `name` maps to
//! `<dir>/<name>.csv`. An engine is built on the first request that
//! touches its dataset (or an explicit `load` op) and stays resident
//! until evicted. The registry's byte budget is split evenly across
//! resident engines and **re-dealt** on every load/evict through
//! [`UtkEngine::set_filter_cache_budget`] — shrinking a slice evicts
//! LRU entries, growing frees headroom, and either way surviving
//! entries stay warm (the engine-level resize is in-place).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use crate::proto::{code, ProtoError};
use utk_core::engine::UtkEngine;
use utk_data::csv::{parse_csv, CsvData};

/// One resident dataset: the parsed CSV (for record names) and its
/// engine.
#[derive(Debug)]
pub struct LoadedDataset {
    /// Registry name (file stem).
    pub name: String,
    /// The parsed CSV payload.
    pub data: CsvData,
    /// The engine serving it.
    pub engine: UtkEngine,
}

/// The dataset → engine registry. Thread-safe: one instance serves
/// every connection. The inner mutex guards only the name → engine
/// map; dataset *builds* (CSV parse + R-tree bulk-load, potentially
/// seconds) run outside it, so queries to already-resident datasets
/// and the `stats` op never stall behind another dataset's load. Two
/// racing first-loads of the same dataset may both build; the loser's
/// copy is discarded at insert (first one in wins).
#[derive(Debug)]
pub struct DatasetRegistry {
    dir: PathBuf,
    /// Total filter-cache bytes shared across resident engines.
    cache_budget: usize,
    /// Worker-pool size handed to each engine (0 = one per core).
    pool_threads: usize,
    loaded: Mutex<HashMap<String, Arc<LoadedDataset>>>,
}

/// Whether a name is safe to join onto the datasets directory: a
/// plain file stem, no path separators or traversal.
fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

impl DatasetRegistry {
    /// A registry serving `<dir>/<name>.csv` files, sharing
    /// `cache_budget` filter-cache bytes across however many engines
    /// end up resident.
    pub fn new(dir: PathBuf, cache_budget: usize, pool_threads: usize) -> Self {
        Self {
            dir,
            cache_budget,
            pool_threads,
            loaded: Mutex::new(HashMap::new()),
        }
    }

    /// The served directory.
    pub fn dir(&self) -> &PathBuf {
        &self.dir
    }

    /// Dataset names available on disk (sorted), whether loaded or
    /// not.
    pub fn available(&self) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter_map(|entry| {
                let path = entry.path();
                let stem = path.file_stem()?.to_str()?;
                (path.extension()?.to_str()? == "csv" && valid_name(stem)).then(|| stem.to_string())
            })
            .collect();
        names.sort();
        names
    }

    /// The resident dataset names, sorted.
    pub fn loaded_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .loaded
            .lock()
            .expect("registry lock")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Number of resident engines.
    pub fn loaded_count(&self) -> usize {
        self.loaded.lock().expect("registry lock").len()
    }

    /// Filter-cache bytes currently held across resident engines.
    pub fn cache_bytes(&self) -> usize {
        self.loaded
            .lock()
            .expect("registry lock")
            .values()
            .map(|ds| ds.engine.filter_cache_bytes())
            .sum()
    }

    /// The resident engine for `name`, loading it on first use.
    /// Returns the dataset and whether it was already resident.
    pub fn get_or_load(&self, name: &str) -> Result<(Arc<LoadedDataset>, bool), ProtoError> {
        if !valid_name(name) {
            return Err(ProtoError::bad_request(format!(
                "invalid dataset name {name:?} (use letters, digits, '-', '_')"
            )));
        }
        if let Some(ds) = self.loaded.lock().expect("registry lock").get(name) {
            return Ok((Arc::clone(ds), true));
        }
        // Build outside the lock: resident datasets stay queryable
        // while this one parses and indexes.
        let path = self.dir.join(format!("{name}.csv"));
        let text = std::fs::read_to_string(&path).map_err(|e| ProtoError {
            code: code::UNKNOWN_DATASET,
            message: format!("dataset {name:?}: {}: {e}", path.display()),
        })?;
        let data = parse_csv(&text, &path.to_string_lossy()).map_err(|e| ProtoError {
            code: code::DATASET_ERROR,
            message: format!("dataset {name:?}: {e}"),
        })?;
        let mut engine = UtkEngine::new(data.dataset.points.clone()).map_err(|e| ProtoError {
            code: code::DATASET_ERROR,
            message: format!("dataset {name:?}: {e}"),
        })?;
        if self.pool_threads != 0 {
            engine = engine.with_pool_threads(self.pool_threads);
        }
        let ds = Arc::new(LoadedDataset {
            name: name.to_string(),
            data,
            engine,
        });
        let mut loaded = self.loaded.lock().expect("registry lock");
        if let Some(winner) = loaded.get(name) {
            // A racing load finished first; serve its copy.
            return Ok((Arc::clone(winner), true));
        }
        loaded.insert(name.to_string(), Arc::clone(&ds));
        Self::rebalance(&loaded, self.cache_budget);
        Ok((ds, false))
    }

    /// Unloads `name`'s engine, freeing its caches and re-dealing the
    /// shared budget to the survivors. Returns whether an engine was
    /// actually resident. In-flight queries on the evicted engine
    /// finish safely — they hold their own `Arc` handle.
    pub fn evict(&self, name: &str) -> bool {
        let mut loaded = self.loaded.lock().expect("registry lock");
        let removed = loaded.remove(name).is_some();
        if removed {
            Self::rebalance(&loaded, self.cache_budget);
        }
        removed
    }

    /// Deals `budget` evenly across the resident engines.
    fn rebalance(loaded: &HashMap<String, Arc<LoadedDataset>>, budget: usize) {
        if loaded.is_empty() {
            return;
        }
        let share = budget / loaded.len();
        for ds in loaded.values() {
            ds.engine.set_filter_cache_budget(share);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("utk_registry_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("hotels.csv"),
            "p1,8.3,9.1,7.2\np2,2.4,9.6,8.6\np3,5.4,1.6,4.1\n",
        )
        .unwrap();
        std::fs::write(dir.join("tiny.csv"), "1,2\n3,4\n").unwrap();
        std::fs::write(dir.join("broken.csv"), "a,b,c\n1,2\n1,2,3\n").unwrap();
        dir
    }

    #[test]
    fn lazy_load_evict_and_shared_budget() {
        let dir = fixture_dir();
        let registry = DatasetRegistry::new(dir, 1 << 20, 1);
        assert_eq!(registry.loaded_count(), 0);

        let (hotels, already) = registry.get_or_load("hotels").unwrap();
        assert!(!already);
        assert_eq!(hotels.engine.len(), 3);
        assert_eq!(hotels.engine.filter_cache_budget(), 1 << 20);
        let (_, again) = registry.get_or_load("hotels").unwrap();
        assert!(again);

        // A second dataset halves each engine's slice of the budget.
        registry.get_or_load("tiny").unwrap();
        assert_eq!(registry.loaded_count(), 2);
        assert_eq!(hotels.engine.filter_cache_budget(), (1 << 20) / 2);

        // Evicting re-deals the whole budget to the survivor.
        assert!(registry.evict("tiny"));
        assert!(!registry.evict("tiny"));
        assert_eq!(hotels.engine.filter_cache_budget(), 1 << 20);
        assert_eq!(registry.loaded_names(), vec!["hotels".to_string()]);
    }

    #[test]
    fn bad_names_and_files_are_typed() {
        let dir = fixture_dir();
        let registry = DatasetRegistry::new(dir, 1 << 20, 1);
        for bad in ["../etc/passwd", "a/b", "", "a b", "x.csv"] {
            let err = registry.get_or_load(bad).unwrap_err();
            assert_eq!(err.code, code::BAD_REQUEST, "{bad:?}");
        }
        assert_eq!(
            registry.get_or_load("missing").unwrap_err().code,
            code::UNKNOWN_DATASET
        );
        assert_eq!(
            registry.get_or_load("broken").unwrap_err().code,
            code::DATASET_ERROR
        );
        assert_eq!(registry.loaded_count(), 0);
    }

    #[test]
    fn available_lists_csv_stems() {
        let dir = fixture_dir();
        let registry = DatasetRegistry::new(dir, 1 << 20, 1);
        let names = registry.available();
        assert!(names.contains(&"hotels".to_string()), "{names:?}");
        assert!(names.contains(&"tiny".to_string()), "{names:?}");
    }
}
