//! The engine registry: one lazily built [`UtkEngine`] per served
//! dataset, under a **shared** filter-cache byte budget.
//!
//! Datasets are CSV files in one directory; `name` maps to
//! `<dir>/<name>.csv`. An engine is built on the first request that
//! touches its dataset (or an explicit `load` op) and stays resident
//! until evicted. The registry's byte budget is dealt across resident
//! engines **proportionally to their dataset size** (a million-row
//! engine gets a bigger slice of r-skyband memoization than a toy
//! one) and **re-dealt** on every load/evict — and on every `update`,
//! since an update changes a dataset's byte size — through
//! [`UtkEngine::set_filter_cache_budget`]: shrinking a slice evicts
//! LRU entries, growing frees headroom, and either way surviving
//! entries stay warm (the engine-level resize is in-place).
//!
//! `update` mutates the *resident* engine and its parsed CSV payload
//! (labels move with their rows); the file on disk is never touched,
//! so an evict-then-reload reverts to disk state by construction.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, RwLock};

use crate::proto::{code, ProtoError};
use utk_core::engine::{UpdateReport, UtkEngine};
use utk_data::csv::{parse_csv, CsvData};

/// One resident dataset: the parsed CSV (for record names) and its
/// engine.
#[derive(Debug)]
pub struct LoadedDataset {
    /// Registry name (file stem).
    pub name: String,
    /// The parsed CSV payload, as an immutable snapshot behind a
    /// momentary lock: readers clone the `Arc` and serve from it
    /// (never holding the lock across query execution), `update`
    /// swaps in a rebuilt payload. A query racing an update may
    /// therefore resolve names from the adjacent version — bounded
    /// skew for one response; ids inside a response are always
    /// internally consistent (the engine snapshots its own version),
    /// and `CsvData::name` falls back to `#id` past the label column.
    pub data: RwLock<Arc<CsvData>>,
    /// Serializes `update`s on this dataset (stage → engine mutate →
    /// swap must not interleave); queries never take it.
    update_lock: Mutex<()>,
    /// The engine serving it.
    pub engine: UtkEngine,
}

impl LoadedDataset {
    /// The current CSV payload snapshot (momentary read lock).
    pub fn data_snapshot(&self) -> Arc<CsvData> {
        Arc::clone(&self.data.read().expect("dataset data lock"))
    }
}

/// The dataset → engine registry. Thread-safe: one instance serves
/// every connection. The inner mutex guards only the name → engine
/// map; dataset *builds* (CSV parse + R-tree bulk-load, potentially
/// seconds) run outside it, so queries to already-resident datasets
/// and the `stats` op never stall behind another dataset's load. Two
/// racing first-loads of the same dataset may both build; the loser's
/// copy is discarded at insert (first one in wins).
#[derive(Debug)]
pub struct DatasetRegistry {
    dir: PathBuf,
    /// Total filter-cache bytes shared across resident engines.
    cache_budget: usize,
    /// Worker-pool size handed to each engine (0 = one per core).
    pool_threads: usize,
    loaded: Mutex<BTreeMap<String, Arc<LoadedDataset>>>,
}

/// Whether a name is safe to join onto the datasets directory: a
/// plain file stem, no path separators or traversal.
fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

impl DatasetRegistry {
    /// A registry serving `<dir>/<name>.csv` files, sharing
    /// `cache_budget` filter-cache bytes across however many engines
    /// end up resident.
    pub fn new(dir: PathBuf, cache_budget: usize, pool_threads: usize) -> Self {
        Self {
            dir,
            cache_budget,
            pool_threads,
            loaded: Mutex::new(BTreeMap::new()),
        }
    }

    /// The served directory.
    pub fn dir(&self) -> &PathBuf {
        &self.dir
    }

    /// Dataset names available on disk (sorted), whether loaded or
    /// not.
    pub fn available(&self) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter_map(|entry| {
                let path = entry.path();
                let stem = path.file_stem()?.to_str()?;
                (path.extension()?.to_str()? == "csv" && valid_name(stem)).then(|| stem.to_string())
            })
            .collect();
        names.sort();
        names
    }

    /// The resident dataset names, sorted.
    pub fn loaded_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .loaded
            .lock()
            .expect("registry lock")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Number of resident engines.
    pub fn loaded_count(&self) -> usize {
        self.loaded.lock().expect("registry lock").len()
    }

    /// Filter-cache bytes currently held across resident engines.
    pub fn cache_bytes(&self) -> usize {
        self.loaded
            .lock()
            .expect("registry lock")
            .values()
            .map(|ds| ds.engine.filter_cache_bytes())
            .sum()
    }

    /// The resident engine for `name`, loading it on first use.
    /// Returns the dataset and whether it was already resident.
    pub fn get_or_load(&self, name: &str) -> Result<(Arc<LoadedDataset>, bool), ProtoError> {
        if !valid_name(name) {
            return Err(ProtoError::bad_request(format!(
                "invalid dataset name {name:?} (use letters, digits, '-', '_')"
            )));
        }
        if let Some(ds) = self.loaded.lock().expect("registry lock").get(name) {
            return Ok((Arc::clone(ds), true));
        }
        // Build outside the lock: resident datasets stay queryable
        // while this one parses and indexes.
        let path = self.dir.join(format!("{name}.csv"));
        let text = std::fs::read_to_string(&path).map_err(|e| ProtoError {
            code: code::UNKNOWN_DATASET,
            message: format!("dataset {name:?}: {}: {e}", path.display()),
        })?;
        let data = parse_csv(&text, &path.to_string_lossy()).map_err(|e| ProtoError {
            code: code::DATASET_ERROR,
            message: format!("dataset {name:?}: {e}"),
        })?;
        let mut engine = UtkEngine::new(data.dataset.points.clone()).map_err(|e| ProtoError {
            code: code::DATASET_ERROR,
            message: format!("dataset {name:?}: {e}"),
        })?;
        if self.pool_threads != 0 {
            engine = engine.with_pool_threads(self.pool_threads);
        }
        let ds = Arc::new(LoadedDataset {
            name: name.to_string(),
            data: RwLock::new(Arc::new(data)),
            update_lock: Mutex::new(()),
            engine,
        });
        let mut loaded = self.loaded.lock().expect("registry lock");
        if let Some(winner) = loaded.get(name) {
            // A racing load finished first; serve its copy.
            return Ok((Arc::clone(winner), true));
        }
        loaded.insert(name.to_string(), Arc::clone(&ds));
        Self::rebalance(&loaded, self.cache_budget);
        Ok((ds, false))
    }

    /// Unloads `name`'s engine, freeing its caches and re-dealing the
    /// shared budget to the survivors. Returns whether an engine was
    /// actually resident. In-flight queries on the evicted engine
    /// finish safely — they hold their own `Arc` handle.
    pub fn evict(&self, name: &str) -> bool {
        let mut loaded = self.loaded.lock().expect("registry lock");
        let removed = loaded.remove(name).is_some();
        if removed {
            Self::rebalance(&loaded, self.cache_budget);
        }
        removed
    }

    /// Mutates a resident dataset (loading it first if needed):
    /// deletes by id, then appends rows, as one engine epoch. The
    /// parsed CSV payload is updated in lock-step so record names and
    /// the wire format's `n` keep tracking the live data, and the
    /// shared cache budget is re-dealt afterwards — the dataset's
    /// byte size just changed, so every resident engine's
    /// proportional slice moves.
    pub fn update(
        &self,
        name: &str,
        deletes: &[u32],
        inserts: Vec<Vec<f64>>,
        labels: Option<Vec<String>>,
    ) -> Result<(Arc<LoadedDataset>, UpdateReport), ProtoError> {
        let (ds, _) = self.get_or_load(name)?;
        let report = {
            // Serialize updates on this dataset; queries keep running
            // on their snapshots throughout (the data lock is taken
            // only momentarily to read and to swap).
            let _updating = ds.update_lock.lock().expect("dataset update lock");
            // Validate the CSV-side effects (label policy, bounds) on
            // a staged copy first: `CsvData::apply_update` mirrors
            // `UtkEngine::apply_update` validation (see the note on
            // the former), so the two succeed or fail as one — the
            // engine runs second and a failure discards the staging.
            let mut staged = (**ds.data.read().expect("dataset data lock")).clone();
            staged
                .apply_update(deletes, &inserts, labels.as_deref())
                .map_err(|e| ProtoError::bad_request(format!("dataset {name:?}: {e}")))?;
            let report = ds
                .engine
                .apply_update(deletes, inserts)
                .map_err(|e| ProtoError::bad_request(format!("dataset {name:?}: {e}")))?;
            *ds.data.write().expect("dataset data lock") = Arc::new(staged);
            report
        };
        let loaded = self.loaded.lock().expect("registry lock");
        Self::rebalance(&loaded, self.cache_budget);
        Ok((ds, report))
    }

    /// Deals `budget` across the resident engines proportionally to
    /// their dataset bytes (records × dimensionality), so the engines
    /// with the most r-skyband state to memoize hold the most cache.
    fn rebalance(loaded: &BTreeMap<String, Arc<LoadedDataset>>, budget: usize) {
        if loaded.is_empty() {
            return;
        }
        let weights: Vec<(&Arc<LoadedDataset>, usize)> = loaded
            .values()
            .map(|ds| (ds, ds.engine.len() * ds.engine.dim()))
            .collect();
        let total: usize = weights.iter().map(|(_, w)| w).sum();
        if total == 0 {
            let share = budget / loaded.len();
            for ds in loaded.values() {
                ds.engine.set_filter_cache_budget(share);
            }
            return;
        }
        for (ds, weight) in weights {
            let share = (budget as u128 * weight as u128 / total as u128) as usize;
            ds.engine.set_filter_cache_budget(share);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("utk_registry_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("hotels.csv"),
            "p1,8.3,9.1,7.2\np2,2.4,9.6,8.6\np3,5.4,1.6,4.1\n",
        )
        .unwrap();
        std::fs::write(dir.join("tiny.csv"), "1,2\n3,4\n").unwrap();
        std::fs::write(dir.join("broken.csv"), "a,b,c\n1,2\n1,2,3\n").unwrap();
        dir
    }

    #[test]
    fn lazy_load_evict_and_shared_budget() {
        let dir = fixture_dir();
        const BUDGET: usize = 1 << 20;
        let registry = DatasetRegistry::new(dir, BUDGET, 1);
        assert_eq!(registry.loaded_count(), 0);

        let (hotels, already) = registry.get_or_load("hotels").unwrap();
        assert!(!already);
        assert_eq!(hotels.engine.len(), 3);
        assert_eq!(hotels.engine.filter_cache_budget(), BUDGET);
        let (_, again) = registry.get_or_load("hotels").unwrap();
        assert!(again);

        // A second dataset re-deals the budget proportionally to
        // dataset size: hotels is 3×3 cells, tiny is 2×2.
        let (tiny, _) = registry.get_or_load("tiny").unwrap();
        assert_eq!(registry.loaded_count(), 2);
        assert_eq!(hotels.engine.filter_cache_budget(), BUDGET * 9 / 13);
        assert_eq!(tiny.engine.filter_cache_budget(), BUDGET * 4 / 13);

        // Evicting re-deals the whole budget to the survivor.
        assert!(registry.evict("tiny"));
        assert!(!registry.evict("tiny"));
        assert_eq!(hotels.engine.filter_cache_budget(), BUDGET);
        assert_eq!(registry.loaded_names(), vec!["hotels".to_string()]);
    }

    #[test]
    fn update_mutates_engine_and_names_and_redeals_the_budget() {
        let dir = fixture_dir();
        const BUDGET: usize = 1 << 20;
        let registry = DatasetRegistry::new(dir, BUDGET, 1);
        let (hotels, _) = registry.get_or_load("hotels").unwrap();
        let (tiny, _) = registry.get_or_load("tiny").unwrap();
        assert_eq!(hotels.engine.filter_cache_budget(), BUDGET * 9 / 13);

        // Grow hotels from 3 to 5 records: the proportional deal
        // shifts toward it (15×3 vs 2×2 cells → 15/19 and 4/19).
        let (_, report) = registry
            .update(
                "hotels",
                &[],
                vec![vec![1.0, 1.0, 1.0], vec![2.0, 2.0, 2.0]],
                Some(vec!["p4".into(), "p5".into()]),
            )
            .unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.n, 5);
        assert_eq!(hotels.engine.len(), 5);
        assert_eq!(hotels.data.read().unwrap().name(4), "p5");
        assert_eq!(hotels.engine.filter_cache_budget(), BUDGET * 15 / 19);
        assert_eq!(tiny.engine.filter_cache_budget(), BUDGET * 4 / 19);

        // Deletes shift the surviving labels with their rows.
        let (_, report) = registry.update("hotels", &[0], vec![], None).unwrap();
        assert_eq!(report.deleted, 1);
        assert_eq!(hotels.data.read().unwrap().name(0), "p2");

        // A rejected update changes nothing on either side: labels
        // are identities, so a duplicate is refused.
        let err = registry
            .update(
                "hotels",
                &[],
                vec![vec![3.0, 3.0, 3.0]],
                Some(vec!["p2".into()]),
            )
            .unwrap_err();
        assert_eq!(err.code, code::BAD_REQUEST);
        assert_eq!(hotels.engine.len(), 4);
        assert_eq!(hotels.engine.dataset_epoch(), 2);
        // Label-policy mismatches are typed errors too.
        assert_eq!(
            registry
                .update("hotels", &[], vec![vec![3.0, 3.0, 3.0]], None)
                .unwrap_err()
                .code,
            code::BAD_REQUEST
        );
        assert_eq!(
            registry
                .update("tiny", &[], vec![vec![1.0, 1.0]], Some(vec!["x".into()]))
                .unwrap_err()
                .code,
            code::BAD_REQUEST
        );

        // Evict-then-reload reverts to disk state: in-memory updates
        // never touch the CSV file.
        assert!(registry.evict("hotels"));
        let (reloaded, _) = registry.get_or_load("hotels").unwrap();
        assert_eq!(reloaded.engine.len(), 3);
        assert_eq!(reloaded.engine.dataset_epoch(), 0);
        assert_eq!(reloaded.data.read().unwrap().name(0), "p1");
    }

    #[test]
    fn bad_names_and_files_are_typed() {
        let dir = fixture_dir();
        let registry = DatasetRegistry::new(dir, 1 << 20, 1);
        for bad in ["../etc/passwd", "a/b", "", "a b", "x.csv"] {
            let err = registry.get_or_load(bad).unwrap_err();
            assert_eq!(err.code, code::BAD_REQUEST, "{bad:?}");
        }
        assert_eq!(
            registry.get_or_load("missing").unwrap_err().code,
            code::UNKNOWN_DATASET
        );
        assert_eq!(
            registry.get_or_load("broken").unwrap_err().code,
            code::DATASET_ERROR
        );
        assert_eq!(registry.loaded_count(), 0);
    }

    #[test]
    fn available_lists_csv_stems() {
        let dir = fixture_dir();
        let registry = DatasetRegistry::new(dir, 1 << 20, 1);
        let names = registry.available();
        assert!(names.contains(&"hotels".to_string()), "{names:?}");
        assert!(names.contains(&"tiny".to_string()), "{names:?}");
    }
}
