//! The engine registry: one lazily built [`UtkEngine`] per served
//! dataset, under a **shared** filter-cache byte budget.
//!
//! Datasets are CSV files in one directory; `name` maps to
//! `<dir>/<name>.csv`. An engine is built on the first request that
//! touches its dataset (or an explicit `load` op) and stays resident
//! until evicted. The registry's byte budget is dealt across resident
//! engines **proportionally to their dataset size** (a million-row
//! engine gets a bigger slice of r-skyband memoization than a toy
//! one) and **re-dealt** on every load/evict — and on every `update`,
//! since an update changes a dataset's byte size — through
//! [`UtkEngine::set_filter_cache_budget`]: shrinking a slice evicts
//! LRU entries, growing frees headroom, and either way surviving
//! entries stay warm (the engine-level resize is in-place).
//!
//! `update` mutates the *resident* engine and its parsed CSV payload
//! (labels move with their rows); the source CSV file is never
//! touched. Without a WAL directory an evict-then-reload therefore
//! reverts to disk state — which is why evicting a mutated dataset is
//! refused with `would_lose_updates` in that configuration. With a
//! WAL directory ([`DatasetRegistry::with_wal_dir`]) every mutation
//! is appended + fsynced to `<wal-dir>/<name>.wal` **before** the
//! engine commits its epoch bump, loads replay the log (from the
//! compaction snapshot `<name>.snapshot.csv` when one exists), and
//! the durability invariant holds: if epoch `N` was ever visible to
//! a client, a reload replays to exactly epoch `N`.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};

use crate::proto::{code, ProtoError};
use utk_core::engine::{UpdateReport, UtkEngine};
use utk_core::obs::{Clock, MonotonicClock};
use utk_data::csv::{parse_csv, write_csv, CsvData};
use utk_data::wal::{WalFile, WalRecord};

/// One resident dataset: the parsed CSV (for record names) and its
/// engine.
#[derive(Debug)]
pub struct LoadedDataset {
    /// Registry name (file stem).
    pub name: String,
    /// The parsed CSV payload, as an immutable snapshot behind a
    /// momentary lock: readers clone the `Arc` and serve from it
    /// (never holding the lock across query execution), `update`
    /// swaps in a rebuilt payload. A query racing an update may
    /// therefore resolve names from the adjacent version — bounded
    /// skew for one response; ids inside a response are always
    /// internally consistent (the engine snapshots its own version),
    /// and `CsvData::name` falls back to `#id` past the label column.
    pub data: RwLock<Arc<CsvData>>,
    /// Serializes `update`s on this dataset (stage → WAL append →
    /// engine mutate → swap must not interleave); queries never take
    /// it.
    update_lock: Mutex<()>,
    /// The engine serving it.
    pub engine: UtkEngine,
    /// The dataset's write-ahead log, when the registry serves with a
    /// WAL directory. Appended under `update_lock`; `stats` readers
    /// take the lock only momentarily for counters.
    pub wal: Option<Mutex<WalFile>>,
}

impl LoadedDataset {
    /// The current CSV payload snapshot (momentary read lock).
    pub fn data_snapshot(&self) -> Arc<CsvData> {
        Arc::clone(&self.data.read().expect("dataset data lock"))
    }
}

/// The dataset → engine registry. Thread-safe: one instance serves
/// every connection. The inner mutex guards only the name → engine
/// map; dataset *builds* (CSV parse + R-tree bulk-load, potentially
/// seconds) run outside it, so queries to already-resident datasets
/// and the `stats` op never stall behind another dataset's load. Two
/// racing first-loads of the same dataset may both build; the loser's
/// copy is discarded at insert (first one in wins).
#[derive(Debug)]
pub struct DatasetRegistry {
    dir: PathBuf,
    /// Per-dataset write-ahead logs live here when set; `None` serves
    /// memory-only (the pre-WAL behavior, minus the silent revert).
    wal_dir: Option<PathBuf>,
    /// Record-count compaction trigger: when set, an update that
    /// leaves a dataset's log holding more than this many records
    /// folds it into a snapshot immediately (in addition to the
    /// index-rebuild trigger), bounding replay time between rebuilds.
    wal_compact_every: Option<u64>,
    /// Total filter-cache bytes shared across resident engines.
    cache_budget: usize,
    /// Worker-pool size handed to each engine (0 = one per core).
    pool_threads: usize,
    /// The clock injected into every engine this registry builds, so
    /// one server-wide clock governs all query tracing (tests freeze
    /// it; production uses [`MonotonicClock`]).
    clock: Arc<dyn Clock>,
    loaded: Mutex<BTreeMap<String, Arc<LoadedDataset>>>,
}

/// Whether a name is safe to join onto the datasets directory: a
/// plain file stem, no path separators or traversal.
fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

impl DatasetRegistry {
    /// A registry serving `<dir>/<name>.csv` files, sharing
    /// `cache_budget` filter-cache bytes across however many engines
    /// end up resident.
    pub fn new(dir: PathBuf, cache_budget: usize, pool_threads: usize) -> Self {
        Self {
            dir,
            wal_dir: None,
            wal_compact_every: None,
            cache_budget,
            pool_threads,
            clock: Arc::new(MonotonicClock::new()),
            loaded: Mutex::new(BTreeMap::new()),
        }
    }

    /// Injects the clock every engine built by this registry traces
    /// with (deterministic [`utk_core::obs::TestClock`] in tests).
    /// Builder-style: call before the registry serves requests.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Turns on crash-safe updates: every mutation is logged to
    /// `<wal_dir>/<name>.wal` before it commits, and loads replay the
    /// log. Builder-style: call before the registry serves requests.
    pub fn with_wal_dir(mut self, wal_dir: PathBuf) -> Self {
        self.wal_dir = Some(wal_dir);
        self
    }

    /// Caps how long a write-ahead log may grow between compactions:
    /// an update that leaves a log with more than `n` records folds it
    /// into a snapshot right away, so a reload never replays more than
    /// ~`n` mutations even when the engine's index-rebuild heuristic
    /// (the other compaction trigger) stays quiet. Builder-style: call
    /// before the registry serves requests. No effect without a WAL
    /// directory.
    pub fn with_wal_compact_every(mut self, n: u64) -> Self {
        self.wal_compact_every = Some(n);
        self
    }

    /// The served directory.
    pub fn dir(&self) -> &PathBuf {
        &self.dir
    }

    /// The WAL directory, when crash-safe updates are on.
    pub fn wal_dir(&self) -> Option<&PathBuf> {
        self.wal_dir.as_ref()
    }

    /// Aggregate WAL state across resident datasets:
    /// `(datasets_with_wal, total_records, total_bytes)`.
    pub fn wal_totals(&self) -> (u64, u64, u64) {
        let loaded = self.loaded.lock().expect("registry lock");
        let mut totals = (0, 0, 0);
        for ds in loaded.values() {
            if let Some(wal) = &ds.wal {
                let wal = wal.lock().expect("dataset wal lock");
                totals.0 += 1;
                totals.1 += wal.records();
                totals.2 += wal.bytes();
            }
        }
        totals
    }

    /// Per-dataset WAL state for the `stats` op, in dataset-name
    /// order: `(name, records, bytes, last_epoch)` for every resident
    /// dataset carrying a log. `last_epoch` is the epoch of the newest
    /// durable record (0 for a fresh log).
    pub fn wal_datasets(&self) -> Vec<(String, u64, u64, u64)> {
        let loaded = self.loaded.lock().expect("registry lock");
        let mut out = Vec::new();
        for (name, ds) in loaded.iter() {
            if let Some(wal) = &ds.wal {
                let wal = wal.lock().expect("dataset wal lock");
                out.push((name.clone(), wal.records(), wal.bytes(), wal.epoch()));
            }
        }
        out
    }

    /// Dataset names available on disk (sorted), whether loaded or
    /// not.
    pub fn available(&self) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter_map(|entry| {
                let path = entry.path();
                let stem = path.file_stem()?.to_str()?;
                (path.extension()?.to_str()? == "csv" && valid_name(stem)).then(|| stem.to_string())
            })
            .collect();
        names.sort();
        names
    }

    /// The resident dataset names, sorted.
    pub fn loaded_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .loaded
            .lock()
            .expect("registry lock")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Number of resident engines.
    pub fn loaded_count(&self) -> usize {
        self.loaded.lock().expect("registry lock").len()
    }

    /// Filter-cache bytes currently held across resident engines.
    pub fn cache_bytes(&self) -> usize {
        self.loaded
            .lock()
            .expect("registry lock")
            .values()
            .map(|ds| ds.engine.filter_cache_bytes())
            .sum()
    }

    /// The resident engine for `name`, loading it on first use.
    /// Returns the dataset and whether it was already resident.
    pub fn get_or_load(&self, name: &str) -> Result<(Arc<LoadedDataset>, bool), ProtoError> {
        if !valid_name(name) {
            return Err(ProtoError::bad_request(format!(
                "invalid dataset name {name:?} (use letters, digits, '-', '_')"
            )));
        }
        if let Some(ds) = self.loaded.lock().expect("registry lock").get(name) {
            return Ok((Arc::clone(ds), true));
        }
        // Build outside the lock: resident datasets stay queryable
        // while this one parses and indexes.
        let path = self.dir.join(format!("{name}.csv"));
        let text = std::fs::read_to_string(&path).map_err(|e| ProtoError {
            code: code::UNKNOWN_DATASET,
            message: format!("dataset {name:?}: {}: {e}", path.display()),
        })?;
        let dataset_error = |detail: String| ProtoError {
            code: code::DATASET_ERROR,
            message: format!("dataset {name:?}: {detail}"),
        };
        let mut data =
            parse_csv(&text, &path.to_string_lossy()).map_err(|e| dataset_error(e.to_string()))?;

        // With a WAL directory, recover the log before the engine
        // exists: a torn tail is truncated, a compaction marker
        // switches the replay base to the side-by-side snapshot, and
        // every surviving record is re-applied below so the engine
        // comes up at exactly the epoch the log replays to.
        let mut base_epoch = 0u64;
        let mut to_replay: Vec<WalRecord> = Vec::new();
        let wal = match &self.wal_dir {
            None => None,
            Some(wal_dir) => {
                std::fs::create_dir_all(wal_dir)
                    .map_err(|e| dataset_error(format!("wal dir {}: {e}", wal_dir.display())))?;
                let wal_path = wal_dir.join(format!("{name}.wal"));
                let opened = WalFile::open(&wal_path)
                    .map_err(|e| dataset_error(format!("wal {}: {e}", wal_path.display())))?;
                if let Some(WalRecord::Compact { base_epoch: b }) = opened.records.first() {
                    base_epoch = *b;
                    let snap_path = snapshot_path(&wal_path);
                    let snap_text = std::fs::read_to_string(&snap_path).map_err(|e| {
                        dataset_error(format!("wal snapshot {}: {e}", snap_path.display()))
                    })?;
                    data = parse_csv(&snap_text, &snap_path.to_string_lossy())
                        .map_err(|e| dataset_error(format!("wal snapshot: {e}")))?;
                }
                to_replay = opened.records;
                Some(opened.wal)
            }
        };

        let mut engine = UtkEngine::new(data.dataset.points.clone())
            .map_err(|e| dataset_error(e.to_string()))?
            .with_base_epoch(base_epoch)
            .with_clock(Arc::clone(&self.clock));
        if self.pool_threads != 0 {
            engine = engine.with_pool_threads(self.pool_threads);
        }
        for record in &to_replay {
            if matches!(record, WalRecord::Compact { .. }) {
                continue;
            }
            let (deletes, inserts, labels) = record.mutation();
            let at = record.epoch();
            data.apply_update(deletes, inserts, labels)
                .map_err(|e| dataset_error(format!("wal replay to epoch {at}: {e}")))?;
            engine
                .apply_update(deletes, inserts.to_vec())
                .map_err(|e| dataset_error(format!("wal replay to epoch {at}: {e}")))?;
        }
        let ds = Arc::new(LoadedDataset {
            name: name.to_string(),
            data: RwLock::new(Arc::new(data)),
            update_lock: Mutex::new(()),
            engine,
            wal: wal.map(Mutex::new),
        });
        let mut loaded = self.loaded.lock().expect("registry lock");
        if let Some(winner) = loaded.get(name) {
            // A racing load finished first; serve its copy.
            return Ok((Arc::clone(winner), true));
        }
        loaded.insert(name.to_string(), Arc::clone(&ds));
        Self::rebalance(&loaded, self.cache_budget);
        Ok((ds, false))
    }

    /// Unloads `name`'s engine, freeing its caches and re-dealing the
    /// shared budget to the survivors. Returns whether an engine was
    /// actually resident. In-flight queries on the evicted engine
    /// finish safely — they hold their own `Arc` handle.
    ///
    /// Refused with [`code::WOULD_LOSE_UPDATES`] when the dataset has
    /// in-memory mutations (a non-zero epoch) and no write-ahead log:
    /// evicting would silently revert it to the on-disk CSV at the
    /// next load. With a WAL every mutation is already durable, so
    /// eviction is always safe.
    pub fn evict(&self, name: &str) -> Result<bool, ProtoError> {
        let mut loaded = self.loaded.lock().expect("registry lock");
        if let Some(ds) = loaded.get(name) {
            if ds.wal.is_none() && ds.engine.dataset_epoch() > 0 {
                return Err(ProtoError {
                    code: code::WOULD_LOSE_UPDATES,
                    message: format!(
                        "dataset {name:?} holds {} in-memory mutation epoch(s) and no \
                         write-ahead log; evicting would revert it to the on-disk CSV \
                         (serve with --wal-dir to make updates durable)",
                        ds.engine.dataset_epoch()
                    ),
                });
            }
        }
        let removed = loaded.remove(name).is_some();
        if removed {
            Self::rebalance(&loaded, self.cache_budget);
        }
        Ok(removed)
    }

    /// Mutates a resident dataset (loading it first if needed):
    /// deletes by id, then appends rows, as one engine epoch. The
    /// parsed CSV payload is updated in lock-step so record names and
    /// the wire format's `n` keep tracking the live data, and the
    /// shared cache budget is re-dealt afterwards — the dataset's
    /// byte size just changed, so every resident engine's
    /// proportional slice moves.
    pub fn update(
        &self,
        name: &str,
        deletes: &[u32],
        inserts: Vec<Vec<f64>>,
        labels: Option<Vec<String>>,
    ) -> Result<(Arc<LoadedDataset>, UpdateReport), ProtoError> {
        let (ds, _) = self.get_or_load(name)?;
        let report = {
            // Serialize updates on this dataset; queries keep running
            // on their snapshots throughout (the data lock is taken
            // only momentarily to read and to swap).
            let _updating = ds.update_lock.lock().expect("dataset update lock");
            // Validate the CSV-side effects (label policy, bounds) on
            // a staged copy first: `CsvData::apply_update` mirrors
            // `UtkEngine::apply_update` validation (see the note on
            // the former), so the two succeed or fail as one — the
            // engine runs second and a failure discards the staging.
            let mut staged = (**ds.data.read().expect("dataset data lock")).clone();
            staged
                .apply_update(deletes, &inserts, labels.as_deref())
                .map_err(|e| ProtoError::bad_request(format!("dataset {name:?}: {e}")))?;
            // Durability before visibility: the record reaches disk
            // (append + fsync) before the engine commits its epoch
            // bump. Staging already validated the mutation, so the
            // engine cannot refuse what the log now promises.
            if let Some(wal) = &ds.wal {
                if !(deletes.is_empty() && inserts.is_empty()) {
                    let mut wal = wal.lock().expect("dataset wal lock");
                    let record = WalRecord::for_update(
                        wal.epoch() + 1,
                        deletes,
                        &inserts,
                        labels.as_deref(),
                    );
                    wal.append(&record).map_err(|e| ProtoError {
                        code: code::DATASET_ERROR,
                        message: format!("dataset {name:?}: wal append: {e}"),
                    })?;
                }
            }
            let report = ds
                .engine
                .apply_update(deletes, inserts)
                .map_err(|e| ProtoError::bad_request(format!("dataset {name:?}: {e}")))?;
            if let Some(wal) = &ds.wal {
                let mut wal = wal.lock().expect("dataset wal lock");
                // Two compaction triggers: the engine just paid for a
                // full index rebuild (fold the log into a snapshot so
                // future loads replay from here), or the log outgrew
                // the configured record budget (bound replay time even
                // when the rebuild heuristic stays quiet). Snapshot
                // first, then compact — a crash in between leaves the
                // full log, which still replays from the original CSV.
                let over_budget = self.wal_compact_every.is_some_and(|n| wal.records() > n);
                if report.index_rebuilt || over_budget {
                    compact_into_snapshot(&mut wal, &staged, report.epoch).map_err(|e| {
                        ProtoError {
                            code: code::DATASET_ERROR,
                            message: format!("dataset {name:?}: wal compact: {e}"),
                        }
                    })?;
                }
            }
            *ds.data.write().expect("dataset data lock") = Arc::new(staged);
            report
        };
        let loaded = self.loaded.lock().expect("registry lock");
        Self::rebalance(&loaded, self.cache_budget);
        Ok((ds, report))
    }

    /// Deals `budget` across the resident engines proportionally to
    /// their dataset bytes (records × dimensionality), so the engines
    /// with the most r-skyband state to memoize hold the most cache.
    fn rebalance(loaded: &BTreeMap<String, Arc<LoadedDataset>>, budget: usize) {
        if loaded.is_empty() {
            return;
        }
        let weights: Vec<(&Arc<LoadedDataset>, usize)> = loaded
            .values()
            .map(|ds| (ds, ds.engine.len() * ds.engine.dim()))
            .collect();
        let total: usize = weights.iter().map(|(_, w)| w).sum();
        if total == 0 {
            let share = budget / loaded.len();
            for ds in loaded.values() {
                ds.engine.set_filter_cache_budget(share);
            }
            return;
        }
        for (ds, weight) in weights {
            let share = (budget as u128 * weight as u128 / total as u128) as usize;
            ds.engine.set_filter_cache_budget(share);
        }
    }
}

/// The compaction snapshot path beside a `<name>.wal` log.
fn snapshot_path(wal_path: &Path) -> PathBuf {
    let stem = wal_path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("dataset");
    wal_path.with_file_name(format!("{stem}.snapshot.csv"))
}

/// Writes `data` as the compaction snapshot beside the log (through a
/// fsynced temp file + rename, so a crash never leaves a half-written
/// snapshot under the final name) and truncates the log to a single
/// `Compact` marker at `epoch`.
fn compact_into_snapshot(wal: &mut WalFile, data: &CsvData, epoch: u64) -> Result<(), String> {
    let text = write_csv(&data.dataset, data.labels.as_deref());
    let snap = snapshot_path(wal.path());
    let tmp = snap.with_extension("tmp");
    (|| -> std::io::Result<()> {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.sync_data()?;
        std::fs::rename(&tmp, &snap)
    })()
    .map_err(|e| format!("snapshot {}: {e}", snap.display()))?;
    wal.compact(epoch).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("utk_registry_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("hotels.csv"),
            "p1,8.3,9.1,7.2\np2,2.4,9.6,8.6\np3,5.4,1.6,4.1\n",
        )
        .unwrap();
        std::fs::write(dir.join("tiny.csv"), "1,2\n3,4\n").unwrap();
        std::fs::write(dir.join("broken.csv"), "a,b,c\n1,2\n1,2,3\n").unwrap();
        dir
    }

    #[test]
    fn lazy_load_evict_and_shared_budget() {
        let dir = fixture_dir();
        const BUDGET: usize = 1 << 20;
        let registry = DatasetRegistry::new(dir, BUDGET, 1);
        assert_eq!(registry.loaded_count(), 0);

        let (hotels, already) = registry.get_or_load("hotels").unwrap();
        assert!(!already);
        assert_eq!(hotels.engine.len(), 3);
        assert_eq!(hotels.engine.filter_cache_budget(), BUDGET);
        let (_, again) = registry.get_or_load("hotels").unwrap();
        assert!(again);

        // A second dataset re-deals the budget proportionally to
        // dataset size: hotels is 3×3 cells, tiny is 2×2.
        let (tiny, _) = registry.get_or_load("tiny").unwrap();
        assert_eq!(registry.loaded_count(), 2);
        assert_eq!(hotels.engine.filter_cache_budget(), BUDGET * 9 / 13);
        assert_eq!(tiny.engine.filter_cache_budget(), BUDGET * 4 / 13);

        // Evicting re-deals the whole budget to the survivor.
        assert!(registry.evict("tiny").unwrap());
        assert!(!registry.evict("tiny").unwrap());
        assert_eq!(hotels.engine.filter_cache_budget(), BUDGET);
        assert_eq!(registry.loaded_names(), vec!["hotels".to_string()]);
    }

    #[test]
    fn update_mutates_engine_and_names_and_redeals_the_budget() {
        let dir = fixture_dir();
        const BUDGET: usize = 1 << 20;
        let registry = DatasetRegistry::new(dir, BUDGET, 1);
        let (hotels, _) = registry.get_or_load("hotels").unwrap();
        let (tiny, _) = registry.get_or_load("tiny").unwrap();
        assert_eq!(hotels.engine.filter_cache_budget(), BUDGET * 9 / 13);

        // Grow hotels from 3 to 5 records: the proportional deal
        // shifts toward it (15×3 vs 2×2 cells → 15/19 and 4/19).
        let (_, report) = registry
            .update(
                "hotels",
                &[],
                vec![vec![1.0, 1.0, 1.0], vec![2.0, 2.0, 2.0]],
                Some(vec!["p4".into(), "p5".into()]),
            )
            .unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.n, 5);
        assert_eq!(hotels.engine.len(), 5);
        assert_eq!(hotels.data.read().unwrap().name(4), "p5");
        assert_eq!(hotels.engine.filter_cache_budget(), BUDGET * 15 / 19);
        assert_eq!(tiny.engine.filter_cache_budget(), BUDGET * 4 / 19);

        // Deletes shift the surviving labels with their rows.
        let (_, report) = registry.update("hotels", &[0], vec![], None).unwrap();
        assert_eq!(report.deleted, 1);
        assert_eq!(hotels.data.read().unwrap().name(0), "p2");

        // A rejected update changes nothing on either side: labels
        // are identities, so a duplicate is refused.
        let err = registry
            .update(
                "hotels",
                &[],
                vec![vec![3.0, 3.0, 3.0]],
                Some(vec!["p2".into()]),
            )
            .unwrap_err();
        assert_eq!(err.code, code::BAD_REQUEST);
        assert_eq!(hotels.engine.len(), 4);
        assert_eq!(hotels.engine.dataset_epoch(), 2);
        // Label-policy mismatches are typed errors too.
        assert_eq!(
            registry
                .update("hotels", &[], vec![vec![3.0, 3.0, 3.0]], None)
                .unwrap_err()
                .code,
            code::BAD_REQUEST
        );
        assert_eq!(
            registry
                .update("tiny", &[], vec![vec![1.0, 1.0]], Some(vec!["x".into()]))
                .unwrap_err()
                .code,
            code::BAD_REQUEST
        );

        // Without a WAL, evicting a mutated dataset would silently
        // revert it to disk state at the next load — refused with a
        // typed error, and the engine stays resident.
        let err = registry.evict("hotels").unwrap_err();
        assert_eq!(err.code, code::WOULD_LOSE_UPDATES);
        assert_eq!(registry.loaded_count(), 2);
        assert_eq!(hotels.engine.len(), 4);

        // An unmutated dataset still evicts and reloads from disk.
        assert!(registry.evict("tiny").unwrap());
        let (reloaded, _) = registry.get_or_load("tiny").unwrap();
        assert_eq!(reloaded.engine.dataset_epoch(), 0);
    }

    #[test]
    fn wal_replays_updates_across_evict_and_reload() {
        let dir = fixture_dir();
        let wal_dir = dir.join("wal_replay");
        let _ = std::fs::remove_dir_all(&wal_dir);
        let registry = DatasetRegistry::new(dir.clone(), 1 << 20, 1).with_wal_dir(wal_dir.clone());
        assert_eq!(registry.wal_totals(), (0, 0, 0));

        let (_, report) = registry
            .update(
                "hotels",
                &[0],
                vec![vec![7.0, 7.0, 7.0]],
                Some(vec!["p4".into()]),
            )
            .unwrap();
        assert_eq!(report.epoch, 1);
        let (datasets, records, bytes) = registry.wal_totals();
        assert_eq!((datasets, records), (1, 1));
        assert!(bytes > 0);

        // With a WAL the mutation is durable, so evicting a mutated
        // dataset is allowed — and the reload replays to the exact
        // epoch that was visible before.
        assert!(registry.evict("hotels").unwrap());
        let (reloaded, _) = registry.get_or_load("hotels").unwrap();
        assert_eq!(reloaded.engine.dataset_epoch(), 1);
        assert_eq!(reloaded.engine.len(), 3);
        assert_eq!(reloaded.data.read().unwrap().name(2), "p4");

        // A fresh registry over the same directories (a restarted
        // server) sees the same state.
        drop(registry);
        let restarted = DatasetRegistry::new(dir, 1 << 20, 1).with_wal_dir(wal_dir);
        let (back, _) = restarted.get_or_load("hotels").unwrap();
        assert_eq!(back.engine.dataset_epoch(), 1);
        assert_eq!(back.data.read().unwrap().name(0), "p2");
        assert_eq!(back.data.read().unwrap().name(2), "p4");
    }

    #[test]
    fn index_rebuild_compacts_the_wal_into_a_snapshot() {
        let dir = fixture_dir();
        let wal_dir = dir.join("wal_compact");
        let _ = std::fs::remove_dir_all(&wal_dir);
        let registry = DatasetRegistry::new(dir.clone(), 1 << 20, 1).with_wal_dir(wal_dir.clone());

        // Enough churn to trip the engine's rebuild heuristic: grow
        // the 3-row dataset well past its original size.
        let mut epoch = 0;
        let mut rebuilt = false;
        for i in 0..12 {
            let row = vec![1.0 + f64::from(i), 2.0, 3.0];
            let (_, report) = registry
                .update("hotels", &[], vec![row], Some(vec![format!("x{i}")]))
                .unwrap();
            epoch = report.epoch;
            rebuilt |= report.index_rebuilt;
        }
        assert!(rebuilt, "12 single-row inserts never rebuilt the tree");
        let (_, records, _) = registry.wal_totals();
        assert!(
            records < 12,
            "compaction should have folded the log ({records} records left)"
        );
        assert!(wal_dir.join("hotels.snapshot.csv").exists());

        // Restart: the snapshot plus the log tail replays to the same
        // epoch and data as the uninterrupted registry.
        let n_before = {
            let (ds, _) = registry.get_or_load("hotels").unwrap();
            ds.engine.len()
        };
        drop(registry);
        let restarted = DatasetRegistry::new(dir, 1 << 20, 1).with_wal_dir(wal_dir);
        let (back, _) = restarted.get_or_load("hotels").unwrap();
        assert_eq!(back.engine.dataset_epoch(), epoch);
        assert_eq!(back.engine.len(), n_before);
        assert_eq!(back.data.read().unwrap().name(n_before as u32 - 1), "x11");
    }

    #[test]
    fn record_budget_compacts_the_wal_without_a_rebuild() {
        let dir = fixture_dir();
        let wal_dir = dir.join("wal_every");
        let _ = std::fs::remove_dir_all(&wal_dir);
        let registry = DatasetRegistry::new(dir.clone(), 1 << 20, 1)
            .with_wal_dir(wal_dir.clone())
            .with_wal_compact_every(2);

        // Three single-row inserts stay under the overlay-rebuild
        // threshold (overhead 3 vs n 6), so only the record budget can
        // compact here: the third update leaves 3 > 2 records and the
        // log folds into a snapshot with no rebuild involved.
        for i in 0..3 {
            let row = vec![1.0 + f64::from(i), 2.0, 3.0];
            let (_, report) = registry
                .update("hotels", &[], vec![row], Some(vec![format!("y{i}")]))
                .unwrap();
            assert!(!report.index_rebuilt, "insert {i} tripped a rebuild");
        }
        let (_, records, _) = registry.wal_totals();
        assert!(
            records <= 1,
            "record budget should have folded the log ({records} records left)"
        );
        assert!(wal_dir.join("hotels.snapshot.csv").exists());
        let per_dataset = registry.wal_datasets();
        assert_eq!(per_dataset.len(), 1);
        let (name, recs, bytes, last_epoch) = &per_dataset[0];
        assert_eq!(name, "hotels");
        assert_eq!(*recs, records);
        assert!(*bytes > 0);
        assert_eq!(*last_epoch, 3);

        // Restart: snapshot + tail replays to the exact same state.
        drop(registry);
        let restarted = DatasetRegistry::new(dir, 1 << 20, 1).with_wal_dir(wal_dir);
        let (back, _) = restarted.get_or_load("hotels").unwrap();
        assert_eq!(back.engine.dataset_epoch(), 3);
        assert_eq!(back.engine.len(), 6);
        assert_eq!(back.data.read().unwrap().name(5), "y2");
    }

    #[test]
    fn bad_names_and_files_are_typed() {
        let dir = fixture_dir();
        let registry = DatasetRegistry::new(dir, 1 << 20, 1);
        for bad in ["../etc/passwd", "a/b", "", "a b", "x.csv"] {
            let err = registry.get_or_load(bad).unwrap_err();
            assert_eq!(err.code, code::BAD_REQUEST, "{bad:?}");
        }
        assert_eq!(
            registry.get_or_load("missing").unwrap_err().code,
            code::UNKNOWN_DATASET
        );
        assert_eq!(
            registry.get_or_load("broken").unwrap_err().code,
            code::DATASET_ERROR
        );
        assert_eq!(registry.loaded_count(), 0);
    }

    #[test]
    fn available_lists_csv_stems() {
        let dir = fixture_dir();
        let registry = DatasetRegistry::new(dir, 1 << 20, 1);
        let names = registry.available();
        assert!(names.contains(&"hotels".to_string()), "{names:?}");
        assert!(names.contains(&"tiny".to_string()), "{names:?}");
    }
}
