//! Per-connection state machine for the evented transport.
//!
//! A [`Conn`] owns one non-blocking [`Stream`] and cycles through
//! three states: **reading** a request line, **executing** it (work
//! ops run on the executor pool; the reactor holds the connection
//! until the completion comes back), and **draining** the buffered
//! response. Every socket call is `WouldBlock`-aware: the reactor
//! calls [`Conn::step`] each tick and the connection does exactly as
//! much I/O as the socket will take without blocking.
//!
//! Memory discipline: a connection never reads ahead while a response
//! is pending (`executing` or a non-empty write buffer), so each
//! connection holds at most one buffered response at a time —
//! mirroring the request/response sequencing of the threads
//! transport. The honest tradeoff versus that transport: responses
//! here are fully materialized (the threads path streams line by
//! line), bounded by `max_inflight` concurrent responses.
//!
//! I/O error contract (shared with the threads transport):
//!
//! * `ErrorKind::Interrupted` (EINTR) is a pure retry everywhere —
//!   it never counts against the write-stall window and never closes
//!   a connection;
//! * a write stall is bounded by *zero-progress* time: only a full
//!   `write_timeout` window with not one byte accepted closes the
//!   connection, and the socket is shut down first so the peer sees
//!   EOF mid-line rather than a torn prefix passing as a complete
//!   response;
//! * request lines are capped at [`MAX_REQUEST_BYTES`], exactly as on
//!   the threads transport.

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

use crate::proto::Request;
use crate::reactor::{Executor, Job};
use crate::server::{
    claim_admission, respond_admitted, write_line, Shared, Stream, MAX_REQUEST_BYTES,
};

/// What one [`Conn::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Step {
    /// Bytes moved or a request was dispatched/answered.
    Progress,
    /// Nothing to do until the socket or an executor completion says
    /// otherwise.
    Idle,
    /// The connection is finished; the reactor must drop it.
    Closed,
}

/// Outcome of one attempt to drain the write buffer.
enum Flow {
    /// Everything buffered has been written.
    Drained,
    /// The socket stopped taking bytes (within the stall window).
    Blocked,
    /// The peer is gone (EOF on write, hard error, or stall expiry).
    Dead,
}

/// Outcome of one attempt to read from the socket.
enum Fill {
    /// New bytes (or EOF) arrived.
    Progress,
    /// Nothing readable right now.
    Blocked,
    /// Hard read error or an oversized request line.
    Closed,
}

/// One evented connection.
pub(crate) struct Conn {
    stream: Stream,
    /// Bytes read but not yet consumed as request lines.
    read_buf: Vec<u8>,
    /// The buffered response being drained to the socket.
    write_buf: Vec<u8>,
    /// How much of `write_buf` has been written — partial writes
    /// resume from here, never re-sending or dropping bytes.
    written: usize,
    /// A work op is running on the executor; its completion will call
    /// [`Conn::complete`].
    executing: bool,
    /// The peer half-closed its write side.
    eof: bool,
    /// Close once the write buffer drains.
    closing: bool,
    /// Clock reading at the start of the current zero-progress write
    /// stall (`None` while writes make progress).
    stalled_since: Option<u64>,
    /// The zero-progress write bound, in nanoseconds.
    stall_nanos: u64,
}

impl Conn {
    pub(crate) fn new(stream: Stream, write_timeout: Duration) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            executing: false,
            eof: false,
            closing: false,
            stalled_since: None,
            stall_nanos: write_timeout.as_nanos().min(u64::MAX as u128) as u64,
        }
    }

    /// Hands back an executor completion: the buffered response for
    /// the request this connection was executing.
    pub(crate) fn complete(&mut self, bytes: Vec<u8>) {
        // No read-ahead while executing, so the write buffer is
        // always drained by the time a completion arrives.
        self.write_buf = bytes;
        self.written = 0;
        self.executing = false;
    }

    /// Advances the state machine as far as the socket allows: drain
    /// pending output, then consume complete request lines, then pull
    /// more bytes. Returns [`Step::Closed`] when the reactor should
    /// drop the connection.
    pub(crate) fn step(
        &mut self,
        token: u64,
        shared: &Arc<Shared>,
        executor: &mut Executor,
    ) -> Step {
        let mut progress = false;
        let done = |progress: bool| {
            if progress {
                Step::Progress
            } else {
                Step::Idle
            }
        };
        loop {
            match self.flush_pending(shared) {
                (_, Flow::Dead) => return Step::Closed,
                (p, Flow::Blocked) => return done(progress || p),
                (p, Flow::Drained) => progress |= p,
            }
            if self.closing {
                return Step::Closed;
            }
            if self.executing {
                return done(progress);
            }
            if let Some(line) = self.take_line() {
                progress = true;
                if line.len() > MAX_REQUEST_BYTES {
                    return Step::Closed; // oversized request line
                }
                self.process_line(&line, token, shared, executor);
                continue; // drain (or dispatch) what that produced
            }
            if self.eof {
                return Step::Closed;
            }
            if shared.shutting_down() {
                // Drain semantics mirror the threads transport: a
                // partial line at shutdown is dropped, complete
                // buffered lines (handled above) are still answered.
                return Step::Closed;
            }
            match self.fill() {
                Fill::Progress => progress = true,
                Fill::Blocked => return done(progress),
                Fill::Closed => return Step::Closed,
            }
        }
    }

    /// Drains as much of the write buffer as the socket will take.
    /// EINTR retries; `WouldBlock` starts (or continues) the
    /// zero-progress stall clock, and on expiry the socket is shut
    /// down before the connection dies so the peer sees EOF, never a
    /// torn prefix as a complete response.
    fn flush_pending(&mut self, shared: &Arc<Shared>) -> (bool, Flow) {
        let mut progress = false;
        while self.written < self.write_buf.len() {
            let pending = self.write_buf.get(self.written..).unwrap_or(&[]);
            match self.stream.write(pending) {
                Ok(0) => return (progress, Flow::Dead),
                Ok(n) => {
                    self.written += n;
                    self.stalled_since = None;
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    let now = shared.clock.now_nanos();
                    let since = *self.stalled_since.get_or_insert(now);
                    if now.saturating_sub(since) >= self.stall_nanos {
                        self.stream.shutdown();
                        return (progress, Flow::Dead);
                    }
                    return (progress, Flow::Blocked);
                }
                Err(_) => return (progress, Flow::Dead),
            }
        }
        if self.written > 0 {
            self.write_buf.clear();
            self.written = 0;
        }
        (progress, Flow::Drained)
    }

    /// Takes one complete request line (newline included) out of the
    /// read buffer, or — at EOF — the final unterminated line, which
    /// is still a request (exactly as on the threads transport).
    fn take_line(&mut self) -> Option<Vec<u8>> {
        if let Some(i) = self.read_buf.iter().position(|&b| b == b'\n') {
            let rest = self.read_buf.split_off(i + 1);
            return Some(std::mem::replace(&mut self.read_buf, rest));
        }
        if self.eof && !self.read_buf.is_empty() {
            return Some(std::mem::take(&mut self.read_buf));
        }
        None
    }

    /// Parses and routes one request line. Parse errors and control
    /// ops are answered inline on the reactor (they are cheap and
    /// slot-free, like `stats` on the threads transport); admitted
    /// work is dispatched to the executor with its [`AdmitSlot`]
    /// already claimed — overload was shed *before* any queueing.
    ///
    /// [`AdmitSlot`]: crate::server::AdmitSlot
    fn process_line(
        &mut self,
        line: &[u8],
        token: u64,
        shared: &Arc<Shared>,
        executor: &mut Executor,
    ) {
        // Invalid UTF-8 becomes U+FFFD, which `Request::parse`
        // rejects as a `bad_request` like any other bad byte.
        let text = String::from_utf8_lossy(line);
        let text = text.trim();
        if text.is_empty() {
            return;
        }
        let started_at = shared.clock.now_nanos();
        let request = match Request::parse(text) {
            Ok(request) => request,
            Err(e) => {
                shared.count_error(e.code);
                // Writes into a Vec<u8> cannot fail.
                let _ = write_line(&mut self.write_buf, &e.to_json());
                return;
            }
        };
        match claim_admission(shared, &request) {
            Ok(Some(slot)) => {
                self.executing = true;
                executor.submit(Job {
                    token,
                    request,
                    slot,
                    started_at,
                });
            }
            admission => {
                let _ =
                    respond_admitted(&request, admission, shared, &mut self.write_buf, started_at);
            }
        }
    }

    /// Reads whatever the socket has, up to a complete line. EINTR
    /// retries; an over-cap line without a newline in sight closes
    /// the connection (same cap, same silence as the threads
    /// transport).
    fn fill(&mut self) -> Fill {
        let mut any = false;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    return Fill::Progress;
                }
                Ok(n) => {
                    any = true;
                    let got = chunk.get(..n).unwrap_or(&[]);
                    self.read_buf.extend_from_slice(got);
                    if got.contains(&b'\n') {
                        return Fill::Progress;
                    }
                    if self.read_buf.len() > MAX_REQUEST_BYTES {
                        return Fill::Closed; // oversized request line
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return if any { Fill::Progress } else { Fill::Blocked };
                }
                Err(_) => return Fill::Closed,
            }
        }
    }
}
