//! The `utk serve` request/response protocol: newline-delimited JSON,
//! one request per line, reusing the `utk::wire` result format.
//!
//! # Grammar
//!
//! Requests (one JSON object per line):
//!
//! ```text
//! {"op":"load","dataset":NAME}
//! {"op":"query","dataset":NAME,"q":QUERYLINE}
//! {"op":"batch","dataset":NAME,"queries":[LINE,...]}
//! {"op":"stats"}
//! {"op":"evict","dataset":NAME}
//! {"op":"shutdown"}
//! ```
//!
//! `NAME` resolves to `<datasets-dir>/<NAME>.csv`; `QUERYLINE` / each
//! batch `LINE` uses the `utk batch` query-file syntax (see
//! [`crate::spec`]). A `batch` request ships the file's lines
//! verbatim — comments and blanks included — so the server reproduces
//! `utk batch` line numbering exactly.
//!
//! Responses:
//!
//! ```text
//! load     → {"ok":"load","dataset":NAME,"n":N,"d":D,"already_loaded":BOOL}
//! query    → one wire result object, or {"error":MSG}   (the `utk batch` line shape)
//! batch    → {"ok":"batch","dataset":NAME,"count":N}, then N wire/error lines
//! stats    → {"ok":"stats","requests_served":N,"busy_rejections":N,
//!             "inflight":N,"max_inflight":N,"datasets_loaded":N,
//!             "datasets":[NAME,...],"registry_cache_bytes":N}
//! evict    → {"ok":"evict","dataset":NAME,"evicted":BOOL}
//! shutdown → {"ok":"shutdown"}
//! ```
//!
//! Protocol-level failures (as opposed to per-query failures, which
//! keep the plain `{"error":MSG}` shape for byte-compatibility with
//! `utk batch`) respond with a **coded** error object:
//!
//! ```text
//! {"error":MSG,"code":CODE}
//! CODE ∈ bad_request | unknown_dataset | dataset_error | busy | shutting_down
//! ```
//!
//! `busy` is the admission-control rejection: the server sheds the
//! request instead of queueing it; clients retry or back off.

use crate::json::{self, Value};
use utk_core::wire::{coded_error_json, escape};

/// Protocol error codes (the `code` field of a coded error object).
pub mod code {
    /// Malformed request line (bad JSON, missing field, unknown op,
    /// invalid dataset name).
    pub const BAD_REQUEST: &str = "bad_request";
    /// The named dataset has no CSV file in the served directory.
    pub const UNKNOWN_DATASET: &str = "unknown_dataset";
    /// The dataset file exists but failed to parse or index.
    pub const DATASET_ERROR: &str = "dataset_error";
    /// Admission control shed the request: the in-flight limit is
    /// reached.
    pub const BUSY: &str = "busy";
    /// The server is draining after a `shutdown` request.
    pub const SHUTTING_DOWN: &str = "shutting_down";
}

/// One request line, parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Load (or confirm) a dataset without querying it.
    Load {
        /// Dataset name (`<name>.csv` under the served directory).
        dataset: String,
    },
    /// Answer one query line against a dataset.
    Query {
        /// Dataset name.
        dataset: String,
        /// One `utk batch`-syntax query line.
        q: String,
    },
    /// Answer a whole query file against a dataset.
    Batch {
        /// Dataset name.
        dataset: String,
        /// The file's lines, verbatim (comments/blanks included).
        queries: Vec<String>,
    },
    /// Server counters and registry state.
    Stats,
    /// Unload a dataset's engine, freeing its caches.
    Evict {
        /// Dataset name.
        dataset: String,
    },
    /// Stop accepting, drain in-flight work, exit.
    Shutdown,
}

/// A protocol-level failure: the message plus its [`code`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// One of the [`code`] constants.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ProtoError {
    /// A `bad_request` error.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self {
            code: code::BAD_REQUEST,
            message: message.into(),
        }
    }

    /// The coded error wire object for this failure.
    pub fn to_json(&self) -> String {
        coded_error_json(self.code, &self.message)
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.message, self.code)
    }
}

impl std::error::Error for ProtoError {}

fn json_str_list(items: &[String]) -> String {
    let parts: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape(s))).collect();
    format!("[{}]", parts.join(","))
}

impl Request {
    /// Serializes this request as one protocol line.
    pub fn to_json(&self) -> String {
        match self {
            Request::Load { dataset } => {
                format!(r#"{{"op":"load","dataset":"{}"}}"#, escape(dataset))
            }
            Request::Query { dataset, q } => format!(
                r#"{{"op":"query","dataset":"{}","q":"{}"}}"#,
                escape(dataset),
                escape(q)
            ),
            Request::Batch { dataset, queries } => format!(
                r#"{{"op":"batch","dataset":"{}","queries":{}}}"#,
                escape(dataset),
                json_str_list(queries)
            ),
            Request::Stats => r#"{"op":"stats"}"#.to_string(),
            Request::Evict { dataset } => {
                format!(r#"{{"op":"evict","dataset":"{}"}}"#, escape(dataset))
            }
            Request::Shutdown => r#"{"op":"shutdown"}"#.to_string(),
        }
    }

    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let value = json::parse(line).map_err(|e| ProtoError::bad_request(e.to_string()))?;
        let op = value
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| ProtoError::bad_request("request needs a string \"op\" field"))?;
        let dataset = |v: &Value| -> Result<String, ProtoError> {
            v.get("dataset")
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| {
                    ProtoError::bad_request(format!("op {op:?} needs a string \"dataset\" field"))
                })
        };
        match op {
            "load" => Ok(Request::Load {
                dataset: dataset(&value)?,
            }),
            "query" => Ok(Request::Query {
                dataset: dataset(&value)?,
                q: value
                    .get("q")
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| {
                        ProtoError::bad_request("op \"query\" needs a string \"q\" field")
                    })?,
            }),
            "batch" => {
                let queries = value
                    .get("queries")
                    .and_then(Value::as_array)
                    .ok_or_else(|| {
                        ProtoError::bad_request("op \"batch\" needs an array \"queries\" field")
                    })?
                    .iter()
                    .map(|item| {
                        item.as_str().map(str::to_string).ok_or_else(|| {
                            ProtoError::bad_request("\"queries\" entries must be strings")
                        })
                    })
                    .collect::<Result<Vec<String>, ProtoError>>()?;
                Ok(Request::Batch {
                    dataset: dataset(&value)?,
                    queries,
                })
            }
            "stats" => Ok(Request::Stats),
            "evict" => Ok(Request::Evict {
                dataset: dataset(&value)?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtoError::bad_request(format!("unknown op {other:?}"))),
        }
    }
}

/// The counters a `stats` response carries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsBody {
    /// Requests fully processed (every op; excludes shed and
    /// malformed requests).
    pub requests_served: u64,
    /// Requests shed by admission control.
    pub busy_rejections: u64,
    /// Query/batch requests currently executing.
    pub inflight: u64,
    /// The admission limit.
    pub max_inflight: u64,
    /// Datasets currently resident.
    pub datasets_loaded: u64,
    /// Their names, sorted.
    pub datasets: Vec<String>,
    /// Total filter-cache bytes across resident engines.
    pub registry_cache_bytes: u64,
}

/// One response line, parsed. The server builds these; clients parse
/// them. Wire result objects pass through verbatim as
/// [`Response::Result`] — their bytes are the `utk batch` contract
/// and are never re-interpreted.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `load` succeeded.
    Load {
        /// Dataset name.
        dataset: String,
        /// Records.
        n: u64,
        /// Dimensionality.
        d: u64,
        /// True when the dataset was already resident.
        already_loaded: bool,
    },
    /// Header preceding a batch's result lines.
    BatchHeader {
        /// Dataset name.
        dataset: String,
        /// How many result lines follow.
        count: u64,
    },
    /// `stats` counters.
    Stats(StatsBody),
    /// `evict` outcome.
    Evict {
        /// Dataset name.
        dataset: String,
        /// True when an engine was actually unloaded.
        evicted: bool,
    },
    /// `shutdown` acknowledged; the server drains and exits.
    Shutdown,
    /// A wire result or per-query error line, verbatim.
    Result(String),
    /// A coded protocol error.
    Error(ProtoError),
}

impl Response {
    /// Serializes this response as one protocol line.
    pub fn to_json(&self) -> String {
        match self {
            Response::Load {
                dataset,
                n,
                d,
                already_loaded,
            } => format!(
                r#"{{"ok":"load","dataset":"{}","n":{n},"d":{d},"already_loaded":{already_loaded}}}"#,
                escape(dataset)
            ),
            Response::BatchHeader { dataset, count } => format!(
                r#"{{"ok":"batch","dataset":"{}","count":{count}}}"#,
                escape(dataset)
            ),
            Response::Stats(s) => format!(
                concat!(
                    r#"{{"ok":"stats","requests_served":{},"busy_rejections":{},"#,
                    r#""inflight":{},"max_inflight":{},"datasets_loaded":{},"#,
                    r#""datasets":{},"registry_cache_bytes":{}}}"#
                ),
                s.requests_served,
                s.busy_rejections,
                s.inflight,
                s.max_inflight,
                s.datasets_loaded,
                json_str_list(&s.datasets),
                s.registry_cache_bytes,
            ),
            Response::Evict { dataset, evicted } => format!(
                r#"{{"ok":"evict","dataset":"{}","evicted":{evicted}}}"#,
                escape(dataset)
            ),
            Response::Shutdown => r#"{"ok":"shutdown"}"#.to_string(),
            Response::Result(line) => line.clone(),
            Response::Error(e) => e.to_json(),
        }
    }

    /// Parses one response line. Wire result objects (anything that is
    /// valid JSON but not an `ok`/coded-error envelope) come back as
    /// [`Response::Result`] with their bytes untouched.
    pub fn parse(line: &str) -> Result<Response, ProtoError> {
        let value = json::parse(line).map_err(|e| ProtoError::bad_request(e.to_string()))?;
        if let Some(message) = value.get("error").and_then(Value::as_str) {
            let Some(code_str) = value.get("code").and_then(Value::as_str) else {
                // A plain {"error":…} is a per-query failure line.
                return Ok(Response::Result(line.to_string()));
            };
            let code = [
                code::BAD_REQUEST,
                code::UNKNOWN_DATASET,
                code::DATASET_ERROR,
                code::BUSY,
                code::SHUTTING_DOWN,
            ]
            .iter()
            .find(|c| **c == code_str)
            .copied()
            .ok_or_else(|| ProtoError::bad_request(format!("unknown error code {code_str:?}")))?;
            return Ok(Response::Error(ProtoError {
                code,
                message: message.to_string(),
            }));
        }
        let Some(ok) = value.get("ok").and_then(Value::as_str) else {
            return Ok(Response::Result(line.to_string()));
        };
        let field_u64 = |key: &str| -> Result<u64, ProtoError> {
            value.get(key).and_then(Value::as_u64).ok_or_else(|| {
                ProtoError::bad_request(format!("{ok:?} response needs a numeric {key:?}"))
            })
        };
        let field_str = |key: &str| -> Result<String, ProtoError> {
            value
                .get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| {
                    ProtoError::bad_request(format!("{ok:?} response needs a string {key:?}"))
                })
        };
        let field_bool = |key: &str| -> Result<bool, ProtoError> {
            value.get(key).and_then(Value::as_bool).ok_or_else(|| {
                ProtoError::bad_request(format!("{ok:?} response needs a boolean {key:?}"))
            })
        };
        match ok {
            "load" => Ok(Response::Load {
                dataset: field_str("dataset")?,
                n: field_u64("n")?,
                d: field_u64("d")?,
                already_loaded: field_bool("already_loaded")?,
            }),
            "batch" => Ok(Response::BatchHeader {
                dataset: field_str("dataset")?,
                count: field_u64("count")?,
            }),
            "stats" => Ok(Response::Stats(StatsBody {
                requests_served: field_u64("requests_served")?,
                busy_rejections: field_u64("busy_rejections")?,
                inflight: field_u64("inflight")?,
                max_inflight: field_u64("max_inflight")?,
                datasets_loaded: field_u64("datasets_loaded")?,
                datasets: value
                    .get("datasets")
                    .and_then(Value::as_array)
                    .ok_or_else(|| {
                        ProtoError::bad_request("\"stats\" response needs a \"datasets\" array")
                    })?
                    .iter()
                    .map(|item| {
                        item.as_str().map(str::to_string).ok_or_else(|| {
                            ProtoError::bad_request("\"datasets\" entries must be strings")
                        })
                    })
                    .collect::<Result<Vec<String>, ProtoError>>()?,
                registry_cache_bytes: field_u64("registry_cache_bytes")?,
            })),
            "evict" => Ok(Response::Evict {
                dataset: field_str("dataset")?,
                evicted: field_bool("evicted")?,
            }),
            "shutdown" => Ok(Response::Shutdown),
            other => Err(ProtoError::bad_request(format!(
                "unknown response kind {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_request_variant_round_trips() {
        let requests = [
            Request::Load {
                dataset: "hotels".into(),
            },
            Request::Query {
                dataset: "a-b_2".into(),
                q: "utk1 --k 2 --lo 0.05,0.05 --hi 0.45,0.25".into(),
            },
            Request::Batch {
                dataset: "x".into(),
                queries: vec![
                    "# comment with \"quotes\" and \\ slashes".into(),
                    String::new(),
                    "topk --k 3 --weights 0.3,0.5,0.2".into(),
                ],
            },
            Request::Stats,
            Request::Evict {
                dataset: "hotels".into(),
            },
            Request::Shutdown,
        ];
        for req in requests {
            let line = req.to_json();
            let back = Request::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, req, "{line}");
        }
    }

    #[test]
    fn every_response_variant_round_trips() {
        let responses = [
            Response::Load {
                dataset: "hotels".into(),
                n: 7,
                d: 3,
                already_loaded: false,
            },
            Response::BatchHeader {
                dataset: "hotels".into(),
                count: 6,
            },
            Response::Stats(StatsBody {
                requests_served: 12,
                busy_rejections: 3,
                inflight: 1,
                max_inflight: 8,
                datasets_loaded: 2,
                datasets: vec!["anti".into(), "hotels".into()],
                registry_cache_bytes: 4096,
            }),
            Response::Evict {
                dataset: "hotels".into(),
                evicted: true,
            },
            Response::Shutdown,
            Response::Result(r#"{"error":"line 4: unknown query kind \"frobnicate\""}"#.into()),
            Response::Result(r#"{"query":"topk","k":2,"weights":[0.3,0.5],"ranking":[]}"#.into()),
            Response::Error(ProtoError {
                code: code::BUSY,
                message: "2 requests in flight (limit 2)".into(),
            }),
        ];
        for resp in responses {
            let line = resp.to_json();
            let back = Response::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, resp, "{line}");
            // Serialization is stable through a second round trip.
            assert_eq!(back.to_json(), line);
        }
    }

    #[test]
    fn malformed_requests_are_coded_bad_request() {
        for bad in [
            "not json",
            r#"{"dataset":"x"}"#,
            r#"{"op":"frobnicate"}"#,
            r#"{"op":"query","dataset":"x"}"#,
            r#"{"op":"batch","dataset":"x","queries":[1]}"#,
            r#"{"op":"load"}"#,
        ] {
            let err = Request::parse(bad).unwrap_err();
            assert_eq!(err.code, code::BAD_REQUEST, "{bad}");
        }
    }
}
