//! The `utk serve` request/response protocol: newline-delimited JSON,
//! one request per line, reusing the `utk::wire` result format.
//!
//! # Grammar
//!
//! Requests (one JSON object per line):
//!
//! ```text
//! {"op":"load","dataset":NAME}
//! {"op":"query","dataset":NAME,"q":QUERYLINE}
//! {"op":"batch","dataset":NAME,"queries":[LINE,...]}
//! {"op":"update","dataset":NAME,"delete":[ID,...],"insert":[[V,...],...]
//!                               (,"labels":[NAME,...])}
//! {"op":"stats"}
//! {"op":"metrics"(,"format":"prometheus"|"json")}
//! {"op":"evict","dataset":NAME}
//! {"op":"shutdown"}
//! ```
//!
//! `NAME` resolves to `<datasets-dir>/<NAME>.csv`; `QUERYLINE` / each
//! batch `LINE` uses the `utk batch` query-file syntax (see
//! [`crate::spec`]). A `batch` request ships the file's lines
//! verbatim — comments and blanks included — so the server reproduces
//! `utk batch` line numbering exactly.
//!
//! Responses:
//!
//! ```text
//! load     → {"ok":"load","dataset":NAME,"n":N,"d":D,"already_loaded":BOOL}
//! query    → one wire result object, or {"error":MSG}   (the `utk batch` line shape)
//! batch    → {"ok":"batch","dataset":NAME,"count":N}, then N wire/error lines
//! update   → {"ok":"update","dataset":NAME,"epoch":E,"n":N,"inserted":I,
//!             "deleted":D,"filter_invalidated":V,"filter_retained":R,
//!             "index_rebuilt":BOOL}
//! stats    → {"ok":"stats","requests_served":N,"busy_rejections":N,
//!             "inflight":N,"max_inflight":N,"datasets_loaded":N,
//!             "datasets":[NAME,...],"registry_cache_bytes":N,
//!             "wal_enabled":BOOL,"wal_datasets":N,"wal_records":N,
//!             "wal_bytes":N,"wal":[{"dataset":NAME,"records":N,
//!             "bytes":N,"last_epoch":N},...]}
//! metrics  → {"ok":"metrics","format":FMT,"body":TEXT}
//! evict    → {"ok":"evict","dataset":NAME,"evicted":BOOL}
//! shutdown → {"ok":"shutdown"}
//! ```
//!
//! The `metrics` body is the registry exposition as one escaped JSON
//! string: Prometheus text format by default, or its JSON twin with
//! `"format":"json"`. Timings reach clients **only** through this op
//! and the slow-query log — never through query/batch result bytes
//! (the wire-format determinism contract).
//!
//! Protocol-level failures (as opposed to per-query failures, which
//! keep the plain `{"error":MSG}` shape for byte-compatibility with
//! `utk batch`) respond with a **coded** error object:
//!
//! ```text
//! {"error":MSG,"code":CODE}
//! CODE ∈ bad_request | unknown_dataset | dataset_error | busy
//!      | shutting_down | would_lose_updates
//! ```
//!
//! `busy` is the admission-control rejection: the server sheds the
//! request instead of queueing it; clients retry or back off.

use crate::json::{self, Value};
use utk_core::wire::{coded_error_json, escape};

/// Protocol error codes (the `code` field of a coded error object).
pub mod code {
    /// Malformed request line (bad JSON, missing field, unknown op,
    /// invalid dataset name).
    pub const BAD_REQUEST: &str = "bad_request";
    /// The named dataset has no CSV file in the served directory.
    pub const UNKNOWN_DATASET: &str = "unknown_dataset";
    /// The dataset file exists but failed to parse or index.
    pub const DATASET_ERROR: &str = "dataset_error";
    /// Admission control shed the request: the in-flight limit is
    /// reached.
    pub const BUSY: &str = "busy";
    /// The server is draining after a `shutdown` request.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// Evicting now would silently discard in-memory mutations: the
    /// dataset has epoch bumps but no write-ahead log to replay them
    /// from, so an evict-then-reload would revert to the on-disk CSV.
    pub const WOULD_LOSE_UPDATES: &str = "would_lose_updates";
}

/// One request line, parsed. (`PartialEq` only: `update` carries
/// float payloads.)
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Load (or confirm) a dataset without querying it.
    Load {
        /// Dataset name (`<name>.csv` under the served directory).
        dataset: String,
    },
    /// Answer one query line against a dataset.
    Query {
        /// Dataset name.
        dataset: String,
        /// One `utk batch`-syntax query line.
        q: String,
    },
    /// Answer a whole query file against a dataset.
    Batch {
        /// Dataset name.
        dataset: String,
        /// The file's lines, verbatim (comments/blanks included).
        queries: Vec<String>,
    },
    /// Mutate a dataset in place: delete by id, append rows — one
    /// atomic engine epoch. The mutation lives in the serving
    /// process's memory; the CSV file on disk is untouched (an
    /// `evict` + reload reverts to disk state).
    Update {
        /// Dataset name.
        dataset: String,
        /// Ids to remove (against the current dataset,
        /// simultaneously).
        delete: Vec<u32>,
        /// Rows to append after the survivors.
        insert: Vec<Vec<f64>>,
        /// One label per inserted row — required iff the dataset has
        /// a label column.
        labels: Option<Vec<String>>,
    },
    /// Server counters and registry state.
    Stats,
    /// The metrics registry exposition (counters, gauges, latency
    /// histograms).
    Metrics {
        /// Requested exposition format.
        format: MetricsFormat,
    },
    /// Unload a dataset's engine, freeing its caches.
    Evict {
        /// Dataset name.
        dataset: String,
    },
    /// Stop accepting, drain in-flight work, exit.
    Shutdown,
}

/// The exposition format of a `metrics` request/response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// Prometheus text exposition (the default).
    #[default]
    Prometheus,
    /// The deterministic JSON twin.
    Json,
}

impl MetricsFormat {
    /// The wire spelling (`prometheus` / `json`).
    pub fn label(self) -> &'static str {
        match self {
            MetricsFormat::Prometheus => "prometheus",
            MetricsFormat::Json => "json",
        }
    }

    /// Parses the wire spelling.
    pub fn from_label(label: &str) -> Option<MetricsFormat> {
        match label {
            "prometheus" => Some(MetricsFormat::Prometheus),
            "json" => Some(MetricsFormat::Json),
            _ => None,
        }
    }
}

/// A protocol-level failure: the message plus its [`code`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// One of the [`code`] constants.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ProtoError {
    /// A `bad_request` error.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self {
            code: code::BAD_REQUEST,
            message: message.into(),
        }
    }

    /// The coded error wire object for this failure.
    pub fn to_json(&self) -> String {
        coded_error_json(self.code, &self.message)
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.message, self.code)
    }
}

impl std::error::Error for ProtoError {}

fn json_str_list(items: &[String]) -> String {
    let parts: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape(s))).collect();
    format!("[{}]", parts.join(","))
}

impl Request {
    /// The protocol op name (`load`, `query`, …) — used as a metrics
    /// label value, so the spelling is part of the `metrics` contract.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Load { .. } => "load",
            Request::Query { .. } => "query",
            Request::Batch { .. } => "batch",
            Request::Update { .. } => "update",
            Request::Stats => "stats",
            Request::Metrics { .. } => "metrics",
            Request::Evict { .. } => "evict",
            Request::Shutdown => "shutdown",
        }
    }

    /// The dataset a request addresses, if any — used as a metrics
    /// label value for per-dataset latency histograms. Server-scoped
    /// ops (`stats`, `metrics`, `shutdown`) carry none.
    pub fn dataset(&self) -> Option<&str> {
        match self {
            Request::Load { dataset }
            | Request::Query { dataset, .. }
            | Request::Batch { dataset, .. }
            | Request::Update { dataset, .. }
            | Request::Evict { dataset } => Some(dataset),
            Request::Stats | Request::Metrics { .. } | Request::Shutdown => None,
        }
    }

    /// Serializes this request as one protocol line.
    pub fn to_json(&self) -> String {
        match self {
            Request::Load { dataset } => {
                format!(r#"{{"op":"load","dataset":"{}"}}"#, escape(dataset))
            }
            Request::Query { dataset, q } => format!(
                r#"{{"op":"query","dataset":"{}","q":"{}"}}"#,
                escape(dataset),
                escape(q)
            ),
            Request::Batch { dataset, queries } => format!(
                r#"{{"op":"batch","dataset":"{}","queries":{}}}"#,
                escape(dataset),
                json_str_list(queries)
            ),
            Request::Update {
                dataset,
                delete,
                insert,
                labels,
            } => {
                let ids: Vec<String> = delete.iter().map(|id| id.to_string()).collect();
                let rows: Vec<String> = insert
                    .iter()
                    .map(|row| utk_core::wire::floats(row))
                    .collect();
                let labels = match labels {
                    Some(l) => format!(r#","labels":{}"#, json_str_list(l)),
                    None => String::new(),
                };
                format!(
                    r#"{{"op":"update","dataset":"{}","delete":[{}],"insert":[{}]{labels}}}"#,
                    escape(dataset),
                    ids.join(","),
                    rows.join(","),
                )
            }
            Request::Stats => r#"{"op":"stats"}"#.to_string(),
            Request::Metrics { format } => match format {
                MetricsFormat::Prometheus => r#"{"op":"metrics"}"#.to_string(),
                MetricsFormat::Json => r#"{"op":"metrics","format":"json"}"#.to_string(),
            },
            Request::Evict { dataset } => {
                format!(r#"{{"op":"evict","dataset":"{}"}}"#, escape(dataset))
            }
            Request::Shutdown => r#"{"op":"shutdown"}"#.to_string(),
        }
    }

    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let value = json::parse(line).map_err(|e| ProtoError::bad_request(e.to_string()))?;
        let op = value
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| ProtoError::bad_request("request needs a string \"op\" field"))?;
        let dataset = |v: &Value| -> Result<String, ProtoError> {
            v.get("dataset")
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| {
                    ProtoError::bad_request(format!("op {op:?} needs a string \"dataset\" field"))
                })
        };
        match op {
            "load" => Ok(Request::Load {
                dataset: dataset(&value)?,
            }),
            "query" => Ok(Request::Query {
                dataset: dataset(&value)?,
                q: value
                    .get("q")
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| {
                        ProtoError::bad_request("op \"query\" needs a string \"q\" field")
                    })?,
            }),
            "batch" => {
                let queries = value
                    .get("queries")
                    .and_then(Value::as_array)
                    .ok_or_else(|| {
                        ProtoError::bad_request("op \"batch\" needs an array \"queries\" field")
                    })?
                    .iter()
                    .map(|item| {
                        item.as_str().map(str::to_string).ok_or_else(|| {
                            ProtoError::bad_request("\"queries\" entries must be strings")
                        })
                    })
                    .collect::<Result<Vec<String>, ProtoError>>()?;
                Ok(Request::Batch {
                    dataset: dataset(&value)?,
                    queries,
                })
            }
            "update" => {
                let array_field = |key: &str| -> Result<&[Value], ProtoError> {
                    match value.get(key) {
                        None => Ok(&[]),
                        Some(v) => v.as_array().ok_or_else(|| {
                            ProtoError::bad_request(format!("\"{key}\" must be an array"))
                        }),
                    }
                };
                let delete = array_field("delete")?
                    .iter()
                    .map(|item| {
                        item.as_u64()
                            .and_then(|id| u32::try_from(id).ok())
                            .ok_or_else(|| {
                                ProtoError::bad_request("\"delete\" entries must be record ids")
                            })
                    })
                    .collect::<Result<Vec<u32>, ProtoError>>()?;
                let insert = array_field("insert")?
                    .iter()
                    .map(|row| {
                        row.as_array()
                            .ok_or_else(|| {
                                ProtoError::bad_request("\"insert\" entries must be number arrays")
                            })?
                            .iter()
                            .map(|v| {
                                v.as_f64().ok_or_else(|| {
                                    ProtoError::bad_request(
                                        "\"insert\" rows must contain only numbers",
                                    )
                                })
                            })
                            .collect::<Result<Vec<f64>, ProtoError>>()
                    })
                    .collect::<Result<Vec<Vec<f64>>, ProtoError>>()?;
                let labels = match value.get("labels") {
                    None => None,
                    Some(raw) => Some(
                        raw.as_array()
                            .ok_or_else(|| {
                                ProtoError::bad_request("\"labels\" must be a string array")
                            })?
                            .iter()
                            .map(|item| {
                                item.as_str().map(str::to_string).ok_or_else(|| {
                                    ProtoError::bad_request("\"labels\" entries must be strings")
                                })
                            })
                            .collect::<Result<Vec<String>, ProtoError>>()?,
                    ),
                };
                if delete.is_empty() && insert.is_empty() {
                    return Err(ProtoError::bad_request(
                        "op \"update\" needs a non-empty \"delete\" or \"insert\"",
                    ));
                }
                Ok(Request::Update {
                    dataset: dataset(&value)?,
                    delete,
                    insert,
                    labels,
                })
            }
            "stats" => Ok(Request::Stats),
            "metrics" => {
                let format = match value.get("format") {
                    None => MetricsFormat::Prometheus,
                    Some(raw) => raw
                        .as_str()
                        .and_then(MetricsFormat::from_label)
                        .ok_or_else(|| {
                            ProtoError::bad_request("\"format\" must be \"prometheus\" or \"json\"")
                        })?,
                };
                Ok(Request::Metrics { format })
            }
            "evict" => Ok(Request::Evict {
                dataset: dataset(&value)?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtoError::bad_request(format!("unknown op {other:?}"))),
        }
    }
}

/// One resident dataset's write-ahead-log state in a `stats`
/// response.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalDatasetStats {
    /// Dataset name.
    pub dataset: String,
    /// Records currently in the log.
    pub records: u64,
    /// Bytes currently in the log.
    pub bytes: u64,
    /// Epoch of the newest durable record (0 for a fresh log).
    pub last_epoch: u64,
}

/// The counters a `stats` response carries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsBody {
    /// Requests fully processed (every op; excludes shed and
    /// malformed requests).
    pub requests_served: u64,
    /// Requests shed by admission control.
    pub busy_rejections: u64,
    /// Query/batch requests currently executing.
    pub inflight: u64,
    /// The admission limit.
    pub max_inflight: u64,
    /// Datasets currently resident.
    pub datasets_loaded: u64,
    /// Their names, sorted.
    pub datasets: Vec<String>,
    /// Total filter-cache bytes across resident engines.
    pub registry_cache_bytes: u64,
    /// Whether the server was started with a WAL directory.
    pub wal_enabled: bool,
    /// Resident datasets with an open write-ahead log.
    pub wal_datasets: u64,
    /// Total WAL records across resident datasets.
    pub wal_records: u64,
    /// Total WAL bytes across resident datasets.
    pub wal_bytes: u64,
    /// Per-dataset WAL state, in dataset-name order (empty when no
    /// resident dataset carries a log).
    pub wal: Vec<WalDatasetStats>,
}

/// One response line, parsed. The server builds these; clients parse
/// them. Wire result objects pass through verbatim as
/// [`Response::Result`] — their bytes are the `utk batch` contract
/// and are never re-interpreted.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `load` succeeded.
    Load {
        /// Dataset name.
        dataset: String,
        /// Records.
        n: u64,
        /// Dimensionality.
        d: u64,
        /// True when the dataset was already resident.
        already_loaded: bool,
    },
    /// Header preceding a batch's result lines.
    BatchHeader {
        /// Dataset name.
        dataset: String,
        /// How many result lines follow.
        count: u64,
    },
    /// `update` succeeded: the engine's mutation receipt.
    Update {
        /// Dataset name.
        dataset: String,
        /// The dataset epoch after the mutation.
        epoch: u64,
        /// Live records after the mutation.
        n: u64,
        /// Records appended.
        inserted: u64,
        /// Records removed.
        deleted: u64,
        /// Filter-cache entries dropped by targeted invalidation.
        filter_invalidated: u64,
        /// Filter-cache entries re-keyed and kept warm.
        filter_retained: u64,
        /// Whether the R-tree was rebuilt (vs riding the overlay).
        index_rebuilt: bool,
    },
    /// `stats` counters.
    Stats(StatsBody),
    /// `metrics` exposition: the rendered registry as one string.
    Metrics {
        /// The format the body is rendered in.
        format: MetricsFormat,
        /// Prometheus text exposition or its JSON twin, verbatim
        /// (multi-line; newlines escaped on the wire).
        body: String,
    },
    /// `evict` outcome.
    Evict {
        /// Dataset name.
        dataset: String,
        /// True when an engine was actually unloaded.
        evicted: bool,
    },
    /// `shutdown` acknowledged; the server drains and exits.
    Shutdown,
    /// A wire result or per-query error line, verbatim.
    Result(String),
    /// A coded protocol error.
    Error(ProtoError),
}

impl Response {
    /// Serializes this response as one protocol line.
    pub fn to_json(&self) -> String {
        match self {
            Response::Load {
                dataset,
                n,
                d,
                already_loaded,
            } => format!(
                r#"{{"ok":"load","dataset":"{}","n":{n},"d":{d},"already_loaded":{already_loaded}}}"#,
                escape(dataset)
            ),
            Response::BatchHeader { dataset, count } => format!(
                r#"{{"ok":"batch","dataset":"{}","count":{count}}}"#,
                escape(dataset)
            ),
            Response::Update {
                dataset,
                epoch,
                n,
                inserted,
                deleted,
                filter_invalidated,
                filter_retained,
                index_rebuilt,
            } => format!(
                concat!(
                    r#"{{"ok":"update","dataset":"{}","epoch":{},"n":{},"inserted":{},"#,
                    r#""deleted":{},"filter_invalidated":{},"filter_retained":{},"#,
                    r#""index_rebuilt":{}}}"#
                ),
                escape(dataset),
                epoch,
                n,
                inserted,
                deleted,
                filter_invalidated,
                filter_retained,
                index_rebuilt,
            ),
            Response::Stats(s) => {
                let wal: Vec<String> = s
                    .wal
                    .iter()
                    .map(|w| {
                        format!(
                            r#"{{"dataset":"{}","records":{},"bytes":{},"last_epoch":{}}}"#,
                            escape(&w.dataset),
                            w.records,
                            w.bytes,
                            w.last_epoch,
                        )
                    })
                    .collect();
                format!(
                    concat!(
                        r#"{{"ok":"stats","requests_served":{},"busy_rejections":{},"#,
                        r#""inflight":{},"max_inflight":{},"datasets_loaded":{},"#,
                        r#""datasets":{},"registry_cache_bytes":{},"#,
                        r#""wal_enabled":{},"wal_datasets":{},"wal_records":{},"#,
                        r#""wal_bytes":{},"wal":[{}]}}"#
                    ),
                    s.requests_served,
                    s.busy_rejections,
                    s.inflight,
                    s.max_inflight,
                    s.datasets_loaded,
                    json_str_list(&s.datasets),
                    s.registry_cache_bytes,
                    s.wal_enabled,
                    s.wal_datasets,
                    s.wal_records,
                    s.wal_bytes,
                    wal.join(","),
                )
            }
            Response::Metrics { format, body } => format!(
                r#"{{"ok":"metrics","format":"{}","body":"{}"}}"#,
                format.label(),
                escape(body)
            ),
            Response::Evict { dataset, evicted } => format!(
                r#"{{"ok":"evict","dataset":"{}","evicted":{evicted}}}"#,
                escape(dataset)
            ),
            Response::Shutdown => r#"{"ok":"shutdown"}"#.to_string(),
            Response::Result(line) => line.clone(),
            Response::Error(e) => e.to_json(),
        }
    }

    /// Parses one response line. Wire result objects (anything that is
    /// valid JSON but not an `ok`/coded-error envelope) come back as
    /// [`Response::Result`] with their bytes untouched.
    pub fn parse(line: &str) -> Result<Response, ProtoError> {
        let value = json::parse(line).map_err(|e| ProtoError::bad_request(e.to_string()))?;
        if let Some(message) = value.get("error").and_then(Value::as_str) {
            let Some(code_str) = value.get("code").and_then(Value::as_str) else {
                // A plain {"error":…} is a per-query failure line.
                return Ok(Response::Result(line.to_string()));
            };
            let code = [
                code::BAD_REQUEST,
                code::UNKNOWN_DATASET,
                code::DATASET_ERROR,
                code::BUSY,
                code::SHUTTING_DOWN,
                code::WOULD_LOSE_UPDATES,
            ]
            .iter()
            .find(|c| **c == code_str)
            .copied()
            .ok_or_else(|| ProtoError::bad_request(format!("unknown error code {code_str:?}")))?;
            return Ok(Response::Error(ProtoError {
                code,
                message: message.to_string(),
            }));
        }
        let Some(ok) = value.get("ok").and_then(Value::as_str) else {
            return Ok(Response::Result(line.to_string()));
        };
        let field_u64 = |key: &str| -> Result<u64, ProtoError> {
            value.get(key).and_then(Value::as_u64).ok_or_else(|| {
                ProtoError::bad_request(format!("{ok:?} response needs a numeric {key:?}"))
            })
        };
        let field_str = |key: &str| -> Result<String, ProtoError> {
            value
                .get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| {
                    ProtoError::bad_request(format!("{ok:?} response needs a string {key:?}"))
                })
        };
        let field_bool = |key: &str| -> Result<bool, ProtoError> {
            value.get(key).and_then(Value::as_bool).ok_or_else(|| {
                ProtoError::bad_request(format!("{ok:?} response needs a boolean {key:?}"))
            })
        };
        match ok {
            "load" => Ok(Response::Load {
                dataset: field_str("dataset")?,
                n: field_u64("n")?,
                d: field_u64("d")?,
                already_loaded: field_bool("already_loaded")?,
            }),
            "batch" => Ok(Response::BatchHeader {
                dataset: field_str("dataset")?,
                count: field_u64("count")?,
            }),
            "update" => Ok(Response::Update {
                dataset: field_str("dataset")?,
                epoch: field_u64("epoch")?,
                n: field_u64("n")?,
                inserted: field_u64("inserted")?,
                deleted: field_u64("deleted")?,
                filter_invalidated: field_u64("filter_invalidated")?,
                filter_retained: field_u64("filter_retained")?,
                index_rebuilt: field_bool("index_rebuilt")?,
            }),
            "stats" => Ok(Response::Stats(StatsBody {
                requests_served: field_u64("requests_served")?,
                busy_rejections: field_u64("busy_rejections")?,
                inflight: field_u64("inflight")?,
                max_inflight: field_u64("max_inflight")?,
                datasets_loaded: field_u64("datasets_loaded")?,
                datasets: value
                    .get("datasets")
                    .and_then(Value::as_array)
                    .ok_or_else(|| {
                        ProtoError::bad_request("\"stats\" response needs a \"datasets\" array")
                    })?
                    .iter()
                    .map(|item| {
                        item.as_str().map(str::to_string).ok_or_else(|| {
                            ProtoError::bad_request("\"datasets\" entries must be strings")
                        })
                    })
                    .collect::<Result<Vec<String>, ProtoError>>()?,
                registry_cache_bytes: field_u64("registry_cache_bytes")?,
                wal_enabled: field_bool("wal_enabled")?,
                wal_datasets: field_u64("wal_datasets")?,
                wal_records: field_u64("wal_records")?,
                wal_bytes: field_u64("wal_bytes")?,
                wal: value
                    .get("wal")
                    .and_then(Value::as_array)
                    .ok_or_else(|| {
                        ProtoError::bad_request("\"stats\" response needs a \"wal\" array")
                    })?
                    .iter()
                    .map(|item| {
                        let sub_u64 = |key: &str| -> Result<u64, ProtoError> {
                            item.get(key).and_then(Value::as_u64).ok_or_else(|| {
                                ProtoError::bad_request(format!(
                                    "\"wal\" entries need a numeric {key:?}"
                                ))
                            })
                        };
                        Ok(WalDatasetStats {
                            dataset: item
                                .get("dataset")
                                .and_then(Value::as_str)
                                .map(str::to_string)
                                .ok_or_else(|| {
                                    ProtoError::bad_request(
                                        "\"wal\" entries need a string \"dataset\"",
                                    )
                                })?,
                            records: sub_u64("records")?,
                            bytes: sub_u64("bytes")?,
                            last_epoch: sub_u64("last_epoch")?,
                        })
                    })
                    .collect::<Result<Vec<WalDatasetStats>, ProtoError>>()?,
            })),
            "metrics" => Ok(Response::Metrics {
                format: MetricsFormat::from_label(&field_str("format")?).ok_or_else(|| {
                    ProtoError::bad_request(
                        "\"metrics\" response \"format\" must be \"prometheus\" or \"json\"",
                    )
                })?,
                body: field_str("body")?,
            }),
            "evict" => Ok(Response::Evict {
                dataset: field_str("dataset")?,
                evicted: field_bool("evicted")?,
            }),
            "shutdown" => Ok(Response::Shutdown),
            other => Err(ProtoError::bad_request(format!(
                "unknown response kind {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_request_variant_round_trips() {
        let requests = [
            Request::Load {
                dataset: "hotels".into(),
            },
            Request::Query {
                dataset: "a-b_2".into(),
                q: "utk1 --k 2 --lo 0.05,0.05 --hi 0.45,0.25".into(),
            },
            Request::Batch {
                dataset: "x".into(),
                queries: vec![
                    "# comment with \"quotes\" and \\ slashes".into(),
                    String::new(),
                    "topk --k 3 --weights 0.3,0.5,0.2".into(),
                ],
            },
            Request::Update {
                dataset: "hotels".into(),
                delete: vec![0, 6],
                insert: vec![vec![9.5, 0.25, 7.0], vec![1e-9, 2.5e8, 0.125]],
                labels: Some(vec!["p8".into(), "p\"9\"".into()]),
            },
            Request::Update {
                dataset: "anti".into(),
                delete: vec![3],
                insert: vec![],
                labels: None,
            },
            Request::Stats,
            Request::Metrics {
                format: MetricsFormat::Prometheus,
            },
            Request::Metrics {
                format: MetricsFormat::Json,
            },
            Request::Evict {
                dataset: "hotels".into(),
            },
            Request::Shutdown,
        ];
        for req in requests {
            let line = req.to_json();
            let back = Request::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, req, "{line}");
        }
    }

    #[test]
    fn every_response_variant_round_trips() {
        let responses = [
            Response::Load {
                dataset: "hotels".into(),
                n: 7,
                d: 3,
                already_loaded: false,
            },
            Response::BatchHeader {
                dataset: "hotels".into(),
                count: 6,
            },
            Response::Stats(StatsBody {
                requests_served: 12,
                busy_rejections: 3,
                inflight: 1,
                max_inflight: 8,
                datasets_loaded: 2,
                datasets: vec!["anti".into(), "hotels".into()],
                registry_cache_bytes: 4096,
                wal_enabled: true,
                wal_datasets: 1,
                wal_records: 5,
                wal_bytes: 320,
                wal: vec![WalDatasetStats {
                    dataset: "hotels".into(),
                    records: 5,
                    bytes: 320,
                    last_epoch: 4,
                }],
            }),
            Response::Update {
                dataset: "hotels".into(),
                epoch: 2,
                n: 8,
                inserted: 2,
                deleted: 1,
                filter_invalidated: 1,
                filter_retained: 3,
                index_rebuilt: false,
            },
            Response::Metrics {
                format: MetricsFormat::Prometheus,
                body: "# TYPE utk_requests_total counter\nutk_requests_total{op=\"query\"} 4\n"
                    .into(),
            },
            Response::Metrics {
                format: MetricsFormat::Json,
                body: r#"{"counters":[]}"#.into(),
            },
            Response::Evict {
                dataset: "hotels".into(),
                evicted: true,
            },
            Response::Shutdown,
            Response::Result(r#"{"error":"line 4: unknown query kind \"frobnicate\""}"#.into()),
            Response::Result(r#"{"query":"topk","k":2,"weights":[0.3,0.5],"ranking":[]}"#.into()),
            Response::Error(ProtoError {
                code: code::BUSY,
                message: "2 requests in flight (limit 2)".into(),
            }),
            Response::Error(ProtoError {
                code: code::WOULD_LOSE_UPDATES,
                message: "dataset \"hotels\" holds 2 unlogged epochs".into(),
            }),
        ];
        for resp in responses {
            let line = resp.to_json();
            let back = Response::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, resp, "{line}");
            // Serialization is stable through a second round trip.
            assert_eq!(back.to_json(), line);
        }
    }

    #[test]
    fn malformed_requests_are_coded_bad_request() {
        for bad in [
            "not json",
            r#"{"dataset":"x"}"#,
            r#"{"op":"frobnicate"}"#,
            r#"{"op":"query","dataset":"x"}"#,
            r#"{"op":"batch","dataset":"x","queries":[1]}"#,
            r#"{"op":"load"}"#,
            r#"{"op":"update","dataset":"x"}"#,
            r#"{"op":"update","dataset":"x","delete":"3"}"#,
            r#"{"op":"update","dataset":"x","insert":[["a"]]}"#,
            r#"{"op":"update","dataset":"x","delete":[-1]}"#,
            r#"{"op":"update","dataset":"x","insert":[[1.0]],"labels":[1]}"#,
            r#"{"op":"metrics","format":"xml"}"#,
            r#"{"op":"metrics","format":3}"#,
        ] {
            let err = Request::parse(bad).unwrap_err();
            assert_eq!(err.code, code::BAD_REQUEST, "{bad}");
        }
    }
}
