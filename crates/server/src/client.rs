//! A blocking client for the serving protocol: one connection, typed
//! request/response helpers. Backs `utk client` and the integration
//! tests/benches.

use std::io::{BufRead, BufReader, Write};

use crate::proto::{MetricsFormat, ProtoError, Request, Response};
use crate::server::{connect, Bind, Stream};

/// One open connection to a `utk serve` instance.
pub struct Connection {
    reader: BufReader<Stream>,
    writer: Stream,
}

/// The outcome of a `batch` request.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchReply {
    /// One wire/error line per query, in input order — byte-identical
    /// to `utk batch` output for the same file.
    Lines(Vec<String>),
    /// The server shed or rejected the whole batch.
    Rejected(ProtoError),
}

fn bad_reply(e: ProtoError) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("malformed server response: {e}"),
    )
}

impl Connection {
    /// Connects to a server.
    pub fn connect(bind: &Bind) -> std::io::Result<Connection> {
        let stream = connect(bind)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Connection {
            reader,
            writer: stream,
        })
    }

    /// Sends one raw request line and reads one raw response line.
    pub fn round_trip(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_line()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Sends a typed request and parses the (first) response line.
    pub fn request(&mut self, request: &Request) -> std::io::Result<Response> {
        let line = self.round_trip(&request.to_json())?;
        Response::parse(&line).map_err(bad_reply)
    }

    /// Scrapes the server's metrics registry, returning the exposition
    /// body (Prometheus text or its JSON twin, per `format`).
    pub fn metrics(&mut self, format: MetricsFormat) -> std::io::Result<String> {
        match self.request(&Request::Metrics { format })? {
            Response::Metrics { body, .. } => Ok(body),
            Response::Error(e) => Err(std::io::Error::other(format!("server error: {e}"))),
            other => Err(bad_reply(ProtoError::bad_request(format!(
                "expected a metrics body, got {}",
                other.to_json()
            )))),
        }
    }

    /// Runs a whole query file (its lines verbatim) against `dataset`.
    pub fn batch(&mut self, dataset: &str, file_text: &str) -> std::io::Result<BatchReply> {
        let request = Request::Batch {
            dataset: dataset.to_string(),
            queries: file_text.lines().map(str::to_string).collect(),
        };
        match self.request(&request)? {
            Response::BatchHeader { count, .. } => {
                let mut lines = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    lines.push(self.read_line()?);
                }
                Ok(BatchReply::Lines(lines))
            }
            Response::Error(e) => Ok(BatchReply::Rejected(e)),
            other => Err(bad_reply(ProtoError::bad_request(format!(
                "expected a batch header, got {}",
                other.to_json()
            )))),
        }
    }
}
