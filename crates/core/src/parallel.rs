//! Parallel UTK1 processing (an extension beyond the paper).
//!
//! RSA's refinement verifies candidates one by one; the verifications
//! are mutually independent except for two *optimizations* the
//! sequential order enables — confirming a candidate confirms its
//! graph ancestors, and disqualified candidates are dropped from later
//! competitor sets. Neither affects correctness: verification against
//! the full candidate set is exact (§4.4's Lemma 2 argument never
//! relies on removals), and confirmation propagation is monotone.
//!
//! [`rsa_parallel`] therefore fans candidates out over a scoped thread
//! pool: workers pull from a shared queue (descending r-dominance
//! count, like the sequential order), skip candidates already
//! confirmed by a descendant, and publish confirmations through an
//! atomic status array. Results are bit-identical to [`crate::rsa::rsa`].

use crate::rsa::{verify_candidate, RsaOptions, Utk1Result};
use crate::skyband::{prefilter, Prefilter};
use crate::stats::Stats;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use utk_geom::Region;
use utk_rtree::RTree;

const UNVERIFIED: u8 = 0;
const CONFIRMED: u8 = 1;
const DISQUALIFIED: u8 = 2;

/// Parallel UTK1: RSA with refinement fanned out over `threads`
/// worker threads (0 = one per available core). Builds a fresh index.
///
/// Legacy convenience: panics on malformed input and rebuilds all
/// per-dataset state from scratch. Prefer [`crate::engine::UtkEngine`]
/// with [`crate::engine::UtkQuery::parallel`], which returns typed
/// errors and reuses the index and the r-skyband across queries.
pub fn rsa_parallel(
    points: &[Vec<f64>],
    region: &Region,
    k: usize,
    opts: &RsaOptions,
    threads: usize,
) -> Utk1Result {
    let tree = RTree::bulk_load(points);
    rsa_parallel_with_tree(points, &tree, region, k, opts, threads)
}

/// Parallel UTK1 over a pre-built index.
pub fn rsa_parallel_with_tree(
    points: &[Vec<f64>],
    tree: &RTree,
    region: &Region,
    k: usize,
    opts: &RsaOptions,
    threads: usize,
) -> Utk1Result {
    assert!(k >= 1, "k must be positive");
    let d = points[0].len();
    crate::rsa::validate_region(region, d - 1);
    let mut stats = Stats::new();
    // Filtering stays sequential (BBS is a single best-first pass).
    let records = match prefilter(points, tree, region, k, opts.pivot_order, &mut stats) {
        Prefilter::Degenerate { top_k, .. } => top_k,
        Prefilter::Trivial { ids, .. } => ids,
        Prefilter::Refine {
            cands,
            interior,
            slack,
        } => rsa_parallel_refine(
            &cands, region, &interior, slack, k, opts, threads, &mut stats,
        ),
    };
    Utk1Result { records, stats }
}

/// The parallel refinement fan-out over an already-filtered candidate
/// set; bit-identical to [`crate::rsa::rsa_refine`]. Shared between
/// the legacy entry points and [`crate::engine::UtkEngine`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn rsa_parallel_refine(
    cands: &crate::skyband::CandidateSet,
    region: &Region,
    base_interior: &[f64],
    base_slack: f64,
    k: usize,
    opts: &RsaOptions,
    threads: usize,
    stats: &mut Stats,
) -> Vec<u32> {
    let n = cands.len();
    debug_assert!(n > k);
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    };

    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(cands.graph.dominance_count(v)));

    let status: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(UNVERIFIED)).collect();
    let cursor = AtomicUsize::new(0);
    let worker_stats: Vec<Stats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Stats::new();
                    // Parallel workers never remove candidates: exact
                    // either way, and racing removals would make runs
                    // non-deterministic.
                    let removed = vec![false; n];
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= order.len() {
                            break;
                        }
                        let v = order[i];
                        if status[v as usize].load(Ordering::Acquire) != UNVERIFIED {
                            continue;
                        }
                        let anc = cands.graph.ancestors(v);
                        let mut excluded = vec![false; n];
                        excluded[v as usize] = true;
                        for &a in anc {
                            excluded[a as usize] = true;
                        }
                        let ok = verify_candidate(
                            cands,
                            opts,
                            &mut local,
                            v,
                            region,
                            base_interior,
                            base_slack,
                            k - anc.len(),
                            k,
                            &mut excluded,
                            &removed,
                        );
                        if ok {
                            status[v as usize].store(CONFIRMED, Ordering::Release);
                            for &a in anc {
                                status[a as usize].store(CONFIRMED, Ordering::Release);
                            }
                        } else {
                            // Never demote a confirmation published by
                            // a descendant's worker.
                            let _ = status[v as usize].compare_exchange(
                                UNVERIFIED,
                                DISQUALIFIED,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            );
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    for ws in &worker_stats {
        stats.absorb(ws);
    }

    let mut records: Vec<u32> = (0..n)
        .filter(|&i| status[i].load(Ordering::Acquire) == CONFIRMED)
        .map(|i| cands.ids[i])
        .collect();
    records.sort_unstable();
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::rsa_with_tree;
    use rand::prelude::*;

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn parallel_equals_sequential() {
        for seed in [1u64, 2, 3] {
            let pts = random_points(400, 3, seed);
            let tree = RTree::bulk_load(&pts);
            let region = Region::hyperrect(vec![0.15, 0.2], vec![0.3, 0.35]);
            let seq = rsa_with_tree(&pts, &tree, &region, 4, &RsaOptions::default());
            for threads in [1, 2, 4] {
                let par = rsa_parallel_with_tree(
                    &pts,
                    &tree,
                    &region,
                    4,
                    &RsaOptions::default(),
                    threads,
                );
                assert_eq!(par.records, seq.records, "seed {seed}, {threads} threads");
            }
        }
    }

    #[test]
    fn parallel_handles_trivial_cases() {
        let pts = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let region = Region::hyperrect(vec![0.3], vec![0.6]);
        let res = rsa_parallel(&pts, &region, 5, &RsaOptions::default(), 0);
        assert_eq!(res.records, vec![0, 1]);
    }

    #[test]
    fn parallel_on_figure1() {
        let hotels = vec![
            vec![8.3, 9.1, 7.2],
            vec![2.4, 9.6, 8.6],
            vec![5.4, 1.6, 4.1],
            vec![2.6, 6.9, 9.4],
            vec![7.3, 3.1, 2.4],
            vec![7.9, 6.4, 6.6],
            vec![8.6, 7.1, 4.3],
        ];
        let region = Region::hyperrect(vec![0.05, 0.05], vec![0.45, 0.25]);
        let res = rsa_parallel(&hotels, &region, 2, &RsaOptions::default(), 3);
        assert_eq!(res.records, vec![0, 1, 3, 5]);
    }
}
