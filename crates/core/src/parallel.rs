//! Parallel UTK processing (an extension beyond the paper): a
//! persistent work-stealing thread pool plus the parallel RSA and JAA
//! drivers built on it.
//!
//! # The scheduler
//!
//! [`ThreadPool`] owns a fixed set of worker threads fed by a shared
//! **injector** queue plus one **deque per worker**. A worker prefers
//! its own deque (LIFO, for locality), then the injector, then
//! steals from a sibling's deque (FIFO — the oldest task is the one
//! most likely to fan out further). Steals are counted and surfaced
//! through [`crate::stats::Stats::stolen_tasks`].
//!
//! Parallel computations are grouped into [`TaskSet`]s — lightweight
//! wait-groups sharing the pool. Tasks may spawn further tasks into
//! their own set; [`TaskSet::wait`] blocks until the whole set has
//! drained. Waiting from *inside* a pool worker (a nested parallel
//! computation, e.g. a parallel JAA query running within a
//! [`crate::engine::UtkEngine::run_many`] batch job) helps execute
//! queued tasks instead of blocking, so nesting can never deadlock
//! the pool.
//!
//! # Parallel RSA
//!
//! RSA's refinement verifies candidates one by one; the verifications
//! are mutually independent except for two *optimizations* the
//! sequential order enables — confirming a candidate confirms its
//! graph ancestors, and disqualified candidates are dropped from later
//! competitor sets. Neither affects correctness: verification against
//! the full candidate set is exact (§4.4's Lemma 2 argument never
//! relies on removals), and confirmation propagation is monotone.
//! [`rsa_parallel`] therefore fans one task per candidate out over the
//! pool; workers skip candidates already confirmed by a descendant and
//! publish confirmations through an atomic status array. Results are
//! bit-identical to [`crate::rsa::rsa`].
//!
//! Parallel JAA lives in [`crate::jaa`]; it shares the pool through
//! the same [`TaskSet`] mechanism.

use crate::rsa::{verify_candidate, RsaOptions, Utk1Result};
use crate::skyband::{prefilter, CandidateSet, Prefilter};
use crate::stats::Stats;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::Duration;
use utk_geom::Region;
use utk_rtree::RTree;

// --- the work-stealing pool ------------------------------------------

/// A unit of queued work: the closure plus the steal counter of the
/// [`TaskSet`] it belongs to (bumped when a sibling executes it).
struct Job {
    run: Box<dyn FnOnce() + Send + 'static>,
    steals: Arc<AtomicUsize>,
}

struct PoolInner {
    /// Externally submitted work (spawns from non-worker threads).
    injector: Mutex<VecDeque<Job>>,
    /// One deque per worker; workers push follow-up tasks here.
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Sleep/wake coordination for idle workers.
    gate: Mutex<()>,
    work: Condvar,
    shutdown: AtomicBool,
    /// Total cross-worker steals over the pool's lifetime.
    stolen: AtomicUsize,
}

impl PoolInner {
    /// Where a spawn from the current thread should land: the current
    /// worker's own deque when called from inside this pool, the
    /// injector otherwise.
    fn push(self: &Arc<Self>, job: Job) {
        let own = CURRENT_WORKER.with(|w| {
            w.borrow().as_ref().and_then(|(pool, idx)| {
                pool.upgrade()
                    .filter(|p| Arc::ptr_eq(p, self))
                    .map(|_| *idx)
            })
        });
        match own {
            Some(idx) => self.deques[idx].lock().expect("deque lock").push_back(job),
            None => self.injector.lock().expect("injector lock").push_back(job),
        }
        // Notify under the gate lock: a worker that saw no work
        // re-checks under the same lock before sleeping, so this
        // notify can never fall into the check-to-sleep window. One
        // job needs one worker — notify_all here would thundering-herd
        // the whole pool on every spawn (shutdown still broadcasts).
        let _gate = self.gate.lock().expect("gate lock");
        self.work.notify_one();
    }

    /// Whether any queue currently holds a job.
    fn has_work(&self) -> bool {
        !self.injector.lock().expect("injector lock").is_empty()
            || self
                .deques
                .iter()
                .any(|d| !d.lock().expect("deque lock").is_empty())
    }

    /// Grabs one queued job: own deque (LIFO) → injector (FIFO) →
    /// steal from a sibling (FIFO). `me` is `None` for helper threads
    /// that have no deque of their own.
    fn find_work(&self, me: Option<usize>) -> Option<Job> {
        if let Some(me) = me {
            if let Some(job) = self.deques[me].lock().expect("deque lock").pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().expect("injector lock").pop_front() {
            return Some(job);
        }
        for (i, deque) in self.deques.iter().enumerate() {
            if Some(i) == me {
                continue;
            }
            if let Some(job) = deque.lock().expect("deque lock").pop_front() {
                self.stolen.fetch_add(1, Ordering::Relaxed);
                job.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    fn worker_loop(self: Arc<Self>, me: usize) {
        CURRENT_WORKER.with(|w| *w.borrow_mut() = Some((Arc::downgrade(&self), me)));
        loop {
            if let Some(job) = self.find_work(Some(me)) {
                (job.run)();
                continue;
            }
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let guard = self.gate.lock().expect("gate lock");
            // Untimed sleep is safe: pushes notify while holding this
            // lock, so a job queued after the has_work re-check cannot
            // slip past an already-parked worker. An idle pool costs
            // zero CPU.
            if !self.has_work() && !self.shutdown.load(Ordering::Acquire) {
                let _guard = self.work.wait(guard).expect("gate lock");
            }
        }
        CURRENT_WORKER.with(|w| *w.borrow_mut() = None);
    }
}

thread_local! {
    /// The pool + worker index the current OS thread belongs to, if
    /// any; lets spawns from worker threads target their own deque.
    static CURRENT_WORKER: std::cell::RefCell<Option<(Weak<PoolInner>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// A persistent pool of worker threads with a shared injector and
/// per-worker stealing deques. Build one per
/// [`crate::engine::UtkEngine`] (the engine does this lazily) and
/// reuse it across queries — construction spawns OS threads and is
/// exactly what per-query parallelism should not pay for.
pub struct ThreadPool {
    inner: Arc<PoolInner>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .field("stolen_tasks", &self.stolen_tasks())
            .finish()
    }
}

impl ThreadPool {
    /// Spawns a pool of `threads` workers (0 = one per available
    /// core).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        let inner = Arc::new(PoolInner {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            gate: Mutex::new(()),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stolen: AtomicUsize::new(0),
        });
        let handles = (0..threads)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("utk-pool-{i}"))
                    .spawn(move || inner.worker_loop(i))
                    // utk-lint: allow(panic) -- thread spawn fails only on resource exhaustion at startup
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            inner,
            handles,
            threads,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total cross-worker steals over the pool's lifetime.
    pub fn stolen_tasks(&self) -> usize {
        self.inner.stolen.load(Ordering::Relaxed)
    }

    /// Opens a fresh wait-group on this pool.
    pub fn task_set(&self) -> TaskSet {
        TaskSet {
            pool: Arc::clone(&self.inner),
            state: Arc::new(TaskSetState {
                pending: AtomicUsize::new(0),
                latch: Mutex::new(()),
                cv: Condvar::new(),
                panicked: AtomicBool::new(false),
                steals: Arc::new(AtomicUsize::new(0)),
            }),
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            // Same protocol as push: the flag cannot slip into a
            // worker's check-to-sleep window.
            let _gate = self.inner.gate.lock().expect("gate lock");
            self.inner.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

struct TaskSetState {
    pending: AtomicUsize,
    /// Completion latch: only the lock/condvar pairing is load-bearing
    /// (waiters re-check `pending`; the final decrement notifies while
    /// holding this lock, so untimed waits cannot miss it).
    latch: Mutex<()>,
    cv: Condvar,
    panicked: AtomicBool,
    steals: Arc<AtomicUsize>,
}

/// A wait-group of tasks on a [`ThreadPool`]: spawn any number of
/// tasks (tasks may clone the set and spawn more), then [`TaskSet::wait`]
/// for all of them. Cheap to clone; clones share the same group.
///
/// Keep the pool alive for as long as its task sets: a set used after
/// the pool shut down falls back to running tasks inline on the
/// spawning thread (losing parallelism, never losing the work or
/// hanging the waiter).
#[derive(Clone)]
pub struct TaskSet {
    pool: Arc<PoolInner>,
    state: Arc<TaskSetState>,
}

impl TaskSet {
    /// Queues `task` onto the pool as part of this set.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        let run = Box::new(move || {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
            if outcome.is_err() {
                state.panicked.store(true, Ordering::Release);
            }
            if state.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _latch = state.latch.lock().expect("task-set lock");
                state.cv.notify_all();
            }
        });
        let job = Job {
            run,
            steals: Arc::clone(&self.state.steals),
        };
        if self.pool.shutdown.load(Ordering::Acquire) {
            // The pool's workers are gone (the set outlived its
            // ThreadPool): run inline so the job executes and the
            // pending count still drains — wait() must never hang on
            // work no worker will ever pick up.
            (job.run)();
            return;
        }
        self.pool.push(job);
    }

    /// Number of tasks of this set executed by a worker other than the
    /// one that queued them (work actually stolen).
    pub fn stolen(&self) -> usize {
        self.state.steals.load(Ordering::Relaxed)
    }

    fn finished(&self) -> bool {
        self.state.pending.load(Ordering::Acquire) == 0
    }

    /// Blocks until every spawned task (including tasks spawned by
    /// tasks) has finished. Called from a worker of the same pool it
    /// *helps* — executes queued tasks instead of blocking — so nested
    /// parallel computations cannot deadlock.
    ///
    /// Panics if any task of the set panicked.
    pub fn wait(&self) {
        let me = CURRENT_WORKER.with(|w| {
            w.borrow().as_ref().and_then(|(pool, idx)| {
                pool.upgrade()
                    .filter(|p| Arc::ptr_eq(p, &self.pool))
                    .map(|_| *idx)
            })
        });
        if let Some(me) = me {
            // Helping wait: drain pool work until this set is done.
            // With nothing stealable (the set's tail task is running
            // on a sibling), park briefly on the completion signal
            // instead of spinning hot.
            while !self.finished() {
                if let Some(job) = self.pool.find_work(Some(me)) {
                    (job.run)();
                } else {
                    let latch = self.state.latch.lock().expect("task-set lock");
                    if !self.finished() && !self.pool.has_work() {
                        let _ = self
                            .state
                            .cv
                            .wait_timeout(latch, Duration::from_millis(1))
                            .expect("task-set lock");
                    }
                }
            }
        } else {
            // External waiter: the final decrement notifies under this
            // lock, so an untimed wait cannot miss the completion (and
            // an idle waiter costs zero CPU).
            let mut latch = self.state.latch.lock().expect("task-set lock");
            while !self.finished() {
                latch = self.state.cv.wait(latch).expect("task-set lock");
            }
        }
        if self.state.panicked.load(Ordering::Acquire) {
            // utk-lint: allow(panic) -- re-raises a worker panic on the caller thread (propagation)
            panic!("a pool task panicked");
        }
    }
}

// --- parallel RSA ------------------------------------------------------

const UNVERIFIED: u8 = 0;
const CONFIRMED: u8 = 1;
const DISQUALIFIED: u8 = 2;

/// Parallel UTK1: RSA with refinement fanned out over `threads`
/// worker threads (0 = one per available core). Builds a fresh index
/// *and a fresh one-shot pool*.
///
/// Legacy convenience: panics on malformed input and rebuilds all
/// per-dataset state from scratch. Prefer [`crate::engine::UtkEngine`]
/// with [`crate::engine::UtkQuery::parallel`], which returns typed
/// errors, reuses the index and the r-skyband across queries, and runs
/// on the engine's persistent pool instead of constructing one per
/// query.
pub fn rsa_parallel(
    points: &[Vec<f64>],
    region: &Region,
    k: usize,
    opts: &RsaOptions,
    threads: usize,
) -> Utk1Result {
    let tree = RTree::bulk_load(points);
    rsa_parallel_with_tree(points, &tree, region, k, opts, threads)
}

/// Parallel UTK1 over a pre-built index (one-shot pool per call).
pub fn rsa_parallel_with_tree(
    points: &[Vec<f64>],
    tree: &RTree,
    region: &Region,
    k: usize,
    opts: &RsaOptions,
    threads: usize,
) -> Utk1Result {
    assert!(k >= 1, "k must be positive");
    let d = points[0].len();
    crate::rsa::validate_region(region, d - 1);
    let mut stats = Stats::new();
    // Filtering stays sequential (BBS is a single best-first pass).
    let records = match prefilter(points, tree, region, k, opts.pivot_order, &mut stats) {
        Prefilter::Degenerate { top_k, .. } => top_k,
        Prefilter::Trivial { ids, .. } => ids,
        Prefilter::Refine {
            cands,
            interior,
            slack,
        } => {
            let pool = ThreadPool::new(threads);
            rsa_parallel_refine(
                &Arc::new(cands),
                region,
                &interior,
                slack,
                k,
                opts,
                &pool,
                &mut stats,
            )
        }
    };
    Utk1Result { records, stats }
}

/// Shared state of one parallel RSA refinement.
struct RsaFanout {
    cands: Arc<CandidateSet>,
    region: Region,
    interior: Vec<f64>,
    slack: f64,
    k: usize,
    opts: RsaOptions,
    status: Vec<AtomicU8>,
    stats: Mutex<Stats>,
}

/// The parallel refinement fan-out over an already-filtered candidate
/// set — one pool task per candidate, bit-identical to
/// [`crate::rsa::rsa_refine`]. Shared between the legacy entry points
/// (one-shot pool) and [`crate::engine::UtkEngine`] (persistent pool).
#[allow(clippy::too_many_arguments)]
pub(crate) fn rsa_parallel_refine(
    cands: &Arc<CandidateSet>,
    region: &Region,
    base_interior: &[f64],
    base_slack: f64,
    k: usize,
    opts: &RsaOptions,
    pool: &ThreadPool,
    stats: &mut Stats,
) -> Vec<u32> {
    let n = cands.len();
    debug_assert!(n > k);

    // Candidates in decreasing r-dominance count, like the sequential
    // order: high-count candidates confirm the most ancestors.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(cands.graph.dominance_count(v)));

    let shared = Arc::new(RsaFanout {
        cands: Arc::clone(cands),
        region: region.clone(),
        interior: base_interior.to_vec(),
        slack: base_slack,
        k,
        opts: opts.clone(),
        status: (0..n).map(|_| AtomicU8::new(UNVERIFIED)).collect(),
        stats: Mutex::new(Stats::new()),
    });

    let set = pool.task_set();
    for &v in &order {
        let shared = Arc::clone(&shared);
        set.spawn(move || verify_one(&shared, v));
    }
    set.wait();

    stats.absorb(&shared.stats.lock().expect("stats lock"));
    stats.pool_threads = pool.threads();
    stats.stolen_tasks += set.stolen();

    let mut records: Vec<u32> = (0..n)
        .filter(|&i| shared.status[i].load(Ordering::Acquire) == CONFIRMED)
        .map(|i| shared.cands.ids[i])
        .collect();
    records.sort_unstable();
    records
}

/// One candidate's verification task.
fn verify_one(shared: &RsaFanout, v: u32) {
    let n = shared.cands.len();
    if shared.status[v as usize].load(Ordering::Acquire) != UNVERIFIED {
        return;
    }
    let mut local = Stats::new();
    // Parallel tasks never remove candidates: exact either way, and
    // racing removals would make runs non-deterministic.
    let removed = vec![false; n];
    let anc = shared.cands.graph.ancestors(v);
    let mut excluded = vec![false; n];
    excluded[v as usize] = true;
    for &a in anc {
        excluded[a as usize] = true;
    }
    let ok = verify_candidate(
        &shared.cands,
        &shared.opts,
        &mut local,
        v,
        &shared.region,
        &shared.interior,
        shared.slack,
        shared.k - anc.len(),
        shared.k,
        &mut excluded,
        &removed,
    );
    if ok {
        shared.status[v as usize].store(CONFIRMED, Ordering::Release);
        for &a in anc {
            shared.status[a as usize].store(CONFIRMED, Ordering::Release);
        }
    } else {
        // Never demote a confirmation published by a descendant's
        // task.
        let _ = shared.status[v as usize].compare_exchange(
            UNVERIFIED,
            DISQUALIFIED,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }
    shared.stats.lock().expect("stats lock").absorb(&local);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::rsa_with_tree;
    use rand::prelude::*;

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn parallel_equals_sequential() {
        for seed in [1u64, 2, 3] {
            let pts = random_points(400, 3, seed);
            let tree = RTree::bulk_load(&pts);
            let region = Region::hyperrect(vec![0.15, 0.2], vec![0.3, 0.35]);
            let seq = rsa_with_tree(&pts, &tree, &region, 4, &RsaOptions::default());
            for threads in [1, 2, 4] {
                let par = rsa_parallel_with_tree(
                    &pts,
                    &tree,
                    &region,
                    4,
                    &RsaOptions::default(),
                    threads,
                );
                assert_eq!(par.records, seq.records, "seed {seed}, {threads} threads");
            }
        }
    }

    #[test]
    fn parallel_handles_trivial_cases() {
        let pts = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let region = Region::hyperrect(vec![0.3], vec![0.6]);
        let res = rsa_parallel(&pts, &region, 5, &RsaOptions::default(), 0);
        assert_eq!(res.records, vec![0, 1]);
    }

    #[test]
    fn parallel_on_figure1() {
        let hotels = vec![
            vec![8.3, 9.1, 7.2],
            vec![2.4, 9.6, 8.6],
            vec![5.4, 1.6, 4.1],
            vec![2.6, 6.9, 9.4],
            vec![7.3, 3.1, 2.4],
            vec![7.9, 6.4, 6.6],
            vec![8.6, 7.1, 4.3],
        ];
        let region = Region::hyperrect(vec![0.05, 0.05], vec![0.45, 0.25]);
        let res = rsa_parallel(&hotels, &region, 2, &RsaOptions::default(), 3);
        assert_eq!(res.records, vec![0, 1, 3, 5]);
    }

    #[test]
    fn task_sets_run_all_tasks_and_nest() {
        let pool = ThreadPool::new(3);
        let hits = Arc::new(AtomicUsize::new(0));
        let set = pool.task_set();
        for _ in 0..50 {
            let hits = Arc::clone(&hits);
            let nested = set.clone();
            set.spawn(move || {
                let inner_hits = Arc::clone(&hits);
                nested.spawn(move || {
                    inner_hits.fetch_add(1, Ordering::Relaxed);
                });
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        set.wait();
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn task_set_outliving_its_pool_runs_inline_instead_of_hanging() {
        let pool = ThreadPool::new(2);
        let set = pool.task_set();
        drop(pool);
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        set.spawn(move || {
            ran2.fetch_add(1, Ordering::Relaxed);
        });
        set.wait(); // must return, not block on a dead pool
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn task_set_wait_propagates_panics() {
        let pool = ThreadPool::new(2);
        let set = pool.task_set();
        set.spawn(|| panic!("boom"));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| set.wait()));
        assert!(err.is_err());
    }

    #[test]
    fn two_task_sets_share_one_pool() {
        let pool = ThreadPool::new(2);
        let a = pool.task_set();
        let b = pool.task_set();
        let count = Arc::new(AtomicUsize::new(0));
        for set in [&a, &b] {
            for _ in 0..20 {
                let count = Arc::clone(&count);
                set.spawn(move || {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        a.wait();
        b.wait();
        assert_eq!(count.load(Ordering::Relaxed), 40);
    }
}
