//! Typed errors for the public query API.
//!
//! Every [`crate::engine::UtkEngine`] entry point returns
//! `Result<_, UtkError>`: malformed input is reported, never panicked
//! on. The legacy free functions (`rsa`, `jaa`, …) keep their original
//! panicking contract by unwrapping these errors, so their messages
//! below preserve the historical wording.

use std::fmt;

/// Why a UTK query (or engine construction) was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum UtkError {
    /// The dataset has no records.
    EmptyDataset,
    /// Two dimensionalities that must agree do not. `what` names the
    /// offending input (record, query region, weight vector, …).
    DimensionMismatch {
        /// Which input mismatched.
        what: &'static str,
        /// The dimensionality required by the dataset.
        expected: usize,
        /// The dimensionality actually supplied.
        got: usize,
    },
    /// The dataset dimensionality is below the minimum of 2 (a
    /// 1-dimensional dataset has a 0-dimensional preference domain —
    /// plain top-k needs no UTK machinery).
    DatasetTooFlat {
        /// The dataset dimensionality supplied.
        got: usize,
    },
    /// `k` must be at least 1.
    InvalidK {
        /// The k supplied.
        k: usize,
    },
    /// The query region has no feasible point.
    EmptyRegion,
    /// The query region leaves the preference domain
    /// (`w ≥ 0`, `Σ w ≤ 1`, §3.1 of the paper).
    RegionOutsideDomain {
        /// Human-readable violation description.
        detail: String,
    },
    /// An input contains a NaN or infinite value. `what` names the
    /// offending input.
    NonFiniteInput {
        /// Which input was non-finite.
        what: &'static str,
    },
    /// A top-k weight vector leaves the preference domain
    /// (`w ≥ 0`, `Σ w ≤ 1`) or, in its full `d`-weight form, has a
    /// last weight inconsistent with `1 − Σ` of the others.
    WeightsOutsideDomain {
        /// Human-readable violation description.
        detail: String,
    },
    /// The query is missing a required parameter (for example a UTK
    /// query without a region, or a top-k query without weights).
    MissingParameter {
        /// Which parameter is missing.
        what: &'static str,
    },
    /// The selected algorithm cannot answer the selected query kind
    /// (for example RSA for UTK2, which needs a partitioning).
    UnsupportedAlgorithm {
        /// The algorithm's display label.
        algo: &'static str,
        /// The query kind's display label.
        kind: &'static str,
    },
    /// A dataset mutation named a record id that does not exist (ids
    /// are positions in the live dataset, `0..len`).
    UnknownRecordId {
        /// The offending id.
        id: u32,
        /// The dataset size the id was checked against.
        len: usize,
    },
    /// A dataset mutation named the same record id twice (one
    /// `delete` applies its ids simultaneously against the current
    /// dataset, so a repeat is a contradiction, not a no-op), or an
    /// ingest path saw the same record label twice.
    DuplicateRecordId {
        /// The repeated id (or label, for ingest paths).
        id: String,
    },
}

impl fmt::Display for UtkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UtkError::EmptyDataset => write!(f, "dataset is empty"),
            UtkError::DimensionMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what} dimensionality must be {expected}, got {got}"),
            UtkError::DatasetTooFlat { got } => write!(
                f,
                "dataset dimensionality must be at least 2 (got {got}); \
                 for 1-dimensional data use a plain top-k"
            ),
            UtkError::InvalidK { k } => write!(f, "k must be positive (got {k})"),
            UtkError::EmptyRegion => write!(f, "query region is empty"),
            UtkError::RegionOutsideDomain { detail } => {
                write!(f, "region leaves the preference domain: {detail}")
            }
            UtkError::NonFiniteInput { what } => {
                write!(f, "{what} contains a NaN or infinite value")
            }
            UtkError::WeightsOutsideDomain { detail } => {
                write!(f, "weights leave the preference domain: {detail}")
            }
            UtkError::MissingParameter { what } => {
                write!(f, "query is missing its {what}")
            }
            UtkError::UnsupportedAlgorithm { algo, kind } => {
                write!(f, "algorithm {algo} cannot answer {kind} queries")
            }
            UtkError::UnknownRecordId { id, len } => {
                write!(
                    f,
                    "record id {id} does not exist (dataset has {len} records)"
                )
            }
            UtkError::DuplicateRecordId { id } => {
                write!(f, "duplicate record id {id}")
            }
        }
    }
}

impl std::error::Error for UtkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offending_input() {
        let e = UtkError::DimensionMismatch {
            what: "query region",
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("query region"));
        assert!(e.to_string().contains('3'));
        assert!(UtkError::InvalidK { k: 0 }.to_string().contains("positive"));
        assert_eq!(UtkError::EmptyRegion.to_string(), "query region is empty");
    }

    #[test]
    fn error_trait_is_object_safe_here() {
        let e: Box<dyn std::error::Error> = Box::new(UtkError::EmptyDataset);
        assert_eq!(e.to_string(), "dataset is empty");
    }
}
