//! RSA — the r-skyband algorithm for UTK1 (§4 of the paper).
//!
//! Pipeline:
//!
//! 1. **Filter** (§4.1): compute the r-skyband and the r-dominance
//!    graph `G` with pivot-ordered BBS.
//! 2. **Refine** (§4.2): consider candidates in decreasing r-dominance
//!    count order (confirming one candidate confirms all its
//!    ancestors). Each candidate is verified by the recursive
//!    `verify` procedure: a drill probe first (§4.3), then a local
//!    half-space arrangement over the competitors with the smallest
//!    contextual r-dominance count; promising partitions are either
//!    confirmed outright via Lemma 1 or recursed into with a reduced
//!    rank quota and a grown ignore set. Disqualified candidates are
//!    removed from `G` so later verifications never consider them.
//!
//! The implementation fixes the obvious typo in the paper's
//! Algorithm 2 (line 11 discards the recursive return value; the
//! intended propagation is implemented).

use crate::drill::graph_top_k;
use crate::skyband::{prefilter, CandidateSet, Prefilter};
use crate::stats::Stats;
use utk_geom::{Arrangement, CellId, Region};
use utk_rtree::RTree;

/// Tuning/ablation switches for RSA. Defaults reproduce the paper's
/// algorithm; individual features can be disabled for the ablation
/// benches (results are identical either way, only work changes).
#[derive(Debug, Clone)]
pub struct RsaOptions {
    /// Drill probe before building each local arrangement (§4.3).
    pub drill: bool,
    /// Lemma-1 disregarding of competitors dominated by an inserted
    /// competitor whose half-space misses the partition (§4.2). With
    /// this off, confirmation requires exhausting the competitor list.
    pub lemma1: bool,
    /// Pivot-score heap ordering for the r-skyband BBS (§4.1); off
    /// falls back to the classic coordinate-sum order.
    pub pivot_order: bool,
    /// Insert the minimal-count competitors first (§4.2); off inserts
    /// an arbitrary (index-ordered) batch of the same size.
    pub min_count_selection: bool,
}

impl Default for RsaOptions {
    fn default() -> Self {
        Self {
            drill: true,
            lemma1: true,
            pivot_order: true,
            min_count_selection: true,
        }
    }
}

/// UTK1 output: the minimal set of records that can appear in a top-k
/// set for some `w ∈ R`.
#[derive(Debug, Clone)]
pub struct Utk1Result {
    /// Dataset ids, ascending.
    pub records: Vec<u32>,
    /// Work counters.
    pub stats: Stats,
}

/// Validates that the query region sits inside the preference domain
/// (`w ≥ 0`, `Σ w ≤ 1`), as §3.1 requires.
pub(crate) fn validate_region(region: &Region, dp: usize) {
    // utk-lint: allow(panic) -- documented # Panics contract of the legacy rsa entry points
    crate::engine::check_region(region, dp).unwrap_or_else(|e| panic!("{e}"));
}

/// Runs UTK1 via RSA, building a fresh R-tree over `points`.
///
/// Legacy convenience: panics on malformed input and rebuilds the
/// index per call, but runs the same validate → prefilter → refine
/// pipeline as the engine. Prefer [`crate::engine::UtkEngine`], which
/// returns typed errors and reuses the index and the r-skyband across
/// queries.
pub fn rsa(points: &[Vec<f64>], region: &Region, k: usize, opts: &RsaOptions) -> Utk1Result {
    let tree = RTree::bulk_load(points);
    rsa_with_tree(points, &tree, region, k, opts)
}

/// Runs UTK1 via RSA over a pre-built index.
pub fn rsa_with_tree(
    points: &[Vec<f64>],
    tree: &RTree,
    region: &Region,
    k: usize,
    opts: &RsaOptions,
) -> Utk1Result {
    assert!(k >= 1, "k must be positive");
    let d = points[0].len();
    validate_region(region, d - 1);
    let mut stats = Stats::new();
    let records = match prefilter(points, tree, region, k, opts.pivot_order, &mut stats) {
        Prefilter::Degenerate { top_k, .. } => top_k,
        Prefilter::Trivial { ids, .. } => ids,
        Prefilter::Refine {
            cands,
            interior,
            slack,
        } => rsa_refine(&cands, region, &interior, slack, k, opts, &mut stats),
    };
    Utk1Result { records, stats }
}

/// RSA's refinement step (§4.2) over an already-filtered candidate
/// set: verifies candidates in decreasing r-dominance count order and
/// returns the confirmed dataset ids, ascending. Shared between the
/// legacy entry points and [`crate::engine::UtkEngine`], whose cache
/// hands in memoized candidate sets.
pub(crate) fn rsa_refine(
    cands: &CandidateSet,
    region: &Region,
    base_interior: &[f64],
    base_slack: f64,
    k: usize,
    opts: &RsaOptions,
    stats: &mut Stats,
) -> Vec<u32> {
    let n = cands.len();
    debug_assert!(n > k);

    #[derive(Clone, Copy, PartialEq)]
    enum Status {
        Unverified,
        Confirmed,
        Disqualified,
    }
    let mut status = vec![Status::Unverified; n];
    let mut removed = vec![false; n];

    // Candidates in decreasing r-dominance count (§4.2); ties by index.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(cands.graph.dominance_count(v)));

    for &v in &order {
        if status[v as usize] != Status::Unverified {
            continue;
        }
        let anc = cands.graph.ancestors(v);
        let mut excluded = removed.clone();
        excluded[v as usize] = true;
        for &a in anc {
            excluded[a as usize] = true;
        }
        let quota = k - anc.len();
        let ok = verify(
            cands,
            opts,
            stats,
            v,
            region,
            base_interior,
            base_slack,
            quota,
            k,
            &mut excluded,
            &removed,
            0,
        );
        if ok {
            status[v as usize] = Status::Confirmed;
            for &a in anc {
                status[a as usize] = Status::Confirmed;
            }
        } else {
            status[v as usize] = Status::Disqualified;
            removed[v as usize] = true;
        }
    }

    let mut records: Vec<u32> = (0..n)
        .filter(|&i| status[i] == Status::Confirmed)
        .map(|i| cands.ids[i])
        .collect();
    records.sort_unstable();
    records
}

/// Entry point to the verification recursion, shared with the
/// parallel driver ([`crate::parallel::rsa_parallel`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn verify_candidate(
    cands: &CandidateSet,
    opts: &RsaOptions,
    stats: &mut Stats,
    cand: u32,
    rho: &Region,
    rho_interior: &[f64],
    rho_slack: f64,
    quota: usize,
    k: usize,
    excluded: &mut [bool],
    removed: &[bool],
) -> bool {
    verify(
        cands,
        opts,
        stats,
        cand,
        rho,
        rho_interior,
        rho_slack,
        quota,
        k,
        excluded,
        removed,
        0,
    )
}

/// The recursive verification procedure (Algorithm 2).
///
/// Decides whether candidate `cand` enters the top-k somewhere inside
/// `rho`, given `quota` remaining rank slots (`k` minus the records
/// known to outscore `cand` everywhere in `rho`) and the `excluded`
/// competitors (ancestors, previously considered/inserted, Lemma-1
/// disregarded, and removed candidates).
#[allow(clippy::too_many_arguments)]
fn verify(
    cands: &CandidateSet,
    opts: &RsaOptions,
    stats: &mut Stats,
    cand: u32,
    rho: &Region,
    rho_interior: &[f64],
    rho_slack: f64,
    quota: usize,
    k: usize,
    excluded: &mut [bool],
    removed: &[bool],
    depth: usize,
) -> bool {
    debug_assert!(quota >= 1);
    debug_assert!(depth <= 2 * cands.len() + 8, "verify recursion runaway");

    // Drill (§4.3): top-k at the in-region vector maximizing the
    // candidate's score; success verifies immediately.
    if opts.drill {
        stats.drills += 1;
        let hit = crate::obs::span(crate::obs::Phase::Drill, || {
            let p = &cands.points[cand as usize];
            let d = p.len();
            let obj: Vec<f64> = (0..d - 1).map(|i| p[i] - p[d - 1]).collect();
            match rho.max_linear(&obj) {
                Some((w, _)) => graph_top_k(cands, &w, k, removed).contains(&cand),
                None => false,
            }
        });
        if hit {
            stats.drill_hits += 1;
            return true;
        }
    }

    // Competitor batch: minimal contextual r-dominance count (always 0
    // on the remaining sub-DAG).
    let batch: Vec<u32> = if opts.min_count_selection {
        cands.graph.minimal_competitors(excluded)
    } else {
        let minimal = cands.graph.minimal_competitors(excluded).len();
        (0..cands.len() as u32)
            .filter(|&q| !excluded[q as usize])
            .take(minimal.max(1))
            .collect()
    };
    if batch.is_empty() {
        // No competitors left at all: the whole partition has count 0
        // < quota, so the candidate ranks within its quota here.
        return true;
    }

    // Local arrangement over rho (§4.5: small and disposable).
    let (arr, bytes) = crate::obs::span(crate::obs::Phase::Arrange, || {
        let mut arr = Arrangement::with_interior(rho.clone(), rho_interior.to_vec(), rho_slack);
        stats.arrangements_built += 1;
        let cand_pt = &cands.points[cand as usize];
        let cand_id = cands.ids[cand as usize];
        for &q in &batch {
            let hs = crate::rdominance::outranks_halfspace(
                &cands.points[q as usize],
                cands.ids[q as usize],
                cand_pt,
                cand_id,
            );
            arr.insert(hs, q);
            stats.halfspaces_inserted += 1;
            // Partitions at or past the quota can never become
            // promising: retire them so later insertions skip them.
            let dead: Vec<CellId> = arr
                .live_cells()
                .filter(|(_, c)| c.count() >= quota)
                .map(|(id, _)| id)
                .collect();
            for id in dead {
                arr.prune(id);
            }
        }
        stats.cells_created += arr.all_cells().len();
        let bytes = arr.approx_bytes();
        stats.arrangement_grew(bytes);
        (arr, bytes)
    });

    for &q in &batch {
        excluded[q as usize] = true;
    }

    // Promising partitions, most covered first (§4.2 optimization).
    let mut promising: Vec<(CellId, usize)> = arr
        .live_cells()
        .filter(|(_, c)| c.count() < quota)
        .map(|(id, c)| (id, c.count()))
        .collect();
    promising.sort_by_key(|&(_, cnt)| std::cmp::Reverse(cnt));

    let mut result = false;
    'cells: for (cid, cnt) in promising {
        let cell = arr.cell(cid);
        // Which candidates can Lemma 1 disregard for this partition?
        // Those r-dominated by an inserted competitor whose half-space
        // does not cover the partition.
        let mut outside_tag = vec![false; cands.len()];
        for &hs in cell.outside() {
            outside_tag[arr.tag(hs) as usize] = true;
        }
        let mut disregarded = Vec::new();
        let mut remaining = false;
        for q in 0..cands.len() as u32 {
            if excluded[q as usize] {
                continue;
            }
            let dis = opts.lemma1
                && cands
                    .graph
                    .ancestors(q)
                    .iter()
                    .any(|&a| outside_tag[a as usize]);
            if dis {
                disregarded.push(q);
            } else {
                remaining = true;
            }
        }
        if !remaining {
            // Lemma 1 confirms the partition's count: below quota.
            result = true;
            break 'cells;
        }
        for &q in &disregarded {
            excluded[q as usize] = true;
        }
        let ok = verify(
            cands,
            opts,
            stats,
            cand,
            cell.region(),
            cell.interior(),
            cell.slack(),
            quota - cnt,
            k,
            excluded,
            removed,
            depth + 1,
        );
        for &q in &disregarded {
            excluded[q as usize] = false;
        }
        if ok {
            result = true;
            break 'cells;
        }
    }

    for &q in &batch {
        excluded[q as usize] = false;
    }
    stats.arrangement_dropped(bytes);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_hotels() -> Vec<Vec<f64>> {
        vec![
            vec![8.3, 9.1, 7.2],
            vec![2.4, 9.6, 8.6],
            vec![5.4, 1.6, 4.1],
            vec![2.6, 6.9, 9.4],
            vec![7.3, 3.1, 2.4],
            vec![7.9, 6.4, 6.6],
            vec![8.6, 7.1, 4.3],
        ]
    }

    #[test]
    fn figure1_utk1_is_p1_p2_p4_p6() {
        let region = Region::hyperrect(vec![0.05, 0.05], vec![0.45, 0.25]);
        let res = rsa(&figure1_hotels(), &region, 2, &RsaOptions::default());
        assert_eq!(res.records, vec![0, 1, 3, 5]);
    }

    #[test]
    fn figure1_all_option_combinations_agree() {
        let region = Region::hyperrect(vec![0.05, 0.05], vec![0.45, 0.25]);
        for drill in [true, false] {
            for lemma1 in [true, false] {
                for pivot in [true, false] {
                    for minsel in [true, false] {
                        let opts = RsaOptions {
                            drill,
                            lemma1,
                            pivot_order: pivot,
                            min_count_selection: minsel,
                        };
                        let res = rsa(&figure1_hotels(), &region, 2, &opts);
                        assert_eq!(
                            res.records,
                            vec![0, 1, 3, 5],
                            "opts {drill}/{lemma1}/{pivot}/{minsel}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn k1_reduces_to_in_region_top1_union() {
        // For k = 1 the result is exactly the records that are top-1
        // somewhere in R; cross-check by dense sampling.
        use crate::topk::top_k_brute;
        use rand::prelude::*;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
        let pts: Vec<Vec<f64>> = (0..120)
            .map(|_| (0..3).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let region = Region::hyperrect(vec![0.1, 0.2], vec![0.4, 0.45]);
        let res = rsa(&pts, &region, 1, &RsaOptions::default());
        let mut sampled = std::collections::BTreeSet::new();
        for i in 0..=20 {
            for j in 0..=20 {
                let w = [0.1 + 0.3 * i as f64 / 20.0, 0.2 + 0.25 * j as f64 / 20.0];
                sampled.insert(top_k_brute(&pts, &w, 1)[0]);
            }
        }
        // Every sampled winner must be reported (sampling is a lower
        // bound on the exact result).
        for id in &sampled {
            assert!(res.records.contains(id), "missing top-1 winner {id}");
        }
        assert!(res.records.len() >= sampled.len());
    }

    #[test]
    fn result_is_superset_of_sampled_topk_and_subset_of_rskyband() {
        use crate::skyband::r_skyband;
        use crate::topk::top_k_brute;
        use rand::prelude::*;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(23);
        let pts: Vec<Vec<f64>> = (0..200)
            .map(|_| (0..4).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let region = Region::hyperrect(vec![0.1, 0.1, 0.1], vec![0.2, 0.25, 0.3]);
        let k = 3;
        let res = rsa(&pts, &region, k, &RsaOptions::default());

        let tree = RTree::bulk_load(&pts);
        let store = utk_geom::PointStore::from_rows(&pts);
        let cs = r_skyband(&store, &tree, &region, k, true, &mut Stats::new());
        for id in &res.records {
            assert!(cs.ids.contains(id), "UTK1 must be inside the r-skyband");
        }

        let mut rng2 = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        for _ in 0..300 {
            let w = [
                rng2.gen_range(0.1..0.2),
                rng2.gen_range(0.1..0.25),
                rng2.gen_range(0.1..0.3),
            ];
            for id in top_k_brute(&pts, &w, k) {
                assert!(res.records.contains(&id), "sampled top-k member missing");
            }
        }
    }

    #[test]
    fn tiny_dataset_returns_everything() {
        let pts = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let region = Region::hyperrect(vec![0.3], vec![0.6]);
        let res = rsa(&pts, &region, 5, &RsaOptions::default());
        assert_eq!(res.records, vec![0, 1]);
    }

    #[test]
    fn degenerate_point_region_is_single_topk() {
        let pts = figure1_hotels();
        let region = Region::hyperrect(vec![0.3, 0.5], vec![0.3, 0.5]);
        let res = rsa(&pts, &region, 2, &RsaOptions::default());
        // Top-2 at (0.3, 0.5) is {p1, p2}: 8.48 and 7.24.
        assert_eq!(res.records, vec![0, 1]);
    }
}
