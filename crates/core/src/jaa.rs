//! JAA — the joint-arrangement algorithm for UTK2 (§5 of the paper).
//!
//! JAA shares RSA's filtering step but refines differently: it grows a
//! single *common global arrangement* of `R`. An **anchor** candidate
//! partitions the current region via the half-spaces of its minimal
//! competitors; every resulting partition is classified as
//!
//! * **equal-to** — the anchor ranks exactly k-th, the top-k set is
//!   fully known: the partition is finalized in the output;
//! * **less-than** — the anchor ranks `k′ < k`-th: the top-`k′` prefix
//!   is known, a new anchor (the k-th scorer at a drill vector, §5.1)
//!   recursively resolves the remaining `k − k′` slots;
//! * **greater-than** — at least `k` competitors cover the partition:
//!   the anchor is out; a new anchor restarts the partition (ignoring
//!   the old anchor and its graph descendants);
//! * unclassifiable (Lemma 1 cannot yet confirm the rank) — recurse
//!   on the same anchor with the next competitor batch.
//!
//! The recursion's leaf partitions — all equal-to — tile `R` and form
//! the UTK2 answer: the exact top-k set for every possible weight
//! vector in `R`.
//!
//! The recursion is materialized as an explicit task model
//! ([`PartitionTask`]/[`expand`]): a task is one `Partition` call,
//! its children are the leaves needing further work. The sequential
//! driver runs tasks depth-first on one thread; the parallel driver
//! ([`jaa_parallel`], or [`crate::engine::UtkQuery::parallel`] on an
//! engine) work-steals them across a
//! [`crate::parallel::ThreadPool`]. Both produce cell-for-cell
//! identical output: tasks are pure functions of their inputs, and
//! cells are tagged with their position in the partition tree and
//! sorted back into depth-first order.

use crate::drill::graph_top_k;
use crate::parallel::ThreadPool;
use crate::skyband::{prefilter, CandidateSet, Prefilter};
use crate::stats::Stats;
use std::sync::{Arc, Mutex};
use utk_geom::{Arrangement, CellId, Region};
use utk_rtree::RTree;

/// Tuning/ablation switches for JAA.
#[derive(Debug, Clone)]
pub struct JaaOptions {
    /// Pivot-score BBS ordering for the filter step (§4.1).
    pub pivot_order: bool,
    /// The §5.1 anchor strategy: the *k-th* scorer at the drill
    /// vector (guarantees an equal-to partition). Off picks the top-1
    /// scorer instead — still correct, but finalizes nothing directly
    /// (the paper's "poorly chosen anchor" scenario, for ablation).
    pub kth_anchor: bool,
}

impl Default for JaaOptions {
    fn default() -> Self {
        Self {
            pivot_order: true,
            kth_anchor: true,
        }
    }
}

/// One finalized partition of `R` with its exact top-k set.
#[derive(Debug, Clone)]
pub struct Utk2Cell {
    /// The partition's geometry (R's constraints plus the half-space
    /// sides accumulated along the recursion).
    pub region: Region,
    /// A point strictly inside the partition.
    pub interior: Vec<f64>,
    /// The exact top-k set (dataset ids, ascending) for every weight
    /// vector inside the partition.
    pub top_k: Vec<u32>,
}

/// UTK2 output: the partitioning of `R`.
#[derive(Debug, Clone)]
pub struct Utk2Result {
    /// Finalized partitions tiling `R`.
    pub cells: Vec<Utk2Cell>,
    /// Union of all top-k sets (equals the UTK1 answer), ascending.
    pub records: Vec<u32>,
    /// Work counters.
    pub stats: Stats,
}

impl Utk2Result {
    /// Number of partitions — the paper's "number of top-k sets"
    /// output-size metric.
    pub fn num_partitions(&self) -> usize {
        self.cells.len()
    }

    /// Number of *distinct* top-k sets across partitions.
    pub fn num_distinct_sets(&self) -> usize {
        let mut sets: Vec<&[u32]> = self.cells.iter().map(|c| c.top_k.as_slice()).collect();
        sets.sort_unstable();
        sets.dedup();
        sets.len()
    }

    /// The cell containing `w`, if any (boundary points may match the
    /// first of several adjacent cells).
    pub fn cell_containing(&self, w: &[f64]) -> Option<&Utk2Cell> {
        self.cells.iter().find(|c| c.region.contains(w))
    }
}

/// Runs UTK2 via JAA, building a fresh R-tree over `points`.
///
/// Legacy convenience: panics on malformed input and rebuilds all
/// per-dataset state from scratch. Prefer [`crate::engine::UtkEngine`],
/// which returns typed errors and reuses the index and the r-skyband
/// across queries.
pub fn jaa(points: &[Vec<f64>], region: &Region, k: usize, opts: &JaaOptions) -> Utk2Result {
    let tree = RTree::bulk_load(points);
    jaa_with_tree(points, &tree, region, k, opts)
}

/// Runs UTK2 via JAA over a pre-built index.
pub fn jaa_with_tree(
    points: &[Vec<f64>],
    tree: &RTree,
    region: &Region,
    k: usize,
    opts: &JaaOptions,
) -> Utk2Result {
    jaa_driver(
        points,
        tree,
        region,
        k,
        opts,
        |cands, interior, slack, stats| {
            jaa_refine(&cands, region, &interior, slack, k, opts, stats)
        },
    )
}

/// Runs UTK2 via JAA with the partition refinement fanned out over
/// `threads` worker threads (0 = one per available core). Builds a
/// fresh R-tree *and a fresh one-shot pool*; cell-for-cell identical
/// to [`jaa`].
///
/// Legacy convenience: panics on malformed input. Prefer
/// [`crate::engine::UtkEngine`] with
/// [`crate::engine::UtkQuery::parallel`], which returns typed errors
/// and runs on the engine's persistent pool instead of constructing
/// one per query.
pub fn jaa_parallel(
    points: &[Vec<f64>],
    region: &Region,
    k: usize,
    opts: &JaaOptions,
    threads: usize,
) -> Utk2Result {
    let tree = RTree::bulk_load(points);
    jaa_driver(
        points,
        &tree,
        region,
        k,
        opts,
        |cands, interior, slack, stats| {
            let pool = ThreadPool::new(threads);
            jaa_parallel_refine(
                &Arc::new(cands),
                region,
                &interior,
                slack,
                k,
                opts,
                &pool,
                stats,
            )
        },
    )
}

/// The shared JAA pipeline: validate, prefilter, handle the
/// degenerate/trivial shortcuts, and hand real work to `refine` (the
/// sequential worklist or a pool driver). One body keeps the two
/// entry points incapable of diverging anywhere but the refine step.
fn jaa_driver<F>(
    points: &[Vec<f64>],
    tree: &RTree,
    region: &Region,
    k: usize,
    opts: &JaaOptions,
    refine: F,
) -> Utk2Result
where
    F: FnOnce(CandidateSet, Vec<f64>, f64, &mut Stats) -> Vec<Utk2Cell>,
{
    assert!(k >= 1, "k must be positive");
    let d = points[0].len();
    crate::rsa::validate_region(region, d - 1);
    let mut stats = Stats::new();
    let cells = match prefilter(points, tree, region, k, opts.pivot_order, &mut stats) {
        // Degenerate R: a single top-k query answers UTK2 with one
        // all-covering cell.
        Prefilter::Degenerate { w, top_k } => vec![Utk2Cell {
            region: region.clone(),
            interior: w,
            top_k,
        }],
        Prefilter::Trivial { ids, interior } => vec![Utk2Cell {
            region: region.clone(),
            interior,
            top_k: ids,
        }],
        Prefilter::Refine {
            cands,
            interior,
            slack,
        } => refine(cands, interior, slack, &mut stats),
    };
    let records = records_of(&cells);
    Utk2Result {
        cells,
        records,
        stats,
    }
}

/// Sorted, deduplicated union of the cells' top-k sets (the implied
/// UTK1 answer).
pub(crate) fn records_of(cells: &[Utk2Cell]) -> Vec<u32> {
    let mut records: Vec<u32> = cells.iter().flat_map(|c| c.top_k.iter().copied()).collect();
    records.sort_unstable();
    records.dedup();
    records
}

/// One pending `Partition` call (Algorithm 4) in the explicit task
/// model: everything the call needs, owned, so tasks can run on any
/// worker of a [`ThreadPool`] — or one at a time on the caller.
///
/// `path` is the task's position in the partition tree (the leaf
/// index at every split along the way). Paths are prefix-free across
/// finalized cells, and their lexicographic order equals the
/// depth-first order of the original recursion — sorting cells by
/// path makes the output independent of execution order, so the
/// parallel driver is cell-for-cell identical to the sequential one.
struct PartitionTask {
    anchor: u32,
    region: Region,
    interior: Vec<f64>,
    slack: f64,
    quota: usize,
    excluded: Vec<bool>,
    known_above: Vec<u32>,
    path: Vec<u32>,
}

/// Builds the root task: the §5.1 initial anchor (k-th scorer at R's
/// pivot) over the whole region.
fn root_task(
    cands: &CandidateSet,
    k: usize,
    opts: &JaaOptions,
    stats: &mut Stats,
    region: &Region,
    interior: &[f64],
    slack: f64,
) -> PartitionTask {
    let n = cands.len();
    // utk-lint: allow(panic) -- invariant: the engine rejects empty regions before partitioning
    let pivot = region.pivot().expect("non-empty region");
    stats.drills += 1;
    let top = crate::obs::span(crate::obs::Phase::Drill, || {
        graph_top_k(cands, &pivot, k, &vec![false; n])
    });
    debug_assert_eq!(top.len(), k);
    let anchor = if opts.kth_anchor { top[k - 1] } else { top[0] };
    let mut excluded = vec![false; n];
    excluded[anchor as usize] = true;
    let known_above: Vec<u32> = cands.graph.ancestors(anchor).to_vec();
    for &a in &known_above {
        excluded[a as usize] = true;
    }
    for &v in cands.graph.descendants(anchor) {
        excluded[v as usize] = true;
    }
    let quota = k - known_above.len();
    PartitionTask {
        anchor,
        region: region.clone(),
        interior: interior.to_vec(),
        slack,
        quota,
        excluded,
        known_above,
        path: Vec::new(),
    }
}

/// Executes one `Partition` call: builds the anchor's arrangement over
/// the task's region, finalizes equal-to leaves into `out` (tagged
/// with their path), and emits one child task per leaf that needs
/// further work. Pure function of the task — the sequential worklist
/// and the pool driver share it, which is what makes them provably
/// equivalent.
#[allow(clippy::too_many_arguments)]
fn expand(
    cands: &CandidateSet,
    k: usize,
    opts: &JaaOptions,
    none_removed: &[bool],
    stats: &mut Stats,
    mut task: PartitionTask,
    out: &mut Vec<(Vec<u32>, Utk2Cell)>,
    children: &mut Vec<PartitionTask>,
) {
    debug_assert!(task.quota >= 1);
    debug_assert_eq!(
        task.known_above.len() + task.quota,
        k,
        "rank bookkeeping broke"
    );
    assert!(task.path.len() < 10_000, "partition recursion runaway");
    let n = cands.len();
    debug_assert_eq!(none_removed.len(), n);

    // Insert the half-spaces of the minimal-count competitors.
    let batch: Vec<u32> = cands.graph.minimal_competitors(&task.excluded);
    let (arr, bytes) = crate::obs::span(crate::obs::Phase::Arrange, || {
        let mut arr =
            Arrangement::with_interior(task.region.clone(), task.interior.clone(), task.slack);
        stats.arrangements_built += 1;
        let anchor_pt = &cands.points[task.anchor as usize];
        let anchor_id = cands.ids[task.anchor as usize];
        for &q in &batch {
            let hs = crate::rdominance::outranks_halfspace(
                &cands.points[q as usize],
                cands.ids[q as usize],
                anchor_pt,
                anchor_id,
            );
            arr.insert(hs, q);
            stats.halfspaces_inserted += 1;
            // Count ≥ quota ⇒ greater-than regardless of later
            // insertions (§5: no Lemma-1 confirmation needed): stop
            // splitting them.
            let dead: Vec<CellId> = arr
                .live_cells()
                .filter(|(_, c)| c.count() >= task.quota)
                .map(|(id, _)| id)
                .collect();
            for id in dead {
                arr.prune(id);
            }
        }
        stats.cells_created += arr.all_cells().len();
        let bytes = arr.approx_bytes();
        stats.arrangement_grew(bytes);
        (arr, bytes)
    });

    // The task owns `excluded`: mark the inserted batch once, no
    // restore needed (children that must not see it build fresh sets).
    for &q in &batch {
        task.excluded[q as usize] = true;
    }

    // Classify every leaf partition.
    let leaves: Vec<CellId> = arr.leaf_cells().map(|(id, _)| id).collect();
    for (li, cid) in leaves.into_iter().enumerate() {
        let cell = arr.cell(cid);
        let cnt = cell.count();
        let covered: Vec<u32> = cell.covered().iter().map(|&h| arr.tag(h)).collect();
        let mut path = task.path.clone();
        path.push(li as u32);

        if cnt >= task.quota {
            // Greater-than: restart with a fresh anchor, ignoring the
            // old anchor and its descendants.
            stats.drills += 1;
            let top = crate::obs::span(crate::obs::Phase::Drill, || {
                graph_top_k(cands, cell.interior(), k, none_removed)
            });
            let new_anchor = if opts.kth_anchor { top[k - 1] } else { top[0] };
            debug_assert_ne!(new_anchor, task.anchor);
            let mut fresh = vec![false; n];
            fresh[task.anchor as usize] = true;
            for &v in cands.graph.descendants(task.anchor) {
                fresh[v as usize] = true;
            }
            fresh[new_anchor as usize] = true;
            let known: Vec<u32> = cands.graph.ancestors(new_anchor).to_vec();
            for &a in &known {
                fresh[a as usize] = true;
            }
            for &v in cands.graph.descendants(new_anchor) {
                fresh[v as usize] = true;
            }
            children.push(PartitionTask {
                anchor: new_anchor,
                region: cell.region().clone(),
                interior: cell.interior().to_vec(),
                slack: cell.slack(),
                quota: k - known.len(),
                excluded: fresh,
                known_above: known,
                path,
            });
            continue;
        }

        // Lemma-1 confirmation: which non-excluded competitors could
        // still induce half-spaces overlapping this partition?
        let mut outside_tag = vec![false; n];
        for &h in cell.outside() {
            outside_tag[arr.tag(h) as usize] = true;
        }
        let mut disregarded = Vec::new();
        let mut remaining = false;
        for q in 0..n as u32 {
            if task.excluded[q as usize] {
                continue;
            }
            if cands
                .graph
                .ancestors(q)
                .iter()
                .any(|&a| outside_tag[a as usize])
            {
                disregarded.push(q);
            } else {
                remaining = true;
            }
        }

        if !remaining {
            // Rank confirmed: cnt + 1 relative to quota.
            if cnt + 1 == task.quota {
                // Equal-to: finalize.
                let mut top_k: Vec<u32> = task
                    .known_above
                    .iter()
                    .chain(covered.iter())
                    .chain(std::iter::once(&task.anchor))
                    .map(|&ci| cands.ids[ci as usize])
                    .collect();
                debug_assert_eq!(top_k.len(), k, "equal-to cell must know k records");
                top_k.sort_unstable();
                out.push((
                    path,
                    Utk2Cell {
                        region: cell.region().clone(),
                        interior: cell.interior().to_vec(),
                        top_k,
                    },
                ));
            } else {
                // Less-than: the top-k′ prefix is known; a new anchor
                // resolves the remaining slots.
                let mut itop: Vec<u32> = task.known_above.clone();
                itop.extend_from_slice(&covered);
                itop.push(task.anchor);
                let k_prime = itop.len();
                debug_assert!(k_prime < k);
                let new_anchor = {
                    stats.drills += 1;
                    let top = crate::obs::span(crate::obs::Phase::Drill, || {
                        graph_top_k(cands, cell.interior(), k, none_removed)
                    });
                    if opts.kth_anchor {
                        top[k - 1]
                    } else {
                        top[k_prime] // best scorer outside the prefix
                    }
                };
                debug_assert!(!itop.contains(&new_anchor));
                let mut fresh = vec![false; n];
                for &v in &itop {
                    fresh[v as usize] = true;
                }
                fresh[new_anchor as usize] = true;
                for &v in cands.graph.descendants(new_anchor) {
                    fresh[v as usize] = true;
                }
                // Ancestors of the new anchor outside Itop are plain
                // competitors (their half-spaces cover everything and
                // simply raise counts), exactly as in Algorithm 4.
                children.push(PartitionTask {
                    anchor: new_anchor,
                    region: cell.region().clone(),
                    interior: cell.interior().to_vec(),
                    slack: cell.slack(),
                    quota: k - k_prime,
                    excluded: fresh,
                    known_above: itop,
                    path,
                });
            }
        } else {
            // Unclassifiable: same anchor, next competitor batch,
            // rank quota reduced by this partition's count.
            let mut known: Vec<u32> = task.known_above.clone();
            known.extend_from_slice(&covered);
            let mut excluded = task.excluded.clone();
            for &q in &disregarded {
                excluded[q as usize] = true;
            }
            children.push(PartitionTask {
                anchor: task.anchor,
                region: cell.region().clone(),
                interior: cell.interior().to_vec(),
                slack: cell.slack(),
                quota: task.quota - cnt,
                excluded,
                known_above: known,
                path,
            });
        }
    }

    stats.arrangement_dropped(bytes);
}

/// JAA's refinement step (§5) over an already-filtered candidate set:
/// grows the common arrangement from the initial anchor and returns
/// the finalized partitions tiling `region`, in depth-first order.
/// Shared between the legacy entry points and
/// [`crate::engine::UtkEngine`], whose cache hands in memoized
/// candidate sets.
pub(crate) fn jaa_refine(
    cands: &CandidateSet,
    region: &Region,
    base_interior: &[f64],
    base_slack: f64,
    k: usize,
    opts: &JaaOptions,
    stats: &mut Stats,
) -> Vec<Utk2Cell> {
    debug_assert!(cands.len() > k);
    let mut worklist = vec![root_task(
        cands,
        k,
        opts,
        stats,
        region,
        base_interior,
        base_slack,
    )];
    let none_removed = vec![false; cands.len()];
    let mut tagged = Vec::new();
    let mut children = Vec::new();
    while let Some(task) = worklist.pop() {
        expand(
            cands,
            k,
            opts,
            &none_removed,
            stats,
            task,
            &mut tagged,
            &mut children,
        );
        // LIFO worklist: reversed children keep the depth-first order
        // of the original recursion.
        children.reverse();
        worklist.append(&mut children);
    }
    finish_cells(tagged)
}

/// Sorts path-tagged cells into depth-first order and strips the tags.
fn finish_cells(mut tagged: Vec<(Vec<u32>, Utk2Cell)>) -> Vec<Utk2Cell> {
    tagged.sort_by(|a, b| a.0.cmp(&b.0));
    tagged.into_iter().map(|(_, c)| c).collect()
}

/// Shared state of one parallel JAA refinement.
struct JaaShared {
    cands: Arc<CandidateSet>,
    k: usize,
    opts: JaaOptions,
    /// All-false "removed" mask shared by every task's drill calls
    /// (JAA never removes candidates) — allocated once per refinement.
    none_removed: Vec<bool>,
    out: Mutex<Vec<(Vec<u32>, Utk2Cell)>>,
    stats: Mutex<Stats>,
}

/// Queues one partition task; its children are queued recursively, so
/// independent arrangement leaves refine concurrently (and idle
/// workers steal them).
fn spawn_partition(set: &crate::parallel::TaskSet, shared: &Arc<JaaShared>, task: PartitionTask) {
    let nested = set.clone();
    let sh = Arc::clone(shared);
    set.spawn(move || {
        let mut local = Stats::new();
        let mut out = Vec::new();
        let mut children = Vec::new();
        expand(
            &sh.cands,
            sh.k,
            &sh.opts,
            &sh.none_removed,
            &mut local,
            task,
            &mut out,
            &mut children,
        );
        sh.out.lock().expect("jaa cell sink").extend(out);
        sh.stats.lock().expect("jaa stats sink").absorb(&local);
        for child in children {
            spawn_partition(&nested, &sh, child);
        }
    });
}

/// Parallel JAA refinement over a [`ThreadPool`]: work-stealing over
/// the partition tree, cell-for-cell identical to [`jaa_refine`]
/// (tasks are pure, and cells are path-sorted back into depth-first
/// order). Work counters are deterministic too — every task's work
/// depends only on its own inputs — except `stolen_tasks`, which is
/// scheduling-dependent by nature.
#[allow(clippy::too_many_arguments)]
pub(crate) fn jaa_parallel_refine(
    cands: &Arc<CandidateSet>,
    region: &Region,
    base_interior: &[f64],
    base_slack: f64,
    k: usize,
    opts: &JaaOptions,
    pool: &ThreadPool,
    stats: &mut Stats,
) -> Vec<Utk2Cell> {
    debug_assert!(cands.len() > k);
    let root = root_task(cands, k, opts, stats, region, base_interior, base_slack);
    let shared = Arc::new(JaaShared {
        cands: Arc::clone(cands),
        k,
        opts: opts.clone(),
        none_removed: vec![false; cands.len()],
        out: Mutex::new(Vec::new()),
        stats: Mutex::new(Stats::new()),
    });
    let set = pool.task_set();
    spawn_partition(&set, &shared, root);
    set.wait();
    stats.absorb(&shared.stats.lock().expect("jaa stats sink"));
    stats.pool_threads = pool.threads();
    stats.stolen_tasks += set.stolen();
    let tagged = std::mem::take(&mut *shared.out.lock().expect("jaa cell sink"));
    finish_cells(tagged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::top_k_brute;

    fn figure1_hotels() -> Vec<Vec<f64>> {
        vec![
            vec![8.3, 9.1, 7.2],
            vec![2.4, 9.6, 8.6],
            vec![5.4, 1.6, 4.1],
            vec![2.6, 6.9, 9.4],
            vec![7.3, 3.1, 2.4],
            vec![7.9, 6.4, 6.6],
            vec![8.6, 7.1, 4.3],
        ]
    }

    #[test]
    fn figure1_partitioning_matches_paper() {
        // Figure 1(b): four partitions with top-2 sets
        // {p2,p4}, {p1,p4}, {p1,p2}, {p1,p6}.
        let region = Region::hyperrect(vec![0.05, 0.05], vec![0.45, 0.25]);
        let res = jaa(&figure1_hotels(), &region, 2, &JaaOptions::default());
        let mut sets: Vec<Vec<u32>> = res.cells.iter().map(|c| c.top_k.clone()).collect();
        sets.sort();
        sets.dedup();
        assert_eq!(
            sets,
            vec![vec![0, 1], vec![0, 3], vec![0, 5], vec![1, 3]],
            "expected the paper's four top-2 sets"
        );
        assert_eq!(res.records, vec![0, 1, 3, 5]);
    }

    #[test]
    fn cells_agree_with_brute_force_at_interiors() {
        let region = Region::hyperrect(vec![0.05, 0.05], vec![0.45, 0.25]);
        let hotels = figure1_hotels();
        let res = jaa(&hotels, &region, 2, &JaaOptions::default());
        for cell in &res.cells {
            let mut want = top_k_brute(&hotels, &cell.interior, 2);
            want.sort_unstable();
            assert_eq!(cell.top_k, want, "at {:?}", cell.interior);
        }
    }

    #[test]
    fn random_data_cells_cover_region_and_label_correctly() {
        use rand::prelude::*;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
        let pts: Vec<Vec<f64>> = (0..150)
            .map(|_| (0..3).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let region = Region::hyperrect(vec![0.15, 0.2], vec![0.3, 0.35]);
        let k = 4;
        let res = jaa(&pts, &region, k, &JaaOptions::default());
        assert!(!res.cells.is_empty());
        // Sample points of R: each must land in a cell whose label is
        // the true top-k there.
        for _ in 0..200 {
            let w = [rng.gen_range(0.15..0.3), rng.gen_range(0.2..0.35)];
            let cell = res
                .cell_containing(&w)
                .unwrap_or_else(|| panic!("no cell contains {w:?}"));
            let mut want = top_k_brute(&pts, &w, k);
            want.sort_unstable();
            assert_eq!(cell.top_k, want, "wrong label at {w:?}");
        }
    }

    #[test]
    fn jaa_union_equals_rsa() {
        use crate::rsa::{rsa, RsaOptions};
        use rand::prelude::*;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(41);
        for trial in 0..5 {
            let pts: Vec<Vec<f64>> = (0..120)
                .map(|_| (0..3).map(|_| rng.gen_range(0.0..1.0)).collect())
                .collect();
            let lo = [rng.gen_range(0.05..0.3), rng.gen_range(0.05..0.3)];
            let region = Region::hyperrect(lo.to_vec(), lo.iter().map(|l| l + 0.1).collect());
            let k = 3;
            let u2 = jaa(&pts, &region, k, &JaaOptions::default());
            let u1 = rsa(&pts, &region, k, &RsaOptions::default());
            assert_eq!(u2.records, u1.records, "trial {trial}");
        }
    }

    #[test]
    fn anchor_ablation_produces_same_partition_labels() {
        let region = Region::hyperrect(vec![0.05, 0.05], vec![0.45, 0.25]);
        let hotels = figure1_hotels();
        let paper = jaa(&hotels, &region, 2, &JaaOptions::default());
        let ablated = jaa(
            &hotels,
            &region,
            2,
            &JaaOptions {
                kth_anchor: false,
                ..Default::default()
            },
        );
        // Same set of distinct top-k sets, whatever the partitioning.
        let norm = |r: &Utk2Result| {
            let mut s: Vec<Vec<u32>> = r.cells.iter().map(|c| c.top_k.clone()).collect();
            s.sort();
            s.dedup();
            s
        };
        assert_eq!(norm(&paper), norm(&ablated));
        assert_eq!(paper.records, ablated.records);
    }

    #[test]
    fn tiny_dataset_single_cell() {
        let pts = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let region = Region::hyperrect(vec![0.3], vec![0.6]);
        let res = jaa(&pts, &region, 5, &JaaOptions::default());
        assert_eq!(res.cells.len(), 1);
        assert_eq!(res.cells[0].top_k, vec![0, 1]);
    }

    #[test]
    fn one_dim_preference_domain() {
        // d = 2 data: preference domain is an interval.
        let pts = vec![
            vec![9.0, 1.0],
            vec![1.0, 9.0],
            vec![6.0, 6.0],
            vec![5.0, 5.0],
        ];
        let region = Region::hyperrect(vec![0.2], vec![0.8]);
        let res = jaa(&pts, &region, 1, &JaaOptions::default());
        // Top-1 moves 1 → 2 → 0 as w grows; all three appear.
        assert_eq!(res.records, vec![0, 1, 2]);
        for cell in &res.cells {
            let want = top_k_brute(&pts, &cell.interior, 1);
            assert_eq!(cell.top_k, want);
        }
    }
}
