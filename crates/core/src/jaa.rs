//! JAA — the joint-arrangement algorithm for UTK2 (§5 of the paper).
//!
//! JAA shares RSA's filtering step but refines differently: it grows a
//! single *common global arrangement* of `R`. An **anchor** candidate
//! partitions the current region via the half-spaces of its minimal
//! competitors; every resulting partition is classified as
//!
//! * **equal-to** — the anchor ranks exactly k-th, the top-k set is
//!   fully known: the partition is finalized in the output;
//! * **less-than** — the anchor ranks `k′ < k`-th: the top-`k′` prefix
//!   is known, a new anchor (the k-th scorer at a drill vector, §5.1)
//!   recursively resolves the remaining `k − k′` slots;
//! * **greater-than** — at least `k` competitors cover the partition:
//!   the anchor is out; a new anchor restarts the partition (ignoring
//!   the old anchor and its graph descendants);
//! * unclassifiable (Lemma 1 cannot yet confirm the rank) — recurse
//!   on the same anchor with the next competitor batch.
//!
//! The recursion's leaf partitions — all equal-to — tile `R` and form
//! the UTK2 answer: the exact top-k set for every possible weight
//! vector in `R`.

use crate::drill::graph_top_k;
use crate::skyband::{prefilter, CandidateSet, Prefilter};
use crate::stats::Stats;
use utk_geom::{Arrangement, CellId, Region};
use utk_rtree::RTree;

/// Tuning/ablation switches for JAA.
#[derive(Debug, Clone)]
pub struct JaaOptions {
    /// Pivot-score BBS ordering for the filter step (§4.1).
    pub pivot_order: bool,
    /// The §5.1 anchor strategy: the *k-th* scorer at the drill
    /// vector (guarantees an equal-to partition). Off picks the top-1
    /// scorer instead — still correct, but finalizes nothing directly
    /// (the paper's "poorly chosen anchor" scenario, for ablation).
    pub kth_anchor: bool,
}

impl Default for JaaOptions {
    fn default() -> Self {
        Self {
            pivot_order: true,
            kth_anchor: true,
        }
    }
}

/// One finalized partition of `R` with its exact top-k set.
#[derive(Debug, Clone)]
pub struct Utk2Cell {
    /// The partition's geometry (R's constraints plus the half-space
    /// sides accumulated along the recursion).
    pub region: Region,
    /// A point strictly inside the partition.
    pub interior: Vec<f64>,
    /// The exact top-k set (dataset ids, ascending) for every weight
    /// vector inside the partition.
    pub top_k: Vec<u32>,
}

/// UTK2 output: the partitioning of `R`.
#[derive(Debug, Clone)]
pub struct Utk2Result {
    /// Finalized partitions tiling `R`.
    pub cells: Vec<Utk2Cell>,
    /// Union of all top-k sets (equals the UTK1 answer), ascending.
    pub records: Vec<u32>,
    /// Work counters.
    pub stats: Stats,
}

impl Utk2Result {
    /// Number of partitions — the paper's "number of top-k sets"
    /// output-size metric.
    pub fn num_partitions(&self) -> usize {
        self.cells.len()
    }

    /// Number of *distinct* top-k sets across partitions.
    pub fn num_distinct_sets(&self) -> usize {
        let mut sets: Vec<&[u32]> = self.cells.iter().map(|c| c.top_k.as_slice()).collect();
        sets.sort_unstable();
        sets.dedup();
        sets.len()
    }

    /// The cell containing `w`, if any (boundary points may match the
    /// first of several adjacent cells).
    pub fn cell_containing(&self, w: &[f64]) -> Option<&Utk2Cell> {
        self.cells.iter().find(|c| c.region.contains(w))
    }
}

/// Runs UTK2 via JAA, building a fresh R-tree over `points`.
///
/// Legacy convenience: panics on malformed input and rebuilds all
/// per-dataset state from scratch. Prefer [`crate::engine::UtkEngine`],
/// which returns typed errors and reuses the index and the r-skyband
/// across queries.
pub fn jaa(points: &[Vec<f64>], region: &Region, k: usize, opts: &JaaOptions) -> Utk2Result {
    let tree = RTree::bulk_load(points);
    jaa_with_tree(points, &tree, region, k, opts)
}

/// Runs UTK2 via JAA over a pre-built index.
pub fn jaa_with_tree(
    points: &[Vec<f64>],
    tree: &RTree,
    region: &Region,
    k: usize,
    opts: &JaaOptions,
) -> Utk2Result {
    assert!(k >= 1, "k must be positive");
    let d = points[0].len();
    crate::rsa::validate_region(region, d - 1);
    let mut stats = Stats::new();
    let cells = match prefilter(points, tree, region, k, opts.pivot_order, &mut stats) {
        // Degenerate R: a single top-k query answers UTK2 with one
        // all-covering cell.
        Prefilter::Degenerate { w, top_k } => vec![Utk2Cell {
            region: region.clone(),
            interior: w,
            top_k,
        }],
        Prefilter::Trivial { ids, interior } => vec![Utk2Cell {
            region: region.clone(),
            interior,
            top_k: ids,
        }],
        Prefilter::Refine {
            cands,
            interior,
            slack,
        } => jaa_refine(&cands, region, &interior, slack, k, opts, &mut stats),
    };
    let records = records_of(&cells);
    Utk2Result {
        cells,
        records,
        stats,
    }
}

/// Sorted, deduplicated union of the cells' top-k sets (the implied
/// UTK1 answer).
pub(crate) fn records_of(cells: &[Utk2Cell]) -> Vec<u32> {
    let mut records: Vec<u32> = cells.iter().flat_map(|c| c.top_k.iter().copied()).collect();
    records.sort_unstable();
    records.dedup();
    records
}

/// JAA's refinement step (§5) over an already-filtered candidate set:
/// grows the common arrangement from the initial anchor and returns
/// the finalized partitions tiling `region`. Shared between the legacy
/// entry points and [`crate::engine::UtkEngine`], whose cache hands in
/// memoized candidate sets.
pub(crate) fn jaa_refine(
    cands: &CandidateSet,
    region: &Region,
    base_interior: &[f64],
    base_slack: f64,
    k: usize,
    opts: &JaaOptions,
    stats: &mut Stats,
) -> Vec<Utk2Cell> {
    let n = cands.len();
    debug_assert!(n > k);
    let mut ctx = Ctx {
        cands,
        k,
        opts,
        stats,
        none_removed: vec![false; n],
        out: Vec::new(),
    };

    // Initial anchor: the k-th scorer at R's pivot (§5.1).
    let pivot = region.pivot().expect("non-empty region");
    let anchor = ctx.pick_anchor(&pivot);
    let mut excluded = vec![false; n];
    excluded[anchor as usize] = true;
    let known_above: Vec<u32> = cands.graph.ancestors(anchor).to_vec();
    for &a in &known_above {
        excluded[a as usize] = true;
    }
    for &v in cands.graph.descendants(anchor) {
        excluded[v as usize] = true;
    }
    let quota = k - known_above.len();
    partition(
        &mut ctx,
        anchor,
        region,
        base_interior,
        base_slack,
        quota,
        &mut excluded,
        &known_above,
        0,
    );
    ctx.out
}

struct Ctx<'a> {
    cands: &'a CandidateSet,
    k: usize,
    opts: &'a JaaOptions,
    stats: &'a mut Stats,
    none_removed: Vec<bool>,
    out: Vec<Utk2Cell>,
}

impl Ctx<'_> {
    /// §5.1 anchor choice at drill vector `w`: the k-th scorer (or the
    /// top-1 scorer under the ablation flag).
    fn pick_anchor(&mut self, w: &[f64]) -> u32 {
        self.stats.drills += 1;
        let top = graph_top_k(self.cands, w, self.k, &self.none_removed);
        debug_assert_eq!(top.len(), self.k);
        if self.opts.kth_anchor {
            top[self.k - 1]
        } else {
            top[0]
        }
    }

    /// Finalizes an equal-to partition.
    fn finalize(
        &mut self,
        region: Region,
        interior: Vec<f64>,
        known_above: &[u32],
        covered: &[u32],
        anchor: u32,
    ) {
        let mut top_k: Vec<u32> = known_above
            .iter()
            .chain(covered.iter())
            .chain(std::iter::once(&anchor))
            .map(|&ci| self.cands.ids[ci as usize])
            .collect();
        debug_assert_eq!(top_k.len(), self.k, "equal-to cell must know k records");
        top_k.sort_unstable();
        self.out.push(Utk2Cell {
            region,
            interior,
            top_k,
        });
    }
}

/// The recursive verification-like procedure (Algorithm 4).
#[allow(clippy::too_many_arguments)]
fn partition(
    ctx: &mut Ctx<'_>,
    anchor: u32,
    rho: &Region,
    rho_interior: &[f64],
    rho_slack: f64,
    quota: usize,
    excluded: &mut Vec<bool>,
    known_above: &[u32],
    depth: usize,
) {
    debug_assert!(quota >= 1);
    debug_assert_eq!(known_above.len() + quota, ctx.k, "rank bookkeeping broke");
    assert!(depth < 10_000, "partition recursion runaway");
    let n = ctx.cands.len();

    // Insert the half-spaces of the minimal-count competitors.
    let batch: Vec<u32> = ctx.cands.graph.minimal_competitors(excluded);
    let mut arr = Arrangement::with_interior(rho.clone(), rho_interior.to_vec(), rho_slack);
    ctx.stats.arrangements_built += 1;
    let anchor_pt = &ctx.cands.points[anchor as usize];
    let anchor_id = ctx.cands.ids[anchor as usize];
    for &q in &batch {
        let hs = crate::rdominance::outranks_halfspace(
            &ctx.cands.points[q as usize],
            ctx.cands.ids[q as usize],
            anchor_pt,
            anchor_id,
        );
        arr.insert(hs, q);
        ctx.stats.halfspaces_inserted += 1;
        // Count ≥ quota ⇒ greater-than regardless of later insertions
        // (§5: no Lemma-1 confirmation needed): stop splitting them.
        let dead: Vec<CellId> = arr
            .live_cells()
            .filter(|(_, c)| c.count() >= quota)
            .map(|(id, _)| id)
            .collect();
        for id in dead {
            arr.prune(id);
        }
    }
    ctx.stats.cells_created += arr.all_cells().len();
    let bytes = arr.approx_bytes();
    ctx.stats.arrangement_grew(bytes);

    for &q in &batch {
        excluded[q as usize] = true;
    }

    // Classify every leaf partition.
    let leaves: Vec<CellId> = arr.leaf_cells().map(|(id, _)| id).collect();
    for cid in leaves {
        let cell = arr.cell(cid);
        let cnt = cell.count();
        let covered: Vec<u32> = cell.covered().iter().map(|&h| arr.tag(h)).collect();

        if cnt >= quota {
            // Greater-than: restart with a fresh anchor, ignoring the
            // old anchor and its descendants.
            let new_anchor = ctx.pick_anchor(cell.interior());
            debug_assert_ne!(new_anchor, anchor);
            let mut fresh = vec![false; n];
            fresh[anchor as usize] = true;
            for &v in ctx.cands.graph.descendants(anchor) {
                fresh[v as usize] = true;
            }
            fresh[new_anchor as usize] = true;
            let known: Vec<u32> = ctx.cands.graph.ancestors(new_anchor).to_vec();
            for &a in &known {
                fresh[a as usize] = true;
            }
            for &v in ctx.cands.graph.descendants(new_anchor) {
                fresh[v as usize] = true;
            }
            let region = cell.region().clone();
            let interior = cell.interior().to_vec();
            let slack = cell.slack();
            partition(
                ctx,
                new_anchor,
                &region,
                &interior,
                slack,
                ctx.k - known.len(),
                &mut fresh,
                &known,
                depth + 1,
            );
            continue;
        }

        // Lemma-1 confirmation: which non-excluded competitors could
        // still induce half-spaces overlapping this partition?
        let mut outside_tag = vec![false; n];
        for &h in cell.outside() {
            outside_tag[arr.tag(h) as usize] = true;
        }
        let mut disregarded = Vec::new();
        let mut remaining = false;
        for q in 0..n as u32 {
            if excluded[q as usize] {
                continue;
            }
            if ctx
                .cands
                .graph
                .ancestors(q)
                .iter()
                .any(|&a| outside_tag[a as usize])
            {
                disregarded.push(q);
            } else {
                remaining = true;
            }
        }

        if !remaining {
            // Rank confirmed: cnt + 1 relative to quota.
            if cnt + 1 == quota {
                // Equal-to: finalize.
                ctx.finalize(
                    cell.region().clone(),
                    cell.interior().to_vec(),
                    known_above,
                    &covered,
                    anchor,
                );
            } else {
                // Less-than: the top-k′ prefix is known; a new anchor
                // resolves the remaining slots.
                let mut itop: Vec<u32> = known_above.to_vec();
                itop.extend_from_slice(&covered);
                itop.push(anchor);
                let k_prime = itop.len();
                debug_assert!(k_prime < ctx.k);
                let new_anchor = {
                    ctx.stats.drills += 1;
                    let top = graph_top_k(ctx.cands, cell.interior(), ctx.k, &ctx.none_removed);
                    if ctx.opts.kth_anchor {
                        top[ctx.k - 1]
                    } else {
                        top[k_prime] // best scorer outside the prefix
                    }
                };
                debug_assert!(!itop.contains(&new_anchor));
                let mut fresh = vec![false; n];
                for &v in &itop {
                    fresh[v as usize] = true;
                }
                fresh[new_anchor as usize] = true;
                for &v in ctx.cands.graph.descendants(new_anchor) {
                    fresh[v as usize] = true;
                }
                // Ancestors of the new anchor outside Itop are plain
                // competitors (their half-spaces cover everything and
                // simply raise counts), exactly as in Algorithm 4.
                let region = cell.region().clone();
                let interior = cell.interior().to_vec();
                let slack = cell.slack();
                partition(
                    ctx,
                    new_anchor,
                    &region,
                    &interior,
                    slack,
                    ctx.k - k_prime,
                    &mut fresh,
                    &itop,
                    depth + 1,
                );
            }
        } else {
            // Unclassifiable: same anchor, next competitor batch,
            // rank quota reduced by this partition's count.
            let mut known: Vec<u32> = known_above.to_vec();
            known.extend_from_slice(&covered);
            for &q in &disregarded {
                excluded[q as usize] = true;
            }
            let region = cell.region().clone();
            let interior = cell.interior().to_vec();
            let slack = cell.slack();
            partition(
                ctx,
                anchor,
                &region,
                &interior,
                slack,
                quota - cnt,
                excluded,
                &known,
                depth + 1,
            );
            for &q in &disregarded {
                excluded[q as usize] = false;
            }
        }
    }

    for &q in &batch {
        excluded[q as usize] = false;
    }
    ctx.stats.arrangement_dropped(bytes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::top_k_brute;

    fn figure1_hotels() -> Vec<Vec<f64>> {
        vec![
            vec![8.3, 9.1, 7.2],
            vec![2.4, 9.6, 8.6],
            vec![5.4, 1.6, 4.1],
            vec![2.6, 6.9, 9.4],
            vec![7.3, 3.1, 2.4],
            vec![7.9, 6.4, 6.6],
            vec![8.6, 7.1, 4.3],
        ]
    }

    #[test]
    fn figure1_partitioning_matches_paper() {
        // Figure 1(b): four partitions with top-2 sets
        // {p2,p4}, {p1,p4}, {p1,p2}, {p1,p6}.
        let region = Region::hyperrect(vec![0.05, 0.05], vec![0.45, 0.25]);
        let res = jaa(&figure1_hotels(), &region, 2, &JaaOptions::default());
        let mut sets: Vec<Vec<u32>> = res.cells.iter().map(|c| c.top_k.clone()).collect();
        sets.sort();
        sets.dedup();
        assert_eq!(
            sets,
            vec![vec![0, 1], vec![0, 3], vec![0, 5], vec![1, 3]],
            "expected the paper's four top-2 sets"
        );
        assert_eq!(res.records, vec![0, 1, 3, 5]);
    }

    #[test]
    fn cells_agree_with_brute_force_at_interiors() {
        let region = Region::hyperrect(vec![0.05, 0.05], vec![0.45, 0.25]);
        let hotels = figure1_hotels();
        let res = jaa(&hotels, &region, 2, &JaaOptions::default());
        for cell in &res.cells {
            let mut want = top_k_brute(&hotels, &cell.interior, 2);
            want.sort_unstable();
            assert_eq!(cell.top_k, want, "at {:?}", cell.interior);
        }
    }

    #[test]
    fn random_data_cells_cover_region_and_label_correctly() {
        use rand::prelude::*;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
        let pts: Vec<Vec<f64>> = (0..150)
            .map(|_| (0..3).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let region = Region::hyperrect(vec![0.15, 0.2], vec![0.3, 0.35]);
        let k = 4;
        let res = jaa(&pts, &region, k, &JaaOptions::default());
        assert!(!res.cells.is_empty());
        // Sample points of R: each must land in a cell whose label is
        // the true top-k there.
        for _ in 0..200 {
            let w = [rng.gen_range(0.15..0.3), rng.gen_range(0.2..0.35)];
            let cell = res
                .cell_containing(&w)
                .unwrap_or_else(|| panic!("no cell contains {w:?}"));
            let mut want = top_k_brute(&pts, &w, k);
            want.sort_unstable();
            assert_eq!(cell.top_k, want, "wrong label at {w:?}");
        }
    }

    #[test]
    fn jaa_union_equals_rsa() {
        use crate::rsa::{rsa, RsaOptions};
        use rand::prelude::*;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(41);
        for trial in 0..5 {
            let pts: Vec<Vec<f64>> = (0..120)
                .map(|_| (0..3).map(|_| rng.gen_range(0.0..1.0)).collect())
                .collect();
            let lo = [rng.gen_range(0.05..0.3), rng.gen_range(0.05..0.3)];
            let region = Region::hyperrect(lo.to_vec(), lo.iter().map(|l| l + 0.1).collect());
            let k = 3;
            let u2 = jaa(&pts, &region, k, &JaaOptions::default());
            let u1 = rsa(&pts, &region, k, &RsaOptions::default());
            assert_eq!(u2.records, u1.records, "trial {trial}");
        }
    }

    #[test]
    fn anchor_ablation_produces_same_partition_labels() {
        let region = Region::hyperrect(vec![0.05, 0.05], vec![0.45, 0.25]);
        let hotels = figure1_hotels();
        let paper = jaa(&hotels, &region, 2, &JaaOptions::default());
        let ablated = jaa(
            &hotels,
            &region,
            2,
            &JaaOptions {
                kth_anchor: false,
                ..Default::default()
            },
        );
        // Same set of distinct top-k sets, whatever the partitioning.
        let norm = |r: &Utk2Result| {
            let mut s: Vec<Vec<u32>> = r.cells.iter().map(|c| c.top_k.clone()).collect();
            s.sort();
            s.dedup();
            s
        };
        assert_eq!(norm(&paper), norm(&ablated));
        assert_eq!(paper.records, ablated.records);
    }

    #[test]
    fn tiny_dataset_single_cell() {
        let pts = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let region = Region::hyperrect(vec![0.3], vec![0.6]);
        let res = jaa(&pts, &region, 5, &JaaOptions::default());
        assert_eq!(res.cells.len(), 1);
        assert_eq!(res.cells[0].top_k, vec![0, 1]);
    }

    #[test]
    fn one_dim_preference_domain() {
        // d = 2 data: preference domain is an interval.
        let pts = vec![
            vec![9.0, 1.0],
            vec![1.0, 9.0],
            vec![6.0, 6.0],
            vec![5.0, 5.0],
        ];
        let region = Region::hyperrect(vec![0.2], vec![0.8]);
        let res = jaa(&pts, &region, 1, &JaaOptions::default());
        // Top-1 moves 1 → 2 → 0 as w grows; all three appear.
        assert_eq!(res.records, vec![0, 1, 2]);
        for cell in &res.cells {
            let want = top_k_brute(&pts, &cell.interior, 1);
            assert_eq!(cell.top_k, want);
        }
    }
}
