//! Onion layers (§2, §3.3): the filter of the ON baseline.
//!
//! Layer `i` holds the records on the convex hull of the dataset with
//! layers `1..i` removed — restricted to the facets with normal in the
//! first quadrant, the only ones reachable by non-negative weights.
//! The first `k` layers are a superset of every top-k result (for any
//! weights, unconstrained by `R`), and always a subset of the
//! k-skyband \[38\].
//!
//! Per the paper's implementation note, layers are computed *off the
//! k-skyband*: `d = 2` uses the exact upper-hull chain, `d > 2` the
//! LP membership test (a record defines a first-quadrant facet iff a
//! top-1 witness weight vector exists for it).

use utk_geom::hull::{hull_membership, upper_hull_2d};

/// Computes the first `k` onion layers over `candidates` (record
/// indices into `points`). Returns the layers in order; records not in
/// any of the `k` layers are dropped.
pub fn onion_layers(points: &[Vec<f64>], candidates: &[u32], k: usize) -> Vec<Vec<u32>> {
    let d = if points.is_empty() {
        0
    } else {
        points[0].len()
    };
    let mut active: Vec<u32> = candidates.to_vec();
    let mut layers = Vec::with_capacity(k);
    for _ in 0..k {
        if active.is_empty() {
            break;
        }
        let layer: Vec<u32> = if d == 2 {
            let pts: Vec<(f64, f64)> = active
                .iter()
                .map(|&i| (points[i as usize][0], points[i as usize][1]))
                .collect();
            upper_hull_2d(&pts)
                .into_iter()
                .map(|local| active[local])
                .collect()
        } else {
            let idx: Vec<usize> = active.iter().map(|&i| i as usize).collect();
            active
                .iter()
                .filter(|&&i| hull_membership(points, &idx, i as usize))
                .copied()
                .collect()
        };
        if layer.is_empty() {
            // Degenerate (e.g. all remaining records coincide): place
            // everything in one final layer to preserve the superset
            // property.
            layers.push(active.clone());
            break;
        }
        active.retain(|i| !layer.contains(i));
        layers.push(layer);
    }
    layers
}

/// Union of the first `k` onion layers, ascending.
pub fn onion_candidates(points: &[Vec<f64>], candidates: &[u32], k: usize) -> Vec<u32> {
    let mut out: Vec<u32> = onion_layers(points, candidates, k)
        .into_iter()
        .flatten()
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyband::k_skyband;
    use crate::stats::Stats;
    use crate::topk::top_k_brute;
    use rand::prelude::*;
    use utk_rtree::RTree;

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn layers_are_disjoint_and_nested() {
        let pts = random_points(200, 2, 1);
        let all: Vec<u32> = (0..200).collect();
        let layers = onion_layers(&pts, &all, 3);
        let mut seen = std::collections::HashSet::new();
        for layer in &layers {
            for &i in layer {
                assert!(seen.insert(i), "record {i} in two layers");
            }
        }
    }

    #[test]
    fn first_layer_contains_every_top1() {
        let pts = random_points(150, 3, 2);
        let all: Vec<u32> = (0..150).collect();
        let layers = onion_layers(&pts, &all, 1);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        for _ in 0..100 {
            let a: f64 = rng.gen_range(0.0..1.0);
            let b: f64 = rng.gen_range(0.0..1.0 - a);
            let top1 = top_k_brute(&pts, &[a, b], 1)[0];
            assert!(layers[0].contains(&top1), "top-1 {top1} not on layer 1");
        }
    }

    #[test]
    fn k_layers_contain_every_topk() {
        let pts = random_points(120, 3, 3);
        let all: Vec<u32> = (0..120).collect();
        let k = 3;
        let cands = onion_candidates(&pts, &all, k);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(88);
        for _ in 0..100 {
            let a: f64 = rng.gen_range(0.0..1.0);
            let b: f64 = rng.gen_range(0.0..1.0 - a);
            for id in top_k_brute(&pts, &[a, b], k) {
                assert!(cands.contains(&id), "top-{k} member {id} missing");
            }
        }
    }

    #[test]
    fn onion_off_skyband_is_tighter_filter() {
        // The baseline pipeline (§3.3): layers computed off the
        // k-skyband. The result is a subset of the skyband by
        // construction and usually strictly smaller — and must still
        // cover every sampled top-k result.
        let pts = random_points(300, 3, 4);
        let tree = RTree::bulk_load(&pts);
        let k = 3;
        let mut sky = k_skyband(&pts, &tree, k, &mut Stats::new());
        sky.sort_unstable();
        let onion = onion_candidates(&pts, &sky, k);
        for i in &onion {
            assert!(sky.binary_search(i).is_ok());
        }
        assert!(onion.len() <= sky.len());
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        for _ in 0..100 {
            let a: f64 = rng.gen_range(0.01..0.98);
            let b: f64 = rng.gen_range(0.01..0.99 - a);
            for id in top_k_brute(&pts, &[a, b], k) {
                assert!(onion.contains(&id), "top-{k} member {id} filtered out");
            }
        }
    }

    #[test]
    fn figure3_style_example() {
        // The paper's Figure 3 observation: the 2 onion layers can be
        // a strict subset of the 2-skyband.
        let pts: Vec<Vec<f64>> = vec![
            vec![1.0, 9.0], // p1
            vec![4.0, 7.0], // p2
            vec![5.5, 5.5], // p3 (skyband but interior of hull layers)
            vec![8.0, 4.0], // p4
            vec![9.0, 1.0], // p5
            vec![2.0, 8.0], // p6
            vec![6.0, 3.0], // p7
            vec![3.0, 6.0], // p8
            vec![1.5, 1.5], // p9 (deep interior)
            vec![2.0, 2.0], // p10
        ];
        let tree = RTree::bulk_load(&pts);
        let sky = k_skyband(&pts, &tree, 2, &mut Stats::new());
        let all: Vec<u32> = (0..10).collect();
        let onion = onion_candidates(&pts, &all, 2);
        assert!(onion.len() <= sky.len());
        for i in &onion {
            assert!(sky.contains(i));
        }
    }

    #[test]
    fn lp_and_2d_paths_agree() {
        let pts = random_points(80, 2, 9);
        let all: Vec<u32> = (0..80).collect();
        // Force the LP path by treating the data as d=2 via the
        // generic function vs the chain path.
        let chain = onion_layers(&pts, &all, 2);
        let idx: Vec<usize> = (0..80).collect();
        let lp_layer1: Vec<u32> = (0..80u32)
            .filter(|&i| hull_membership(&pts, &idx, i as usize))
            .collect();
        let mut a = chain[0].clone();
        a.sort_unstable();
        let mut b = lp_layer1;
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
