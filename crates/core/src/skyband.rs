//! BBS skyband computation (§2) and its r-skyband adaptation (§4.1).
//!
//! Both run the branch-and-bound skyline paradigm of Papadias et al.
//! over an R-tree: entries pop from a max-heap under a monotone key;
//! a popped record joins the skyband iff fewer than `k` current
//! members (r-)dominate it; a popped node is expanded iff its MBB top
//! corner is (r-)dominated by fewer than `k` members.
//!
//! The r-skyband differs in two ways (§4.1): dominance tests are
//! r-dominance tests, and the heap key is the score under the *pivot*
//! vector of `R` (its vertex average), which steers the search toward
//! likely members first. Because every potential r-dominator scores at
//! least as high at the pivot, it pops no later than its dominatees —
//! so, as the paper observes, the r-dominance graph arcs come for free
//! from the membership tests.
//!
//! # The flat screen loop
//!
//! The screen — "how many current members r-dominate this probe?" —
//! is the hot loop of every UTK query, so it runs on a flat layout
//! with zero per-test allocations ([`BandScreen`]):
//!
//! * the dataset and the admitted members live in row-major
//!   [`PointStore`]s (one contiguous `f64` buffer, stride `d`);
//! * when the region has a vertex list (box corners, polytope
//!   vertices), each member's scores at those vertices are computed
//!   **once on admission**; a probe's scores are computed once per
//!   pop, and each r-dominance test is a sweep over two cached score
//!   slices with early exit — no coordinate access, no `Vec` per test;
//! * the pivot-order invariant (an r-dominator scores at least as
//!   high as its dominatee at the pivot, strictly so over
//!   full-dimensional regions) cuts each screen to the prefix of
//!   members whose pivot score reaches the probe's. Under the pivot
//!   heap key that prefix is the entire member list — BBS already
//!   pops dominators first — so the cut costs one binary search and
//!   pays off where admission order and pivot order part ways: the
//!   coordinate-sum ablation key, and NaN-degraded probes;
//! * the cached vertex scores live in a structure-of-arrays
//!   [`ScorePanel`] (member blocks of [`SCORE_LANES`] lanes,
//!   vertex-major), and when admission order matches pivot order the
//!   sweep runs the branch-free blocked kernel
//!   ([`blocked_dominates_mask`]) behind an `f32` reject-only
//!   prefilter ([`prefilter_reject_mask`]) — both selected by
//!   [`ScreenKernel`], both byte-identical to the scalar oracle by
//!   construction (the prefilter may only *reject*, and every
//!   survivor is verified exactly in `f64`).
//!
//! # Superset reuse
//!
//! For regions `R ⊆ R'`, the r-skyband over `R` is a subset of the
//! r-skyband over `R'` (r-dominance over the larger region implies it
//! over the smaller, so records only gain dominators as the region
//! shrinks). [`r_skyband_from_superset`] exploits that: it re-screens
//! a cached candidate set for `R'` in the exact cold-BBS pop order of
//! `R` — descending pivot score, ties to the smaller id — and
//! reproduces the cold [`CandidateSet`] byte for byte (ids, points,
//! graph) while testing only `|R'-skyband|` records instead of
//! traversing the whole tree. The engine's filter cache probes
//! containing regions on a miss and routes through it.

use crate::graph::DominanceGraph;
use crate::rdominance::{
    blocked_dominates_mask, classify_member_scores, dominates, prefilter_reject_mask,
    r_dominance_scratch, RDominance, ScreenKernel,
};
use crate::stats::Stats;
use utk_geom::{
    f32_down, pref_score, PointStore, PointStoreBuilder, Region, ScorePanel, SCORE_LANES,
};
use utk_rtree::RTree;

/// Vertex-list cap for the corner-score fast path: boxes above this
/// many corners (`2^dim`) and polytopes above this many vertices fall
/// back to the allocation-free affine-delta test. Covers the paper's
/// whole dimensionality range (`d ≤ 7` ⇒ ≤ 64 corners) with room.
const CORNER_CAP: usize = 256;

/// Safety margin of the pivot-score prefix cut. A member can only
/// r-dominate a probe if its score delta at the pivot is at least
/// `-EPS` (the classification tolerance); member and probe scores are
/// computed to ~1e-13 absolute error on this workspace's normalized
/// data, so a member whose cached pivot score falls more than this
/// margin below the probe's provably cannot dominate it.
const PREFIX_MARGIN: f64 = 1e-6;

/// Output of the filtering step: the r-skyband records, their
/// attribute vectors (flat, row-major), and the r-dominance graph
/// over them.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateSet {
    /// Dataset ids of the candidates, in BBS pop (descending pivot
    /// score) order.
    pub ids: Vec<u32>,
    /// Candidate attribute vectors, parallel to `ids`, in a flat
    /// [`PointStore`] (index `i` yields the `d`-length slice of
    /// candidate `i`).
    pub points: PointStore,
    /// r-dominance graph over candidate indices `0..ids.len()`.
    pub graph: DominanceGraph,
}

impl CandidateSet {
    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the filter retained nothing (empty dataset edge).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Heap bytes held by the candidate set — the payload size the
    /// engine's byte-budgeted filter cache accounts with.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.ids.len() * std::mem::size_of::<u32>()
            + self.points.approx_bytes()
            + self.graph.approx_bytes()
    }
}

/// Outcome of the pre-refinement pipeline shared by every UTK entry
/// point: the degenerate-region and small-candidate-set shortcuts, or
/// a candidate set ready for refinement.
pub(crate) enum Prefilter {
    /// `R` has no interior: the answer is one plain top-k at the
    /// region's pivot `w` (ids sorted ascending).
    Degenerate {
        /// The pivot weight vector the top-k was evaluated at.
        w: Vec<f64>,
        /// The sorted top-k at `w`.
        top_k: Vec<u32>,
    },
    /// The r-skyband has at most `k` members: every candidate fills
    /// one of the k slots everywhere in `R` (ids sorted ascending).
    Trivial {
        /// The sorted candidate ids.
        ids: Vec<u32>,
        /// An interior point of `R`.
        interior: Vec<f64>,
    },
    /// Refinement is needed.
    Refine {
        /// The r-skyband with its r-dominance graph.
        cands: CandidateSet,
        /// An interior point of `R`.
        interior: Vec<f64>,
        /// The interior point's slack.
        slack: f64,
    },
}

/// Runs the shared pre-refinement pipeline over a validated region:
/// interior computation, the degenerate-`R` shortcut (§3.1), the
/// r-skyband filter (§4.1), and the `|candidates| ≤ k` shortcut.
///
/// Builds a fresh flat [`PointStore`] per call — the legacy free
/// functions this serves rebuild all state per call by design; the
/// engine path holds a prebuilt store and calls [`r_skyband`]
/// directly.
///
/// # Panics
/// Panics if the region is empty (the legacy contract; the engine
/// validates regions before calling in).
pub(crate) fn prefilter(
    points: &[Vec<f64>],
    tree: &RTree,
    region: &Region,
    k: usize,
    pivot_order: bool,
    stats: &mut Stats,
) -> Prefilter {
    use utk_geom::tol::INTERIOR_EPS;
    let Some((interior, slack)) = region.interior_point() else {
        // utk-lint: allow(panic) -- documented # Panics contract; the engine validates first
        panic!("query region is empty");
    };
    if slack <= INTERIOR_EPS {
        // utk-lint: allow(panic) -- invariant: interior_point() above proved the region non-empty
        let w = region.pivot().expect("non-empty region");
        let mut top_k = crate::topk::top_k_brute(points, &w, k);
        top_k.sort_unstable();
        return Prefilter::Degenerate { w, top_k };
    }
    let store = PointStore::from_rows(points);
    let cands = r_skyband(&store, tree, region, k, pivot_order, stats);
    if cands.len() <= k {
        let mut ids = cands.ids.clone();
        ids.sort_unstable();
        return Prefilter::Trivial { ids, interior };
    }
    Prefilter::Refine {
        cands,
        interior,
        slack,
    }
}

/// Classical k-skyband via BBS: ids of records dominated by fewer
/// than `k` others. Heap key: coordinate sum (a monotone surrogate of
/// the distance-to-top-corner order of the original BBS).
pub fn k_skyband(points: &[Vec<f64>], tree: &RTree, k: usize, stats: &mut Stats) -> Vec<u32> {
    let mut band: Vec<u32> = Vec::new();
    let sum = |p: &[f64]| p.iter().sum::<f64>();
    tree.search_descending(
        |mbb| sum(&mbb.hi),
        |id| sum(&points[id as usize]),
        |id, _| {
            stats.bbs_pops += 1;
            let p = &points[id as usize];
            let mut count = 0;
            for &m in &band {
                stats.rdom_tests += 1;
                if dominates(&points[m as usize], p) {
                    count += 1;
                    if count >= k {
                        break;
                    }
                }
            }
            if count < k {
                band.push(id);
            }
            true
        },
    );
    // NOTE: node-level pruning is handled inside the closure via the
    // record key only; BBS additionally prunes whole subtrees. We do
    // that below with a specialised traversal when it pays off.
    band
}

/// The allocation-free r-skyband screen: admitted members in flat
/// storage, per-member region-vertex scores cached on admission, and
/// the pivot-score prefix cut. See the [module docs](self).
///
/// Protocol per probe: call [`BandScreen::screen`]; if it returns
/// `true` (fewer than `k` dominators) and the probe is a record,
/// immediately call [`BandScreen::admit_last`] — it consumes the
/// probe state (corner scores, pivot score, dominator list) left by
/// that `screen` call.
struct BandScreen<'r> {
    region: &'r Region,
    k: usize,
    /// Which dominance kernel sweeps the members (see
    /// [`ScreenKernel`]); all choices produce byte-identical candidate
    /// sets.
    kernel: ScreenKernel,
    pivot: Vec<f64>,
    /// Region vertices (box corners / polytope vertices), when small
    /// enough to cache scores against; `None` falls back to the
    /// scratch affine-delta test.
    corners: Option<PointStore>,
    member_points: PointStoreBuilder,
    member_ids: Vec<u32>,
    member_pivot_scores: Vec<f64>,
    /// Member indices by descending pivot score (NaN last). Under the
    /// pivot heap key this stays the identity permutation.
    by_pivot: Vec<u32>,
    /// True while `by_pivot` is the identity permutation — the
    /// precondition of the blocked sweep (block `b` must cover exactly
    /// members `b*SCORE_LANES..`, so the prefix cut is a member-index
    /// prefix). The pivot heap key preserves it; the sum-key ablation
    /// and NaN-degraded orders break it and drop to the scalar oracle,
    /// which also keeps the dominator lists in `by_pivot` order there.
    by_pivot_identity: bool,
    /// Member scores at the region vertices, in SoA blocks (exact
    /// `f64` plus the rounded-up `f32` prefilter panel).
    panel: ScorePanel,
    dominator_lists: Vec<Vec<u32>>,
    // Per-probe scratch (no allocations after warm-up).
    probe_corner_scores: Vec<f64>,
    /// Probe vertex scores rounded down ([`f32_down`]) — the
    /// survival-biased side of the prefilter bound.
    probe_lower_scores: Vec<f32>,
    probe_pivot_score: f64,
    doms_scratch: Vec<u32>,
    delta_scratch: Vec<f64>,
    gather_scratch: Vec<f64>,
}

impl<'r> BandScreen<'r> {
    fn new(region: &'r Region, k: usize, kernel: ScreenKernel) -> Self {
        // utk-lint: allow(panic) -- invariant: the engine rejects empty regions before filtering
        let pivot = region.pivot().expect("query region must be non-empty");
        let corners = region.vertex_store(CORNER_CAP);
        let nv = corners.as_ref().map_or(0, |c| c.len());
        Self {
            region,
            k,
            kernel,
            pivot,
            corners,
            member_points: PointStoreBuilder::default(),
            member_ids: Vec::new(),
            member_pivot_scores: Vec::new(),
            by_pivot: Vec::new(),
            by_pivot_identity: true,
            panel: ScorePanel::new(nv),
            dominator_lists: Vec::new(),
            probe_corner_scores: Vec::new(),
            probe_lower_scores: Vec::new(),
            probe_pivot_score: f64::NAN,
            doms_scratch: Vec::new(),
            delta_scratch: Vec::new(),
            gather_scratch: Vec::new(),
        }
    }

    /// The region's pivot (the BBS heap key vector).
    fn pivot(&self) -> &[f64] {
        &self.pivot
    }

    /// Screens probe `p` (a record or a node MBB top corner) against
    /// the current members: `true` iff fewer than `k` members
    /// r-dominate it. Fills the probe state [`BandScreen::admit_last`]
    /// consumes.
    fn screen(&mut self, p: &[f64], stats: &mut Stats) -> bool {
        if let Some(corners) = &self.corners {
            self.probe_corner_scores.clear();
            self.probe_corner_scores
                .extend(corners.iter().map(|v| pref_score(p, v)));
            if self.kernel == ScreenKernel::BlockedPrefilter {
                self.probe_lower_scores.clear();
                self.probe_lower_scores
                    .extend(self.probe_corner_scores.iter().map(|&s| f32_down(s)));
            }
        }
        let s_piv = pref_score(p, &self.pivot);
        self.probe_pivot_score = s_piv;
        // Prefix cut: members below the probe's pivot score (beyond
        // the safety margin) provably cannot dominate it. NaN probes
        // scan everything — the invariant says nothing about them.
        let cut = if s_piv.is_nan() {
            self.by_pivot.len()
        } else {
            let scores = &self.member_pivot_scores;
            self.by_pivot
                .partition_point(|&mi| scores[mi as usize] >= s_piv - PREFIX_MARGIN)
        };
        stats.screen_prefix_skips += self.by_pivot.len() - cut;
        self.doms_scratch.clear();
        if self.kernel != ScreenKernel::Scalar && self.corners.is_some() && self.by_pivot_identity {
            return self.screen_blocked(cut, stats);
        }
        for idx in 0..cut {
            let mi = self.by_pivot[idx];
            stats.rdom_tests += 1;
            let dominates = if self.corners.is_some() {
                classify_member_scores(
                    &self.panel,
                    mi as usize,
                    &self.probe_corner_scores,
                    &mut self.gather_scratch,
                ) == RDominance::Dominates
            } else {
                r_dominance_scratch(
                    self.member_points.point(mi as usize),
                    p,
                    self.region,
                    &mut self.delta_scratch,
                ) == RDominance::Dominates
            };
            if dominates {
                self.doms_scratch.push(mi);
                if self.doms_scratch.len() >= self.k {
                    return false;
                }
            }
        }
        true
    }

    /// The branch-free blocked sweep over the score panel.
    /// Precondition: `by_pivot` is the identity permutation, so the
    /// prefix cut `0..cut` is a member-index prefix and block `b`
    /// covers members `b*SCORE_LANES..` in admission (= dominator
    /// list) order.
    ///
    /// Counting contract: every processed block adds its live-lane
    /// count to `rdom_tests` and one to `kernel_blocks` — there is no
    /// mid-block early exit (that is what makes the inner loops
    /// vectorizable), so a probe collecting its k-th dominator stops
    /// at block granularity and the counters stay deterministic.
    /// Rejected probes never expose their dominator lists (only
    /// admitted probes do, and those sweep every block), so stopping
    /// early cannot change any output byte.
    fn screen_blocked(&mut self, cut: usize, stats: &mut Stats) -> bool {
        let prefilter = self.kernel == ScreenKernel::BlockedPrefilter;
        for b in 0..cut.div_ceil(SCORE_LANES) {
            let live = (cut - b * SCORE_LANES).min(SCORE_LANES);
            let live_mask: u8 = if live == SCORE_LANES {
                u8::MAX
            } else {
                (1u8 << live) - 1
            };
            stats.rdom_tests += live;
            stats.kernel_blocks += 1;
            if prefilter {
                let reject =
                    prefilter_reject_mask(self.panel.block_f32(b), &self.probe_lower_scores);
                if reject & live_mask == live_mask {
                    // The f32 bound proves every live member fails —
                    // the only decision the prefilter may take alone.
                    stats.prefilter_rejects += 1;
                    continue;
                }
                stats.prefilter_verifies += 1;
            }
            let mask = blocked_dominates_mask(self.panel.block_f64(b), &self.probe_corner_scores)
                & live_mask;
            let mut bits = mask;
            while bits != 0 {
                let l = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.doms_scratch.push((b * SCORE_LANES + l) as u32);
                if self.doms_scratch.len() >= self.k {
                    return false;
                }
            }
        }
        true
    }

    /// Admits the record probed by the immediately preceding
    /// [`BandScreen::screen`] call: appends its coordinates, cached
    /// vertex scores, pivot score, and dominator list.
    fn admit_last(&mut self, id: u32, p: &[f64]) {
        if self.member_ids.is_empty() {
            // First admission fixes the stride.
            self.member_points = PointStoreBuilder::new(p.len());
        }
        let mi = self.member_ids.len() as u32;
        self.member_ids.push(id);
        self.member_points.push(p);
        if self.corners.is_some() {
            self.panel.push(&self.probe_corner_scores);
        }
        let s = self.probe_pivot_score;
        self.member_pivot_scores.push(s);
        // Keep `by_pivot` descending (NaN last), inserting after
        // equal scores so the pivot heap key keeps it the identity.
        let pos = if s.is_nan() {
            self.by_pivot.len()
        } else {
            let scores = &self.member_pivot_scores;
            self.by_pivot.partition_point(|&m| scores[m as usize] >= s)
        };
        self.by_pivot.insert(pos, mi);
        // An out-of-place insert ends the identity permutation — and
        // with it the blocked sweep's eligibility — for good.
        self.by_pivot_identity &= pos == mi as usize;
        self.dominator_lists.push(self.doms_scratch.clone());
    }

    /// Admits a record whose screen outcome is already known from a
    /// previous run (the free prefix of a splice repair): recomputes
    /// the probe state exactly as [`BandScreen::screen`] would — same
    /// `pref_score` calls, so bitwise-identical cached vertex scores —
    /// and takes `doms` as the dominator list instead of re-testing.
    fn admit_free(&mut self, id: u32, p: &[f64], doms: &[u32]) {
        if let Some(corners) = &self.corners {
            self.probe_corner_scores.clear();
            self.probe_corner_scores
                .extend(corners.iter().map(|v| pref_score(p, v)));
        }
        self.probe_pivot_score = pref_score(p, &self.pivot);
        self.doms_scratch.clear();
        self.doms_scratch.extend_from_slice(doms);
        self.admit_last(id, p);
    }

    /// Finalizes into the candidate set pieces.
    fn finish(self, dim: usize) -> (Vec<u32>, PointStore, Vec<Vec<u32>>) {
        let points = if self.member_ids.is_empty() {
            PointStoreBuilder::new(dim).finish()
        } else {
            self.member_points.finish()
        };
        (self.member_ids, points, self.dominator_lists)
    }
}

/// One BBS heap entry: a record or a node under a max-heap key.
///
/// The ordering is total and fully deterministic: descending key with
/// NaN keys last (a pathological record degrades the search order
/// instead of aborting it), then nodes before records, then smaller
/// id first — which makes the record pop order exactly "descending
/// key, ties by ascending id", the order
/// [`r_skyband_from_superset`] reproduces (see [`Entry`]'s `Ord`).
#[derive(Debug)]
struct Entry {
    key: f64,
    is_node: bool,
    id: usize,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match (self.key.is_nan(), other.key.is_nan()) {
            (true, true) => std::cmp::Ordering::Equal,
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            (false, false) => self.key.total_cmp(&other.key),
        }
        // Larger compares greater ⇒ pops first from the max-heap; on
        // key ties, *nodes pop before records*, then smaller ids
        // first. Nodes-before-records is load-bearing: a node's key
        // upper-bounds every record inside it, so by the time the
        // first record at key κ pops, every node at key ≥ κ has
        // expanded and every key-κ record sits in the heap — records
        // at equal keys therefore pop in ascending id order, the
        // exact order [`r_skyband_from_superset`] reproduces.
        .then(self.is_node.cmp(&other.is_node))
        .then(other.id.cmp(&self.id))
    }
}

/// Sentinel in a [`TreeView`] remap marking a tombstoned (deleted)
/// base-tree record.
pub const TOMBSTONE: u32 = u32::MAX;

/// A possibly stale R-tree plus the corrections that make it serve
/// the *current* dataset — the incremental-update seam of the BBS
/// traversals.
///
/// After insertions and deletions the engine does not rebuild its
/// R-tree immediately; instead it reads the last-built tree through a
/// view: `remap` translates each base-tree record id to its current
/// dataset id ([`TOMBSTONE`] = deleted; `None` = identity), and
/// `extra` lists current ids appended since the tree was built. The
/// BBS seeds `extra` records straight into its heap and drops
/// tombstoned records at leaf expansion.
///
/// **Why results stay exact and byte-identical to a fresh tree:**
/// record pop order is tree-shape independent — records pop in
/// descending key order with ties to the smaller (current) id,
/// because every node's key (its MBB top corner, possibly stale but
/// still an upper bound over the live records inside) pops before the
/// records below it. A subtree pruned via its (stale) top corner only
/// hides records that same screen would have rejected, since a member
/// r-dominating the corner r-dominates everything under it. Only the
/// work counters (`bbs_pops`, node screens) depend on the tree shape.
#[derive(Debug, Clone, Copy)]
pub struct TreeView<'a> {
    tree: &'a RTree,
    remap: Option<&'a [u32]>,
    extra: &'a [u32],
}

impl<'a> TreeView<'a> {
    /// A view of a freshly built tree: record ids are dataset ids.
    pub fn packed(tree: &'a RTree) -> Self {
        Self {
            tree,
            remap: None,
            extra: &[],
        }
    }

    /// A stale tree corrected by `remap` (base record id → current
    /// dataset id, [`TOMBSTONE`] = deleted) and `extra` (current ids
    /// absent from the tree).
    pub fn overlay(tree: &'a RTree, remap: Option<&'a [u32]>, extra: &'a [u32]) -> Self {
        Self { tree, remap, extra }
    }

    /// The current dataset id of base-tree record `rid`, or `None`
    /// for a tombstoned one.
    #[inline]
    fn current_id(&self, rid: u32) -> Option<u32> {
        match self.remap {
            None => Some(rid),
            Some(map) => {
                let id = map[rid as usize];
                (id != TOMBSTONE).then_some(id)
            }
        }
    }
}

/// r-skyband via the adapted BBS (§4.1): candidates r-dominated by
/// fewer than `k` others over `region`, along with all r-dominance
/// arcs among them. `points` is the flat dataset the `tree` was built
/// over.
///
/// `pivot_order` selects the paper's pivot-score heap key. `false`
/// falls back to the classic coordinate-sum key (ablation): that key
/// does *not* upper-bound r-dominance (a later-popped record can still
/// r-dominate an earlier one), so some dominators go uncounted and the
/// filter returns a superset of the r-skyband — still a safe input to
/// refinement, just looser, which is exactly the paper's argument for
/// the pivot order.
pub fn r_skyband(
    points: &PointStore,
    tree: &RTree,
    region: &Region,
    k: usize,
    pivot_order: bool,
    stats: &mut Stats,
) -> CandidateSet {
    r_skyband_with_kernel(
        points,
        tree,
        region,
        k,
        pivot_order,
        ScreenKernel::default(),
        stats,
    )
}

/// [`r_skyband`] with an explicit [`ScreenKernel`] choice. The kernel
/// never changes the candidate set — only how the screen sweeps
/// members and which work counters tick.
pub fn r_skyband_with_kernel(
    points: &PointStore,
    tree: &RTree,
    region: &Region,
    k: usize,
    pivot_order: bool,
    kernel: ScreenKernel,
    stats: &mut Stats,
) -> CandidateSet {
    r_skyband_view_with_kernel(
        points,
        &TreeView::packed(tree),
        region,
        k,
        pivot_order,
        kernel,
        stats,
    )
}

/// [`r_skyband`] reading the tree through a [`TreeView`] — the
/// mutable-engine entry point. With a packed view this is exactly the
/// classic traversal; with an overlay it produces a byte-identical
/// candidate set (see the [`TreeView`] docs for the argument) while
/// only the work counters differ.
pub fn r_skyband_view(
    points: &PointStore,
    view: &TreeView<'_>,
    region: &Region,
    k: usize,
    pivot_order: bool,
    stats: &mut Stats,
) -> CandidateSet {
    r_skyband_view_with_kernel(
        points,
        view,
        region,
        k,
        pivot_order,
        ScreenKernel::default(),
        stats,
    )
}

/// [`r_skyband_view`] with an explicit [`ScreenKernel`] choice.
pub fn r_skyband_view_with_kernel(
    points: &PointStore,
    view: &TreeView<'_>,
    region: &Region,
    k: usize,
    pivot_order: bool,
    kernel: ScreenKernel,
    stats: &mut Stats,
) -> CandidateSet {
    let tree = view.tree;
    let mut screen = BandScreen::new(region, k, kernel);
    let key = |screen: &BandScreen, p: &[f64]| -> f64 {
        if pivot_order {
            pref_score(p, screen.pivot())
        } else {
            p.iter().sum()
        }
    };

    // A single best-first pass; both records and node top corners are
    // screened against the current skyband by r-dominance. Records
    // the tree does not know about yet enter the heap directly.
    let mut heap = std::collections::BinaryHeap::new();
    let root = tree.root();
    heap.push(Entry {
        key: key(&screen, &tree.node(root).mbb.hi),
        is_node: true,
        id: root,
    });
    for &id in view.extra {
        heap.push(Entry {
            key: key(&screen, &points[id as usize]),
            is_node: false,
            id: id as usize,
        });
    }
    while let Some(Entry { is_node, id, .. }) = heap.pop() {
        stats.bbs_pops += 1;
        if is_node {
            let node = tree.node(id);
            if !screen.screen(&node.mbb.hi, stats) {
                continue; // subtree fully r-dominated ≥ k times
            }
            match &node.kind {
                utk_rtree::NodeKind::Inner { children } => {
                    for &c in children {
                        heap.push(Entry {
                            key: key(&screen, &tree.node(c).mbb.hi),
                            is_node: true,
                            id: c,
                        });
                    }
                }
                utk_rtree::NodeKind::Leaf { items } => {
                    for &rid in items {
                        // Tombstoned records never reach the heap;
                        // survivors carry their *current* id, so the
                        // ascending-id tie-break matches a fresh tree.
                        let Some(cur) = view.current_id(rid) else {
                            continue;
                        };
                        heap.push(Entry {
                            key: key(&screen, &points[cur as usize]),
                            is_node: false,
                            id: cur as usize,
                        });
                    }
                }
            }
        } else if screen.screen(&points[id], stats) {
            screen.admit_last(id as u32, &points[id]);
        }
    }

    let (ids, cpoints, dominator_lists) = screen.finish(points.dim());
    stats.candidates = ids.len();
    let graph = crate::obs::span(crate::obs::Phase::Graph, || {
        DominanceGraph::build(dominator_lists)
    });
    CandidateSet {
        ids,
        points: cpoints,
        graph,
    }
}

/// Whether a fresh BBS run over `region` would reject a probe `p`
/// appended to the dataset, judged against the members of `cands`
/// alone: true iff at least `k` members that would pop *before* `p`
/// (heap key strictly greater under `total_cmp`, or equal — an
/// appended record carries the largest id, so every tie pops first)
/// r-dominate it.
///
/// This is the engine's **exact** insert-invalidation test for a
/// cached r-skyband. If it holds, a cold run on the grown dataset
/// admits exactly the cached member sequence and rejects `p` when it
/// pops (its pre-`p` dominators are all members, all already
/// admitted); if it fails, `p` joins the r-skyband (under the pivot
/// key; under the sum-key ablation it at least *may*), so the entry
/// must be dropped either way. The key comparison mirrors the heap
/// ([`Entry`]) bit for bit — same computed scores, same `total_cmp` —
/// so there is no tolerance gap between this test and a real run.
pub fn rejected_by_members(
    cands: &CandidateSet,
    p: &[f64],
    region: &Region,
    k: usize,
    pivot_order: bool,
) -> bool {
    // utk-lint: allow(panic) -- invariant: the engine rejects empty regions before filtering
    let pivot = region.pivot().expect("query region must be non-empty");
    let key = |q: &[f64]| -> f64 {
        if pivot_order {
            pref_score(q, &pivot)
        } else {
            q.iter().sum()
        }
    };
    let kp = key(p);
    if kp.is_nan() {
        // A NaN key pops last and is never r-dominated under the
        // screen's classification: a fresh run would admit it.
        return false;
    }
    let mut count = 0;
    for i in 0..cands.len() {
        let m = &cands.points[i];
        let km = key(m);
        if km.is_nan() || km.total_cmp(&kp) == std::cmp::Ordering::Less {
            continue; // pops after p: cannot have been admitted yet
        }
        if crate::rdominance::r_dominance(m, p, region) == RDominance::Dominates {
            count += 1;
            if count >= k {
                return true;
            }
        }
    }
    false
}

/// Rebuilds the exact r-skyband of `region` by re-screening a cached
/// candidate set of a *containing* region (`R' ⊇ R`, same `k`, pivot
/// order) — the engine's cross-region superset reuse.
///
/// The output is byte-identical to a cold [`r_skyband`] run over the
/// full dataset: candidates are processed in the cold pop order
/// (descending pivot score of `region`, ties to the smaller dataset
/// id) through the same [`BandScreen`], so ids, points, and graph
/// arcs all coincide while only `|superset|` records are screened and
/// the R-tree is never traversed.
///
/// Soundness: shrinking the region only adds r-dominance pairs
/// (`a·w + c ≥ 0` over `R'` implies it over `R`; strictness transfers
/// because both regions are full-dimensional), so every member of the
/// r-skyband over `R` is a member over `R'` — no candidate outside
/// `superset` can survive a cold run. One honest caveat: that
/// argument is exact-arithmetic, while classification runs with the
/// `EPS` tolerance — a pair whose delta range shrinks *into* the
/// `±EPS` band over `R` (score gaps of ~1e-9 on normalized data)
/// degrades from `Dominates` to `Equivalent` there, which could in
/// principle admit a record over `R` that the `R'` filter already
/// dropped. Such near-tie pairs sit on the same tolerance knife-edge
/// as every other predicate in this workspace (cold runs included)
/// and do not arise away from it.
pub fn r_skyband_from_superset(
    superset: &CandidateSet,
    region: &Region,
    k: usize,
    stats: &mut Stats,
) -> CandidateSet {
    r_skyband_from_superset_with_kernel(superset, region, k, ScreenKernel::default(), stats)
}

/// [`r_skyband_from_superset`] with an explicit [`ScreenKernel`]
/// choice.
pub fn r_skyband_from_superset_with_kernel(
    superset: &CandidateSet,
    region: &Region,
    k: usize,
    kernel: ScreenKernel,
    stats: &mut Stats,
) -> CandidateSet {
    let mut screen = BandScreen::new(region, k, kernel);
    let scores: Vec<f64> = (0..superset.len())
        .map(|i| pref_score(&superset.points[i], screen.pivot()))
        .collect();
    let mut order: Vec<u32> = (0..superset.len() as u32).collect();
    order.sort_by(|&a, &b| {
        let (sa, sb) = (scores[a as usize], scores[b as usize]);
        match (sa.is_nan(), sb.is_nan()) {
            (true, true) => std::cmp::Ordering::Equal,
            (true, false) => std::cmp::Ordering::Greater, // NaN last
            (false, true) => std::cmp::Ordering::Less,
            (false, false) => sb.total_cmp(&sa),
        }
        .then_with(|| superset.ids[a as usize].cmp(&superset.ids[b as usize]))
    });
    for &ci in &order {
        let p = &superset.points[ci as usize];
        if screen.screen(p, stats) {
            screen.admit_last(superset.ids[ci as usize], p);
        }
    }
    let (ids, cpoints, dominator_lists) = screen.finish(superset.points.dim());
    stats.candidates = ids.len();
    let graph = crate::obs::span(crate::obs::Phase::Graph, || {
        DominanceGraph::build(dominator_lists)
    });
    CandidateSet {
        ids,
        points: cpoints,
        graph,
    }
}

/// The BBS heap key of a record: its score at `pivot` under the
/// paper's pivot order, or the coordinate sum under the ablation key.
fn heap_key(p: &[f64], pivot: &[f64], pivot_order: bool) -> f64 {
    if pivot_order {
        pref_score(p, pivot)
    } else {
        p.iter().sum()
    }
}

/// Record pop order under a heap key, mirroring [`Entry`]'s `Ord` bit
/// for bit: descending key via `total_cmp` with NaN keys last, ties to
/// the smaller id. `Less` means "pops earlier".
fn pop_cmp(ka: f64, ia: u32, kb: f64, ib: u32) -> std::cmp::Ordering {
    match (ka.is_nan(), kb.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => kb.total_cmp(&ka),
    }
    .then(ia.cmp(&ib))
}

/// Splice-repairs a cached r-skyband after an **insert-only**
/// mutation (no member deleted; `old.ids` already renumbered to the
/// new id space): merges the surviving member sequence with the
/// inserts that escaped [`rejected_by_members`], in fresh-BBS pop
/// order, free-admitting every member that pops before the first such
/// insert (its screen outcome cannot have changed — the admitted set
/// ahead of it is exactly the old one) and re-screening everything
/// from that splice point on. No R-tree traversal at all.
///
/// Byte-identical to a fresh [`r_skyband`] over the new dataset:
/// * a fresh run's member set is contained in `old ∪ live_inserts` —
///   an old *non*-member had ≥ `k` earlier-popping member dominators,
///   and by induction on pop order each of those is either admitted
///   (counts against it) or was itself rejected by ≥ `k` admitted
///   dominators, which r-dominate it transitively and pop even
///   earlier; a classified-rejected insert is rejected by the same
///   argument (that is exactly what the predicate established);
/// * processing the merged list through one [`BandScreen`] in pop
///   order therefore replays the fresh run's admission decisions on
///   the only records that can be admitted, with identical member
///   state at every step — identical ids, points, vertex scores, and
///   dominator lists.
///
/// Returns `None` (caller falls back to drop-and-recompute) when the
/// cached sequence fails its pop-order sanity check.
pub fn r_skyband_repair_inserts(
    old: &CandidateSet,
    live_inserts: &[u32],
    points: &PointStore,
    region: &Region,
    k: usize,
    pivot_order: bool,
    stats: &mut Stats,
) -> Option<CandidateSet> {
    r_skyband_repair_inserts_with_kernel(
        old,
        live_inserts,
        points,
        region,
        k,
        pivot_order,
        ScreenKernel::default(),
        stats,
    )
}

/// [`r_skyband_repair_inserts`] with an explicit [`ScreenKernel`]
/// choice.
#[allow(clippy::too_many_arguments)]
pub fn r_skyband_repair_inserts_with_kernel(
    old: &CandidateSet,
    live_inserts: &[u32],
    points: &PointStore,
    region: &Region,
    k: usize,
    pivot_order: bool,
    kernel: ScreenKernel,
    stats: &mut Stats,
) -> Option<CandidateSet> {
    let mut screen = BandScreen::new(region, k, kernel);
    let pivot = screen.pivot().to_vec();
    let mkeys: Vec<f64> = (0..old.len())
        .map(|i| heap_key(&old.points[i], &pivot, pivot_order))
        .collect();
    for w in 1..old.len() {
        if pop_cmp(mkeys[w - 1], old.ids[w - 1], mkeys[w], old.ids[w]) != std::cmp::Ordering::Less {
            return None; // cached sequence is not in pop order
        }
    }
    let mut ins: Vec<(f64, u32)> = live_inserts
        .iter()
        .map(|&id| (heap_key(&points[id as usize], &pivot, pivot_order), id))
        .collect();
    // utk-lint: allow(float-cmp) -- pop_cmp is the deterministic total pop order (total_cmp inside)
    ins.sort_by(|a, b| pop_cmp(a.0, a.1, b.0, b.1));

    let (mut mi, mut li) = (0usize, 0usize);
    let mut splicing = false;
    while mi < old.len() || li < ins.len() {
        let take_member = mi < old.len()
            && (li >= ins.len()
                || pop_cmp(mkeys[mi], old.ids[mi], ins[li].0, ins[li].1)
                    == std::cmp::Ordering::Less);
        if take_member {
            let id = old.ids[mi];
            let p = &points[id as usize];
            if !splicing {
                screen.admit_free(id, p, old.graph.ancestors(mi as u32));
            } else if screen.screen(p, stats) {
                screen.admit_last(id, p);
            }
            mi += 1;
        } else {
            splicing = true;
            let id = ins[li].1;
            let p = &points[id as usize];
            if screen.screen(p, stats) {
                screen.admit_last(id, p);
            }
            li += 1;
        }
    }
    let (ids, cpoints, dominator_lists) = screen.finish(points.dim());
    stats.candidates = ids.len();
    let graph = crate::obs::span(crate::obs::Phase::Graph, || {
        DominanceGraph::build(dominator_lists)
    });
    Some(CandidateSet {
        ids,
        points: cpoints,
        graph,
    })
}

/// Splice-repairs a cached r-skyband after a mutation that **deleted
/// a member** (with any mix of other deletes and inserts): one BBS
/// pass over the *new* dataset's [`TreeView`] that free-admits the
/// member prefix no change can reach and re-screens only the suffix.
///
/// `old` carries the previous epoch's ids; `old_ids_new` maps each
/// member to its renumbered id ([`TOMBSTONE`] = deleted);
/// `live_inserts` are the new ids of inserts that escaped
/// [`rejected_by_members`] against the old member set.
///
/// The splice point is `k* =` the largest heap key over deleted
/// members and live inserts — every record popping strictly above
/// `k*` sees an unchanged world: no deleted member and no admissible
/// insert pops before it, so (by the same induction as
/// [`r_skyband_repair_inserts`]) the admitted prefix is exactly the
/// old member prefix and old non-members stay rejected. The free
/// phase therefore expands nodes without screening and admits exactly
/// the expected member sequence with its old dominator rows; the
/// first pop at or below `k*` switches to the normal screen/admit
/// protocol, which replays the fresh run from that point (records
/// from subtrees a fresh run would have pruned still screen to
/// rejection — their ≥ `k` dominators are admitted here too — so only
/// work counters differ, never the candidate set).
///
/// Classified-rejected inserts are skipped in the free phase (sound:
/// their ≥ `k` member dominators all pop above `k*`, hence none was
/// deleted) and simply pop into the re-screened suffix otherwise.
///
/// Returns `None` (caller falls back to drop-and-recompute) when any
/// consistency check fails: cached sequence out of pop order, a
/// deleted member above the splice point, or the traversal not
/// meeting the expected prefix exactly.
#[allow(clippy::too_many_arguments)]
pub fn r_skyband_repair(
    old: &CandidateSet,
    old_ids_new: &[u32],
    live_inserts: &[u32],
    points: &PointStore,
    view: &TreeView<'_>,
    region: &Region,
    k: usize,
    pivot_order: bool,
    stats: &mut Stats,
) -> Option<CandidateSet> {
    r_skyband_repair_with_kernel(
        old,
        old_ids_new,
        live_inserts,
        points,
        view,
        region,
        k,
        pivot_order,
        ScreenKernel::default(),
        stats,
    )
}

/// [`r_skyband_repair`] with an explicit [`ScreenKernel`] choice.
#[allow(clippy::too_many_arguments)]
pub fn r_skyband_repair_with_kernel(
    old: &CandidateSet,
    old_ids_new: &[u32],
    live_inserts: &[u32],
    points: &PointStore,
    view: &TreeView<'_>,
    region: &Region,
    k: usize,
    pivot_order: bool,
    kernel: ScreenKernel,
    stats: &mut Stats,
) -> Option<CandidateSet> {
    if old_ids_new.len() != old.len() {
        return None;
    }
    let mut screen = BandScreen::new(region, k, kernel);
    let pivot = screen.pivot().to_vec();
    let mkeys: Vec<f64> = (0..old.len())
        .map(|i| heap_key(&old.points[i], &pivot, pivot_order))
        .collect();
    for w in 1..old.len() {
        if pop_cmp(mkeys[w - 1], old.ids[w - 1], mkeys[w], old.ids[w]) != std::cmp::Ordering::Less {
            return None; // cached sequence is not in pop order
        }
    }
    let mut kstar = f64::NEG_INFINITY;
    for (i, &nid) in old_ids_new.iter().enumerate() {
        if nid == TOMBSTONE && !mkeys[i].is_nan() && mkeys[i] > kstar {
            kstar = mkeys[i];
        }
    }
    for &id in live_inserts {
        let kk = heap_key(&points[id as usize], &pivot, pivot_order);
        if !kk.is_nan() && kk > kstar {
            kstar = kk;
        }
    }
    // Descending NaN-last keys (verified above) make this predicate
    // monotone, so the partition point is the free-prefix length.
    let prefix_count = mkeys.partition_point(|kk| !kk.is_nan() && *kk > kstar);
    if old_ids_new[..prefix_count].contains(&TOMBSTONE) {
        return None; // a deleted member above its own splice point
    }

    let tree = view.tree;
    let key = |p: &[f64]| heap_key(p, &pivot, pivot_order);
    let mut heap = std::collections::BinaryHeap::new();
    let root = tree.root();
    heap.push(Entry {
        key: key(&tree.node(root).mbb.hi),
        is_node: true,
        id: root,
    });
    for &id in view.extra {
        heap.push(Entry {
            key: key(&points[id as usize]),
            is_node: false,
            id: id as usize,
        });
    }
    let mut ei = 0usize; // next expected free-prefix member
    let mut free = true;
    while let Some(Entry {
        key: kk,
        is_node,
        id,
    }) = heap.pop()
    {
        if free && (kk <= kstar || kk.is_nan()) {
            // First pop at/below the splice key: the free prefix must
            // be fully accounted for before the re-screen takes over.
            if ei != prefix_count {
                return None;
            }
            free = false;
        }
        if is_node {
            let node = tree.node(id);
            if !free && !screen.screen(&node.mbb.hi, stats) {
                continue; // subtree fully r-dominated ≥ k times
            }
            match &node.kind {
                utk_rtree::NodeKind::Inner { children } => {
                    for &c in children {
                        heap.push(Entry {
                            key: key(&tree.node(c).mbb.hi),
                            is_node: true,
                            id: c,
                        });
                    }
                }
                utk_rtree::NodeKind::Leaf { items } => {
                    for &rid in items {
                        let Some(cur) = view.current_id(rid) else {
                            continue;
                        };
                        heap.push(Entry {
                            key: key(&points[cur as usize]),
                            is_node: false,
                            id: cur as usize,
                        });
                    }
                }
            }
        } else if free {
            if ei < prefix_count && id as u32 == old_ids_new[ei] {
                screen.admit_free(id as u32, &points[id], old.graph.ancestors(ei as u32));
                ei += 1;
            }
            // Any other record popping above k* is an old non-member
            // or a classified-rejected insert: provably rejected, so
            // it is skipped without a screen test.
        } else if screen.screen(&points[id], stats) {
            screen.admit_last(id as u32, &points[id]);
        }
    }
    if free && ei != prefix_count {
        return None; // the traversal never delivered the full prefix
    }
    let (ids, cpoints, dominator_lists) = screen.finish(points.dim());
    stats.candidates = ids.len();
    let graph = crate::obs::span(crate::obs::Phase::Graph, || {
        DominanceGraph::build(dominator_lists)
    });
    Some(CandidateSet {
        ids,
        points: cpoints,
        graph,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdominance::r_dominance;
    use rand::prelude::*;

    fn brute_k_skyband(points: &[Vec<f64>], k: usize) -> Vec<u32> {
        (0..points.len())
            .filter(|&i| points.iter().filter(|q| dominates(q, &points[i])).count() < k)
            .map(|i| i as u32)
            .collect()
    }

    fn brute_r_skyband(points: &[Vec<f64>], region: &Region, k: usize) -> Vec<u32> {
        (0..points.len())
            .filter(|&i| {
                points
                    .iter()
                    .enumerate()
                    .filter(|(j, q)| {
                        *j != i && r_dominance(q, &points[i], region) == RDominance::Dominates
                    })
                    .count()
                    < k
            })
            .map(|i| i as u32)
            .collect()
    }

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect()
    }

    fn flat(points: &[Vec<f64>]) -> PointStore {
        PointStore::from_rows(points)
    }

    #[test]
    fn k_skyband_matches_brute_force() {
        for k in [1, 2, 4] {
            let pts = random_points(300, 3, 21 + k as u64);
            let tree = RTree::bulk_load(&pts);
            let mut got = k_skyband(&pts, &tree, k, &mut Stats::new());
            got.sort_unstable();
            assert_eq!(got, brute_k_skyband(&pts, k), "k = {k}");
        }
    }

    #[test]
    fn r_skyband_matches_brute_force() {
        let region = Region::hyperrect(vec![0.1, 0.2], vec![0.3, 0.4]);
        for k in [1, 3] {
            let pts = random_points(250, 3, 31 + k as u64);
            let tree = RTree::bulk_load(&pts);
            let cs = r_skyband(&flat(&pts), &tree, &region, k, true, &mut Stats::new());
            let mut got = cs.ids.clone();
            got.sort_unstable();
            assert_eq!(got, brute_r_skyband(&pts, &region, k), "k = {k}");
        }
    }

    #[test]
    fn r_skyband_subset_of_k_skyband() {
        let region = Region::hyperrect(vec![0.2, 0.1], vec![0.25, 0.2]);
        let pts = random_points(400, 3, 41);
        let tree = RTree::bulk_load(&pts);
        let mut stats = Stats::new();
        let sky: std::collections::HashSet<u32> =
            k_skyband(&pts, &tree, 3, &mut stats).into_iter().collect();
        let rsky = r_skyband(&flat(&pts), &tree, &region, 3, true, &mut stats);
        assert!(rsky.ids.iter().all(|id| sky.contains(id)));
        assert!(rsky.len() <= sky.len());
    }

    #[test]
    fn graph_arcs_are_true_r_dominances() {
        let region = Region::hyperrect(vec![0.15, 0.15], vec![0.35, 0.3]);
        let pts = random_points(200, 3, 51);
        let tree = RTree::bulk_load(&pts);
        let cs = r_skyband(&flat(&pts), &tree, &region, 4, true, &mut Stats::new());
        for v in 0..cs.len() as u32 {
            for &a in cs.graph.ancestors(v) {
                assert_eq!(
                    r_dominance(&cs.points[a as usize], &cs.points[v as usize], &region),
                    RDominance::Dominates
                );
            }
        }
    }

    #[test]
    fn graph_captures_all_arcs_among_members() {
        // The BBS-order argument: every r-dominance pair among members
        // must appear as an ancestor relation.
        let region = Region::hyperrect(vec![0.1, 0.1], vec![0.2, 0.3]);
        let pts = random_points(150, 3, 61);
        let tree = RTree::bulk_load(&pts);
        let cs = r_skyband(&flat(&pts), &tree, &region, 3, true, &mut Stats::new());
        for a in 0..cs.len() as u32 {
            for b in 0..cs.len() as u32 {
                if a != b
                    && r_dominance(&cs.points[a as usize], &cs.points[b as usize], &region)
                        == RDominance::Dominates
                {
                    assert!(cs.graph.ancestors(b).contains(&a), "missing arc {a} → {b}");
                }
            }
        }
    }

    #[test]
    fn ordering_ablation_gives_superset() {
        // The coordinate-sum key misses dominators that pop late, so
        // its output is a (typically strict) superset of the true
        // r-skyband; the pivot key is exact.
        let region = Region::hyperrect(vec![0.1, 0.25], vec![0.2, 0.35]);
        let pts = random_points(300, 3, 71);
        let tree = RTree::bulk_load(&pts);
        let a = r_skyband(&flat(&pts), &tree, &region, 5, true, &mut Stats::new());
        let b = r_skyband(&flat(&pts), &tree, &region, 5, false, &mut Stats::new());
        let mut ia = a.ids.clone();
        ia.sort_unstable();
        assert_eq!(ia, brute_r_skyband(&pts, &region, 5));
        let ib: std::collections::HashSet<u32> = b.ids.iter().copied().collect();
        assert!(ia.iter().all(|id| ib.contains(id)), "must stay a superset");
        // And any arcs it does record are true dominances.
        for v in 0..b.len() as u32 {
            for &anc in b.graph.ancestors(v) {
                assert_eq!(
                    r_dominance(&b.points[anc as usize], &b.points[v as usize], &region),
                    RDominance::Dominates
                );
            }
        }
    }

    #[test]
    fn ablation_order_exercises_prefix_cut() {
        // Under the coordinate-sum key, admission order and pivot
        // order disagree, so the pivot-score prefix cut skips real
        // work; under the pivot key the prefix is the whole list.
        let region = Region::hyperrect(vec![0.05, 0.3], vec![0.1, 0.45]);
        let pts = random_points(400, 3, 91);
        let tree = RTree::bulk_load(&pts);
        let mut ablation_stats = Stats::new();
        r_skyband(&flat(&pts), &tree, &region, 6, false, &mut ablation_stats);
        assert!(
            ablation_stats.screen_prefix_skips > 0,
            "sum-key ordering must trigger prefix skips"
        );
        let mut pivot_stats = Stats::new();
        r_skyband(&flat(&pts), &tree, &region, 6, true, &mut pivot_stats);
        assert_eq!(
            pivot_stats.screen_prefix_skips, 0,
            "pivot order already delivers the prefix invariant"
        );
    }

    #[test]
    fn k1_r_skyband_members_have_no_dominators() {
        let region = Region::hyperrect(vec![0.3, 0.1], vec![0.4, 0.2]);
        let pts = random_points(200, 3, 81);
        let tree = RTree::bulk_load(&pts);
        let cs = r_skyband(&flat(&pts), &tree, &region, 1, true, &mut Stats::new());
        for v in 0..cs.len() as u32 {
            assert!(cs.graph.ancestors(v).is_empty());
        }
    }

    #[test]
    fn nan_keys_degrade_instead_of_aborting() {
        // Regression: the BBS heap `Ord` used to panic on non-finite
        // keys. A record poisoned to NaN *after* tree construction
        // (stale but finite MBBs) must neither panic nor disturb the
        // finite records' skyband — NaN probes order last and admit
        // harmlessly (they never dominate and are never dominated).
        let region = Region::hyperrect(vec![0.1, 0.1], vec![0.3, 0.3]);
        let mut pts = random_points(120, 3, 101);
        let tree = RTree::bulk_load(&pts);
        let poisoned = 17;
        pts[poisoned][1] = f64::NAN;
        let cs = r_skyband(&flat(&pts), &tree, &region, 3, true, &mut Stats::new());
        // Finite-only reference (drop the poisoned record).
        let finite: Vec<Vec<f64>> = pts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != poisoned)
            .map(|(_, p)| p.clone())
            .collect();
        let want: std::collections::HashSet<Vec<u64>> = brute_r_skyband(&finite, &region, 3)
            .into_iter()
            .map(|i| finite[i as usize].iter().map(|x| x.to_bits()).collect())
            .collect();
        let got: std::collections::HashSet<Vec<u64>> = cs
            .ids
            .iter()
            .filter(|&&id| id as usize != poisoned)
            .map(|&id| pts[id as usize].iter().map(|x| x.to_bits()).collect())
            .collect();
        assert_eq!(got, want, "finite sub-skyband must be preserved");
    }

    #[test]
    fn superset_rescreen_is_byte_identical_to_cold() {
        let outer = Region::hyperrect(vec![0.05, 0.05], vec![0.4, 0.4]);
        let inner = Region::hyperrect(vec![0.1, 0.15], vec![0.25, 0.3]);
        assert!(outer.contains_region(&inner));
        for k in [1, 2, 5] {
            let pts = random_points(350, 3, 200 + k as u64);
            let tree = RTree::bulk_load(&pts);
            let store = flat(&pts);
            let sup = r_skyband(&store, &tree, &outer, k, true, &mut Stats::new());
            let mut cold_stats = Stats::new();
            let cold = r_skyband(&store, &tree, &inner, k, true, &mut cold_stats);
            let mut warm_stats = Stats::new();
            let warm = r_skyband_from_superset(&sup, &inner, k, &mut warm_stats);
            assert_eq!(warm, cold, "k = {k}");
            assert_eq!(warm_stats.candidates, cold_stats.candidates);
            assert!(
                warm_stats.rdom_tests <= cold_stats.rdom_tests,
                "re-screen must not do more dominance work (k = {k}: {} vs {})",
                warm_stats.rdom_tests,
                cold_stats.rdom_tests
            );
        }
    }

    #[test]
    fn superset_rescreen_identical_on_pivot_score_ties() {
        // Exact-duplicate records produce bitwise-equal pivot scores
        // spanning leaf boundaries — the tie case where pop order is
        // decided purely by the Entry tie-break (nodes before
        // records, then ascending id). The re-screen must still
        // reproduce cold admission order byte for byte.
        let outer = Region::hyperrect(vec![0.05, 0.05], vec![0.4, 0.4]);
        let inner = Region::hyperrect(vec![0.1, 0.12], vec![0.3, 0.28]);
        let mut pts = random_points(200, 3, 401);
        for i in 0..60 {
            pts[3 * i] = vec![0.8, 0.8, 0.8]; // 60 duplicates, ids spread out
        }
        let tree = RTree::bulk_load(&pts);
        let store = flat(&pts);
        for k in [2, 8, 65] {
            let sup = r_skyband(&store, &tree, &outer, k, true, &mut Stats::new());
            let cold = r_skyband(&store, &tree, &inner, k, true, &mut Stats::new());
            let warm = r_skyband_from_superset(&sup, &inner, k, &mut Stats::new());
            assert_eq!(warm, cold, "k = {k}");
        }
    }

    #[test]
    fn overlay_view_is_byte_identical_to_a_fresh_tree() {
        // Delete a third of the records and append a handful, then
        // answer through the stale base tree + remap/extra overlay:
        // the candidate set must equal a cold run over a tree built
        // from scratch on the live data — ids, points and graph.
        let region = Region::hyperrect(vec![0.1, 0.1], vec![0.35, 0.3]);
        let base = random_points(240, 3, 501);
        let base_tree = RTree::bulk_load(&base);
        let appended = random_points(15, 3, 502);
        for k in [1, 3, 6] {
            let mut remap = vec![TOMBSTONE; base.len()];
            let mut live: Vec<Vec<f64>> = Vec::new();
            for (i, p) in base.iter().enumerate() {
                if i % 3 == 0 {
                    continue; // deleted
                }
                remap[i] = live.len() as u32;
                live.push(p.clone());
            }
            let extra: Vec<u32> = (0..appended.len() as u32)
                .map(|i| live.len() as u32 + i)
                .collect();
            live.extend(appended.iter().cloned());
            let store = flat(&live);

            let fresh_tree = RTree::bulk_load(&live);
            let cold = r_skyband(&store, &fresh_tree, &region, k, true, &mut Stats::new());
            let view = TreeView::overlay(&base_tree, Some(&remap), &extra);
            let warm = r_skyband_view(&store, &view, &region, k, true, &mut Stats::new());
            assert_eq!(warm, cold, "k = {k}");
            // The sum-key ablation must agree with its own fresh run
            // too (the tree-independence argument does not depend on
            // the key bounding dominance).
            let cold_sum = r_skyband(&store, &fresh_tree, &region, k, false, &mut Stats::new());
            let warm_sum = r_skyband_view(&store, &view, &region, k, false, &mut Stats::new());
            assert_eq!(warm_sum, cold_sum, "sum key, k = {k}");
        }
    }

    #[test]
    fn rejected_by_members_predicts_fresh_membership_exactly() {
        // Under the pivot key, the invalidation predicate must agree
        // with ground truth: an appended probe stays out of the fresh
        // r-skyband iff ≥ k earlier-popping members dominate it.
        let region = Region::hyperrect(vec![0.1, 0.15], vec![0.3, 0.35]);
        let pts = random_points(200, 3, 601);
        let tree = RTree::bulk_load(&pts);
        let probes = random_points(40, 3, 602);
        for k in [1, 2, 4] {
            let cands = r_skyband(&flat(&pts), &tree, &region, k, true, &mut Stats::new());
            for p in &probes {
                let rejected = rejected_by_members(&cands, p, &region, k, true);
                let mut grown = pts.clone();
                grown.push(p.clone());
                let grown_tree = RTree::bulk_load(&grown);
                let fresh = r_skyband(
                    &flat(&grown),
                    &grown_tree,
                    &region,
                    k,
                    true,
                    &mut Stats::new(),
                );
                let admitted = fresh.ids.contains(&(pts.len() as u32));
                assert_eq!(rejected, !admitted, "k = {k}, probe {p:?}");
            }
        }
    }

    #[test]
    fn insert_splice_repair_is_byte_identical_to_cold() {
        // Insert-only mutations: the no-traversal merge repair must
        // reproduce a cold run on the grown dataset byte for byte —
        // including inserts strong enough to evict old members, and
        // under both heap keys.
        let region = Region::hyperrect(vec![0.1, 0.15], vec![0.3, 0.35]);
        for (k, pivot_order) in [(1, true), (3, true), (2, false), (5, false)] {
            let pts = random_points(250, 3, 700 + k as u64);
            let tree = RTree::bulk_load(&pts);
            let old = r_skyband(
                &flat(&pts),
                &tree,
                &region,
                k,
                pivot_order,
                &mut Stats::new(),
            );
            let mut grown = pts.clone();
            grown.extend(random_points(12, 3, 800 + k as u64));
            grown.push(vec![0.95, 0.95, 0.95]); // dominant: must evict
            let store = flat(&grown);
            let live: Vec<u32> = (pts.len() as u32..grown.len() as u32)
                .filter(|&id| {
                    !rejected_by_members(&old, &grown[id as usize], &region, k, pivot_order)
                })
                .collect();
            assert!(!live.is_empty(), "fixture must exercise the splice");
            let grown_tree = RTree::bulk_load(&grown);
            let mut cold_stats = Stats::new();
            let cold = r_skyband(
                &store,
                &grown_tree,
                &region,
                k,
                pivot_order,
                &mut cold_stats,
            );
            let mut repair_stats = Stats::new();
            let got = r_skyband_repair_inserts(
                &old,
                &live,
                &store,
                &region,
                k,
                pivot_order,
                &mut repair_stats,
            )
            .expect("repair applies");
            assert_eq!(got, cold, "k = {k}, pivot_order = {pivot_order}");
            assert!(
                repair_stats.rdom_tests < cold_stats.rdom_tests,
                "repair must screen less than a cold run (k = {k}: {} vs {})",
                repair_stats.rdom_tests,
                cold_stats.rdom_tests
            );
        }
    }

    #[test]
    fn delete_splice_repair_is_byte_identical_to_cold() {
        // Member deletions (mixed with non-member deletes and
        // inserts): the free-prefix BBS repair must reproduce a cold
        // run over the renumbered dataset byte for byte, through both
        // a fresh tree and a stale-overlay view.
        let region = Region::hyperrect(vec![0.1, 0.1], vec![0.32, 0.3]);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(900);
        let (mut total_repair_tests, mut total_cold_tests) = (0usize, 0usize);
        for round in 0..12 {
            let k = [1, 2, 4][round % 3];
            let pivot_order = round % 2 == 0;
            let pts = random_points(220, 3, 1000 + round as u64);
            let tree = RTree::bulk_load(&pts);
            let old = r_skyband(
                &flat(&pts),
                &tree,
                &region,
                k,
                pivot_order,
                &mut Stats::new(),
            );
            if old.len() < 3 {
                continue;
            }
            // Victims: one mid member, one late member, one random
            // non-member; inserts: a couple of ordinary records.
            let mut deleted = vec![false; pts.len()];
            deleted[old.ids[old.len() / 3] as usize] = true;
            deleted[old.ids[old.len() - 1] as usize] = true;
            loop {
                let v = rng.gen_range(0..pts.len());
                if !deleted[v] && !old.ids.contains(&(v as u32)) {
                    deleted[v] = true;
                    break;
                }
            }
            let inserts = random_points(4, 3, 2000 + round as u64);
            let mut shift = vec![TOMBSTONE; pts.len()];
            let mut live_pts: Vec<Vec<f64>> = Vec::new();
            for (i, p) in pts.iter().enumerate() {
                if !deleted[i] {
                    shift[i] = live_pts.len() as u32;
                    live_pts.push(p.clone());
                }
            }
            let first_inserted = live_pts.len() as u32;
            live_pts.extend(inserts.iter().cloned());
            let store = flat(&live_pts);
            let old_ids_new: Vec<u32> = old.ids.iter().map(|&id| shift[id as usize]).collect();
            let live_inserts: Vec<u32> = (first_inserted..live_pts.len() as u32)
                .filter(|&id| {
                    !rejected_by_members(&old, &live_pts[id as usize], &region, k, pivot_order)
                })
                .collect();

            let fresh_tree = RTree::bulk_load(&live_pts);
            let mut cold_stats = Stats::new();
            let cold = r_skyband(
                &store,
                &fresh_tree,
                &region,
                k,
                pivot_order,
                &mut cold_stats,
            );
            let mut repair_stats = Stats::new();
            let got = r_skyband_repair(
                &old,
                &old_ids_new,
                &live_inserts,
                &store,
                &TreeView::packed(&fresh_tree),
                &region,
                k,
                pivot_order,
                &mut repair_stats,
            )
            .expect("repair applies");
            assert_eq!(got, cold, "round {round} (fresh tree)");
            total_repair_tests += repair_stats.rdom_tests;
            total_cold_tests += cold_stats.rdom_tests;

            // Same repair through the stale base tree + overlay.
            let extra: Vec<u32> = (first_inserted..live_pts.len() as u32).collect();
            let overlay = TreeView::overlay(&tree, Some(&shift), &extra);
            let got_overlay = r_skyband_repair(
                &old,
                &old_ids_new,
                &live_inserts,
                &store,
                &overlay,
                &region,
                k,
                pivot_order,
                &mut Stats::new(),
            )
            .expect("repair applies through the overlay");
            assert_eq!(got_overlay, cold, "round {round} (overlay view)");
        }
        // Per-round savings depend on where the victims sat in pop
        // order (an early victim can make the free prefix empty), but
        // across the workload repair must do strictly less screening.
        assert!(
            total_repair_tests < total_cold_tests,
            "repair must screen less in aggregate ({total_repair_tests} vs {total_cold_tests})"
        );
    }

    #[test]
    fn vertexless_region_takes_the_scratch_path() {
        // A region built from raw constraints has no vertex list: the
        // screen must fall back to the allocation-free affine-delta
        // test and still match brute force.
        let boxy = Region::hyperrect(vec![0.1, 0.2], vec![0.3, 0.4]);
        let raw = Region::from_constraints(2, boxy.constraints().to_vec());
        assert!(raw.vertex_store(CORNER_CAP).is_none());
        let pts = random_points(200, 3, 301);
        let tree = RTree::bulk_load(&pts);
        let cs = r_skyband(&flat(&pts), &tree, &raw, 3, true, &mut Stats::new());
        let mut got = cs.ids.clone();
        got.sort_unstable();
        assert_eq!(got, brute_r_skyband(&pts, &boxy, 3));
    }
}
