//! BBS skyband computation (§2) and its r-skyband adaptation (§4.1).
//!
//! Both run the branch-and-bound skyline paradigm of Papadias et al.
//! over an R-tree: entries pop from a max-heap under a monotone key;
//! a popped record joins the skyband iff fewer than `k` current
//! members (r-)dominate it; a popped node is expanded iff its MBB top
//! corner is (r-)dominated by fewer than `k` members.
//!
//! The r-skyband differs in two ways (§4.1): dominance tests are
//! r-dominance tests, and the heap key is the score under the *pivot*
//! vector of `R` (its vertex average), which steers the search toward
//! likely members first. Because every potential r-dominator scores at
//! least as high at the pivot, it pops no later than its dominatees —
//! so, as the paper observes, the r-dominance graph arcs come for free
//! from the membership tests.

use crate::graph::DominanceGraph;
use crate::rdominance::{dominates, r_dominance, RDominance};
use crate::stats::Stats;
use utk_geom::{pref_score, Region};
use utk_rtree::RTree;

/// Output of the filtering step: the r-skyband records, their
/// attribute vectors, and the r-dominance graph over them.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// Dataset ids of the candidates, in BBS pop (descending pivot
    /// score) order.
    pub ids: Vec<u32>,
    /// Candidate attribute vectors, parallel to `ids`.
    pub points: Vec<Vec<f64>>,
    /// r-dominance graph over candidate indices `0..ids.len()`.
    pub graph: DominanceGraph,
}

impl CandidateSet {
    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the filter retained nothing (empty dataset edge).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Outcome of the pre-refinement pipeline shared by every UTK entry
/// point: the degenerate-region and small-candidate-set shortcuts, or
/// a candidate set ready for refinement.
pub(crate) enum Prefilter {
    /// `R` has no interior: the answer is one plain top-k at the
    /// region's pivot `w` (ids sorted ascending).
    Degenerate {
        /// The pivot weight vector the top-k was evaluated at.
        w: Vec<f64>,
        /// The sorted top-k at `w`.
        top_k: Vec<u32>,
    },
    /// The r-skyband has at most `k` members: every candidate fills
    /// one of the k slots everywhere in `R` (ids sorted ascending).
    Trivial {
        /// The sorted candidate ids.
        ids: Vec<u32>,
        /// An interior point of `R`.
        interior: Vec<f64>,
    },
    /// Refinement is needed.
    Refine {
        /// The r-skyband with its r-dominance graph.
        cands: CandidateSet,
        /// An interior point of `R`.
        interior: Vec<f64>,
        /// The interior point's slack.
        slack: f64,
    },
}

/// Runs the shared pre-refinement pipeline over a validated region:
/// interior computation, the degenerate-`R` shortcut (§3.1), the
/// r-skyband filter (§4.1), and the `|candidates| ≤ k` shortcut.
///
/// # Panics
/// Panics if the region is empty (the legacy contract; the engine
/// validates regions before calling in).
pub(crate) fn prefilter(
    points: &[Vec<f64>],
    tree: &RTree,
    region: &Region,
    k: usize,
    pivot_order: bool,
    stats: &mut Stats,
) -> Prefilter {
    use utk_geom::tol::INTERIOR_EPS;
    let Some((interior, slack)) = region.interior_point() else {
        panic!("query region is empty");
    };
    if slack <= INTERIOR_EPS {
        let w = region.pivot().expect("non-empty region");
        let mut top_k = crate::topk::top_k_brute(points, &w, k);
        top_k.sort_unstable();
        return Prefilter::Degenerate { w, top_k };
    }
    let cands = r_skyband(points, tree, region, k, pivot_order, stats);
    if cands.len() <= k {
        let mut ids = cands.ids.clone();
        ids.sort_unstable();
        return Prefilter::Trivial { ids, interior };
    }
    Prefilter::Refine {
        cands,
        interior,
        slack,
    }
}

/// Classical k-skyband via BBS: ids of records dominated by fewer
/// than `k` others. Heap key: coordinate sum (a monotone surrogate of
/// the distance-to-top-corner order of the original BBS).
pub fn k_skyband(points: &[Vec<f64>], tree: &RTree, k: usize, stats: &mut Stats) -> Vec<u32> {
    let mut band: Vec<u32> = Vec::new();
    let sum = |p: &[f64]| p.iter().sum::<f64>();
    tree.search_descending(
        |mbb| sum(&mbb.hi),
        |id| sum(&points[id as usize]),
        |id, _| {
            stats.bbs_pops += 1;
            let p = &points[id as usize];
            let mut count = 0;
            for &m in &band {
                stats.rdom_tests += 1;
                if dominates(&points[m as usize], p) {
                    count += 1;
                    if count >= k {
                        break;
                    }
                }
            }
            if count < k {
                band.push(id);
            }
            true
        },
    );
    // NOTE: node-level pruning is handled inside the closure via the
    // record key only; BBS additionally prunes whole subtrees. We do
    // that below with a specialised traversal when it pays off.
    band
}

/// r-skyband via the adapted BBS (§4.1): candidates r-dominated by
/// fewer than `k` others over `region`, along with all r-dominance
/// arcs among them.
///
/// `pivot_order` selects the paper's pivot-score heap key. `false`
/// falls back to the classic coordinate-sum key (ablation): that key
/// does *not* upper-bound r-dominance (a later-popped record can still
/// r-dominate an earlier one), so some dominators go uncounted and the
/// filter returns a superset of the r-skyband — still a safe input to
/// refinement, just looser, which is exactly the paper's argument for
/// the pivot order.
pub fn r_skyband(
    points: &[Vec<f64>],
    tree: &RTree,
    region: &Region,
    k: usize,
    pivot_order: bool,
    stats: &mut Stats,
) -> CandidateSet {
    /// Heap key selector: pivot score or classic coordinate sum.
    type KeyFn = Box<dyn Fn(&[f64]) -> f64>;
    let pivot = region.pivot().expect("query region must be non-empty");
    let key_record: KeyFn = if pivot_order {
        let pv = pivot.clone();
        Box::new(move |p: &[f64]| pref_score(p, &pv))
    } else {
        Box::new(|p: &[f64]| p.iter().sum())
    };

    let mut ids: Vec<u32> = Vec::new();
    let mut cpoints: Vec<Vec<f64>> = Vec::new();
    let mut dominator_lists: Vec<Vec<u32>> = Vec::new();

    // A single best-first pass; both records and node top corners are
    // screened against the current skyband by r-dominance.
    let mut heap = std::collections::BinaryHeap::new();
    #[derive(PartialEq)]
    struct Entry {
        key: f64,
        is_node: bool,
        id: usize,
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.key
                .partial_cmp(&other.key)
                .expect("non-finite BBS key")
        }
    }

    // Screens `q` against current members; returns the list of strict
    // r-dominators if fewer than k, or None when q is disqualified.
    let screen = |q: &[f64], members: &[Vec<f64>], stats: &mut Stats| -> Option<Vec<u32>> {
        let mut doms = Vec::new();
        for (mi, m) in members.iter().enumerate() {
            stats.rdom_tests += 1;
            if r_dominance(m, q, region) == RDominance::Dominates {
                doms.push(mi as u32);
                if doms.len() >= k {
                    return None;
                }
            }
        }
        Some(doms)
    };

    let root = tree.root();
    heap.push(Entry {
        key: (key_record)(&tree.node(root).mbb.hi),
        is_node: true,
        id: root,
    });
    while let Some(Entry { is_node, id, .. }) = heap.pop() {
        stats.bbs_pops += 1;
        if is_node {
            let node = tree.node(id);
            if screen(&node.mbb.hi, &cpoints, stats).is_none() {
                continue; // subtree fully r-dominated ≥ k times
            }
            match &node.kind {
                utk_rtree::NodeKind::Inner { children } => {
                    for &c in children {
                        heap.push(Entry {
                            key: (key_record)(&tree.node(c).mbb.hi),
                            is_node: true,
                            id: c,
                        });
                    }
                }
                utk_rtree::NodeKind::Leaf { items } => {
                    for &rid in items {
                        heap.push(Entry {
                            key: (key_record)(&points[rid as usize]),
                            is_node: false,
                            id: rid as usize,
                        });
                    }
                }
            }
        } else if let Some(doms) = screen(&points[id], &cpoints, stats) {
            ids.push(id as u32);
            cpoints.push(points[id].clone());
            dominator_lists.push(doms);
        }
    }

    stats.candidates = ids.len();
    let graph = DominanceGraph::build(dominator_lists);
    CandidateSet {
        ids,
        points: cpoints,
        graph,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn brute_k_skyband(points: &[Vec<f64>], k: usize) -> Vec<u32> {
        (0..points.len())
            .filter(|&i| points.iter().filter(|q| dominates(q, &points[i])).count() < k)
            .map(|i| i as u32)
            .collect()
    }

    fn brute_r_skyband(points: &[Vec<f64>], region: &Region, k: usize) -> Vec<u32> {
        (0..points.len())
            .filter(|&i| {
                points
                    .iter()
                    .enumerate()
                    .filter(|(j, q)| {
                        *j != i && r_dominance(q, &points[i], region) == RDominance::Dominates
                    })
                    .count()
                    < k
            })
            .map(|i| i as u32)
            .collect()
    }

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn k_skyband_matches_brute_force() {
        for k in [1, 2, 4] {
            let pts = random_points(300, 3, 21 + k as u64);
            let tree = RTree::bulk_load(&pts);
            let mut got = k_skyband(&pts, &tree, k, &mut Stats::new());
            got.sort_unstable();
            assert_eq!(got, brute_k_skyband(&pts, k), "k = {k}");
        }
    }

    #[test]
    fn r_skyband_matches_brute_force() {
        let region = Region::hyperrect(vec![0.1, 0.2], vec![0.3, 0.4]);
        for k in [1, 3] {
            let pts = random_points(250, 3, 31 + k as u64);
            let tree = RTree::bulk_load(&pts);
            let cs = r_skyband(&pts, &tree, &region, k, true, &mut Stats::new());
            let mut got = cs.ids.clone();
            got.sort_unstable();
            assert_eq!(got, brute_r_skyband(&pts, &region, k), "k = {k}");
        }
    }

    #[test]
    fn r_skyband_subset_of_k_skyband() {
        let region = Region::hyperrect(vec![0.2, 0.1], vec![0.25, 0.2]);
        let pts = random_points(400, 3, 41);
        let tree = RTree::bulk_load(&pts);
        let mut stats = Stats::new();
        let sky: std::collections::HashSet<u32> =
            k_skyband(&pts, &tree, 3, &mut stats).into_iter().collect();
        let rsky = r_skyband(&pts, &tree, &region, 3, true, &mut stats);
        assert!(rsky.ids.iter().all(|id| sky.contains(id)));
        assert!(rsky.len() <= sky.len());
    }

    #[test]
    fn graph_arcs_are_true_r_dominances() {
        let region = Region::hyperrect(vec![0.15, 0.15], vec![0.35, 0.3]);
        let pts = random_points(200, 3, 51);
        let tree = RTree::bulk_load(&pts);
        let cs = r_skyband(&pts, &tree, &region, 4, true, &mut Stats::new());
        for v in 0..cs.len() as u32 {
            for &a in cs.graph.ancestors(v) {
                assert_eq!(
                    r_dominance(&cs.points[a as usize], &cs.points[v as usize], &region),
                    RDominance::Dominates
                );
            }
        }
    }

    #[test]
    fn graph_captures_all_arcs_among_members() {
        // The BBS-order argument: every r-dominance pair among members
        // must appear as an ancestor relation.
        let region = Region::hyperrect(vec![0.1, 0.1], vec![0.2, 0.3]);
        let pts = random_points(150, 3, 61);
        let tree = RTree::bulk_load(&pts);
        let cs = r_skyband(&pts, &tree, &region, 3, true, &mut Stats::new());
        for a in 0..cs.len() as u32 {
            for b in 0..cs.len() as u32 {
                if a != b
                    && r_dominance(&cs.points[a as usize], &cs.points[b as usize], &region)
                        == RDominance::Dominates
                {
                    assert!(cs.graph.ancestors(b).contains(&a), "missing arc {a} → {b}");
                }
            }
        }
    }

    #[test]
    fn ordering_ablation_gives_superset() {
        // The coordinate-sum key misses dominators that pop late, so
        // its output is a (typically strict) superset of the true
        // r-skyband; the pivot key is exact.
        let region = Region::hyperrect(vec![0.1, 0.25], vec![0.2, 0.35]);
        let pts = random_points(300, 3, 71);
        let tree = RTree::bulk_load(&pts);
        let a = r_skyband(&pts, &tree, &region, 5, true, &mut Stats::new());
        let b = r_skyband(&pts, &tree, &region, 5, false, &mut Stats::new());
        let mut ia = a.ids.clone();
        ia.sort_unstable();
        assert_eq!(ia, brute_r_skyband(&pts, &region, 5));
        let ib: std::collections::HashSet<u32> = b.ids.iter().copied().collect();
        assert!(ia.iter().all(|id| ib.contains(id)), "must stay a superset");
        // And any arcs it does record are true dominances.
        for v in 0..b.len() as u32 {
            for &anc in b.graph.ancestors(v) {
                assert_eq!(
                    r_dominance(&b.points[anc as usize], &b.points[v as usize], &region),
                    RDominance::Dominates
                );
            }
        }
    }

    #[test]
    fn k1_r_skyband_members_have_no_dominators() {
        let region = Region::hyperrect(vec![0.3, 0.1], vec![0.4, 0.2]);
        let pts = random_points(200, 3, 81);
        let tree = RTree::bulk_load(&pts);
        let cs = r_skyband(&pts, &tree, &region, 1, true, &mut Stats::new());
        for v in 0..cs.len() as u32 {
            assert!(cs.graph.ancestors(v).is_empty());
        }
    }
}
