//! The r-dominance graph `G` (§4.1 of the paper).
//!
//! Nodes are r-skyband candidates; an arc `p → q` records that `p`
//! r-dominates `q`. The relation is transitive, so the graph stores
//! the full *ancestor* (dominator) set per node — the node's
//! r-dominance count is its size — plus the derived descendant sets
//! and the transitive-reduction child lists used by the drill top-k
//! search (§4.3).

/// The r-dominance DAG over candidate indices `0..len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DominanceGraph {
    ancestors: Vec<Vec<u32>>,
    descendants: Vec<Vec<u32>>,
    children: Vec<Vec<u32>>,
    roots: Vec<u32>,
}

impl DominanceGraph {
    /// Builds the graph from per-node dominator (ancestor) sets, as
    /// collected during r-skyband computation. Ancestor sets must be
    /// transitively closed (they are, when collected against the full
    /// running skyband) and reference smaller-index nodes only in the
    /// BBS admission order.
    pub fn build(ancestors: Vec<Vec<u32>>) -> Self {
        let n = ancestors.len();
        let mut ancestors = ancestors;
        for a in &mut ancestors {
            a.sort_unstable();
        }

        let mut descendants: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (v, anc) in ancestors.iter().enumerate() {
            for &a in anc {
                descendants[a as usize].push(v as u32);
            }
        }

        // Transitive reduction: `a` is a parent of `v` iff no other
        // ancestor of `v` has `a` among its own ancestors.
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (v, anc) in ancestors.iter().enumerate() {
            for &a in anc {
                let covered = anc
                    .iter()
                    .any(|&b| b != a && ancestors[b as usize].binary_search(&a).is_ok());
                if !covered {
                    children[a as usize].push(v as u32);
                }
            }
        }

        let roots = (0..n as u32)
            .filter(|&v| ancestors[v as usize].is_empty())
            .collect();

        Self {
            ancestors,
            descendants,
            children,
            roots,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.ancestors.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.ancestors.is_empty()
    }

    /// All r-dominators of `v` (transitive), sorted ascending.
    pub fn ancestors(&self, v: u32) -> &[u32] {
        &self.ancestors[v as usize]
    }

    /// All nodes r-dominated by `v` (transitive).
    pub fn descendants(&self, v: u32) -> &[u32] {
        &self.descendants[v as usize]
    }

    /// Transitive-reduction out-neighbours of `v`.
    pub fn children(&self, v: u32) -> &[u32] {
        &self.children[v as usize]
    }

    /// Nodes with r-dominance count 0.
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// Heap bytes held by the graph's adjacency lists (cache
    /// accounting).
    pub fn approx_bytes(&self) -> usize {
        let meta = std::mem::size_of::<Vec<u32>>();
        let nested = |vv: &[Vec<u32>]| {
            vv.iter()
                .map(|v| meta + v.len() * std::mem::size_of::<u32>())
                .sum::<usize>()
        };
        std::mem::size_of::<Self>()
            + nested(&self.ancestors)
            + nested(&self.descendants)
            + nested(&self.children)
            + self.roots.len() * std::mem::size_of::<u32>()
    }

    /// The node's r-dominance count (§4.1).
    pub fn dominance_count(&self, v: u32) -> usize {
        self.ancestors[v as usize].len()
    }

    /// The r-dominance count restricted to non-excluded dominators —
    /// the contextual count used throughout refinement (§4.2: counts
    /// "ignore the candidate's ancestors" and previously considered or
    /// disregarded competitors).
    pub fn contextual_count(&self, v: u32, excluded: &[bool]) -> usize {
        self.ancestors[v as usize]
            .iter()
            .filter(|&&a| !excluded[a as usize])
            .count()
    }

    /// True if `a` r-dominates `v`.
    pub fn is_ancestor(&self, a: u32, v: u32) -> bool {
        self.ancestors[v as usize].binary_search(&a).is_ok()
    }

    /// The minimal elements of the sub-DAG on non-excluded nodes: the
    /// competitors "with the smallest r-dominance count" (which is
    /// always 0 on the remaining sub-DAG) whose half-spaces each
    /// refinement round inserts.
    pub fn minimal_competitors(&self, excluded: &[bool]) -> Vec<u32> {
        (0..self.len() as u32)
            .filter(|&v| !excluded[v as usize] && self.contextual_count(v, excluded) == 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Figure 5(b)-style example DAG (k = 4). The paper's figure is
    /// not fully recoverable from the text, so this fixture mirrors
    /// its *shape* — 4 roots p1–p4, mid-layer p5–p8, bottom layer
    /// p9–p12, with p11's ancestors {p2, p3, p7} exactly as the
    /// worked example requires. Encoded as transitive ancestor sets,
    /// 0-based (p1 = 0 … p12 = 11).
    fn figure5_graph() -> DominanceGraph {
        let anc: Vec<Vec<u32>> = vec![
            vec![],           // p1
            vec![],           // p2
            vec![],           // p3
            vec![],           // p4
            vec![0],          // p5
            vec![0, 1],       // p6
            vec![1, 2],       // p7
            vec![3],          // p8
            vec![0, 1, 4, 5], // p9  (via p5 and p6)
            vec![0, 1, 5],    // p10 (via p6 and p1)
            vec![1, 2, 6],    // p11 (via p7)
            vec![3, 7],       // p12 (via p8)
        ];
        DominanceGraph::build(anc)
    }

    #[test]
    fn figure5_counts() {
        let g = figure5_graph();
        // p11's context matches the paper's worked example: ancestors
        // {p2, p3, p7}, r-dominance count 3.
        assert_eq!(g.dominance_count(10), 3); // p11: {p2, p3, p7}
        assert_eq!(g.dominance_count(11), 2); // p12: {p4, p8}
        assert_eq!(g.roots(), &[0, 1, 2, 3]);
    }

    #[test]
    fn figure5_verification_context_of_p11() {
        let g = figure5_graph();
        // Verifying p11 ignores its ancestors {p2, p3, p7}; the
        // minimal remaining competitors are p1 and p4 (count 0).
        let mut excluded = vec![false; 12];
        excluded[10] = true; // candidate itself
        for &a in g.ancestors(10) {
            excluded[a as usize] = true;
        }
        let minimal = g.minimal_competitors(&excluded);
        assert_eq!(minimal, vec![0, 3]); // p1, p4
    }

    #[test]
    fn figure5_recursive_counts_after_considering_p1_p4() {
        let g = figure5_graph();
        // §4.2 recursion step: ancestors {p2, p3, p7} ignored and
        // {p1, p4} already considered — contextual counts over the
        // remaining competitors only.
        let mut excluded = vec![false; 12];
        for v in [10usize, 1, 2, 6, 0, 3] {
            excluded[v] = true;
        }
        assert_eq!(g.contextual_count(4, &excluded), 0); // p5: only dominator p1 excluded
        assert_eq!(g.contextual_count(5, &excluded), 0); // p6: p1, p2 excluded
        assert_eq!(g.contextual_count(8, &excluded), 2); // p9: p5, p6 remain
        assert_eq!(g.contextual_count(9, &excluded), 1); // p10: p6 remains
    }

    #[test]
    fn transitive_reduction_children() {
        let g = figure5_graph();
        // p1's children must not contain p9/p10 (reached via p5/p6).
        assert_eq!(g.children(0), &[4, 5]); // p5, p6
        assert!(g.children(1).contains(&5) && g.children(1).contains(&6));
        assert!(!g.children(0).contains(&8));
    }

    #[test]
    fn descendants_are_inverse_of_ancestors() {
        let g = figure5_graph();
        for v in 0..g.len() as u32 {
            for &d in g.descendants(v) {
                assert!(g.ancestors(d).contains(&v));
            }
            for &a in g.ancestors(v) {
                assert!(g.descendants(a).contains(&v));
            }
        }
    }

    #[test]
    fn empty_and_flat_graphs() {
        let g = DominanceGraph::build(vec![]);
        assert!(g.is_empty());
        let g = DominanceGraph::build(vec![vec![], vec![], vec![]]);
        assert_eq!(g.roots(), &[0, 1, 2]);
        assert_eq!(g.minimal_competitors(&[false, true, false]), vec![0, 2]);
    }
}
