//! The SK and ON baselines (§3.3 of the paper).
//!
//! Both follow filter-then-verify: the filter retains a superset of
//! every possible top-k result — the classical k-skyband (**SK**) or
//! the first k onion layers computed off the k-skyband (**ON**) — and
//! a constrained kSPR call verifies each retained candidate. The UTK2
//! variant leaves kSPR running to completion to enumerate all
//! qualifying sub-regions (the paper's "semantically equivalent"
//! output form), which is why the baselines roughly double their cost
//! there.

use crate::kspr::{kspr, KsprMode};
use crate::onion::onion_candidates;
use crate::rsa::Utk1Result;
use crate::skyband::k_skyband;
use crate::stats::Stats;
use utk_geom::Region;
use utk_rtree::RTree;

/// Which filtering step the baseline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterKind {
    /// k-skyband filter (baseline **SK**).
    Skyband,
    /// k onion layers (baseline **ON**).
    Onion,
}

impl FilterKind {
    /// Figure label (`SK` / `ON`).
    pub fn label(self) -> &'static str {
        match self {
            FilterKind::Skyband => "SK",
            FilterKind::Onion => "ON",
        }
    }
}

fn filter_candidates(
    points: &[Vec<f64>],
    tree: &RTree,
    k: usize,
    filter: FilterKind,
    stats: &mut Stats,
) -> Vec<u32> {
    let sky = k_skyband(points, tree, k, stats);
    let cands = match filter {
        FilterKind::Skyband => sky,
        // Onion layers are computed off the k-skyband (§3.3).
        FilterKind::Onion => onion_candidates(points, &sky, k),
    };
    stats.candidates = cands.len();
    cands
}

/// Baseline UTK1: filter + per-candidate kSPR in witness mode.
pub fn baseline_utk1(
    points: &[Vec<f64>],
    tree: &RTree,
    region: &Region,
    k: usize,
    filter: FilterKind,
) -> Utk1Result {
    let mut stats = Stats::new();
    let cands = filter_candidates(points, tree, k, filter, &mut stats);
    let mut records: Vec<u32> = cands
        .into_iter()
        .filter(|&c| kspr(points, c as usize, region, k, KsprMode::Witness, &mut stats).qualified)
        .collect();
    records.sort_unstable();
    Utk1Result { records, stats }
}

/// A record's qualifying sub-regions: `(witness point, rank)` pairs.
pub type WitnessRegions = Vec<(Vec<f64>, usize)>;

/// Baseline UTK2 output: for each qualifying record, all sub-regions
/// of `R` (witness point + rank) where it is in the top-k.
#[derive(Debug, Clone)]
pub struct BaselineUtk2Result {
    /// Qualifying records with their witness regions.
    pub per_record: Vec<(u32, WitnessRegions)>,
    /// Work counters.
    pub stats: Stats,
}

impl BaselineUtk2Result {
    /// The UTK1 answer implied by the UTK2 output.
    pub fn records(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self.per_record.iter().map(|(r, _)| *r).collect();
        out.sort_unstable();
        out
    }

    /// Total number of (record, region) pairs produced.
    pub fn total_regions(&self) -> usize {
        self.per_record.iter().map(|(_, r)| r.len()).sum()
    }
}

/// Baseline UTK2: filter + per-candidate kSPR run to completion.
pub fn baseline_utk2(
    points: &[Vec<f64>],
    tree: &RTree,
    region: &Region,
    k: usize,
    filter: FilterKind,
) -> BaselineUtk2Result {
    let mut stats = Stats::new();
    let cands = filter_candidates(points, tree, k, filter, &mut stats);
    let mut per_record = Vec::new();
    for c in cands {
        let res = kspr(points, c as usize, region, k, KsprMode::Full, &mut stats);
        if res.qualified {
            per_record.push((c, res.regions));
        }
    }
    BaselineUtk2Result { per_record, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::{rsa_with_tree, RsaOptions};
    use rand::prelude::*;

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn sk_and_on_agree_with_rsa_on_figure1() {
        let pts = vec![
            vec![8.3, 9.1, 7.2],
            vec![2.4, 9.6, 8.6],
            vec![5.4, 1.6, 4.1],
            vec![2.6, 6.9, 9.4],
            vec![7.3, 3.1, 2.4],
            vec![7.9, 6.4, 6.6],
            vec![8.6, 7.1, 4.3],
        ];
        let tree = RTree::bulk_load(&pts);
        let region = Region::hyperrect(vec![0.05, 0.05], vec![0.45, 0.25]);
        let want = vec![0, 1, 3, 5];
        for filter in [FilterKind::Skyband, FilterKind::Onion] {
            let got = baseline_utk1(&pts, &tree, &region, 2, filter);
            assert_eq!(got.records, want, "{}", filter.label());
        }
    }

    #[test]
    fn three_pipelines_agree_on_random_instances() {
        for trial in 0..4 {
            let pts = random_points(100, 3, 101 + trial);
            let tree = RTree::bulk_load(&pts);
            let region = Region::hyperrect(vec![0.15, 0.1], vec![0.3, 0.25]);
            let k = 3;
            let r = rsa_with_tree(&pts, &tree, &region, k, &RsaOptions::default());
            let sk = baseline_utk1(&pts, &tree, &region, k, FilterKind::Skyband);
            let on = baseline_utk1(&pts, &tree, &region, k, FilterKind::Onion);
            assert_eq!(r.records, sk.records, "RSA vs SK, trial {trial}");
            assert_eq!(r.records, on.records, "RSA vs ON, trial {trial}");
        }
    }

    #[test]
    fn utk2_baseline_matches_utk1_membership() {
        let pts = random_points(80, 3, 202);
        let tree = RTree::bulk_load(&pts);
        let region = Region::hyperrect(vec![0.2, 0.2], vec![0.3, 0.35]);
        let k = 2;
        let u1 = baseline_utk1(&pts, &tree, &region, k, FilterKind::Skyband);
        let u2 = baseline_utk2(&pts, &tree, &region, k, FilterKind::Skyband);
        assert_eq!(u1.records, u2.records());
        assert!(u2.total_regions() >= u2.per_record.len());
    }

    #[test]
    fn onion_filter_is_tighter_than_skyband() {
        let pts = random_points(400, 3, 303);
        let tree = RTree::bulk_load(&pts);
        let region = Region::hyperrect(vec![0.2, 0.2], vec![0.25, 0.3]);
        let sk = baseline_utk1(&pts, &tree, &region, 5, FilterKind::Skyband);
        let on = baseline_utk1(&pts, &tree, &region, 5, FilterKind::Onion);
        assert_eq!(sk.records, on.records);
        assert!(on.stats.candidates <= sk.stats.candidates);
    }
}
