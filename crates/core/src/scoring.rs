//! Generalized scoring functions (§6 of the paper).
//!
//! UTK processing only needs the score to be (i) monotone in the data
//! attributes — so BBS filtering stays correct — and (ii) linear in
//! the weights — so score comparisons stay half-spaces of the
//! preference domain. That admits the whole family
//!
//! ```text
//! S(p) = Σ w_i · f_i(p_i),   f_i monotone non-decreasing,
//! ```
//!
//! which covers `Σ w_i · p_iᵖ` for `p > 0` (and thereby all weighted
//! Lp norms, whose rankings coincide with their p-th powers).
//!
//! Implementation: transform each record once through `f` and run the
//! unchanged UTK machinery on the transformed dataset — the scores of
//! the transformed records *are* the generalized scores.

use crate::jaa::{jaa, JaaOptions, Utk2Result};
use crate::rsa::{rsa, RsaOptions, Utk1Result};
use utk_geom::Region;

/// A monotone non-decreasing per-attribute transform.
#[derive(Debug, Clone, Copy)]
pub enum AttributeTransform {
    /// `f(x) = x` — plain linear scoring.
    Identity,
    /// `f(x) = xᵖ` for `p > 0` (requires non-negative attributes).
    Power(f64),
    /// `f(x) = ln(1 + x)` — diminishing returns.
    Log1p,
    /// Arbitrary monotone function (caller guarantees monotonicity;
    /// see [`GeneralScoring::validate_monotone`]).
    Custom(fn(f64) -> f64),
}

impl AttributeTransform {
    /// Applies the transform.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            AttributeTransform::Identity => x,
            AttributeTransform::Power(p) => x.powf(p),
            AttributeTransform::Log1p => x.ln_1p(),
            AttributeTransform::Custom(f) => f(x),
        }
    }
}

/// A generalized scoring function: one transform per dimension.
#[derive(Debug, Clone)]
pub struct GeneralScoring {
    transforms: Vec<AttributeTransform>,
}

impl GeneralScoring {
    /// One transform per dimension.
    pub fn new(transforms: Vec<AttributeTransform>) -> Self {
        assert!(!transforms.is_empty());
        Self { transforms }
    }

    /// The scoring behind the weighted Lp norm on `d` dimensions:
    /// `S(p) = Σ w_i · p_iᵖ` (rank-equivalent to the norm itself).
    pub fn weighted_lp(p: f64, d: usize) -> Self {
        assert!(p > 0.0, "Lp norms need p > 0");
        Self::new(vec![AttributeTransform::Power(p); d])
    }

    /// Plain linear scoring on `d` dimensions.
    pub fn linear(d: usize) -> Self {
        Self::new(vec![AttributeTransform::Identity; d])
    }

    /// Data dimensionality.
    pub fn dim(&self) -> usize {
        self.transforms.len()
    }

    /// Transforms one record.
    pub fn transform_record(&self, p: &[f64]) -> Vec<f64> {
        debug_assert_eq!(p.len(), self.transforms.len());
        p.iter()
            .zip(&self.transforms)
            .map(|(&x, t)| t.apply(x))
            .collect()
    }

    /// Transforms a dataset (one pass; UTK then runs unchanged).
    pub fn transform(&self, points: &[Vec<f64>]) -> Vec<Vec<f64>> {
        points.iter().map(|p| self.transform_record(p)).collect()
    }

    /// A hashable identity for engine-side memoization: one `(tag,
    /// parameter-bits)` pair per dimension. `Custom` transforms key on
    /// the function pointer's address.
    pub(crate) fn fingerprint(&self) -> Vec<(u8, u64)> {
        self.transforms
            .iter()
            .map(|t| match t {
                AttributeTransform::Identity => (0u8, 0u64),
                AttributeTransform::Power(p) => (1, p.to_bits()),
                AttributeTransform::Log1p => (2, 0),
                AttributeTransform::Custom(f) => (3, *f as usize as u64),
            })
            .collect()
    }

    /// True when every transform is the identity (plain linear
    /// scoring, no dataset transformation needed).
    pub fn is_identity(&self) -> bool {
        self.transforms
            .iter()
            .all(|t| matches!(t, AttributeTransform::Identity))
    }

    /// Spot-checks monotonicity of every transform over `[lo, hi]`
    /// (useful for `Custom` transforms in debug builds/tests).
    pub fn validate_monotone(&self, lo: f64, hi: f64) -> bool {
        const STEPS: usize = 64;
        self.transforms.iter().all(|t| {
            let mut prev = t.apply(lo);
            (1..=STEPS).all(|i| {
                let x = lo + (hi - lo) * i as f64 / STEPS as f64;
                let y = t.apply(x);
                let ok = y >= prev - 1e-12;
                prev = y;
                ok
            })
        })
    }
}

/// UTK1 under a generalized scoring function: RSA over the transformed
/// dataset. Returned record ids refer to the *original* dataset.
///
/// Legacy convenience; prefer [`crate::engine::UtkEngine`] with
/// [`crate::engine::UtkQuery::scoring`], which memoizes the
/// transformed dataset and its index across queries.
pub fn rsa_general(
    points: &[Vec<f64>],
    scoring: &GeneralScoring,
    region: &Region,
    k: usize,
    opts: &RsaOptions,
) -> Utk1Result {
    rsa(&scoring.transform(points), region, k, opts)
}

/// UTK2 under a generalized scoring function.
///
/// Legacy convenience; prefer [`crate::engine::UtkEngine`] with
/// [`crate::engine::UtkQuery::scoring`], which memoizes the
/// transformed dataset and its index across queries.
pub fn jaa_general(
    points: &[Vec<f64>],
    scoring: &GeneralScoring,
    region: &Region,
    k: usize,
    opts: &JaaOptions,
) -> Utk2Result {
    jaa(&scoring.transform(points), region, k, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::top_k_brute;
    use rand::prelude::*;

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn identity_scoring_matches_plain_rsa() {
        let pts = random_points(100, 3, 1);
        let region = Region::hyperrect(vec![0.2, 0.2], vec![0.3, 0.35]);
        let plain = rsa(&pts, &region, 3, &RsaOptions::default());
        let general = rsa_general(
            &pts,
            &GeneralScoring::linear(3),
            &region,
            3,
            &RsaOptions::default(),
        );
        assert_eq!(plain.records, general.records);
    }

    #[test]
    fn weighted_l2_utk1_contains_sampled_l2_topk() {
        let pts = random_points(120, 3, 2);
        let region = Region::hyperrect(vec![0.2, 0.2], vec![0.35, 0.3]);
        let k = 3;
        let scoring = GeneralScoring::weighted_lp(2.0, 3);
        let res = rsa_general(&pts, &scoring, &region, k, &RsaOptions::default());
        // Sampled generalized top-k (scores Σ w_i x_i²) must be inside.
        let squared = scoring.transform(&pts);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            let w = [rng.gen_range(0.2..0.35), rng.gen_range(0.2..0.3)];
            for id in top_k_brute(&squared, &w, k) {
                assert!(res.records.contains(&id));
            }
        }
    }

    #[test]
    fn l2_and_linear_answers_differ_in_general() {
        // The square transform favours spiky records; on anticorrelated
        // data the answers must eventually diverge.
        let mut diverged = false;
        for seed in 0..5 {
            let pts = random_points(150, 3, 100 + seed);
            let region = Region::hyperrect(vec![0.1, 0.1], vec![0.4, 0.4]);
            let lin = rsa(&pts, &region, 3, &RsaOptions::default());
            let l2 = rsa_general(
                &pts,
                &GeneralScoring::weighted_lp(2.0, 3),
                &region,
                3,
                &RsaOptions::default(),
            );
            if lin.records != l2.records {
                diverged = true;
                break;
            }
        }
        assert!(
            diverged,
            "L2 and linear UTK1 should differ on some instance"
        );
    }

    #[test]
    fn jaa_general_cells_label_correctly() {
        let pts = random_points(80, 3, 3);
        let region = Region::hyperrect(vec![0.25, 0.2], vec![0.35, 0.3]);
        let scoring = GeneralScoring::new(vec![
            AttributeTransform::Log1p,
            AttributeTransform::Power(0.5),
            AttributeTransform::Identity,
        ]);
        assert!(scoring.validate_monotone(0.0, 1.0));
        let res = jaa_general(&pts, &scoring, &region, 2, &JaaOptions::default());
        let transformed = scoring.transform(&pts);
        for cell in &res.cells {
            let mut want = top_k_brute(&transformed, &cell.interior, 2);
            want.sort_unstable();
            assert_eq!(cell.top_k, want);
        }
    }

    #[test]
    fn monotone_validation_rejects_decreasing() {
        fn neg(x: f64) -> f64 {
            -x
        }
        let s = GeneralScoring::new(vec![AttributeTransform::Custom(neg)]);
        assert!(!s.validate_monotone(0.0, 1.0));
    }

    #[test]
    fn power_transform_preserves_order() {
        let s = GeneralScoring::weighted_lp(3.0, 2);
        assert!(s.validate_monotone(0.0, 10.0));
        let t = s.transform_record(&[2.0, 3.0]);
        assert!((t[0] - 8.0).abs() < 1e-12);
        assert!((t[1] - 27.0).abs() < 1e-12);
    }
}
