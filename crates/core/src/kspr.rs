//! kSPR: the monochromatic reverse top-k building block of the
//! baselines (§3.3; Tang, Mouratidis & Yiu, SIGMOD 2017 \[45\]).
//!
//! Given a focal record `p`, kSPR finds the regions of the preference
//! domain — here constrained to the query region `R` — where `p` ranks
//! among the top-k. Every competitor maps to the half-space where it
//! outscores `p`; in the arrangement of those half-spaces inside `R`,
//! the cells covered by fewer than `k` of them form the answer.
//!
//! This implementation follows the LP-CTA recipe at the level the UTK
//! paper relies on:
//!
//! * competitors that never outscore `p` inside `R` are skipped, and
//!   those that outscore it everywhere only raise a base count
//!   (disqualifying `p` outright once the base reaches `k`);
//! * straddling competitors are inserted strongest-first (by pivot
//!   score margin), so cells die (count ≥ k) as early as possible;
//! * dead cells are pruned from further subdivision;
//! * in UTK1 ("witness") mode the search stops as soon as `p` is
//!   disqualified everywhere — or runs to completion and reports
//!   whether a witness cell survived.

use crate::stats::Stats;
use utk_geom::{Arrangement, CellId, Halfspace, Region};

/// Output mode of a kSPR call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KsprMode {
    /// UTK1 verification: only qualification matters; the caller may
    /// not need the witness regions.
    Witness,
    /// UTK2: all qualifying sub-regions of `R` are materialized.
    Full,
}

/// Result of a kSPR call for one focal record.
#[derive(Debug, Clone)]
pub struct KsprResult {
    /// True iff the record is in the top-k somewhere in `R`.
    pub qualified: bool,
    /// Qualifying sub-regions: interior point and the record's rank
    /// there (base + covering half-spaces + 1). In `Witness` mode the
    /// list stops at the first region found.
    pub regions: Vec<(Vec<f64>, usize)>,
}

/// Runs kSPR for record `focal` (an index into `points`) against all
/// other records, constrained to `region`.
pub fn kspr(
    points: &[Vec<f64>],
    focal: usize,
    region: &Region,
    k: usize,
    mode: KsprMode,
    stats: &mut Stats,
) -> KsprResult {
    stats.kspr_calls += 1;
    let p = &points[focal];
    // utk-lint: allow(panic) -- invariant: callers pass the validated non-empty query region
    let pivot = region.pivot().expect("non-empty region");

    // Classify every competitor by the range of S(q) − S(p) over R.
    let mut base = 0usize; // competitors beating p everywhere in R
    let mut straddlers: Vec<(u32, f64)> = Vec::new();
    for (qi, q) in points.iter().enumerate() {
        if qi == focal {
            continue;
        }
        let (a, c) = utk_geom::pref_score_delta(q, p);
        let Some((min, max)) = region.linear_range(&a, c) else {
            return KsprResult {
                qualified: false,
                regions: Vec::new(),
            };
        };
        if max <= 1e-12 {
            if min >= -1e-12 && (qi as u32) < focal as u32 {
                // Identical scores everywhere: the smaller dataset id
                // outranks (the workspace-wide deterministic
                // tie-break).
                base += 1;
                if base >= k {
                    return KsprResult {
                        qualified: false,
                        regions: Vec::new(),
                    };
                }
            }
            continue; // never outranks p in R
        }
        if min >= -1e-12 {
            base += 1;
            if base >= k {
                return KsprResult {
                    qualified: false,
                    regions: Vec::new(),
                };
            }
        } else {
            let margin = utk_geom::pref_score(q, &pivot) - utk_geom::pref_score(p, &pivot);
            straddlers.push((qi as u32, margin));
        }
    }
    let budget = k - base; // cells die at `budget` covering half-spaces

    // Strongest competitors first: cells reach the death count sooner.
    straddlers.sort_by(|a, b| b.1.total_cmp(&a.1));

    let mut arr = match Arrangement::new(region.clone()) {
        Some(a) => a,
        None => {
            // Degenerate R: decide at the pivot directly (score order
            // with the id tie-break).
            let sp = utk_geom::pref_score(p, &pivot);
            let above = points
                .iter()
                .enumerate()
                .filter(|(qi, q)| {
                    if *qi == focal {
                        return false;
                    }
                    let sq = utk_geom::pref_score(q, &pivot);
                    sq > sp + 1e-12 || ((sq - sp).abs() <= 1e-12 && *qi < focal)
                })
                .count();
            let qualified = above < k;
            return KsprResult {
                regions: if qualified {
                    vec![(pivot, above + 1)]
                } else {
                    Vec::new()
                },
                qualified,
            };
        }
    };
    stats.arrangements_built += 1;

    for &(q, _) in &straddlers {
        let hs = Halfspace::beats(&points[q as usize], p);
        arr.insert(hs, q);
        stats.halfspaces_inserted += 1;
        let dead: Vec<CellId> = arr
            .live_cells()
            .filter(|(_, c)| c.count() >= budget)
            .map(|(id, _)| id)
            .collect();
        for id in dead {
            arr.prune(id);
        }
        if arr.num_live() == 0 {
            // p is beaten ≥ k times everywhere: disqualified early.
            stats.cells_created += arr.all_cells().len();
            return KsprResult {
                qualified: false,
                regions: Vec::new(),
            };
        }
    }
    stats.cells_created += arr.all_cells().len();

    let mut regions = Vec::new();
    for (_, cell) in arr.live_cells() {
        regions.push((cell.interior().to_vec(), base + cell.count() + 1));
        if mode == KsprMode::Witness {
            break;
        }
    }
    KsprResult {
        qualified: !regions.is_empty(),
        regions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::top_k_brute;

    fn figure1_hotels() -> Vec<Vec<f64>> {
        vec![
            vec![8.3, 9.1, 7.2],
            vec![2.4, 9.6, 8.6],
            vec![5.4, 1.6, 4.1],
            vec![2.6, 6.9, 9.4],
            vec![7.3, 3.1, 2.4],
            vec![7.9, 6.4, 6.6],
            vec![8.6, 7.1, 4.3],
        ]
    }

    #[test]
    fn figure1_membership_matches_utk1() {
        let pts = figure1_hotels();
        let region = Region::hyperrect(vec![0.05, 0.05], vec![0.45, 0.25]);
        let mut stats = Stats::new();
        let expected = [true, true, false, true, false, true, false];
        for (i, want) in expected.iter().enumerate() {
            let res = kspr(&pts, i, &region, 2, KsprMode::Witness, &mut stats);
            assert_eq!(res.qualified, *want, "hotel p{}", i + 1);
        }
    }

    #[test]
    fn witness_regions_are_true_witnesses() {
        let pts = figure1_hotels();
        let region = Region::hyperrect(vec![0.05, 0.05], vec![0.45, 0.25]);
        let mut stats = Stats::new();
        for i in 0..pts.len() {
            let res = kspr(&pts, i, &region, 2, KsprMode::Full, &mut stats);
            for (w, rank) in &res.regions {
                let top = top_k_brute(&pts, w, 2);
                assert!(top.contains(&(i as u32)), "record {i} not top-2 at {w:?}");
                // Reported rank = exact rank at any interior point.
                let better = pts
                    .iter()
                    .filter(|q| {
                        utk_geom::pref_score(q, w) > utk_geom::pref_score(&pts[i], w) + 1e-12
                    })
                    .count();
                assert_eq!(better + 1, *rank, "rank mismatch for {i} at {w:?}");
            }
        }
    }

    #[test]
    fn full_mode_counts_rank_regions() {
        // For the top hotel p1, full mode should tile most of R.
        let pts = figure1_hotels();
        let region = Region::hyperrect(vec![0.05, 0.05], vec![0.45, 0.25]);
        let mut stats = Stats::new();
        let res = kspr(&pts, 0, &region, 2, KsprMode::Full, &mut stats);
        assert!(res.qualified);
        assert!(!res.regions.is_empty());
    }

    #[test]
    fn random_agreement_with_sampling() {
        use rand::prelude::*;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        let pts: Vec<Vec<f64>> = (0..60)
            .map(|_| (0..3).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let region = Region::hyperrect(vec![0.2, 0.2], vec![0.35, 0.4]);
        let k = 3;
        let mut stats = Stats::new();
        // Sampled qualification is a lower bound of exact
        // qualification; and every exact answer must have a witness.
        let mut sampled = std::collections::HashSet::new();
        for _ in 0..400 {
            let w = [rng.gen_range(0.2..0.35), rng.gen_range(0.2..0.4)];
            for id in top_k_brute(&pts, &w, k) {
                sampled.insert(id);
            }
        }
        for i in 0..pts.len() {
            let res = kspr(&pts, i, &region, k, KsprMode::Witness, &mut stats);
            if sampled.contains(&(i as u32)) {
                assert!(res.qualified, "sampled member {i} rejected by kSPR");
            }
            if res.qualified {
                let full = kspr(&pts, i, &region, k, KsprMode::Full, &mut stats);
                let (w, _) = &full.regions[0];
                assert!(top_k_brute(&pts, w, k).contains(&(i as u32)));
            }
        }
    }
}
