//! The unified query engine: build the expensive per-dataset state
//! once, answer many queries against it.
//!
//! The paper's framework shares one substrate across all its
//! algorithms — the R-tree over the dataset, and per `(k, R)` the
//! r-skyband candidate set with its r-dominance graph (§4.1). The
//! legacy free functions (`rsa`, `jaa`, `baseline_utk1`, …) rebuild
//! all of it on every call; [`UtkEngine`] owns it instead:
//!
//! * the dataset and its R-tree are built **once**, at engine
//!   construction;
//! * the r-skyband + graph of each `(k, R)` pair is **memoized** in a
//!   byte-budgeted LRU cache ([`crate::cache::ByteLru`]), so repeating
//!   a region with a different algorithm, or re-running a query, skips
//!   the filtering phase entirely; on an exact miss, a cached
//!   *containing* region's candidate set is re-screened into the exact
//!   answer (superset reuse) instead of re-running BBS over the tree;
//! * generalized-scoring transforms (§6) of the dataset, and their
//!   R-trees, are memoized the same way;
//! * a persistent work-stealing [`ThreadPool`] is built lazily for
//!   parallel queries ([`UtkQuery::parallel`]) and batches
//!   ([`UtkEngine::run_many`]) — never one per query.
//!
//! Queries are described by the [`UtkQuery`] builder and return a
//! typed [`QueryResult`] carrying [`Stats`]; every entry point returns
//! `Result<_, UtkError>` — malformed input (wrong dimensionality, NaN,
//! `k = 0`, empty region) is reported, never panicked on.
//!
//! ```
//! use utk_core::engine::{Algo, QueryResult, UtkEngine, UtkQuery};
//! use utk_geom::Region;
//!
//! // Figure 1 of the paper: 7 hotels, k = 2.
//! let hotels = vec![
//!     vec![8.3, 9.1, 7.2], vec![2.4, 9.6, 8.6], vec![5.4, 1.6, 4.1],
//!     vec![2.6, 6.9, 9.4], vec![7.3, 3.1, 2.4], vec![7.9, 6.4, 6.6],
//!     vec![8.6, 7.1, 4.3],
//! ];
//! let engine = UtkEngine::new(hotels)?;
//! let region = Region::hyperrect(vec![0.05, 0.05], vec![0.45, 0.25]);
//!
//! // UTK1: which hotels can make the top-2 at all?
//! let utk1 = engine.run(&UtkQuery::utk1(2).region(region.clone()))?;
//! assert_eq!(utk1.records(), &[0, 1, 3, 5]);
//!
//! // UTK2 over the same region reuses the memoized r-skyband.
//! let utk2 = engine.run(&UtkQuery::utk2(2).region(region))?;
//! assert_eq!(utk2.records(), &[0, 1, 3, 5]);
//! assert_eq!(utk2.stats().filter_cache_hits, 1);
//! # Ok::<(), utk_core::UtkError>(())
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::baseline::{baseline_utk1, FilterKind};
use crate::cache::ByteLru;
use crate::error::UtkError;
use crate::jaa::{jaa_parallel_refine, jaa_refine, records_of, JaaOptions, Utk2Cell, Utk2Result};
use crate::obs::{self, Clock, MonotonicClock, Phase};
use crate::parallel::ThreadPool;
use crate::rdominance::ScreenKernel;
use crate::rsa::{rsa_refine, RsaOptions, Utk1Result};
use crate::scoring::GeneralScoring;
use crate::skyband::{
    r_skyband_from_superset_with_kernel, r_skyband_repair_inserts_with_kernel,
    r_skyband_repair_with_kernel, r_skyband_view_with_kernel, rejected_by_members, CandidateSet,
    TreeView, TOMBSTONE,
};
use crate::stats::Stats;
use utk_geom::tol::INTERIOR_EPS;
use utk_geom::{PointStore, Region};
use utk_rtree::RTree;

/// Default byte budget of the r-skyband filter cache (payload bytes
/// of the cached [`CandidateSet`]s plus their region keys).
pub const DEFAULT_FILTER_CACHE_BUDGET: usize = 64 << 20;
/// Default byte budget of the transformed-dataset (generalized
/// scoring) cache — entries are full dataset copies plus an R-tree,
/// so the budget is wider.
pub const DEFAULT_SCORING_CACHE_BUDGET: usize = 256 << 20;

/// When the R-tree overlay's corrections (tombstoned base records
/// plus appended records) exceed this fraction of the live dataset, a
/// mutation rebuilds the tree instead of growing the overlay. Results
/// are exact either way (see [`TreeView`]); the threshold only bounds
/// the traversal overhead of reading through stale geometry.
const OVERLAY_REBUILD_NUM: usize = 1;
const OVERLAY_REBUILD_DEN: usize = 2;

/// Which processing algorithm answers the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Pick per query kind: RSA for UTK1, JAA for UTK2.
    Auto,
    /// The r-skyband algorithm (§4). UTK1 only.
    Rsa,
    /// The joint-arrangement algorithm (§5). Answers UTK2, and UTK1
    /// via the partition union.
    Jaa,
    /// The SK baseline (§3.3): k-skyband filter + kSPR. UTK1 only.
    Sk,
    /// The ON baseline (§3.3): onion-layers filter + kSPR. UTK1 only.
    On,
}

impl Algo {
    /// The concrete algorithm [`Algo::Auto`] resolves to for `kind`
    /// (RSA for UTK1, JAA for UTK2); non-`Auto` values pass through.
    pub fn resolved_for(self, kind: QueryKind) -> Algo {
        match (self, kind) {
            (Algo::Auto, QueryKind::Utk1) => Algo::Rsa,
            (Algo::Auto, QueryKind::Utk2) => Algo::Jaa,
            (a, _) => a,
        }
    }

    /// Display label (`auto`, `rsa`, `jaa`, `sk`, `on`).
    pub fn label(self) -> &'static str {
        match self {
            Algo::Auto => "auto",
            Algo::Rsa => "rsa",
            Algo::Jaa => "jaa",
            Algo::Sk => "sk",
            Algo::On => "on",
        }
    }
}

impl std::str::FromStr for Algo {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(Algo::Auto),
            "rsa" => Ok(Algo::Rsa),
            "jaa" => Ok(Algo::Jaa),
            "sk" => Ok(Algo::Sk),
            "on" => Ok(Algo::On),
            other => Err(format!(
                "unknown algorithm {other:?} (expected auto, rsa, jaa, sk or on)"
            )),
        }
    }
}

/// The three query kinds the engine answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// UTK1: the minimal set of possible top-k records over `R`.
    Utk1,
    /// UTK2: the partitioning of `R` by exact top-k set.
    Utk2,
    /// Plain top-k at one weight vector (for comparison workloads).
    TopK,
}

impl QueryKind {
    /// Display label (`utk1`, `utk2`, `topk`).
    pub fn label(self) -> &'static str {
        match self {
            QueryKind::Utk1 => "utk1",
            QueryKind::Utk2 => "utk2",
            QueryKind::TopK => "topk",
        }
    }
}

/// A query description, built fluently and handed to
/// [`UtkEngine::run`].
///
/// ```
/// use utk_core::engine::{Algo, UtkQuery};
/// use utk_geom::Region;
///
/// let query = UtkQuery::utk1(10)
///     .region(Region::hyperrect(vec![0.2, 0.2], vec![0.3, 0.3]))
///     .algorithm(Algo::Auto)
///     .parallel(true);
/// ```
#[derive(Debug, Clone)]
pub struct UtkQuery {
    kind: QueryKind,
    k: usize,
    region: Option<Region>,
    weights: Option<Vec<f64>>,
    algo: Algo,
    parallel: bool,
    threads: usize,
    scoring: Option<GeneralScoring>,
    rsa_options: RsaOptions,
    jaa_options: JaaOptions,
}

impl UtkQuery {
    fn new(kind: QueryKind, k: usize) -> Self {
        Self {
            kind,
            k,
            region: None,
            weights: None,
            algo: Algo::Auto,
            parallel: false,
            threads: 0,
            scoring: None,
            rsa_options: RsaOptions::default(),
            jaa_options: JaaOptions::default(),
        }
    }

    /// A UTK1 query: the minimal set of records appearing in some
    /// top-`k` over the region (set with [`UtkQuery::region`]).
    pub fn utk1(k: usize) -> Self {
        Self::new(QueryKind::Utk1, k)
    }

    /// A UTK2 query: the partitioning of the region (set with
    /// [`UtkQuery::region`]) into cells labelled with exact top-`k`
    /// sets.
    pub fn utk2(k: usize) -> Self {
        Self::new(QueryKind::Utk2, k)
    }

    /// A plain top-`k` query at one weight vector (set with
    /// [`UtkQuery::weights`]).
    pub fn topk(k: usize) -> Self {
        Self::new(QueryKind::TopK, k)
    }

    /// The uncertainty region `R` of the preference domain (required
    /// for UTK1/UTK2).
    pub fn region(mut self, region: Region) -> Self {
        self.region = Some(region);
        self
    }

    /// The weight vector for top-k queries: either the reduced `d − 1`
    /// preference-domain form, or all `d` weights (the implied last
    /// weight is dropped, §3.1).
    pub fn weights(mut self, weights: Vec<f64>) -> Self {
        self.weights = Some(weights);
        self
    }

    /// Selects the processing algorithm (default [`Algo::Auto`]).
    pub fn algorithm(mut self, algo: Algo) -> Self {
        self.algo = algo;
        self
    }

    /// Fans refinement out over the engine's worker pool: RSA verifies
    /// candidates concurrently (UTK1) and JAA work-steals partition
    /// tasks (UTK2), with output identical to the sequential runs.
    /// The baselines stay sequential. Defaults to off.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Worker thread count. Engine queries run on the engine's
    /// persistent pool, sized once via
    /// [`UtkEngine::with_pool_threads`] — a per-query count has no
    /// effect there, which is why this builder is deprecated rather
    /// than silently honored sometimes.
    #[deprecated(
        since = "0.1.0",
        note = "engine queries run on the engine's persistent pool; \
                size it with UtkEngine::with_pool_threads instead"
    )]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Generalized scoring (§6): the dataset is transformed through
    /// the monotone per-attribute functions and the query runs on the
    /// transformed data. The engine memoizes the transform.
    pub fn scoring(mut self, scoring: GeneralScoring) -> Self {
        self.scoring = Some(scoring);
        self
    }

    /// Tuning/ablation switches for RSA.
    pub fn rsa_options(mut self, opts: RsaOptions) -> Self {
        self.rsa_options = opts;
        self
    }

    /// Tuning/ablation switches for JAA.
    pub fn jaa_options(mut self, opts: JaaOptions) -> Self {
        self.jaa_options = opts;
        self
    }

    /// The query kind.
    pub fn kind(&self) -> QueryKind {
        self.kind
    }

    /// The rank bound `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    fn pivot_order(&self) -> bool {
        match self.kind {
            QueryKind::Utk2 => self.jaa_options.pivot_order,
            _ => self.rsa_options.pivot_order,
        }
    }
}

/// Output of a plain top-k query.
#[derive(Debug, Clone)]
pub struct TopKResult {
    /// The top-k record ids, in descending score order (ties toward
    /// the smaller id).
    pub records: Vec<u32>,
    /// Work counters.
    pub stats: Stats,
}

/// The typed result of [`UtkEngine::run`], one variant per
/// [`QueryKind`].
#[derive(Debug, Clone)]
pub enum QueryResult {
    /// A UTK1 answer.
    Utk1(Utk1Result),
    /// A UTK2 answer.
    Utk2(Utk2Result),
    /// A plain top-k answer.
    TopK(TopKResult),
}

impl QueryResult {
    /// The answer's record ids: the UTK1 set, the union over UTK2
    /// cells, or the ranked top-k.
    pub fn records(&self) -> &[u32] {
        match self {
            QueryResult::Utk1(r) => &r.records,
            QueryResult::Utk2(r) => &r.records,
            QueryResult::TopK(r) => &r.records,
        }
    }

    /// Work counters of this query.
    pub fn stats(&self) -> &Stats {
        match self {
            QueryResult::Utk1(r) => &r.stats,
            QueryResult::Utk2(r) => &r.stats,
            QueryResult::TopK(r) => &r.stats,
        }
    }

    fn stats_mut(&mut self) -> &mut Stats {
        match self {
            QueryResult::Utk1(r) => &mut r.stats,
            QueryResult::Utk2(r) => &mut r.stats,
            QueryResult::TopK(r) => &mut r.stats,
        }
    }

    /// The UTK2 partitioning, when this is a UTK2 result.
    pub fn cells(&self) -> Option<&[Utk2Cell]> {
        match self {
            QueryResult::Utk2(r) => Some(&r.cells),
            _ => None,
        }
    }

    /// This result as UTK1 output, if it is one.
    pub fn as_utk1(&self) -> Option<&Utk1Result> {
        match self {
            QueryResult::Utk1(r) => Some(r),
            _ => None,
        }
    }

    /// This result as UTK2 output, if it is one.
    pub fn as_utk2(&self) -> Option<&Utk2Result> {
        match self {
            QueryResult::Utk2(r) => Some(r),
            _ => None,
        }
    }
}

/// One scoring's view of the dataset: the (possibly transformed)
/// points — row layout for the baselines and transforms, flat layout
/// for the filtering hot path — and their R-tree. Tagged with the
/// epoch of the dataset snapshot it was derived from.
#[derive(Debug)]
struct Scored {
    epoch: u64,
    points: Vec<Vec<f64>>,
    store: PointStore,
    tree: RTree,
}

impl Scored {
    /// Payload bytes for the scoring cache's budget accounting.
    fn approx_bytes(&self) -> usize {
        let rows: usize = self
            .points
            .iter()
            .map(|p| std::mem::size_of::<Vec<f64>>() + p.len() * 8)
            .sum();
        rows + self.store.approx_bytes() + self.tree.approx_bytes()
    }
}

/// The spatial index of one dataset version: a tree packed over
/// exactly the live records, or the last-packed tree read through a
/// tombstone/append overlay (see [`TreeView`]).
#[derive(Debug)]
enum TreeIndex {
    /// Record ids in the tree *are* current dataset ids.
    Packed(Arc<RTree>),
    /// A stale base tree plus corrections accumulated by mutations.
    Overlay {
        /// The tree as last built.
        base: Arc<RTree>,
        /// Base record id → current dataset id ([`TOMBSTONE`] =
        /// deleted); `None` while no delete has happened since the
        /// last rebuild.
        remap: Option<Vec<u32>>,
        /// Current dataset ids appended since the last rebuild.
        extra: Vec<u32>,
        /// A tree packed over the live records, built on demand for
        /// consumers that need plain tree geometry (the SK/ON
        /// baselines, [`DatasetSnapshot::tree`]). Built at most once
        /// per version.
        packed: OnceLock<Arc<RTree>>,
    },
}

/// One immutable version of the engine's dataset. Queries snapshot
/// the current version (an `Arc` clone) and run entirely against it,
/// so a concurrent [`UtkEngine::apply_update`] never tears a query:
/// it swaps in a *new* version while in-flight queries finish on the
/// old one.
#[derive(Debug)]
struct DatasetVersion {
    /// Content version: 0 at construction, +1 per mutation. Keys the
    /// engine caches — an entry is only ever served to queries whose
    /// snapshot has the same epoch.
    epoch: u64,
    /// Live records in id order (row layout: baselines, transforms).
    points: Vec<Vec<f64>>,
    /// The same records, flat (the filtering hot path).
    store: PointStore,
    /// The spatial index.
    index: TreeIndex,
}

impl DatasetVersion {
    fn packed(epoch: u64, points: Vec<Vec<f64>>, tree: Arc<RTree>) -> Self {
        let store = PointStore::from_rows(&points);
        Self {
            epoch,
            points,
            store,
            index: TreeIndex::Packed(tree),
        }
    }

    /// The BBS view of this version's index.
    fn tree_view(&self) -> TreeView<'_> {
        match &self.index {
            TreeIndex::Packed(tree) => TreeView::packed(tree),
            TreeIndex::Overlay {
                base, remap, extra, ..
            } => TreeView::overlay(base, remap.as_deref(), extra),
        }
    }

    /// A tree packed over exactly the live records, building (and
    /// memoizing) one if the index is an overlay.
    fn packed_tree(&self) -> &RTree {
        match &self.index {
            TreeIndex::Packed(tree) => tree,
            TreeIndex::Overlay { packed, .. } => {
                packed.get_or_init(|| Arc::new(RTree::bulk_load(&self.points)))
            }
        }
    }
}

/// A read-only view of one dataset version, handed out by
/// [`UtkEngine::snapshot`]. Cheap to clone; keeps its version alive
/// (and its answers coherent) however many mutations happen after it
/// was taken.
#[derive(Debug, Clone)]
pub struct DatasetSnapshot {
    version: Arc<DatasetVersion>,
}

impl DatasetSnapshot {
    /// The records of this version, in id order.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.version.points
    }

    /// The flat layout of the same records.
    pub fn store(&self) -> &PointStore {
        &self.version.store
    }

    /// An R-tree packed over exactly these records (built on demand
    /// if the live index is an overlay).
    pub fn tree(&self) -> &RTree {
        self.version.packed_tree()
    }

    /// This version's epoch.
    pub fn epoch(&self) -> u64 {
        self.version.epoch
    }

    /// Number of records in this version.
    pub fn len(&self) -> usize {
        self.version.points.len()
    }

    /// Never true: engines never hold an empty dataset.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// What one [`UtkEngine::apply_update`] did — the mutation seam's
/// receipt, surfaced through `utk update`, the serving protocol's
/// `update` op, and the dynamic test oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateReport {
    /// The dataset epoch after the mutation (unchanged for a no-op).
    pub epoch: u64,
    /// Live records after the mutation.
    pub n: usize,
    /// Records appended.
    pub inserted: usize,
    /// Records removed.
    pub deleted: usize,
    /// Filter-cache entries whose r-skyband could have changed and
    /// were dropped outright (no splice repair applied).
    pub filter_invalidated: usize,
    /// Filter-cache entries carried into the new epoch — proven
    /// unaffected and re-keyed, or splice-repaired in place. (Repaired
    /// entries count here *and* in [`UpdateReport::filter_repaired`];
    /// only this field is on the wire.)
    pub filter_retained: usize,
    /// Of the retained entries, how many were splice-repaired
    /// (re-screened incrementally) rather than merely re-keyed. Not
    /// part of the wire format.
    pub filter_repaired: usize,
    /// Whether the mutation rebuilt the R-tree (overlay overhead past
    /// the threshold) instead of extending the overlay.
    pub index_rebuilt: bool,
}

/// A validated region's interior, or the shortcut answer when it has
/// none (see [`UtkEngine::interior_or_degenerate`]).
enum RegionInterior {
    /// Full-dimensional region: max-slack interior point.
    Full { interior: Vec<f64>, slack: f64 },
    /// Degenerate region: the pivot `w` and the sorted top-k there.
    Degenerate { w: Vec<f64>, top_k: Vec<u32> },
}

/// Snapshot-or-transformed access to a query's dataset view. Either
/// way the view is immutable and epoch-tagged: a query runs start to
/// finish against one dataset version.
enum DataRef {
    Snapshot(Arc<DatasetVersion>),
    Transformed(Arc<Scored>),
}

impl DataRef {
    fn points(&self) -> &[Vec<f64>] {
        match self {
            DataRef::Snapshot(v) => &v.points,
            DataRef::Transformed(s) => &s.points,
        }
    }

    /// The flat layout of the same dataset (the filtering hot path).
    fn store(&self) -> &PointStore {
        match self {
            DataRef::Snapshot(v) => &v.store,
            DataRef::Transformed(s) => &s.store,
        }
    }

    /// The BBS view of the index (overlay-aware for the base data;
    /// transformed datasets always carry a freshly packed tree).
    fn tree_view(&self) -> TreeView<'_> {
        match self {
            DataRef::Snapshot(v) => v.tree_view(),
            DataRef::Transformed(s) => TreeView::packed(&s.tree),
        }
    }

    /// A plain packed tree (the SK/ON baselines' input).
    fn packed_tree(&self) -> &RTree {
        match self {
            DataRef::Snapshot(v) => v.packed_tree(),
            DataRef::Transformed(s) => &s.tree,
        }
    }

    /// The epoch of the underlying dataset version.
    fn epoch(&self) -> u64 {
        match self {
            DataRef::Snapshot(v) => v.epoch,
            DataRef::Transformed(s) => s.epoch,
        }
    }
}

/// Identity of a memoized r-skyband: everything the filter output
/// depends on — including the dataset epoch, so an entry computed
/// before a mutation can never answer a query running after it (and
/// vice versa: an in-flight query on an old snapshot that completes
/// a miss after the swap inserts under its *own* epoch, where current
/// queries never look). Region geometry is keyed on the exact bit
/// patterns of its constraints.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FilterKey {
    epoch: u64,
    k: usize,
    pivot_order: bool,
    scoring: ScoringKey,
    region: Vec<u64>,
}

impl FilterKey {
    /// The filter identity of a query at dataset `epoch`: everything
    /// its r-skyband output depends on. Shared by the cache lookup
    /// and `run_many`'s grouping so "same group" always means "same
    /// cache entry".
    fn of(query: &UtkQuery, epoch: u64) -> Self {
        FilterKey {
            epoch,
            k: query.k,
            pivot_order: query.pivot_order(),
            // An all-identity scoring computes exactly what no scoring
            // does: normalize both to the empty key so they share
            // entries.
            scoring: query
                .scoring
                .as_ref()
                .filter(|s| !s.is_identity())
                .map(|s| s.fingerprint())
                .unwrap_or_default(),
            region: query
                .region
                .as_ref()
                .map(region_fingerprint)
                .unwrap_or_default(),
        }
    }
}

/// Identity of a memoized scoring transform (empty = plain linear).
type ScoringKey = Vec<(u8, u64)>;

fn region_fingerprint(region: &Region) -> Vec<u64> {
    let mut bits = Vec::with_capacity(1 + region.constraints().len() * (region.dim() + 1));
    bits.push(region.dim() as u64);
    for c in region.constraints() {
        for &a in &c.a {
            bits.push(a.to_bits());
        }
        bits.push(c.b.to_bits());
    }
    bits
}

/// Validates a query region against the preference domain: correct
/// dimensionality, finite, feasible, and inside `{w ≥ 0, Σ w ≤ 1}`
/// (§3.1). Shared with the legacy entry points, which panic on the
/// error it returns.
pub(crate) fn check_region(region: &Region, dp: usize) -> Result<(), UtkError> {
    if region.dim() != dp {
        return Err(UtkError::DimensionMismatch {
            what: "query region (d − 1 preference-domain coordinates)",
            expected: dp,
            got: region.dim(),
        });
    }
    for c in region.constraints() {
        if !c.b.is_finite() || c.a.iter().any(|a| !a.is_finite()) {
            return Err(UtkError::NonFiniteInput {
                what: "query region",
            });
        }
    }
    let ones = vec![1.0; dp];
    let Some((_, max)) = region.linear_range(&ones, 0.0) else {
        return Err(UtkError::EmptyRegion);
    };
    if max > 1.0 + 1e-9 {
        return Err(UtkError::RegionOutsideDomain {
            detail: format!("weights sum up to {max:.6} > 1 inside the region"),
        });
    }
    for i in 0..dp {
        let mut e = vec![0.0; dp];
        e[i] = 1.0;
        let Some((min, _)) = region.linear_range(&e, 0.0) else {
            return Err(UtkError::EmptyRegion);
        };
        if min < -1e-9 {
            return Err(UtkError::RegionOutsideDomain {
                detail: format!("weight {i} reaches {min:.6} < 0 inside the region"),
            });
        }
    }
    Ok(())
}

/// One filter-cache payload: the candidate set plus the region it was
/// filtered for (the geometry the superset-containment probe tests).
#[derive(Debug, Clone)]
struct FilterEntry {
    region: Region,
    cands: Arc<CandidateSet>,
}

impl FilterEntry {
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.region.approx_bytes() + self.cands.approx_bytes()
    }
}

/// The engine's shared state: one allocation behind the [`UtkEngine`]
/// handle, so clones of the handle (and [`UtkEngine::run_many`] batch
/// jobs on the worker pool) all serve the same dataset, caches and
/// pool.
#[derive(Debug)]
struct EngineInner {
    /// The current dataset version. Queries take a read lock just
    /// long enough to clone the `Arc`; mutations take the write lock
    /// only to swap in the next version atomically with the cache
    /// re-key — the expensive version *construction* happens outside
    /// it, under [`EngineInner::mutation`].
    data: RwLock<Arc<DatasetVersion>>,
    /// Serializes mutators ([`UtkEngine::apply_update`],
    /// [`UtkEngine::compact`]) so they can build the next version
    /// (point copies, store, possibly an R-tree bulk load) without
    /// holding the `data` write lock — queries keep snapshotting
    /// freely while a mutation prepares.
    mutation: Mutex<()>,
    /// Dataset dimensionality — invariant across mutations (every
    /// insert is validated against it).
    dim: usize,
    cache_enabled: bool,
    /// Whether a mutation that invalidates a filter-cache entry may
    /// splice-repair it (incremental re-screen) instead of dropping
    /// it. On by default; benchmarks disable it to measure the
    /// drop-and-recompute baseline.
    repair_enabled: bool,
    /// Which dominance kernel the r-skyband screen runs
    /// ([`ScreenKernel::BlockedPrefilter`] by default). Candidate sets
    /// are byte-identical across kernels; the scalar oracle stays
    /// reachable through [`UtkEngine::without_blocked_kernel`] for the
    /// identity property suite and ablation benches.
    kernel: ScreenKernel,
    filter_cache: Mutex<ByteLru<FilterKey, FilterEntry>>,
    scoring_cache: Mutex<ByteLru<(u64, ScoringKey), Arc<Scored>>>,
    filter_hits: AtomicUsize,
    filter_misses: AtomicUsize,
    /// Filter-cache entries splice-repaired across all mutations.
    filter_repairs: AtomicUsize,
    /// r-dominance tests spent inside splice repairs (the incremental
    /// maintenance cost a drop-and-recompute baseline pays many times
    /// over on the next query).
    repair_screens: AtomicUsize,
    /// Mutations that rebuilt the R-tree (vs extending the overlay).
    index_rebuilds: AtomicUsize,
    /// Cache misses answered by re-screening a containing region's
    /// cached candidate set instead of a full BBS run.
    superset_hits: AtomicUsize,
    /// Requested pool size (0 = one worker per available core);
    /// applied when the pool is first needed.
    pool_threads_cfg: usize,
    /// The persistent worker pool, built lazily on the first parallel
    /// query or batch — sequential engines never spawn threads.
    pool: OnceLock<Arc<ThreadPool>>,
    /// How many pools this engine ever built (regression guard: must
    /// never exceed 1).
    pool_builds: AtomicUsize,
    /// Nanosecond source for the per-query phase tracer
    /// ([`crate::obs`]). [`MonotonicClock`] in production; tests
    /// inject a [`crate::obs::TestClock`] via [`UtkEngine::with_clock`]
    /// for deterministic timing breakdowns. Timings never enter the
    /// wire format, so the clock cannot affect query results.
    clock: Arc<dyn Clock>,
}

/// The build-once / query-many UTK engine. See the [module
/// docs](crate::engine) for the overall picture and an example.
///
/// The engine is `Sync`: one instance can serve queries from many
/// threads, sharing its caches. It is also cheap to `Clone` — clones
/// are handles onto the same dataset, caches and worker pool.
///
/// Parallel queries ([`UtkQuery::parallel`]) and batches
/// ([`UtkEngine::run_many`]) run on a persistent work-stealing
/// [`ThreadPool`] owned by the engine, built lazily on first use and
/// sized by [`UtkEngine::with_pool_threads`] (default: one worker per
/// available core). No engine query ever constructs a pool per query.
#[derive(Debug, Clone)]
pub struct UtkEngine {
    inner: Arc<EngineInner>,
}

impl UtkEngine {
    /// Builds an engine owning `points`: validates the dataset and
    /// bulk-loads the R-tree.
    pub fn new(points: Vec<Vec<f64>>) -> Result<Self, UtkError> {
        if points.is_empty() {
            return Err(UtkError::EmptyDataset);
        }
        let dim = points[0].len();
        if dim < 2 {
            return Err(UtkError::DatasetTooFlat { got: dim });
        }
        for p in &points {
            if p.len() != dim {
                return Err(UtkError::DimensionMismatch {
                    what: "record",
                    expected: dim,
                    got: p.len(),
                });
            }
            if p.iter().any(|x| !x.is_finite()) {
                return Err(UtkError::NonFiniteInput { what: "dataset" });
            }
        }
        let tree = Arc::new(RTree::bulk_load(&points));
        let version = DatasetVersion::packed(0, points, tree);
        Ok(Self {
            inner: Arc::new(EngineInner {
                data: RwLock::new(Arc::new(version)),
                mutation: Mutex::new(()),
                dim,
                cache_enabled: true,
                repair_enabled: true,
                kernel: ScreenKernel::default(),
                filter_cache: Mutex::new(ByteLru::new(DEFAULT_FILTER_CACHE_BUDGET)),
                scoring_cache: Mutex::new(ByteLru::new(DEFAULT_SCORING_CACHE_BUDGET)),
                filter_hits: AtomicUsize::new(0),
                filter_misses: AtomicUsize::new(0),
                filter_repairs: AtomicUsize::new(0),
                repair_screens: AtomicUsize::new(0),
                index_rebuilds: AtomicUsize::new(0),
                superset_hits: AtomicUsize::new(0),
                pool_threads_cfg: 0,
                pool: OnceLock::new(),
                pool_builds: AtomicUsize::new(0),
                clock: Arc::new(MonotonicClock::new()),
            }),
        })
    }

    /// Builds an engine from borrowed points (cloned in).
    pub fn from_slice(points: &[Vec<f64>]) -> Result<Self, UtkError> {
        Self::new(points.to_vec())
    }

    /// Disables the r-skyband/scoring memoization: every query
    /// recomputes its filtering from scratch. Useful for benchmarks
    /// that measure per-query cost. Builder-style: call right after
    /// construction, before the engine is cloned or queried.
    pub fn without_filter_cache(mut self) -> Self {
        Arc::get_mut(&mut self.inner)
            // utk-lint: allow(panic) -- documented builder contract: must precede any clone
            .expect("without_filter_cache must be called before the engine is cloned")
            .cache_enabled = false;
        self
    }

    /// Disables splice repair of invalidated filter-cache entries:
    /// mutations fall back to drop-and-recompute (the pre-repair
    /// behavior). Used by benchmarks to measure what repair saves.
    /// Builder-style: call right after construction, before the
    /// engine is cloned or queried.
    pub fn without_cache_repair(mut self) -> Self {
        Arc::get_mut(&mut self.inner)
            // utk-lint: allow(panic) -- documented builder contract: must precede any clone
            .expect("without_cache_repair must be called before the engine is cloned")
            .repair_enabled = false;
        self
    }

    /// Runs every r-skyband screen on the scalar oracle kernel
    /// instead of the default blocked sweep + `f32` prefilter. The
    /// candidate sets (and hence all query results) are byte-identical
    /// either way — this twin exists so the property suite can assert
    /// exactly that, and so benches can measure what blocking buys.
    /// Builder-style: call right after construction, before the
    /// engine is cloned or queried.
    pub fn without_blocked_kernel(mut self) -> Self {
        Arc::get_mut(&mut self.inner)
            // utk-lint: allow(panic) -- documented builder contract: must precede any clone
            .expect("without_blocked_kernel must be called before the engine is cloned")
            .kernel = ScreenKernel::Scalar;
        self
    }

    /// Seeds the initial dataset epoch (default 0). The serving
    /// registry uses this when rebuilding an engine from a compacted
    /// write-ahead-log snapshot, so epochs stay absolute across
    /// restarts: a snapshot captured at epoch `B` reloads at epoch
    /// `B`, and replaying the log's tail lands the engine on exactly
    /// the epoch the log ends at. Builder-style: call right after
    /// construction, before the engine is cloned, queried or mutated.
    pub fn with_base_epoch(mut self, epoch: u64) -> Self {
        let inner = Arc::get_mut(&mut self.inner)
            // utk-lint: allow(panic) -- documented builder contract: must precede any clone
            .expect("with_base_epoch must be called before the engine is cloned");
        let slot = inner
            .data
            .get_mut()
            // utk-lint: allow(panic) -- poison propagation: get_mut is the exclusive-access form of .read()
            .expect("dataset lock");
        Arc::get_mut(slot)
            // utk-lint: allow(panic) -- the version Arc is unshared until the first query
            .expect("with_base_epoch must be called before the first query")
            .epoch = epoch;
        self
    }

    /// Sets the byte budget of the r-skyband filter cache (default
    /// [`DEFAULT_FILTER_CACHE_BUDGET`]). Accounting covers the cached
    /// `CandidateSet` payloads (ids, flat points, graph) plus their
    /// region keys; least-recently-used entries are evicted once the
    /// budget is exceeded. Builder-style: call right after
    /// construction, before the engine is cloned or queried.
    pub fn with_filter_cache_budget(self, bytes: usize) -> Self {
        *self.inner.filter_cache.lock().expect("cache lock") = ByteLru::new(bytes);
        self
    }

    /// Sets the byte budget of the transformed-dataset (generalized
    /// scoring) cache (default [`DEFAULT_SCORING_CACHE_BUDGET`]).
    /// Builder-style, like [`UtkEngine::with_filter_cache_budget`].
    pub fn with_scoring_cache_budget(self, bytes: usize) -> Self {
        *self.inner.scoring_cache.lock().expect("cache lock") = ByteLru::new(bytes);
        self
    }

    /// Re-sizes the filter cache's byte budget **in place** on a live
    /// (possibly shared) engine: cached entries survive, shrinking
    /// evicts LRU-first down to the new budget, growing is free.
    /// Returns how many entries were evicted. This is the registry
    /// hook for serving many datasets under one shared budget — the
    /// per-engine slice is re-dealt whenever a dataset loads or
    /// unloads, unlike the builder
    /// [`UtkEngine::with_filter_cache_budget`], which replaces the
    /// cache wholesale and must run before the engine is shared.
    pub fn set_filter_cache_budget(&self, bytes: usize) -> usize {
        self.inner
            .filter_cache
            .lock()
            .expect("cache lock")
            .set_budget(bytes)
    }

    /// The filter cache's current byte budget.
    pub fn filter_cache_budget(&self) -> usize {
        self.inner.filter_cache.lock().expect("cache lock").budget()
    }

    /// Sizes the worker pool backing parallel queries and
    /// [`UtkEngine::run_many`] (0 = one worker per available core, the
    /// default). Builder-style: call right after construction, before
    /// the first parallel query builds the pool.
    pub fn with_pool_threads(mut self, threads: usize) -> Self {
        let inner = Arc::get_mut(&mut self.inner)
            // utk-lint: allow(panic) -- documented builder contract: must precede any clone
            .expect("with_pool_threads must be called before the engine is cloned");
        assert!(
            inner.pool.get().is_none(),
            "with_pool_threads must be called before the pool is first used"
        );
        inner.pool_threads_cfg = threads;
        self
    }

    /// Replaces the engine's nanosecond source for query-phase
    /// tracing (default: a fresh [`MonotonicClock`]). Tests inject a
    /// [`crate::obs::TestClock`] to make `Stats::timings` exactly
    /// reproducible; results and wire bytes are clock-independent.
    /// Builder-style: call right after construction, before the
    /// engine is cloned or queried.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        Arc::get_mut(&mut self.inner)
            // utk-lint: allow(panic) -- documented builder contract: must precede any clone
            .expect("with_clock must be called before the engine is cloned")
            .clock = clock;
        self
    }

    /// The engine's tracing clock (shared with the serving layer so
    /// slow-query thresholds and metrics observe the same time base).
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.inner.clock)
    }

    /// The engine's persistent worker pool, built on first use.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        self.inner.pool.get_or_init(|| {
            self.inner.pool_builds.fetch_add(1, Ordering::Relaxed);
            Arc::new(ThreadPool::new(self.inner.pool_threads_cfg))
        })
    }

    /// Worker threads the engine's pool has (or will have once built).
    pub fn pool_threads(&self) -> usize {
        match self.inner.pool.get() {
            Some(pool) => pool.threads(),
            None if self.inner.pool_threads_cfg != 0 => self.inner.pool_threads_cfg,
            None => std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }

    /// How many worker pools this engine ever constructed: 0 before
    /// the first parallel query, 1 after — never more (the regression
    /// the counter guards against is per-query pool construction).
    pub fn pool_builds(&self) -> usize {
        self.inner.pool_builds.load(Ordering::Relaxed)
    }

    /// The current dataset version (an `Arc` clone under a momentary
    /// read lock).
    fn current(&self) -> Arc<DatasetVersion> {
        Arc::clone(&self.inner.data.read().expect("dataset lock"))
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.current().points.len()
    }

    /// Always false: empty datasets are rejected at construction and
    /// a mutation may never delete the last record without inserting.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Dataset dimensionality `d` (invariant across mutations).
    pub fn dim(&self) -> usize {
        self.inner.dim
    }

    /// A coherent read-only view of the current dataset version:
    /// points, flat store, packed R-tree and epoch. The snapshot
    /// stays valid (and internally consistent) across concurrent
    /// mutations.
    pub fn snapshot(&self) -> DatasetSnapshot {
        DatasetSnapshot {
            version: self.current(),
        }
    }

    /// The current dataset epoch: 0 at construction, +1 per
    /// [`UtkEngine::apply_update`] that changed anything.
    pub fn dataset_epoch(&self) -> u64 {
        self.current().epoch
    }

    /// Mutations that rebuilt the R-tree outright instead of
    /// extending the tombstone/append overlay.
    pub fn index_rebuilds(&self) -> usize {
        self.inner.index_rebuilds.load(Ordering::Relaxed)
    }

    /// Whether the current index is packed over exactly the live
    /// records (false while mutations are riding the overlay).
    pub fn index_is_packed(&self) -> bool {
        matches!(self.current().index, TreeIndex::Packed(_))
    }

    /// Appends records to the dataset. Equivalent to
    /// [`UtkEngine::apply_update`] with no deletions; the new records
    /// take ids `len..len + rows.len()`.
    pub fn insert_points(&self, rows: Vec<Vec<f64>>) -> Result<UpdateReport, UtkError> {
        self.apply_update(&[], rows)
    }

    /// Removes records by id. Equivalent to
    /// [`UtkEngine::apply_update`] with no insertions.
    pub fn delete_points(&self, ids: &[u32]) -> Result<UpdateReport, UtkError> {
        self.apply_update(ids, Vec::new())
    }

    /// The mutation seam: atomically removes the records named by
    /// `deletes` and appends `inserts`, as **one** epoch bump.
    ///
    /// Semantics — the contract the dynamic test oracle locks:
    ///
    /// * `deletes` are ids in the *current* dataset, applied
    ///   simultaneously (an unknown id or a repeat is a typed error
    ///   and nothing changes); survivors keep their relative order
    ///   and are renumbered densely, exactly as if the dataset had
    ///   been rebuilt without those rows.
    /// * `inserts` are appended after the surviving rows (validated
    ///   for dimensionality and finiteness first).
    /// * Every query thereafter answers **byte-identically** to a
    ///   fresh engine built from the post-mutation dataset (modulo
    ///   engine-history work counters): the R-tree is either rebuilt
    ///   or read through a tombstone/append overlay whose candidate
    ///   sets are provably identical ([`TreeView`]), and the filter
    ///   cache keeps exactly the entries whose r-skyband cannot have
    ///   changed — a deleted record that is **not** a cached member,
    ///   and inserted records r-dominated by ≥ k earlier-popping
    ///   members ([`rejected_by_members`]) leave an entry valid; its
    ///   member ids are remapped and it is re-keyed under the new
    ///   epoch. Anything else (including every entry under a scoring
    ///   transform when records are inserted, where the cached view
    ///   cannot evaluate the new rows) is dropped. The
    ///   transformed-dataset cache is flushed wholesale.
    ///
    /// In-flight queries are never torn: they finish on the snapshot
    /// they started with, and epoch-tagged cache keys keep the two
    /// versions' entries apart.
    pub fn apply_update(
        &self,
        deletes: &[u32],
        inserts: Vec<Vec<f64>>,
    ) -> Result<UpdateReport, UtkError> {
        for row in &inserts {
            if row.len() != self.inner.dim {
                return Err(UtkError::DimensionMismatch {
                    what: "inserted record",
                    expected: self.inner.dim,
                    got: row.len(),
                });
            }
            if row.iter().any(|x| !x.is_finite()) {
                return Err(UtkError::NonFiniteInput {
                    what: "inserted record",
                });
            }
        }
        // Serialize mutators without blocking queries: the heavy
        // construction below (row copies, flat store, possibly an
        // R-tree bulk load) runs under the mutation lock only;
        // `current()` keeps serving snapshots throughout, and the
        // `data` write lock is taken just for the cache re-key +
        // version swap at the end.
        let _mutating = self.inner.mutation.lock().expect("mutation lock");
        let cur = self.current();
        let n = cur.points.len();
        let mut deleted_mask = vec![false; n];
        for &id in deletes {
            if (id as usize) >= n {
                return Err(UtkError::UnknownRecordId { id, len: n });
            }
            if deleted_mask[id as usize] {
                return Err(UtkError::DuplicateRecordId { id: id.to_string() });
            }
            deleted_mask[id as usize] = true;
        }
        if deletes.is_empty() && inserts.is_empty() {
            return Ok(UpdateReport {
                epoch: cur.epoch,
                n,
                inserted: 0,
                deleted: 0,
                filter_invalidated: 0,
                filter_retained: 0,
                filter_repaired: 0,
                index_rebuilt: false,
            });
        }
        if deletes.len() == n && inserts.is_empty() {
            return Err(UtkError::EmptyDataset);
        }

        // Dense renumbering of the survivors: old id → new id.
        let mut shift = vec![TOMBSTONE; n];
        let mut new_points: Vec<Vec<f64>> = Vec::with_capacity(n - deletes.len() + inserts.len());
        for (i, p) in cur.points.iter().enumerate() {
            if !deleted_mask[i] {
                shift[i] = new_points.len() as u32;
                new_points.push(p.clone());
            }
        }
        let first_inserted = new_points.len() as u32;
        new_points.extend(inserts.iter().cloned());
        let epoch = cur.epoch + 1;

        // Compose the index overlay (or rebuild past the threshold).
        let (base, mut remap, mut extra) = match &cur.index {
            TreeIndex::Packed(tree) => (Arc::clone(tree), None, Vec::new()),
            TreeIndex::Overlay {
                base, remap, extra, ..
            } => (Arc::clone(base), remap.clone(), extra.clone()),
        };
        if !deletes.is_empty() {
            let composed: Vec<u32> = match remap {
                None => shift.clone(),
                Some(old) => old
                    .iter()
                    .map(|&id| {
                        if id == TOMBSTONE {
                            TOMBSTONE
                        } else {
                            shift[id as usize]
                        }
                    })
                    .collect(),
            };
            remap = Some(composed);
            extra.retain_mut(|id| {
                *id = shift[*id as usize];
                *id != TOMBSTONE
            });
        }
        extra.extend(first_inserted..first_inserted + inserts.len() as u32);
        let dead = remap
            .as_ref()
            .map_or(0, |m| m.iter().filter(|&&id| id == TOMBSTONE).count());
        let overhead = dead + extra.len();
        let rebuild = overhead * OVERLAY_REBUILD_DEN > new_points.len() * OVERLAY_REBUILD_NUM;
        let index = if rebuild {
            self.inner.index_rebuilds.fetch_add(1, Ordering::Relaxed);
            TreeIndex::Packed(Arc::new(RTree::bulk_load(&new_points)))
        } else {
            TreeIndex::Overlay {
                base,
                remap,
                extra,
                packed: OnceLock::new(),
            }
        };

        let store = PointStore::from_rows(&new_points);
        let next = Arc::new(DatasetVersion {
            epoch,
            points: new_points,
            store,
            index,
        });

        // Publish: targeted cache invalidation atomic with the
        // version swap, under a write lock held only for this final,
        // cheap step.
        let mut guard = self.inner.data.write().expect("dataset lock");
        debug_assert!(
            Arc::ptr_eq(&guard, &cur),
            "mutators are serialized by the mutation lock"
        );
        let (filter_invalidated, filter_retained, filter_repaired) = if self.inner.cache_enabled {
            self.rekey_filter_cache(
                cur.epoch,
                &next,
                &deleted_mask,
                &shift,
                first_inserted,
                deletes,
                &inserts,
            )
        } else {
            (0, 0, 0)
        };
        self.inner.scoring_cache.lock().expect("cache lock").clear();
        let report = UpdateReport {
            epoch,
            n: next.points.len(),
            inserted: inserts.len(),
            deleted: deletes.len(),
            filter_invalidated,
            filter_retained,
            filter_repaired,
            index_rebuilt: rebuild,
        };
        *guard = next;
        Ok(report)
    }

    /// Drains the filter cache and carries every entry it can into
    /// the new epoch, preserving LRU order. Three outcomes per entry:
    /// provably unaffected → re-keyed (ids remapped) as-is;
    /// affected but plain-scoring → **splice-repaired** — re-screened
    /// incrementally against the next version
    /// ([`crate::skyband::r_skyband_repair`] /
    /// [`crate::skyband::r_skyband_repair_inserts`]), byte-identical
    /// to a cold run on
    /// the new dataset; otherwise dropped. Returns `(invalidated,
    /// retained, repaired)`, where repaired entries also count as
    /// retained.
    #[allow(clippy::too_many_arguments)]
    fn rekey_filter_cache(
        &self,
        old_epoch: u64,
        next: &DatasetVersion,
        deleted_mask: &[bool],
        shift: &[u32],
        first_inserted: u32,
        deletes: &[u32],
        inserts: &[Vec<f64>],
    ) -> (usize, usize, usize) {
        let new_epoch = next.epoch;
        let mut cache = self.inner.filter_cache.lock().expect("cache lock");
        let mut invalidated = 0;
        let mut retained = 0;
        let mut repaired = 0;
        for (key, entry, bytes) in cache.take_entries() {
            // Stragglers inserted by in-flight queries on older
            // snapshots are unreachable already; drop them without
            // counting — this mutation never evaluated them, so they
            // belong in neither `invalidated` nor `retained`.
            if key.epoch != old_epoch {
                continue;
            }
            // A deleted record that is a cached member changes the
            // member list by definition.
            let member_deleted = entry.cands.ids.iter().any(|&id| deleted_mask[id as usize]);
            // Inserts that escape the exact rejection test would join
            // this entry's r-skyband. Transformed-space entries cannot
            // evaluate new rows at all (the transform is only known by
            // fingerprint here): conservative fallback.
            let scoring_blocked = !key.scoring.is_empty() && !inserts.is_empty();
            let mut live_inserts: Vec<u32> = Vec::new();
            if key.scoring.is_empty() {
                for (j, row) in inserts.iter().enumerate() {
                    if !rejected_by_members(
                        &entry.cands,
                        row,
                        &entry.region,
                        key.k,
                        key.pivot_order,
                    ) {
                        live_inserts.push(first_inserted + j as u32);
                    }
                }
            }
            if !member_deleted && !scoring_blocked && live_inserts.is_empty() {
                let entry = if deletes.is_empty() {
                    entry // ids unchanged: reuse the cached set as-is
                } else {
                    let cands = Arc::new(CandidateSet {
                        ids: entry
                            .cands
                            .ids
                            .iter()
                            .map(|&id| shift[id as usize])
                            .collect(),
                        points: entry.cands.points.clone(),
                        graph: entry.cands.graph.clone(),
                    });
                    FilterEntry {
                        region: entry.region.clone(),
                        cands,
                    }
                };
                let key = FilterKey {
                    epoch: new_epoch,
                    ..key
                };
                cache.insert(key, entry, bytes);
                retained += 1;
                continue;
            }
            // The entry's r-skyband did (or may) change: splice-repair
            // it instead of dropping, when the repair preconditions
            // hold. The repaired set is byte-identical to a cold run,
            // so a later cache hit answers exactly like a fresh build.
            if self.inner.repair_enabled && key.scoring.is_empty() {
                let mut rstats = Stats::new();
                let repaired_set = if member_deleted {
                    let old_ids_new: Vec<u32> = entry
                        .cands
                        .ids
                        .iter()
                        .map(|&id| shift[id as usize])
                        .collect();
                    r_skyband_repair_with_kernel(
                        &entry.cands,
                        &old_ids_new,
                        &live_inserts,
                        &next.store,
                        &next.tree_view(),
                        &entry.region,
                        key.k,
                        key.pivot_order,
                        self.inner.kernel,
                        &mut rstats,
                    )
                } else {
                    // No member deleted: renumber the survivors, then
                    // merge-splice the admissible inserts in without
                    // touching the tree.
                    let renumbered;
                    let cands: &CandidateSet = if deletes.is_empty() {
                        &entry.cands
                    } else {
                        renumbered = CandidateSet {
                            ids: entry
                                .cands
                                .ids
                                .iter()
                                .map(|&id| shift[id as usize])
                                .collect(),
                            points: entry.cands.points.clone(),
                            graph: entry.cands.graph.clone(),
                        };
                        &renumbered
                    };
                    r_skyband_repair_inserts_with_kernel(
                        cands,
                        &live_inserts,
                        &next.store,
                        &entry.region,
                        key.k,
                        key.pivot_order,
                        self.inner.kernel,
                        &mut rstats,
                    )
                };
                if let Some(cands) = repaired_set {
                    self.inner
                        .repair_screens
                        .fetch_add(rstats.rdom_tests, Ordering::Relaxed);
                    self.inner.filter_repairs.fetch_add(1, Ordering::Relaxed);
                    let entry = FilterEntry {
                        region: entry.region.clone(),
                        cands: Arc::new(cands),
                    };
                    let bytes = entry.approx_bytes();
                    let key = FilterKey {
                        epoch: new_epoch,
                        ..key
                    };
                    cache.insert(key, entry, bytes);
                    retained += 1;
                    repaired += 1;
                    continue;
                }
            }
            invalidated += 1;
        }
        (invalidated, retained, repaired)
    }

    /// Forces the index packed: if mutations left the R-tree reading
    /// through a tombstone/append overlay, rebuild it over exactly
    /// the live records now. Content (and epoch, and caches) are
    /// unchanged — this trades one bulk load for leaner traversals.
    pub fn compact(&self) {
        let _mutating = self.inner.mutation.lock().expect("mutation lock");
        let cur = self.current();
        if matches!(cur.index, TreeIndex::Packed(_)) {
            return;
        }
        self.inner.index_rebuilds.fetch_add(1, Ordering::Relaxed);
        // Build outside the data lock (queries keep snapshotting);
        // swap under a momentary write lock.
        let tree = Arc::new(RTree::bulk_load(&cur.points));
        let next = Arc::new(DatasetVersion::packed(cur.epoch, cur.points.clone(), tree));
        *self.inner.data.write().expect("dataset lock") = next;
    }

    /// Drops every memoized r-skyband and transformed dataset,
    /// keeping budgets and lifetime counters. After `compact()` +
    /// `clear_caches()` the engine is observationally identical to a
    /// freshly built one (the dynamic suite asserts exactly that,
    /// byte for byte on the wire).
    pub fn clear_caches(&self) {
        self.inner.filter_cache.lock().expect("cache lock").clear();
        self.inner.scoring_cache.lock().expect("cache lock").clear();
    }

    /// `(hits, misses)` of the r-skyband cache over this engine's
    /// lifetime. Superset reuses count as misses (the exact entry was
    /// absent) — see [`UtkEngine::filter_superset_hits`].
    pub fn filter_cache_counters(&self) -> (usize, usize) {
        (
            self.inner.filter_hits.load(Ordering::Relaxed),
            self.inner.filter_misses.load(Ordering::Relaxed),
        )
    }

    /// Cache misses served by re-screening a cached candidate set of
    /// a containing region (`R' ⊇ R`) instead of a full BBS run.
    pub fn filter_superset_hits(&self) -> usize {
        self.inner.superset_hits.load(Ordering::Relaxed)
    }

    /// Filter-cache entries splice-repaired (incrementally
    /// re-screened instead of dropped) across this engine's lifetime.
    pub fn filter_repairs(&self) -> usize {
        self.inner.filter_repairs.load(Ordering::Relaxed)
    }

    /// r-dominance tests spent inside splice repairs over this
    /// engine's lifetime — the incremental maintenance cost to weigh
    /// against the full recomputes it avoided.
    pub fn repair_screen_tests(&self) -> usize {
        self.inner.repair_screens.load(Ordering::Relaxed)
    }

    /// Payload bytes currently held by the r-skyband filter cache.
    pub fn filter_cache_bytes(&self) -> usize {
        self.inner
            .filter_cache
            .lock()
            .expect("cache lock")
            .bytes_used()
    }

    /// LRU evictions of the r-skyband filter cache over this engine's
    /// lifetime.
    pub fn filter_cache_evictions(&self) -> usize {
        self.inner
            .filter_cache
            .lock()
            .expect("cache lock")
            .evictions()
    }

    /// Number of memoized r-skyband candidate sets currently held.
    pub fn cached_filters(&self) -> usize {
        self.inner.filter_cache.lock().expect("cache lock").len()
    }

    /// Runs a query, returning its typed result. The whole run is
    /// traced against the engine's [`Clock`]; the per-phase breakdown
    /// lands on `Stats::timings` (off the wire format — see
    /// [`crate::obs`]).
    pub fn run(&self, query: &UtkQuery) -> Result<QueryResult, UtkError> {
        let (result, timings) = obs::trace(&self.inner.clock, || self.run_untraced(query));
        let mut result = result?;
        result.stats_mut().timings = timings;
        Ok(result)
    }

    fn run_untraced(&self, query: &UtkQuery) -> Result<QueryResult, UtkError> {
        if query.k == 0 {
            return Err(UtkError::InvalidK { k: 0 });
        }
        // One dataset view for the whole query: concurrent mutations
        // swap in new versions without tearing this run.
        let data = self.data_for(query.scoring.as_ref())?;
        let mut result = match query.kind {
            QueryKind::TopK => self.run_topk(query, &data).map(QueryResult::TopK),
            QueryKind::Utk1 => self.run_utk1(query, &data).map(QueryResult::Utk1),
            QueryKind::Utk2 => self.run_utk2(query, &data).map(QueryResult::Utk2),
        }?;
        result.stats_mut().dataset_epoch = data.epoch() as usize;
        Ok(result)
    }

    /// Answers a batch of queries, returning per-query results **in
    /// input order** — element `i` is exactly what `run(&queries[i])`
    /// returns, including per-query errors (one malformed query never
    /// aborts or poisons its siblings).
    ///
    /// Queries are grouped by `(k, region, scoring)` so each group
    /// pays the filter-cache lock and the r-skyband prefiltering once,
    /// and groups execute concurrently on the engine's worker pool.
    /// Each successful result's [`Stats::batch_group_count`] records
    /// how many groups the batch split into.
    pub fn run_many(&self, queries: &[UtkQuery]) -> Vec<Result<QueryResult, UtkError>> {
        // An empty batch is a legitimate request (a server `batch` op
        // with no parseable lines): answer it without building the
        // pool or taking a cache lock.
        if queries.is_empty() {
            return Vec::new();
        }
        // Group by filter identity at the current epoch: same-group
        // queries reuse one memoized r-skyband and never race on the
        // same cache miss. (Grouping is a scheduling heuristic only —
        // if a mutation lands mid-batch, later group members' own
        // epoch-keyed lookups miss and recompute on their snapshot,
        // so a pre-mutation r-skyband is never served across the
        // epoch boundary.) Top-k queries never touch the filter, so
        // grouping them would only serialize independent work — they
        // fan out one per slot.
        let epoch = self.current().epoch;
        let mut group_of: HashMap<FilterKey, usize> = HashMap::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (i, query) in queries.iter().enumerate() {
            if query.kind == QueryKind::TopK {
                groups.push(vec![i]);
                continue;
            }
            match group_of.get(&FilterKey::of(query, epoch)) {
                Some(&g) => groups[g].push(i),
                None => {
                    group_of.insert(FilterKey::of(query, epoch), groups.len());
                    groups.push(vec![i]);
                }
            }
        }
        let group_count = groups.len();

        // One pre-allocated slot per query keeps answers in input
        // order however the groups are scheduled.
        type Slots = Vec<Mutex<Option<Result<QueryResult, UtkError>>>>;
        let mut out: Vec<Result<QueryResult, UtkError>> = if queries.len() <= 1 {
            // A batch of one needs no pool.
            queries.iter().map(|q| self.run(q)).collect()
        } else {
            let slots: Arc<Slots> = Arc::new(queries.iter().map(|_| Mutex::new(None)).collect());
            let set = self.pool().task_set();
            for members in groups {
                let engine = self.clone();
                let batch: Vec<UtkQuery> = members.iter().map(|&i| queries[i].clone()).collect();
                let slots = Arc::clone(&slots);
                let nested = set.clone();
                set.spawn(move || {
                    // Warm-then-fan-out: the group's first query pays
                    // the filter miss; the rest are independent
                    // cache hits, so they go back to the pool instead
                    // of serializing on this worker.
                    let mut members = members.into_iter().zip(batch);
                    if let Some((slot, query)) = members.next() {
                        let result = engine.run(&query);
                        *slots[slot].lock().expect("batch result slot") = Some(result);
                    }
                    for (slot, query) in members {
                        let engine = engine.clone();
                        let slots = Arc::clone(&slots);
                        nested.spawn(move || {
                            let result = engine.run(&query);
                            *slots[slot].lock().expect("batch result slot") = Some(result);
                        });
                    }
                });
            }
            set.wait();
            slots
                .iter()
                .map(|slot| {
                    slot.lock()
                        .expect("batch result slot")
                        .take()
                        // utk-lint: allow(panic) -- invariant: wait() returns only after every task stored its slot
                        .expect("every batch slot is filled before wait() returns")
                })
                .collect()
        };
        for result in out.iter_mut().flatten() {
            result.stats_mut().batch_group_count = group_count;
        }
        out
    }

    /// Convenience: UTK1 with default options.
    pub fn utk1(&self, region: &Region, k: usize) -> Result<Utk1Result, UtkError> {
        match self.run(&UtkQuery::utk1(k).region(region.clone()))? {
            QueryResult::Utk1(r) => Ok(r),
            _ => unreachable!("UTK1 query returned a non-UTK1 result"),
        }
    }

    /// Convenience: UTK2 with default options.
    pub fn utk2(&self, region: &Region, k: usize) -> Result<Utk2Result, UtkError> {
        match self.run(&UtkQuery::utk2(k).region(region.clone()))? {
            QueryResult::Utk2(r) => Ok(r),
            _ => unreachable!("UTK2 query returned a non-UTK2 result"),
        }
    }

    /// Convenience: plain top-k at `weights` (reduced `d − 1` form or
    /// all `d` weights).
    pub fn top_k(&self, weights: &[f64], k: usize) -> Result<TopKResult, UtkError> {
        match self.run(&UtkQuery::topk(k).weights(weights.to_vec()))? {
            QueryResult::TopK(r) => Ok(r),
            _ => unreachable!("top-k query returned a non-top-k result"),
        }
    }

    fn run_topk(&self, query: &UtkQuery, data: &DataRef) -> Result<TopKResult, UtkError> {
        if query.algo != Algo::Auto {
            return Err(UtkError::UnsupportedAlgorithm {
                algo: query.algo.label(),
                kind: query.kind.label(),
            });
        }
        let weights = query.weights.as_ref().ok_or(UtkError::MissingParameter {
            what: "weight vector",
        })?;
        let reduced = self.reduced_weights(weights)?;
        let records = crate::topk::top_k_store(data.store(), reduced, query.k);
        Ok(TopKResult {
            records,
            stats: Stats::new(),
        })
    }

    /// Accepts `d − 1` reduced weights, or all `d` weights with the
    /// implied last one dropped.
    fn reduced_weights<'w>(&self, weights: &'w [f64]) -> Result<&'w [f64], UtkError> {
        const EPS: f64 = 1e-6;
        if weights.iter().any(|w| !w.is_finite()) {
            return Err(UtkError::NonFiniteInput {
                what: "weight vector",
            });
        }
        let dp = self.inner.dim - 1;
        let reduced = if weights.len() == dp {
            weights
        } else if weights.len() == self.inner.dim {
            // Full d-weight form: the dropped last weight must be the
            // implied 1 − Σ of the others, or the caller's intent and
            // the ranking would silently disagree.
            let implied = 1.0 - weights[..dp].iter().sum::<f64>();
            if (weights[dp] - implied).abs() > EPS {
                return Err(UtkError::WeightsOutsideDomain {
                    detail: format!(
                        "last weight {} is not the implied 1 − Σ = {implied:.6} \
                         (weights must sum to 1)",
                        weights[dp]
                    ),
                });
            }
            &weights[..dp]
        } else {
            return Err(UtkError::DimensionMismatch {
                what: "weight vector",
                expected: dp,
                got: weights.len(),
            });
        };
        if let Some(w) = reduced.iter().find(|w| **w < -EPS) {
            return Err(UtkError::WeightsOutsideDomain {
                detail: format!("negative weight {w}"),
            });
        }
        let total: f64 = reduced.iter().sum();
        if total > 1.0 + EPS {
            return Err(UtkError::WeightsOutsideDomain {
                detail: format!("reduced weights sum to {total:.6} > 1"),
            });
        }
        Ok(reduced)
    }

    fn run_utk1(&self, query: &UtkQuery, data: &DataRef) -> Result<Utk1Result, UtkError> {
        let region = self.checked_region(query)?;
        match query.algo.resolved_for(QueryKind::Utk1) {
            algo @ (Algo::Sk | Algo::On) => {
                let filter = if algo == Algo::Sk {
                    FilterKind::Skyband
                } else {
                    FilterKind::Onion
                };
                Ok(baseline_utk1(
                    data.points(),
                    data.packed_tree(),
                    region,
                    query.k,
                    filter,
                ))
            }
            Algo::Jaa => {
                let r = self.jaa_pipeline(data, region, query)?;
                Ok(Utk1Result {
                    records: r.records,
                    stats: r.stats,
                })
            }
            _ => self.rsa_pipeline(data, region, query),
        }
    }

    fn run_utk2(&self, query: &UtkQuery, data: &DataRef) -> Result<Utk2Result, UtkError> {
        match query.algo {
            Algo::Auto | Algo::Jaa => {}
            other => {
                return Err(UtkError::UnsupportedAlgorithm {
                    algo: other.label(),
                    kind: query.kind.label(),
                })
            }
        }
        let region = self.checked_region(query)?;
        self.jaa_pipeline(data, region, query)
    }

    fn checked_region<'q>(&self, query: &'q UtkQuery) -> Result<&'q Region, UtkError> {
        let region = query
            .region
            .as_ref()
            .ok_or(UtkError::MissingParameter { what: "region" })?;
        check_region(region, self.inner.dim - 1)?;
        Ok(region)
    }

    /// The interior of a validated region, or — for a degenerate `R`
    /// with no interior — the single sorted top-k (at the pivot `w`)
    /// that answers any UTK query over it.
    fn interior_or_degenerate(
        &self,
        data: &DataRef,
        region: &Region,
        k: usize,
    ) -> Result<RegionInterior, UtkError> {
        let Some((interior, slack)) = region.interior_point() else {
            return Err(UtkError::EmptyRegion);
        };
        if slack <= INTERIOR_EPS {
            let w = region.pivot().ok_or(UtkError::EmptyRegion)?;
            let mut top_k = crate::topk::top_k_store(data.store(), &w, k);
            top_k.sort_unstable();
            return Ok(RegionInterior::Degenerate { w, top_k });
        }
        Ok(RegionInterior::Full { interior, slack })
    }

    /// RSA processing of a UTK1 query: degenerate-region shortcut,
    /// (cached) filtering, then sequential or parallel refinement.
    ///
    /// NOTE: mirrors [`crate::skyband::prefilter`] (the legacy entry
    /// points' pre-refinement pipeline) with the candidate step routed
    /// through the cache — a shortcut changed in one place must change
    /// in the other.
    fn rsa_pipeline(
        &self,
        data: &DataRef,
        region: &Region,
        query: &UtkQuery,
    ) -> Result<Utk1Result, UtkError> {
        let k = query.k;
        let (interior, slack) = match self.interior_or_degenerate(data, region, k)? {
            RegionInterior::Degenerate { top_k, .. } => {
                return Ok(Utk1Result {
                    records: top_k,
                    stats: Stats::new(),
                })
            }
            RegionInterior::Full { interior, slack } => (interior, slack),
        };
        let (cands, mut stats) = self.candidates(data, region, query)?;
        let records = if cands.len() <= k {
            let mut records = cands.ids.clone();
            records.sort_unstable();
            records
        } else if query.parallel {
            // The engine's persistent pool: thread count is resolved
            // once at pool construction, never per query.
            crate::parallel::rsa_parallel_refine(
                &cands,
                region,
                &interior,
                slack,
                k,
                &query.rsa_options,
                self.pool(),
                &mut stats,
            )
        } else {
            rsa_refine(
                &cands,
                region,
                &interior,
                slack,
                k,
                &query.rsa_options,
                &mut stats,
            )
        };
        Ok(Utk1Result { records, stats })
    }

    /// JAA processing of a UTK2 (or JAA-selected UTK1) query.
    fn jaa_pipeline(
        &self,
        data: &DataRef,
        region: &Region,
        query: &UtkQuery,
    ) -> Result<Utk2Result, UtkError> {
        let k = query.k;
        let (interior, slack) = match self.interior_or_degenerate(data, region, k)? {
            RegionInterior::Degenerate { w, top_k } => {
                return Ok(Utk2Result {
                    records: top_k.clone(),
                    cells: vec![Utk2Cell {
                        region: region.clone(),
                        interior: w,
                        top_k,
                    }],
                    stats: Stats::new(),
                })
            }
            RegionInterior::Full { interior, slack } => (interior, slack),
        };
        let (cands, mut stats) = self.candidates(data, region, query)?;
        if cands.len() <= k {
            let mut top_k = cands.ids.clone();
            top_k.sort_unstable();
            return Ok(Utk2Result {
                records: top_k.clone(),
                cells: vec![Utk2Cell {
                    region: region.clone(),
                    interior,
                    top_k,
                }],
                stats,
            });
        }
        let cells = if query.parallel {
            jaa_parallel_refine(
                &cands,
                region,
                &interior,
                slack,
                k,
                &query.jaa_options,
                self.pool(),
                &mut stats,
            )
        } else {
            jaa_refine(
                &cands,
                region,
                &interior,
                slack,
                k,
                &query.jaa_options,
                &mut stats,
            )
        };
        let records = records_of(&cells);
        Ok(Utk2Result {
            cells,
            records,
            stats,
        })
    }

    /// The r-skyband + r-dominance graph for `(k, region)`, memoized
    /// in the byte-budgeted LRU filter cache. Returns the candidate
    /// set plus the stats of obtaining it.
    ///
    /// Lookup order:
    /// 1. exact `(k, region, scoring)` entry — a hit serves the
    ///    memoized set directly;
    /// 2. **superset reuse** (pivot order only): a cached entry whose
    ///    region *contains* this query's region, with the same `k` and
    ///    scoring, is re-screened via
    ///    [`crate::skyband::r_skyband_from_superset`] — byte-identical
    ///    to a cold run
    ///    at a fraction of the dominance tests;
    /// 3. a cold BBS run over the R-tree.
    ///
    /// Both miss paths insert their result (evicting LRU entries past
    /// the byte budget) and count toward [`Stats::evictions`] /
    /// [`Stats::filter_cache_bytes`].
    fn candidates(
        &self,
        data: &DataRef,
        region: &Region,
        query: &UtkQuery,
    ) -> Result<(Arc<CandidateSet>, Stats), UtkError> {
        let mut stats = Stats::new();
        if !self.inner.cache_enabled {
            let cands = obs::span(Phase::Filter, || {
                r_skyband_view_with_kernel(
                    data.store(),
                    &data.tree_view(),
                    region,
                    query.k,
                    query.pivot_order(),
                    self.inner.kernel,
                    &mut stats,
                )
            });
            return Ok((Arc::new(cands), stats));
        }
        debug_assert_eq!(
            region_fingerprint(region),
            query
                .region
                .as_ref()
                .map(region_fingerprint)
                .unwrap_or_default(),
            "candidates() must be keyed on the query's own region"
        );
        let key = FilterKey::of(query, data.epoch());
        let superset: Option<Arc<CandidateSet>> = {
            let mut cache = self.inner.filter_cache.lock().expect("cache lock");
            if let Some(hit) = cache.get(&key) {
                let cands = Arc::clone(&hit.cands);
                self.inner.filter_hits.fetch_add(1, Ordering::Relaxed);
                stats.filter_cache_hits = 1;
                stats.candidates = cands.len();
                stats.filter_cache_bytes = cache.bytes_used();
                return Ok((cands, stats));
            }
            // Exact miss: probe for a cached containing region *of
            // the same dataset epoch*. Valid only under the pivot
            // heap key — the re-screen reproduces cold pop order from
            // pivot scores, which the sum-key ablation does not
            // bound.
            if query.pivot_order() {
                let best = cache
                    .scan()
                    .filter(|(ck, _)| {
                        ck.epoch == key.epoch
                            && ck.k == key.k
                            && ck.pivot_order
                            && ck.scoring == key.scoring
                    })
                    .filter(|(_, entry)| entry.region.contains_region(region))
                    // Smallest candidate set re-screens cheapest; the
                    // fingerprint tie-break keeps the choice
                    // deterministic under HashMap iteration order.
                    .min_by_key(|(ck, entry)| (entry.cands.len(), ck.region.clone()))
                    .map(|(ck, entry)| (ck.clone(), Arc::clone(&entry.cands)));
                best.map(|(ck, cands)| {
                    cache.touch(&ck);
                    cands
                })
            } else {
                None
            }
        };
        self.inner.filter_misses.fetch_add(1, Ordering::Relaxed);
        let cands = match &superset {
            Some(sup) => {
                self.inner.superset_hits.fetch_add(1, Ordering::Relaxed);
                stats.superset_hits = 1;
                // Pure screen-kernel work (no BBS): its own phase.
                Arc::new(obs::span(Phase::Screen, || {
                    r_skyband_from_superset_with_kernel(
                        sup,
                        region,
                        query.k,
                        self.inner.kernel,
                        &mut stats,
                    )
                }))
            }
            None => Arc::new(obs::span(Phase::Filter, || {
                r_skyband_view_with_kernel(
                    data.store(),
                    &data.tree_view(),
                    region,
                    query.k,
                    query.pivot_order(),
                    self.inner.kernel,
                    &mut stats,
                )
            })),
        };
        let entry = FilterEntry {
            region: region.clone(),
            cands: Arc::clone(&cands),
        };
        let bytes = entry.approx_bytes();
        let mut cache = self.inner.filter_cache.lock().expect("cache lock");
        stats.evictions = cache.insert(key, entry, bytes);
        stats.filter_cache_bytes = cache.bytes_used();
        Ok((cands, stats))
    }

    /// The dataset view for a scoring: the current snapshot for plain
    /// linear scoring, a memoized transformed copy (points + R-tree)
    /// otherwise. Transform entries are keyed by `(epoch,
    /// fingerprint)` — a mutation makes every old transform
    /// unreachable (and flushes them eagerly).
    fn data_for(&self, scoring: Option<&GeneralScoring>) -> Result<DataRef, UtkError> {
        let snapshot = self.current();
        let Some(scoring) = scoring else {
            return Ok(DataRef::Snapshot(snapshot));
        };
        if scoring.dim() != self.inner.dim {
            return Err(UtkError::DimensionMismatch {
                what: "scoring function",
                expected: self.inner.dim,
                got: scoring.dim(),
            });
        }
        if scoring.is_identity() {
            return Ok(DataRef::Snapshot(snapshot));
        }
        let key = (snapshot.epoch, scoring.fingerprint());
        if self.inner.cache_enabled {
            if let Some(hit) = self
                .inner
                .scoring_cache
                .lock()
                .expect("cache lock")
                .get(&key)
            {
                return Ok(DataRef::Transformed(Arc::clone(hit)));
            }
        }
        let points = scoring.transform(&snapshot.points);
        if points.iter().any(|p| p.iter().any(|x| !x.is_finite())) {
            return Err(UtkError::NonFiniteInput {
                what: "transformed dataset (scoring function)",
            });
        }
        let tree = RTree::bulk_load(&points);
        let store = PointStore::from_rows(&points);
        let scored = Arc::new(Scored {
            epoch: snapshot.epoch,
            points,
            store,
            tree,
        });
        if self.inner.cache_enabled {
            let bytes = scored.approx_bytes();
            let mut cache = self.inner.scoring_cache.lock().expect("cache lock");
            cache.insert(key, Arc::clone(&scored), bytes);
        }
        Ok(DataRef::Transformed(scored))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_hotels() -> Vec<Vec<f64>> {
        vec![
            vec![8.3, 9.1, 7.2],
            vec![2.4, 9.6, 8.6],
            vec![5.4, 1.6, 4.1],
            vec![2.6, 6.9, 9.4],
            vec![7.3, 3.1, 2.4],
            vec![7.9, 6.4, 6.6],
            vec![8.6, 7.1, 4.3],
        ]
    }

    fn figure1_region() -> Region {
        Region::hyperrect(vec![0.05, 0.05], vec![0.45, 0.25])
    }

    #[test]
    fn figure1_through_all_algorithms() {
        let engine = UtkEngine::new(figure1_hotels()).unwrap();
        for algo in [Algo::Auto, Algo::Rsa, Algo::Jaa, Algo::Sk, Algo::On] {
            let res = engine
                .run(&UtkQuery::utk1(2).region(figure1_region()).algorithm(algo))
                .unwrap();
            assert_eq!(res.records(), &[0, 1, 3, 5], "{}", algo.label());
        }
    }

    #[test]
    fn utk2_reuses_utk1_filter() {
        let engine = UtkEngine::new(figure1_hotels()).unwrap();
        let u1 = engine.utk1(&figure1_region(), 2).unwrap();
        assert_eq!(u1.stats.filter_cache_hits, 0);
        let u2 = engine.utk2(&figure1_region(), 2).unwrap();
        assert_eq!(u2.stats.filter_cache_hits, 1);
        assert_eq!(u2.records, u1.records);
        assert_eq!(engine.filter_cache_counters(), (1, 1));
    }

    #[test]
    fn cache_disabled_engine_never_hits() {
        let engine = UtkEngine::new(figure1_hotels())
            .unwrap()
            .without_filter_cache();
        engine.utk1(&figure1_region(), 2).unwrap();
        let u2 = engine.utk2(&figure1_region(), 2).unwrap();
        assert_eq!(u2.stats.filter_cache_hits, 0);
        assert_eq!(engine.filter_cache_counters(), (0, 0));
        assert_eq!(engine.cached_filters(), 0);
    }

    #[test]
    fn run_many_on_an_empty_slice_is_a_true_no_op() {
        let engine = UtkEngine::new(figure1_hotels()).unwrap();
        let out = engine.run_many(&[]);
        assert!(out.is_empty());
        // Neither the pool nor the caches were touched.
        assert_eq!(engine.pool_builds(), 0);
        assert_eq!(engine.filter_cache_counters(), (0, 0));
        assert_eq!(engine.cached_filters(), 0);
    }

    #[test]
    fn runtime_budget_resize_preserves_entries() {
        let engine = UtkEngine::new(figure1_hotels()).unwrap();
        engine.utk1(&figure1_region(), 2).unwrap();
        assert_eq!(engine.cached_filters(), 1);
        let bytes = engine.filter_cache_bytes();
        assert!(bytes > 0);
        // Growing (or shrinking to just above the resident bytes)
        // keeps the entry; the very next same-region query is a hit.
        assert_eq!(engine.set_filter_cache_budget(bytes + 1), 0);
        assert_eq!(engine.filter_cache_budget(), bytes + 1);
        let u2 = engine.utk2(&figure1_region(), 2).unwrap();
        assert_eq!(u2.stats.filter_cache_hits, 1);
        // Shrinking below the resident bytes evicts.
        assert_eq!(engine.set_filter_cache_budget(bytes - 1), 1);
        assert_eq!(engine.cached_filters(), 0);
    }

    #[test]
    fn topk_matches_brute_force_order() {
        let engine = UtkEngine::new(figure1_hotels()).unwrap();
        // Reduced and full weight forms agree.
        let a = engine.top_k(&[0.3, 0.5], 2).unwrap();
        let b = engine.top_k(&[0.3, 0.5, 0.2], 2).unwrap();
        assert_eq!(a.records, vec![0, 1]);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn topk_weights_must_lie_in_the_preference_domain() {
        let engine = UtkEngine::new(figure1_hotels()).unwrap();
        // Full form whose last weight contradicts 1 − Σ.
        assert!(matches!(
            engine.top_k(&[2.0, 3.0, 5.0], 2).unwrap_err(),
            UtkError::WeightsOutsideDomain { .. }
        ));
        // Reduced form outside the simplex.
        assert!(matches!(
            engine.top_k(&[0.8, 0.7], 2).unwrap_err(),
            UtkError::WeightsOutsideDomain { .. }
        ));
        assert!(matches!(
            engine.top_k(&[-0.1, 0.5], 2).unwrap_err(),
            UtkError::WeightsOutsideDomain { .. }
        ));
        // A consistent full form still passes.
        assert!(engine.top_k(&[0.2, 0.3, 0.5], 2).is_ok());
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        assert_eq!(UtkEngine::new(vec![]).unwrap_err(), UtkError::EmptyDataset);
        assert_eq!(
            UtkEngine::new(vec![vec![1.0]]).unwrap_err(),
            UtkError::DatasetTooFlat { got: 1 }
        );
        assert!(matches!(
            UtkEngine::new(vec![vec![1.0, 2.0], vec![1.0]]).unwrap_err(),
            UtkError::DimensionMismatch { .. }
        ));
        assert_eq!(
            UtkEngine::new(vec![vec![1.0, f64::NAN]]).unwrap_err(),
            UtkError::NonFiniteInput { what: "dataset" }
        );

        let engine = UtkEngine::new(figure1_hotels()).unwrap();
        assert_eq!(
            engine
                .run(&UtkQuery::utk1(0).region(figure1_region()))
                .unwrap_err(),
            UtkError::InvalidK { k: 0 }
        );
        assert_eq!(
            engine.run(&UtkQuery::utk1(2)).unwrap_err(),
            UtkError::MissingParameter { what: "region" }
        );
        assert!(matches!(
            engine
                .run(&UtkQuery::utk1(2).region(Region::hyperrect(vec![0.1], vec![0.2])))
                .unwrap_err(),
            UtkError::DimensionMismatch { .. }
        ));
        assert!(matches!(
            engine
                .run(
                    &UtkQuery::utk2(2)
                        .region(figure1_region())
                        .algorithm(Algo::Rsa)
                )
                .unwrap_err(),
            UtkError::UnsupportedAlgorithm { .. }
        ));
    }

    #[test]
    fn algo_parses_from_str() {
        assert_eq!("RSA".parse::<Algo>().unwrap(), Algo::Rsa);
        assert_eq!("auto".parse::<Algo>().unwrap(), Algo::Auto);
        assert!("frobnicate".parse::<Algo>().is_err());
    }

    #[test]
    fn auto_resolves_per_query_kind() {
        assert_eq!(Algo::Auto.resolved_for(QueryKind::Utk1), Algo::Rsa);
        assert_eq!(Algo::Auto.resolved_for(QueryKind::Utk2), Algo::Jaa);
        assert_eq!(Algo::Sk.resolved_for(QueryKind::Utk1), Algo::Sk);
    }

    #[test]
    fn mutations_match_a_fresh_engine_and_bump_the_epoch() {
        let engine = UtkEngine::new(figure1_hotels()).unwrap();
        assert_eq!(engine.dataset_epoch(), 0);
        // Delete p3 (id 2, never in the Figure 1 answer) and insert a
        // dominant hotel.
        let report = engine
            .apply_update(&[2], vec![vec![9.9, 9.9, 9.9]])
            .unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.n, 7);
        assert_eq!((report.deleted, report.inserted), (1, 1));
        assert_eq!(engine.dataset_epoch(), 1);

        let mut model = figure1_hotels();
        model.remove(2);
        model.push(vec![9.9, 9.9, 9.9]);
        let fresh = UtkEngine::new(model).unwrap();
        let q = UtkQuery::utk1(2).region(figure1_region());
        let mutated = engine.run(&q).unwrap();
        let rebuilt = fresh.run(&q).unwrap();
        assert_eq!(mutated.records(), rebuilt.records());
        assert_eq!(mutated.stats().dataset_epoch, 1);
        assert_eq!(rebuilt.stats().dataset_epoch, 0);
    }

    #[test]
    fn targeted_invalidation_keeps_unaffected_entries_warm() {
        let engine = UtkEngine::new(figure1_hotels()).unwrap();
        let warm = engine.utk1(&figure1_region(), 2).unwrap();
        assert_eq!(engine.cached_filters(), 1);

        // p3 (id 2) and p5 (id 4) are not r-skyband members here;
        // deleting p5 must keep the entry (ids remapped), and the
        // very next query is a cache hit with the same member set.
        let report = engine.delete_points(&[4]).unwrap();
        assert_eq!(report.filter_retained, 1);
        assert_eq!(report.filter_invalidated, 0);
        let hit = engine.utk1(&figure1_region(), 2).unwrap();
        assert_eq!(hit.stats.filter_cache_hits, 1);
        // Same members, ids above the deleted one shifted down.
        let expected: Vec<u32> = warm
            .records
            .iter()
            .map(|&id| if id > 4 { id - 1 } else { id })
            .collect();
        assert_eq!(hit.records, expected);

        // Deleting a member (p1 = id 0) can change the r-skyband —
        // the entry is splice-repaired in place, and the very next
        // query is a cache hit answering like a fresh build.
        let report = engine.delete_points(&[0]).unwrap();
        assert_eq!(report.filter_retained, 1);
        assert_eq!(report.filter_repaired, 1);
        assert_eq!(report.filter_invalidated, 0);
        let repaired = engine.utk1(&figure1_region(), 2).unwrap();
        assert_eq!(repaired.stats.filter_cache_hits, 1);
        let mut model = figure1_hotels();
        model.remove(4); // p5 (first delete above)
        model.remove(0); // p1
        let fresh = UtkEngine::new(model).unwrap();
        assert_eq!(
            repaired.records,
            fresh.utk1(&figure1_region(), 2).unwrap().records
        );

        // Inserting a clearly dominated record keeps the entry
        // without repair work; a dominant one splices it in.
        assert_eq!(engine.cached_filters(), 1);
        let report = engine.insert_points(vec![vec![0.1, 0.1, 0.1]]).unwrap();
        assert_eq!(report.filter_retained, 1);
        assert_eq!(report.filter_repaired, 0);
        let report = engine.insert_points(vec![vec![9.9, 9.9, 9.9]]).unwrap();
        assert_eq!(report.filter_retained, 1);
        assert_eq!(report.filter_repaired, 1);
        assert_eq!(report.filter_invalidated, 0);
        assert_eq!(engine.filter_repairs(), 2);
        assert!(engine.repair_screen_tests() > 0);

        // With repair disabled the same mutations drop the entry —
        // the drop-and-recompute baseline benchmarks measure against.
        let baseline = UtkEngine::new(figure1_hotels())
            .unwrap()
            .without_cache_repair();
        baseline.utk1(&figure1_region(), 2).unwrap();
        let report = baseline.delete_points(&[0]).unwrap();
        assert_eq!(report.filter_invalidated, 1);
        assert_eq!(report.filter_retained, 0);
        assert_eq!(baseline.filter_repairs(), 0);
    }

    #[test]
    fn mutation_error_paths_leave_the_engine_untouched() {
        let engine = UtkEngine::new(figure1_hotels()).unwrap();
        assert_eq!(
            engine.delete_points(&[7]).unwrap_err(),
            UtkError::UnknownRecordId { id: 7, len: 7 }
        );
        assert_eq!(
            engine.delete_points(&[3, 3]).unwrap_err(),
            UtkError::DuplicateRecordId { id: "3".into() }
        );
        assert!(matches!(
            engine.insert_points(vec![vec![1.0, 2.0]]).unwrap_err(),
            UtkError::DimensionMismatch { .. }
        ));
        assert_eq!(
            engine
                .insert_points(vec![vec![1.0, f64::NAN, 2.0]])
                .unwrap_err(),
            UtkError::NonFiniteInput {
                what: "inserted record"
            }
        );
        assert_eq!(
            engine.delete_points(&[0, 1, 2, 3, 4, 5, 6]).unwrap_err(),
            UtkError::EmptyDataset
        );
        assert_eq!(engine.dataset_epoch(), 0, "failed mutations change nothing");
        assert_eq!(engine.len(), 7);
        // And the no-op shape: nothing happened, no epoch bump.
        let report = engine.apply_update(&[], vec![]).unwrap();
        assert_eq!(report.epoch, 0);
        assert_eq!(engine.dataset_epoch(), 0);
    }

    #[test]
    fn overlay_rides_small_mutations_and_rebuilds_past_threshold() {
        let points: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64, (i / 10) as f64, (i % 7) as f64])
            .collect();
        let engine = UtkEngine::new(points).unwrap();
        assert!(engine.index_is_packed());
        engine.delete_points(&[3]).unwrap();
        assert!(!engine.index_is_packed(), "one delete rides the overlay");
        assert_eq!(engine.index_rebuilds(), 0);
        // Pile up deletions until the overlay overhead crosses 1/2.
        let ids: Vec<u32> = (0..40).collect();
        engine.delete_points(&ids).unwrap();
        assert!(
            engine.index_rebuilds() >= 1,
            "threshold must trigger a rebuild"
        );
        // compact() packs on demand and is idempotent.
        engine.insert_points(vec![vec![1.0, 1.0, 1.0]]).unwrap();
        assert!(!engine.index_is_packed());
        engine.compact();
        assert!(engine.index_is_packed());
        let rebuilds = engine.index_rebuilds();
        engine.compact();
        assert_eq!(engine.index_rebuilds(), rebuilds);
    }

    #[test]
    fn identity_scoring_shares_cache_with_plain_queries() {
        let engine = UtkEngine::new(figure1_hotels()).unwrap();
        let plain = engine.utk1(&figure1_region(), 2).unwrap();
        let scored = engine
            .run(
                &UtkQuery::utk1(2)
                    .region(figure1_region())
                    .scoring(GeneralScoring::linear(3)),
            )
            .unwrap();
        assert_eq!(scored.records(), plain.records);
        assert_eq!(scored.stats().filter_cache_hits, 1, "identity must share");
    }
}
