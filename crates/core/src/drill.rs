//! The drill operation (§4.3 of the paper).
//!
//! A *drill* is a regular top-k query for a carefully chosen weight
//! vector: the vector inside the current region/partition that
//! maximizes the candidate's score (one LP). If the candidate makes
//! the top-k there, it is verified immediately and the arrangement
//! machinery is skipped.
//!
//! Crucially, the top-k query never touches the dataset or its R-tree
//! index: it runs branch-and-bound **on the r-dominance graph** `G`.
//! Scores are monotone along the graph's arcs for any `w ∈ R`
//! (a dominator outscores its dominatees), so a max-heap seeded with
//! the roots pops candidates in globally non-increasing score order,
//! and the first `k` pops are exactly the top-k. The r-skyband
//! contains every record that can enter a top-k set anywhere in `R`,
//! so the graph search is exact for every drill vector.

use crate::skyband::CandidateSet;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use utk_geom::pref_score;

#[derive(PartialEq)]
struct Scored {
    score: f64,
    node: u32,
    /// Dataset id, for the workspace-wide deterministic tie-break
    /// (higher score first, smaller dataset id on exact ties).
    id: u32,
}
impl Eq for Scored {}
impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scored {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .total_cmp(&other.score)
            .then(other.id.cmp(&self.id))
    }
}

/// Top-k candidate indices at drill vector `w`, in descending score
/// order, via branch-and-bound over the r-dominance graph.
///
/// `removed` marks graph nodes disqualified earlier by RSA; removed
/// records rank below the k-th everywhere in `R` by construction, so
/// skipping them leaves every top-k set unchanged. Their children are
/// reached by pass-through expansion.
pub fn graph_top_k(cands: &CandidateSet, w: &[f64], k: usize, removed: &[bool]) -> Vec<u32> {
    let n = cands.len();
    let mut result = Vec::with_capacity(k.min(n));
    if n == 0 || k == 0 {
        return result;
    }
    let mut in_heap = vec![false; n];
    let mut heap = BinaryHeap::with_capacity(64);

    // Seeds `v` (or, if removed, its children transitively).
    fn push(
        v: u32,
        cands: &CandidateSet,
        w: &[f64],
        removed: &[bool],
        in_heap: &mut [bool],
        heap: &mut BinaryHeap<Scored>,
    ) {
        if in_heap[v as usize] {
            return;
        }
        in_heap[v as usize] = true;
        if removed[v as usize] {
            for &c in cands.graph.children(v) {
                push(c, cands, w, removed, in_heap, heap);
            }
        } else {
            heap.push(Scored {
                score: pref_score(&cands.points[v as usize], w),
                node: v,
                id: cands.ids[v as usize],
            });
        }
    }

    for &r in cands.graph.roots() {
        push(r, cands, w, removed, &mut in_heap, &mut heap);
    }
    while let Some(Scored { node, .. }) = heap.pop() {
        result.push(node);
        if result.len() == k {
            break;
        }
        for &c in cands.graph.children(node) {
            push(c, cands, w, removed, &mut in_heap, &mut heap);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyband::r_skyband;
    use crate::stats::Stats;
    use crate::topk::top_k_brute;
    use rand::prelude::*;
    use utk_geom::Region;
    use utk_rtree::RTree;

    fn setup(seed: u64) -> (Vec<Vec<f64>>, Region, CandidateSet) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let pts: Vec<Vec<f64>> = (0..300)
            .map(|_| (0..3).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let region = Region::hyperrect(vec![0.2, 0.15], vec![0.35, 0.3]);
        let tree = RTree::bulk_load(&pts);
        let store = utk_geom::PointStore::from_rows(&pts);
        let cands = r_skyband(&store, &tree, &region, 5, true, &mut Stats::new());
        (pts, region, cands)
    }

    #[test]
    fn graph_top_k_matches_brute_force() {
        let (pts, region, cands) = setup(3);
        let removed = vec![false; cands.len()];
        let pivot = region.pivot().unwrap();
        for w in [
            pivot.clone(),
            vec![0.2, 0.15],
            vec![0.35, 0.3],
            vec![0.25, 0.22],
        ] {
            for k in [1, 3, 5] {
                let got: Vec<u32> = graph_top_k(&cands, &w, k, &removed)
                    .iter()
                    .map(|&ci| cands.ids[ci as usize])
                    .collect();
                let want = top_k_brute(&pts, &w, k);
                // Scores must agree (ids may differ under exact ties).
                let score = |id: u32| utk_geom::pref_score(&pts[id as usize], &w);
                for (g, t) in got.iter().zip(&want) {
                    assert!((score(*g) - score(*t)).abs() < 1e-12, "w = {w:?}, k = {k}");
                }
            }
        }
    }

    #[test]
    fn removed_nodes_are_skipped_but_children_reachable() {
        let (pts, region, cands) = setup(7);
        let pivot = region.pivot().unwrap();
        // Remove the top-1 node at the pivot; next pops shift up.
        let removed0 = vec![false; cands.len()];
        let base = graph_top_k(&cands, &pivot, 5, &removed0);
        let mut removed = vec![false; cands.len()];
        removed[base[0] as usize] = true;
        let got = graph_top_k(&cands, &pivot, 4, &removed);
        assert_eq!(got, base[1..5].to_vec());
        let _ = pts;
    }

    #[test]
    fn k_larger_than_graph_returns_all() {
        let (_, region, cands) = setup(11);
        let removed = vec![false; cands.len()];
        let got = graph_top_k(&cands, &region.pivot().unwrap(), 10_000, &removed);
        assert_eq!(got.len(), cands.len());
        // Descending scores.
        let w = region.pivot().unwrap();
        let scores: Vec<f64> = got
            .iter()
            .map(|&ci| pref_score(&cands.points[ci as usize], &w))
            .collect();
        assert!(scores.windows(2).all(|s| s[0] >= s[1] - 1e-12));
    }
}
