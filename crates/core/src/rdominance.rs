//! r-dominance (Definition 1 of the paper).
//!
//! Record `p` *r-dominates* `p′` when `S(p) ≥ S(p′)` for every weight
//! vector in `R` and `S(p) > S(p′)` for at least one. Unlike classical
//! dominance, the relation depends on the query region and can order
//! records that are classically incomparable — the engine behind the
//! r-skyband filter and the r-dominance graph.
//!
//! The test reduces to the range of the affine function
//! `S(p) − S(p′)` over `R`: non-negative minimum plus positive maximum
//! means dominance. For box regions the range is the O(d) min/max
//! corner evaluation; for general polytopes it is a vertex sweep (the
//! paper's `O(md)` vertex test) or, lacking vertices, two LPs.

use utk_geom::{pref_score_delta, tol::EPS, Halfspace, Region, ScorePanel, SCORE_LANES};

/// Outcome of comparing two records over a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RDominance {
    /// `p` r-dominates `q` (Figure 4(a)).
    Dominates,
    /// `q` r-dominates `p` (Figure 4(c)).
    DominatedBy,
    /// Each wins somewhere in `R` (Figure 4(b)).
    Incomparable,
    /// Identical scores everywhere in `R` (measure-zero ties).
    Equivalent,
}

/// Classifies the r-dominance relation of `p` vs `q` over `region`.
pub fn r_dominance(p: &[f64], q: &[f64], region: &Region) -> RDominance {
    let (a, c) = pref_score_delta(p, q);
    let Some((min, max)) = region.linear_range(&a, c) else {
        // Empty region: vacuous; callers never compare over empty
        // regions, but classify as equivalent for totality.
        return RDominance::Equivalent;
    };
    if min >= -EPS {
        if max > EPS {
            RDominance::Dominates
        } else {
            RDominance::Equivalent
        }
    } else if max <= EPS {
        RDominance::DominatedBy
    } else {
        RDominance::Incomparable
    }
}

/// True iff `p` r-dominates `q` over `region` (strict somewhere).
#[inline]
pub fn r_dominates(p: &[f64], q: &[f64], region: &Region) -> bool {
    r_dominance(p, q, region) == RDominance::Dominates
}

/// Classifies from the `(min, max)` range of `S(p) − S(q)` over the
/// region — the shared decision rule of [`r_dominance`], its scratch
/// variant, and the cached corner-score sweep.
#[inline]
pub fn classify_delta_range(min: f64, max: f64) -> RDominance {
    if min >= -EPS {
        if max > EPS {
            RDominance::Dominates
        } else {
            RDominance::Equivalent
        }
    } else if max <= EPS {
        RDominance::DominatedBy
    } else {
        RDominance::Incomparable
    }
}

/// Allocation-free equivalent of [`r_dominance`]: the affine delta
/// coefficients are written into the caller-provided `scratch` buffer
/// instead of a fresh `Vec` per test. Identical classification, bit
/// for bit — the same arithmetic in the same order.
pub fn r_dominance_scratch(
    p: &[f64],
    q: &[f64],
    region: &Region,
    scratch: &mut Vec<f64>,
) -> RDominance {
    debug_assert_eq!(p.len(), q.len());
    let d = p.len();
    let (pd, qd) = (p[d - 1], q[d - 1]);
    scratch.clear();
    scratch.extend((0..d - 1).map(|i| (p[i] - pd) - (q[i] - qd)));
    let Some((min, max)) = region.linear_range(scratch, pd - qd) else {
        return RDominance::Equivalent;
    };
    classify_delta_range(min, max)
}

/// Classifies r-dominance from per-vertex scores cached on admission:
/// `pscores[j]` and `qscores[j]` are `S(p)` and `S(q)` at the region's
/// j-th vertex (box corner or polytope vertex). Because an affine
/// function over a convex region attains its extremes at vertices,
/// sweeping the cached scores yields the exact delta range — no
/// coordinate access, no allocation. Early-exits once the range
/// certifies `Incomparable`.
#[inline]
pub fn classify_corner_scores(pscores: &[f64], qscores: &[f64]) -> RDominance {
    debug_assert_eq!(pscores.len(), qscores.len());
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for (ps, qs) in pscores.iter().zip(qscores) {
        let delta = ps - qs;
        if delta < min {
            min = delta;
        }
        if delta > max {
            max = delta;
        }
        // Both sides witnessed beyond tolerance: incomparable, no
        // later vertex can change that.
        if min < -EPS && max > EPS {
            return RDominance::Incomparable;
        }
    }
    classify_delta_range(min, max)
}

/// Which dominance kernel drives the r-skyband screen sweep.
///
/// All three produce byte-identical candidate sets (ids, points,
/// dominance graph) — the property suite in `tests/screen_kernel.rs`
/// locks kernel choice out of every observable result except the work
/// counters. [`ScreenKernel::Scalar`] is the oracle the blocked paths
/// are judged against, kept reachable through the engine's
/// `without_blocked_kernel()` twin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScreenKernel {
    /// Per-member [`classify_corner_scores`] sweep with early exit —
    /// the reference implementation.
    Scalar,
    /// Branch-free blocked sweep over the SoA score panel
    /// ([`blocked_dominates_mask`]).
    Blocked,
    /// Blocked sweep behind the `f32` reject-only prefilter
    /// ([`prefilter_reject_mask`]); survivors verified exactly in
    /// `f64`.
    #[default]
    BlockedPrefilter,
}

/// Branch-free blocked dominance test: which of the [`SCORE_LANES`]
/// members of `block` (one [`ScorePanel`] block, vertex-major)
/// r-dominate the probe with vertex scores `qscores`.
///
/// Exactly equivalent to running [`classify_corner_scores`] per lane
/// and testing for [`RDominance::Dominates`]: that classifies
/// `Dominates` iff `min ≥ −EPS ∧ max > EPS`, i.e. iff no vertex delta
/// falls below `−EPS` while some vertex delta exceeds `EPS` — the two
/// boolean accumulators swept here. NaN deltas update neither
/// accumulator in either formulation (NaN comparisons are false, and
/// NaN never replaces a running min/max), so the equivalence covers
/// non-finite scores too. There are **no data-dependent branches**
/// inside the vertex loop — compare → mask → accumulate per lane — so
/// rustc auto-vectorizes it; the cost is that a block never
/// early-exits, which the caller accounts for by counting whole
/// blocks.
///
/// `−∞`-padded lanes can never witness a positive delta, so their mask
/// bits are always clear.
#[inline]
pub fn blocked_dominates_mask(block: &[f64], qscores: &[f64]) -> u8 {
    debug_assert_eq!(block.len(), qscores.len() * SCORE_LANES);
    let mut no_neg = [true; SCORE_LANES]; // no vertex with delta < −EPS
    let mut any_pos = [false; SCORE_LANES]; // some vertex with delta > EPS
    for (row, &qs) in block.chunks_exact(SCORE_LANES).zip(qscores) {
        for l in 0..SCORE_LANES {
            let delta = row[l] - qs;
            // NOT `delta >= -EPS`: a NaN delta must leave the
            // accumulator untouched (both comparisons false), exactly
            // as NaN never replaces the scalar classifier's running
            // min — `>=` would flip NaN to "witnessed a negative".
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            {
                no_neg[l] &= !(delta < -EPS);
            }
            any_pos[l] |= delta > EPS;
        }
    }
    let mut mask = 0u8;
    for l in 0..SCORE_LANES {
        mask |= u8::from(no_neg[l] && any_pos[l]) << l;
    }
    mask
}

/// The `f32` reject-only prefilter: which lanes of `block32` (a
/// [`ScorePanel`] `f32` block, member scores rounded **up** via
/// `utk_geom::f32_up`) provably cannot dominate the probe whose vertex
/// scores were rounded **down** (`utk_geom::f32_down`) into `qlower`.
///
/// Soundness — a set bit never loses a true dominator. For every
/// vertex, `bound = next_up(ms_up − qs_down)` computed in `f32` is an
/// upper bound on the exact `f64` delta: `ms_up ≥ ms` and
/// `qs_down ≤ qs` by directed rounding, and one `next_up` absorbs the
/// ≤ 0.5-ulp error of the round-to-nearest `f32` subtraction. Widened
/// back to `f64` (exact), the lane is rejectable iff
///
/// * some vertex has `bound < −EPS` — then the true delta there is
///   below `−EPS`, so the scalar classification cannot be `Dominates`
///   (its `min` check fails); or
/// * every vertex has `bound ≤ EPS` — then no true delta exceeds
///   `EPS`, so the `max` check fails.
///
/// NaN bounds (e.g. a NaN probe score) update neither accumulator the
/// lane-rejecting way: `all_small` is ANDed with a false comparison,
/// making the lane non-rejectable unless an *other* vertex's finite
/// bound independently proves rejection. `−∞`-padded member lanes
/// produce `bound = next_up(−∞) = f32::MIN < −EPS` against finite
/// probe scores, so padding is rejectable and never forces a `f64`
/// verification on its own.
///
/// The filter may only **reject**: callers must verify every
/// surviving lane with the exact `f64` kernel. Exactness is
/// structural, not statistical.
#[inline]
pub fn prefilter_reject_mask(block32: &[f32], qlower: &[f32]) -> u8 {
    debug_assert_eq!(block32.len(), qlower.len() * SCORE_LANES);
    let mut any_neg = [false; SCORE_LANES]; // some vertex bound < −EPS
    let mut all_small = [true; SCORE_LANES]; // every vertex bound ≤ EPS
    for (row, &qs) in block32.chunks_exact(SCORE_LANES).zip(qlower) {
        for l in 0..SCORE_LANES {
            let bound = (row[l] - qs).next_up() as f64;
            any_neg[l] |= bound < -EPS;
            all_small[l] &= bound <= EPS;
        }
    }
    let mut mask = 0u8;
    for l in 0..SCORE_LANES {
        mask |= u8::from(any_neg[l] || all_small[l]) << l;
    }
    mask
}

/// Scalar-oracle classification of panel member `m` against the probe
/// scores, gathering the member's lane back into row form through
/// `scratch` and running the exact per-member sweep — bit-identical to
/// the pre-panel contiguous-slice path (same values, same order).
#[inline]
pub fn classify_member_scores(
    panel: &ScorePanel,
    m: usize,
    qscores: &[f64],
    scratch: &mut Vec<f64>,
) -> RDominance {
    panel.gather_member(m, scratch);
    classify_corner_scores(scratch, qscores)
}

/// The half-space of the preference domain where record `q` (with
/// dataset id `q_id`) *outranks* record `p` (id `p_id`) under the
/// deterministic tie-break used throughout this workspace: higher
/// score first, smaller dataset id on exact ties.
///
/// For records with identical scoring functions (exact duplicates up
/// to an additive tie), the boundary hyperplane does not exist; the
/// id comparison decides whether the half-space is everything or
/// nothing. This keeps RSA/JAA/kSPR consistent with the brute-force
/// reference ranking on datasets containing duplicates.
pub fn outranks_halfspace(q: &[f64], q_id: u32, p: &[f64], p_id: u32) -> Halfspace {
    let hs = Halfspace::beats(q, p);
    if hs.is_degenerate() && hs.rhs.abs() <= EPS {
        let dp = hs.dim();
        let rhs = if q_id < p_id { -1.0 } else { 1.0 };
        return Halfspace::ge(vec![0.0; dp], rhs);
    }
    hs
}

/// Classical dominance: `p ≥ q` component-wise with at least one
/// strict coordinate (§2 of the paper).
pub fn dominates(p: &[f64], q: &[f64]) -> bool {
    let mut strict = false;
    for (a, b) in p.iter().zip(q) {
        if a < b {
            return false;
        }
        if a > b {
            strict = true;
        }
    }
    strict
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> Region {
        Region::hyperrect(vec![0.05, 0.05], vec![0.45, 0.25])
    }

    #[test]
    fn classical_dominance_implies_r_dominance() {
        let p = [9.0, 9.0, 9.0];
        let q = [5.0, 6.0, 7.0];
        assert!(dominates(&p, &q));
        assert_eq!(r_dominance(&p, &q, &region()), RDominance::Dominates);
        assert_eq!(r_dominance(&q, &p, &region()), RDominance::DominatedBy);
    }

    #[test]
    fn r_dominance_orders_incomparable_records() {
        // q has huge first attribute, but within R the weight w1 is at
        // most 0.45, so p's balanced profile always wins.
        let p = [8.0, 8.0, 8.0];
        let q = [9.5, 1.0, 1.0];
        assert!(!dominates(&p, &q) && !dominates(&q, &p));
        // S(p) − S(q) at w = (0.45, 0.05): 8 − (0.45·9.5 + 0.05 + 0.5·1) = 8 − 5.825 > 0.
        assert_eq!(r_dominance(&p, &q, &region()), RDominance::Dominates);
    }

    #[test]
    fn straddling_pair_is_r_incomparable() {
        // p wins for small w1, q wins for large w1 inside R.
        let p = [1.0, 5.0, 5.0];
        let q = [9.0, 2.0, 2.0];
        // At w1 = 0.05, w2 = 0.15: S(p) = 0.05 + 0.75 + 4 = 4.8;
        // S(q) = 0.45 + 0.3 + 1.6 = 2.35 → p wins.
        // At w1 = 0.45, w2 = 0.05: S(p) = 0.45 + 0.25 + 2.5 = 3.2;
        // S(q) = 4.05 + 0.1 + 1.0 = 5.15 → q wins.
        assert_eq!(r_dominance(&p, &q, &region()), RDominance::Incomparable);
        assert_eq!(r_dominance(&q, &p, &region()), RDominance::Incomparable);
    }

    #[test]
    fn identical_records_equivalent() {
        let p = [3.0, 4.0, 5.0];
        assert_eq!(r_dominance(&p, &p, &region()), RDominance::Equivalent);
        assert!(!r_dominates(&p, &p, &region()));
    }

    #[test]
    fn antisymmetry_and_transitivity_random() {
        use rand::prelude::*;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let reg = region();
        let pts: Vec<Vec<f64>> = (0..40)
            .map(|_| (0..3).map(|_| rng.gen_range(0.0..10.0)).collect())
            .collect();
        for a in 0..pts.len() {
            for b in 0..pts.len() {
                if a == b {
                    continue;
                }
                let ab = r_dominates(&pts[a], &pts[b], &reg);
                let ba = r_dominates(&pts[b], &pts[a], &reg);
                assert!(!(ab && ba), "antisymmetry violated");
                if ab {
                    for c in 0..pts.len() {
                        if c != a && c != b && r_dominates(&pts[b], &pts[c], &reg) {
                            assert!(r_dominates(&pts[a], &pts[c], &reg), "transitivity violated");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn region_size_changes_relation() {
        // Over the full domain the records straddle; over a narrow R
        // one dominates.
        let p = [1.0, 5.0, 5.0];
        let q = [9.0, 2.0, 2.0];
        let wide = Region::hyperrect(vec![0.0, 0.0], vec![0.9, 0.05]);
        assert_eq!(r_dominance(&p, &q, &wide), RDominance::Incomparable);
        let narrow = Region::hyperrect(vec![0.0, 0.0], vec![0.1, 0.05]);
        assert_eq!(r_dominance(&p, &q, &narrow), RDominance::Dominates);
    }

    #[test]
    fn blocked_mask_matches_scalar_oracle() {
        use rand::prelude::*;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        let nv = 4;
        for round in 0..50 {
            let n = rng.gen_range(1..2 * SCORE_LANES + 4);
            let mut panel = ScorePanel::new(nv);
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..nv).map(|_| rng.gen_range(0.0..1.0)).collect())
                .collect();
            for r in &rows {
                panel.push(r);
            }
            let probe: Vec<f64> = (0..nv).map(|_| rng.gen_range(0.0..1.0)).collect();
            let mut scratch = Vec::new();
            for b in 0..panel.blocks() {
                let mask = blocked_dominates_mask(panel.block_f64(b), &probe);
                for l in 0..SCORE_LANES {
                    let m = b * SCORE_LANES + l;
                    if m >= n {
                        assert_eq!(mask & (1 << l), 0, "padding lane set (round {round})");
                        continue;
                    }
                    let want = classify_member_scores(&panel, m, &probe, &mut scratch)
                        == RDominance::Dominates;
                    assert_eq!(mask & (1 << l) != 0, want, "round {round}, member {m}");
                }
            }
        }
    }

    #[test]
    fn blocked_mask_handles_eps_boundaries_and_nan() {
        // Deltas pinned to ±EPS and NaN scores: the blocked form must
        // agree with the scalar classification at the tolerance edge.
        // A zero probe makes each member score the delta verbatim —
        // no rounding between the intended ±EPS values and the sweep.
        let nv = 2;
        let probe = vec![0.0, 0.0];
        let rows: [[f64; 2]; 6] = [
            [EPS, 0.0],              // max = EPS: not strict ⇒ no
            [2.0 * EPS, 0.0],        // max > EPS, min = 0 ⇒ yes
            [2.0 * EPS, -EPS],       // min = −EPS allowed ⇒ yes
            [2.0 * EPS, -2.0 * EPS], // min < −EPS ⇒ no
            [f64::NAN, 2.0 * EPS],   // NaN vertex is a no-op ⇒ yes
            [f64::NAN, f64::NAN],    // all-NaN ⇒ Equivalent ⇒ no
        ];
        let mut panel = ScorePanel::new(nv);
        for r in &rows {
            panel.push(r);
        }
        let mut scratch = Vec::new();
        let mask = blocked_dominates_mask(panel.block_f64(0), &probe);
        for (m, _) in rows.iter().enumerate() {
            let want =
                classify_member_scores(&panel, m, &probe, &mut scratch) == RDominance::Dominates;
            assert_eq!(mask & (1 << m) != 0, want, "member {m}");
        }
        assert_eq!(mask, 0b010110);
    }

    #[test]
    fn prefilter_never_rejects_a_true_dominator() {
        use rand::prelude::*;
        use utk_geom::f32_down;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(78);
        let nv = 3;
        for _ in 0..100 {
            let n = rng.gen_range(1..SCORE_LANES + 1);
            let mut panel = ScorePanel::new(nv);
            for _ in 0..n {
                // Tight clusters so near-ties (the prefilter's hard
                // case) actually occur.
                let r: Vec<f64> = (0..nv).map(|_| 0.5 + rng.gen_range(-1e-6..1e-6)).collect();
                panel.push(&r);
            }
            let probe: Vec<f64> = (0..nv).map(|_| 0.5 + rng.gen_range(-1e-6..1e-6)).collect();
            let qlower: Vec<f32> = probe.iter().map(|&s| f32_down(s)).collect();
            let reject = prefilter_reject_mask(panel.block_f32(0), &qlower);
            let exact = blocked_dominates_mask(panel.block_f64(0), &probe);
            assert_eq!(
                reject & exact,
                0,
                "a rejected lane classified as dominating in f64"
            );
        }
    }

    #[test]
    fn matches_paper_vertex_test_on_boxes() {
        // The O(d) interval computation must agree with explicitly
        // checking all box corners (the paper's vertex test).
        use rand::prelude::*;
        use utk_geom::pref_score;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        for _ in 0..50 {
            let d = 4;
            let p: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..1.0)).collect();
            let q: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..1.0)).collect();
            let lo: Vec<f64> = (0..d - 1).map(|_| rng.gen_range(0.0..0.2)).collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + 0.1).collect();
            let reg = Region::hyperrect(lo, hi);
            let fast = r_dominance(&p, &q, &reg);
            let corners = reg.corner_vertices().unwrap();
            let deltas: Vec<f64> = corners
                .iter()
                .map(|w| pref_score(&p, w) - pref_score(&q, w))
                .collect();
            let min = deltas.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = deltas.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let slow = if min >= -1e-9 {
                if max > 1e-9 {
                    RDominance::Dominates
                } else {
                    RDominance::Equivalent
                }
            } else if max <= 1e-9 {
                RDominance::DominatedBy
            } else {
                RDominance::Incomparable
            };
            assert_eq!(fast, slow);
        }
    }
}
