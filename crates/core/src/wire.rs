//! The `utk` JSON wire format, shared by the CLI's `--json` output,
//! its `batch` mode, the `utk-server` serving protocol, and the test
//! suite. (It lives in `utk-core` so the server crate can reuse it
//! without a circular dependency; the `utk` facade re-exports it as
//! `utk::wire`.)
//!
//! One query → one JSON object on one line. Determinism contract for
//! a fixed engine and query, across runs and thread interleavings:
//!
//! * **records, cells and ranking are always byte-identical** — no
//!   parallel driver leaks scheduling into results;
//! * the **stats object is byte-identical for sequential queries and
//!   for parallel JAA** (its task model makes every work counter a
//!   pure function of the query), which is what lets the determinism
//!   tests compare concurrent parallel-JAA outputs whole-line;
//! * parallel **RSA** work counters (`rdom_tests`, `drills`, …) may
//!   vary run-to-run: workers skip candidates a sibling already
//!   confirmed, so how much verification work happens is
//!   scheduling-dependent (the confirmed set never is).
//!
//! `Stats::stolen_tasks` is scheduling-dependent on every parallel
//! query and is deliberately *not* part of the format, and neither is
//! `Stats::dataset_epoch`: it counts an *engine's* mutation history,
//! so a mutated engine and a fresh build of the same dataset — which
//! the dynamic test suite requires to be wire-byte-identical — would
//! differ on it while agreeing on everything the query actually
//! computed. `Stats::timings` (the per-phase wall-clock breakdown from
//! `utk_core::obs`) is excluded for the same reason: durations depend
//! on hardware and scheduling, so timings **never** enter the wire
//! format — they surface only through the server's `metrics` op and
//! the slow-query log, which sit outside the determinism contract.

use crate::engine::{Algo, QueryResult, TopKResult, UpdateReport};
use crate::jaa::Utk2Result;
use crate::rsa::Utk1Result;
use crate::stats::Stats;

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A JSON array of floats (shortest round-trip formatting).
pub fn floats(vals: &[f64]) -> String {
    let parts: Vec<String> = vals.iter().map(|v| format!("{v}")).collect();
    format!("[{}]", parts.join(","))
}

/// A JSON array of `{"id":…,"name":…}` objects; `name` resolves a
/// record id to its display name (e.g. the CSV label column).
pub fn record_list(ids: &[u32], name: &dyn Fn(u32) -> String) -> String {
    let parts: Vec<String> = ids
        .iter()
        .map(|&id| format!(r#"{{"id":{id},"name":"{}"}}"#, escape(&name(id))))
        .collect();
    format!("[{}]", parts.join(","))
}

/// The stats object of the wire format. Deterministic counters only:
/// `stolen_tasks` depends on scheduling and is excluded by design.
/// The cache observability fields (`superset_hits`,
/// `filter_cache_bytes`, `evictions`, `screen_prefix_skips`) are
/// deterministic for a fixed engine history — on a shared engine they
/// reflect cache state at query time, which is why the determinism
/// suite warms the cache before comparing lines.
pub fn stats_json(stats: &Stats) -> String {
    format!(
        concat!(
            r#"{{"candidates":{},"bbs_pops":{},"rdom_tests":{},"halfspaces_inserted":{},"#,
            r#""cells_created":{},"arrangements_built":{},"drills":{},"drill_hits":{},"#,
            r#""peak_arrangement_bytes":{},"kspr_calls":{},"filter_cache_hits":{},"#,
            r#""superset_hits":{},"filter_cache_bytes":{},"evictions":{},"#,
            r#""screen_prefix_skips":{},"kernel_blocks":{},"prefilter_rejects":{},"#,
            r#""prefilter_verifies":{},"pool_threads":{},"batch_group_count":{}}}"#
        ),
        stats.candidates,
        stats.bbs_pops,
        stats.rdom_tests,
        stats.halfspaces_inserted,
        stats.cells_created,
        stats.arrangements_built,
        stats.drills,
        stats.drill_hits,
        stats.peak_arrangement_bytes,
        stats.kspr_calls,
        stats.filter_cache_hits,
        stats.superset_hits,
        stats.filter_cache_bytes,
        stats.evictions,
        stats.screen_prefix_skips,
        stats.kernel_blocks,
        stats.prefilter_rejects,
        stats.prefilter_verifies,
        stats.pool_threads,
        stats.batch_group_count,
    )
}

/// The UTK1 wire object.
pub fn utk1_json(
    k: usize,
    algo: Algo,
    n: usize,
    d: usize,
    res: &Utk1Result,
    name: &dyn Fn(u32) -> String,
) -> String {
    format!(
        r#"{{"query":"utk1","k":{k},"algo":"{}","n":{n},"d":{d},"records":{},"stats":{}}}"#,
        algo.label(),
        record_list(&res.records, name),
        stats_json(&res.stats),
    )
}

/// The UTK2 wire object: cells in the engine's deterministic
/// depth-first order.
pub fn utk2_json(
    k: usize,
    algo: Algo,
    n: usize,
    d: usize,
    res: &Utk2Result,
    name: &dyn Fn(u32) -> String,
) -> String {
    let cells: Vec<String> = res
        .cells
        .iter()
        .map(|cell| {
            let ids: Vec<String> = cell.top_k.iter().map(|id| id.to_string()).collect();
            let names: Vec<String> = cell
                .top_k
                .iter()
                .map(|&id| format!("\"{}\"", escape(&name(id))))
                .collect();
            format!(
                r#"{{"interior":{},"top_k":[{}],"names":[{}]}}"#,
                floats(&cell.interior),
                ids.join(","),
                names.join(",")
            )
        })
        .collect();
    format!(
        concat!(
            r#"{{"query":"utk2","k":{},"algo":"{}","n":{},"d":{},"#,
            r#""partitions":{},"distinct_sets":{},"records":{},"cells":[{}],"stats":{}}}"#
        ),
        k,
        algo.label(),
        n,
        d,
        res.num_partitions(),
        res.num_distinct_sets(),
        record_list(&res.records, name),
        cells.join(","),
        stats_json(&res.stats),
    )
}

/// The plain top-k wire object (ranked records).
pub fn topk_json(
    k: usize,
    weights: &[f64],
    res: &TopKResult,
    name: &dyn Fn(u32) -> String,
) -> String {
    let ranked: Vec<String> = res
        .records
        .iter()
        .enumerate()
        .map(|(rank, &id)| {
            format!(
                r#"{{"rank":{},"id":{id},"name":"{}"}}"#,
                rank + 1,
                escape(&name(id))
            )
        })
        .collect();
    format!(
        r#"{{"query":"topk","k":{k},"weights":{},"ranking":[{}]}}"#,
        floats(weights),
        ranked.join(",")
    )
}

/// The wire object of one applied dataset mutation (`utk batch
/// --mutations` replay lines; the serving protocol wraps the same
/// fields in its `{"ok":"update",…}` envelope).
pub fn update_json(report: &UpdateReport) -> String {
    format!(
        concat!(
            r#"{{"update":{{"epoch":{},"n":{},"inserted":{},"deleted":{},"#,
            r#""filter_invalidated":{},"filter_retained":{},"index_rebuilt":{}}}}}"#
        ),
        report.epoch,
        report.n,
        report.inserted,
        report.deleted,
        report.filter_invalidated,
        report.filter_retained,
        report.index_rebuilt,
    )
}

/// The error wire object (a failed query in a `batch` run, or a CLI
/// usage error under `--json`).
pub fn error_json(message: &str) -> String {
    format!(r#"{{"error":"{}"}}"#, escape(message))
}

/// The coded error wire object used by the serving protocol for
/// errors that are *not* per-query failures (admission rejections,
/// malformed requests, unknown datasets, …). The `code` field lets
/// clients branch without parsing prose; per-query failures keep the
/// plain [`error_json`] shape so server `batch` output stays
/// byte-identical to `utk batch`.
pub fn coded_error_json(code: &str, message: &str) -> String {
    format!(
        r#"{{"error":"{}","code":"{}"}}"#,
        escape(message),
        escape(code)
    )
}

/// Serializes any [`QueryResult`] with the metadata the wire format
/// carries. `weights` is required only for top-k results.
pub fn result_json(
    result: &QueryResult,
    k: usize,
    algo: Algo,
    n: usize,
    d: usize,
    weights: &[f64],
    name: &dyn Fn(u32) -> String,
) -> String {
    match result {
        QueryResult::Utk1(r) => utk1_json(k, algo, n, d, r, name),
        QueryResult::Utk2(r) => utk2_json(k, algo, n, d, r, name),
        QueryResult::TopK(r) => topk_json(k, weights, r, name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn coded_errors_extend_the_plain_shape() {
        assert_eq!(
            coded_error_json("busy", "at capacity"),
            r#"{"error":"at capacity","code":"busy"}"#
        );
        // The plain shape stays exactly what `utk batch` emits.
        assert_eq!(error_json("boom"), r#"{"error":"boom"}"#);
    }

    #[test]
    fn stats_json_omits_stolen_tasks_and_dataset_epoch() {
        let mut stats = Stats::new();
        stats.stolen_tasks = 99;
        stats.pool_threads = 4;
        stats.dataset_epoch = 7;
        let json = stats_json(&stats);
        assert!(!json.contains("stolen"), "{json}");
        assert!(!json.contains("epoch"), "{json}");
        assert!(json.contains(r#""pool_threads":4"#), "{json}");
    }

    #[test]
    fn update_json_carries_the_report() {
        let report = UpdateReport {
            epoch: 3,
            n: 42,
            inserted: 2,
            deleted: 1,
            filter_invalidated: 1,
            filter_retained: 4,
            filter_repaired: 0,
            index_rebuilt: false,
        };
        assert_eq!(
            update_json(&report),
            r#"{"update":{"epoch":3,"n":42,"inserted":2,"deleted":1,"filter_invalidated":1,"filter_retained":4,"index_rebuilt":false}}"#
        );
    }

    #[test]
    fn stats_json_omits_timings() {
        use crate::obs::Phase;
        let mut stats = Stats::new();
        stats.timings.record(Phase::Filter, 123_456);
        stats.timings.total_nanos = 999_999;
        let json = stats_json(&stats);
        assert!(!json.contains("nanos"), "{json}");
        assert!(!json.contains("timing"), "{json}");
        // Same bytes as an untimed run: timings never enter the wire.
        assert_eq!(json, stats_json(&Stats::new()));
    }

    #[test]
    fn stats_json_carries_cache_observability() {
        let mut stats = Stats::new();
        stats.superset_hits = 1;
        stats.filter_cache_bytes = 4096;
        stats.evictions = 2;
        stats.screen_prefix_skips = 7;
        let json = stats_json(&stats);
        for frag in [
            r#""superset_hits":1"#,
            r#""filter_cache_bytes":4096"#,
            r#""evictions":2"#,
            r#""screen_prefix_skips":7"#,
        ] {
            assert!(json.contains(frag), "missing {frag} in {json}");
        }
    }

    #[test]
    fn stats_json_carries_kernel_counters() {
        let mut stats = Stats::new();
        stats.kernel_blocks = 12;
        stats.prefilter_rejects = 9;
        stats.prefilter_verifies = 3;
        let json = stats_json(&stats);
        for frag in [
            r#""kernel_blocks":12"#,
            r#""prefilter_rejects":9"#,
            r#""prefilter_verifies":3"#,
        ] {
            assert!(json.contains(frag), "missing {frag} in {json}");
        }
    }
}
