//! Observability: query-lifecycle tracing and the metrics substrate.
//!
//! The paper's primary metric is wall-clock time (§6), but the engine
//! historically exposed only *work* counters — nobody could see where
//! time goes inside a query or what the serving tail looks like. This
//! module supplies the three missing pieces, std-only:
//!
//! * an injectable [`Clock`] ([`MonotonicClock`] in production, the
//!   deterministic [`TestClock`] in tests — byte-stable goldens need
//!   frozen time);
//! * a per-query phase tracer ([`trace`] + [`span`]): the pipeline
//!   phases ([`Phase`]) report a [`PhaseTimings`] breakdown alongside
//!   the existing [`crate::stats::Stats`] counters;
//! * a [`MetricsRegistry`] of counters, gauges and log₂-bucketed
//!   [`Histogram`]s with Prometheus-style text exposition plus a JSON
//!   twin, used by the serving layer's `metrics` op.
//!
//! # Timings never enter the deterministic wire format
//!
//! Durations are scheduling- and hardware-dependent, so — exactly like
//! `Stats::stolen_tasks` and `Stats::dataset_epoch` — they are
//! **excluded** from the JSON wire format ([`crate::wire`]). The
//! contract is enforced three ways: the `wall-clock` lint rule forbids
//! `Instant::now()`/`SystemTime::now()` in wire-feeding modules (all
//! timing flows through the injected [`Clock`]), `tests/wire_golden.rs`
//! pins response bytes, and the `metrics` exposition golden runs under
//! a frozen [`TestClock`].
//!
//! # Tracing model
//!
//! [`trace`] installs a thread-local tracer for the duration of one
//! query; [`span`] attributes the *exclusive* self-time of a region to
//! its [`Phase`] (a nested span pauses its parent, so phase times sum
//! to at most the traced total). On a thread with no tracer installed
//! — notably the engine's pool workers during parallel refinement —
//! [`span`] is a no-op costing one thread-local probe, and the
//! parallel phase's time is attributed to the enclosing span on the
//! coordinating thread (which blocks on the pool).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::wire::escape;

// ---------------------------------------------------------------- //
// clocks                                                           //
// ---------------------------------------------------------------- //

/// A monotonic nanosecond source. Injected everywhere timing is
/// taken, so tests can freeze or script time — the only blessed
/// `Instant::now()` call sites in the workspace are the
/// [`MonotonicClock`] implementation below.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since an arbitrary (per-clock) origin. Must be
    /// monotonically non-decreasing.
    fn now_nanos(&self) -> u64;
}

/// The production clock: nanoseconds since the clock was built.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock anchored at the moment of construction.
    pub fn new() -> Self {
        MonotonicClock {
            // utk-lint: allow(wall-clock) -- the one blessed wall-clock read: every other timing site injects a Clock
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A deterministic clock for tests: reads return a scripted value,
/// optionally auto-advancing a fixed step per read. Frozen at 0 by
/// default — under a frozen clock every duration is 0, which is what
/// makes the `metrics` exposition golden byte-stable.
#[derive(Debug, Default)]
pub struct TestClock {
    nanos: AtomicU64,
    step: u64,
}

impl TestClock {
    /// A clock frozen at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock that advances `step` nanoseconds on every read —
    /// deterministic, strictly increasing timings for tests that want
    /// non-zero breakdowns.
    pub fn with_step(step: u64) -> Self {
        TestClock {
            nanos: AtomicU64::new(0),
            step,
        }
    }

    /// Advances the clock by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Sets the clock to an absolute value.
    pub fn set(&self, nanos: u64) {
        self.nanos.store(nanos, Ordering::Relaxed);
    }
}

impl Clock for TestClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.fetch_add(self.step, Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------- //
// phases + per-query timings                                       //
// ---------------------------------------------------------------- //

/// The pipeline phases a query's time is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Cold filtering: BBS over the R-tree + the r-skyband screen.
    Filter,
    /// Pure screen-kernel work outside BBS: superset re-screens and
    /// splice repairs, where the kernel runs without tree traversal.
    Screen,
    /// r-dominance graph construction.
    Graph,
    /// Drill operations (§4.3).
    Drill,
    /// Local arrangement construction + traversal (Verify/Partition).
    Arrange,
    /// Result serialization to the JSON wire format.
    Serialize,
}

impl Phase {
    /// Every phase, in the fixed reporting order.
    pub const ALL: [Phase; 6] = [
        Phase::Filter,
        Phase::Screen,
        Phase::Graph,
        Phase::Drill,
        Phase::Arrange,
        Phase::Serialize,
    ];

    /// Stable label (`filter`, `screen`, `graph`, `drill`, `arrange`,
    /// `serialize`) — used in slow-query log records and metric label
    /// values.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Filter => "filter",
            Phase::Screen => "screen",
            Phase::Graph => "graph",
            Phase::Drill => "drill",
            Phase::Arrange => "arrange",
            Phase::Serialize => "serialize",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Filter => 0,
            Phase::Screen => 1,
            Phase::Graph => 2,
            Phase::Drill => 3,
            Phase::Arrange => 4,
            Phase::Serialize => 5,
        }
    }
}

/// One query's per-phase timing breakdown, in nanoseconds. Carried on
/// [`crate::stats::Stats::timings`]; **never** serialized to the wire
/// format (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    nanos: [u64; Phase::ALL.len()],
    /// Total traced nanoseconds (the whole [`trace`] window — at
    /// least the sum of the phase buckets; the remainder is
    /// unattributed engine overhead).
    pub total_nanos: u64,
}

impl PhaseTimings {
    /// Nanoseconds attributed to `phase`.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Adds `nanos` to `phase`'s bucket (saturating).
    pub fn record(&mut self, phase: Phase, nanos: u64) {
        let slot = &mut self.nanos[phase.index()];
        *slot = slot.saturating_add(nanos);
    }

    /// Element-wise sum with another breakdown (used by
    /// [`crate::stats::Stats::absorb`]).
    pub fn absorb(&mut self, other: &PhaseTimings) {
        for (a, b) in self.nanos.iter_mut().zip(other.nanos.iter()) {
            *a = a.saturating_add(*b);
        }
        self.total_nanos = self.total_nanos.saturating_add(other.total_nanos);
    }

    /// True when nothing was recorded (e.g. a query under a frozen
    /// test clock, or stats that never passed through [`trace`]).
    pub fn is_zero(&self) -> bool {
        self.total_nanos == 0 && self.nanos.iter().all(|&n| n == 0)
    }

    /// The breakdown as a JSON object string
    /// (`{"total_nanos":…,"filter_nanos":…,…}`) — for the slow-query
    /// log, **not** the deterministic wire format.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"total_nanos\":{}", self.total_nanos));
        for phase in Phase::ALL {
            out.push_str(&format!(
                ",\"{}_nanos\":{}",
                phase.label(),
                self.nanos(phase)
            ));
        }
        out.push('}');
        out
    }
}

struct OpenSpan {
    phase: Phase,
    /// When this span last became the innermost one (entry, or a
    /// child's exit).
    resumed_at: u64,
}

struct TracerState {
    clock: Arc<dyn Clock>,
    started_at: u64,
    timings: PhaseTimings,
    stack: Vec<OpenSpan>,
}

thread_local! {
    static TRACER: RefCell<Option<TracerState>> = const { RefCell::new(None) };
}

/// Runs `f` with a phase tracer installed on this thread, returning
/// its result and the per-phase breakdown. Nested [`trace`] calls on
/// the same thread stack cleanly (the inner trace shadows the outer
/// one for its duration and the outer window still covers it).
pub fn trace<R>(clock: &Arc<dyn Clock>, f: impl FnOnce() -> R) -> (R, PhaseTimings) {
    let previous = TRACER.with(|t| {
        t.borrow_mut().replace(TracerState {
            clock: Arc::clone(clock),
            started_at: clock.now_nanos(),
            timings: PhaseTimings::default(),
            stack: Vec::new(),
        })
    });
    let result = f();
    let timings = TRACER.with(|t| {
        let state = t.borrow_mut().take();
        *t.borrow_mut() = previous;
        match state {
            Some(state) => {
                let mut timings = state.timings;
                timings.total_nanos = state.clock.now_nanos().saturating_sub(state.started_at);
                timings
            }
            // Unreachable in practice (the tracer is installed above
            // and only trace/span touch the slot), but never panic.
            None => PhaseTimings::default(),
        }
    });
    (result, timings)
}

/// Attributes the exclusive self-time of `f` to `phase` on the
/// current thread's tracer. Without a tracer (uninstrumented call
/// paths, pool worker threads) this is a pass-through costing one
/// thread-local probe.
pub fn span<R>(phase: Phase, f: impl FnOnce() -> R) -> R {
    let entered = TRACER.with(|t| {
        let mut slot = t.borrow_mut();
        let Some(state) = slot.as_mut() else {
            return false;
        };
        let now = state.clock.now_nanos();
        if let Some(top) = state.stack.last_mut() {
            let elapsed = now.saturating_sub(top.resumed_at);
            let parent = top.phase;
            top.resumed_at = now;
            state.timings.record(parent, elapsed);
        }
        state.stack.push(OpenSpan {
            phase,
            resumed_at: now,
        });
        true
    });
    let result = f();
    if entered {
        TRACER.with(|t| {
            let mut slot = t.borrow_mut();
            let Some(state) = slot.as_mut() else {
                return;
            };
            let now = state.clock.now_nanos();
            if let Some(top) = state.stack.pop() {
                let elapsed = now.saturating_sub(top.resumed_at);
                state.timings.record(top.phase, elapsed);
            }
            if let Some(parent) = state.stack.last_mut() {
                parent.resumed_at = now;
            }
        });
    }
    result
}

// ---------------------------------------------------------------- //
// log₂ histograms                                                  //
// ---------------------------------------------------------------- //

/// Number of buckets of a [`Histogram`]: bucket `i` holds values
/// whose bit length is `i` (0 holds only the value 0), so the upper
/// bound of bucket `i ≥ 1` is `2^i − 1` and bucket 64 tops out at
/// `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-boundary log₂ histogram of `u64` samples (latencies in
/// nanoseconds, sizes in bytes, …). The boundaries are a property of
/// the *type*, not the instance, which makes merges deterministic and
/// exact: `record`-ing a sample stream is identical to recording
/// arbitrary shards of it and [`Histogram::merge`]-ing the results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index of `value`: its bit length (0 for 0).
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The inclusive upper bound of bucket `index` (`2^index − 1`,
    /// saturating to `u64::MAX` for the last bucket).
    pub fn bucket_upper_bound(index: usize) -> u64 {
        if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Element-wise merge — exact because boundaries are fixed:
    /// `record(xs) ≡ merge(shards(xs))`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Per-bucket (non-cumulative) counts.
    pub fn bucket_counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }
}

// ---------------------------------------------------------------- //
// the metrics registry                                             //
// ---------------------------------------------------------------- //

/// A registry of counter, gauge and histogram families, keyed by
/// family name and a pre-rendered label set (e.g. `op="query"`).
/// Iteration everywhere is `BTreeMap`-ordered and histogram buckets
/// are fixed, so the exposition is deterministic: under a frozen
/// [`TestClock`] the same request sequence renders byte-identical
/// text (the `metrics` golden test pins this).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, BTreeMap<String, u64>>,
    gauges: BTreeMap<String, BTreeMap<String, u64>>,
    histograms: BTreeMap<String, BTreeMap<String, Histogram>>,
    help: BTreeMap<String, String>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the counter `family{labels}`, registering the
    /// family's help text on first use. `labels` is a pre-rendered
    /// Prometheus label body (`op="query"`, or `""` for none).
    pub fn counter_add(&self, family: &str, help: &str, labels: &str, by: u64) {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        register_help(&mut inner.help, family, help);
        let slot = inner
            .counters
            .entry(family.to_string())
            .or_default()
            .entry(labels.to_string())
            .or_default();
        *slot = slot.saturating_add(by);
    }

    /// Sets the gauge `family{labels}` to `value`.
    pub fn gauge_set(&self, family: &str, help: &str, labels: &str, value: u64) {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        register_help(&mut inner.help, family, help);
        inner
            .gauges
            .entry(family.to_string())
            .or_default()
            .insert(labels.to_string(), value);
    }

    /// Records `value` into the histogram `family{labels}`.
    pub fn observe(&self, family: &str, help: &str, labels: &str, value: u64) {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        register_help(&mut inner.help, family, help);
        inner
            .histograms
            .entry(family.to_string())
            .or_default()
            .entry(labels.to_string())
            .or_default()
            .record(value);
    }

    /// The current value of counter `family{labels}` (0 if never
    /// incremented) — for tests and self-consistency checks.
    pub fn counter_value(&self, family: &str, labels: &str) -> u64 {
        let inner = self.inner.lock().expect("metrics registry lock");
        inner
            .counters
            .get(family)
            .and_then(|series| series.get(labels))
            .copied()
            .unwrap_or(0)
    }

    /// Prometheus text exposition: `# HELP` / `# TYPE` headers, then
    /// one sample line per series. Counters render first, then
    /// gauges, then histograms (cumulative `le` buckets, `+Inf`,
    /// `_sum`, `_count`), each family and label set in sorted order.
    /// All buckets are emitted even when empty — the byte layout
    /// depends only on which series exist, not on sample values.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry lock");
        let mut out = String::new();
        for (family, series) in &inner.counters {
            header(&mut out, &inner.help, family, "counter");
            for (labels, value) in series {
                sample(&mut out, family, "", labels, &value.to_string());
            }
        }
        for (family, series) in &inner.gauges {
            header(&mut out, &inner.help, family, "gauge");
            for (labels, value) in series {
                sample(&mut out, family, "", labels, &value.to_string());
            }
        }
        for (family, series) in &inner.histograms {
            header(&mut out, &inner.help, family, "histogram");
            for (labels, histogram) in series {
                let counts = histogram.bucket_counts();
                let mut cumulative = 0u64;
                for (i, &c) in counts.iter().enumerate().take(HISTOGRAM_BUCKETS - 1) {
                    cumulative = cumulative.saturating_add(c);
                    let le = format!("le=\"{}\"", Histogram::bucket_upper_bound(i));
                    let labels = join_labels(labels, &le);
                    sample(
                        &mut out,
                        family,
                        "_bucket",
                        &labels,
                        &cumulative.to_string(),
                    );
                }
                let inf = join_labels(labels, "le=\"+Inf\"");
                sample(
                    &mut out,
                    family,
                    "_bucket",
                    &inf,
                    &histogram.count().to_string(),
                );
                sample(
                    &mut out,
                    family,
                    "_sum",
                    labels,
                    &histogram.sum().to_string(),
                );
                sample(
                    &mut out,
                    family,
                    "_count",
                    labels,
                    &histogram.count().to_string(),
                );
            }
        }
        out
    }

    /// The JSON twin of [`MetricsRegistry::render_prometheus`]: the
    /// same data as one deterministic JSON object.
    pub fn render_json(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry lock");
        let mut out = String::from("{\"counters\":[");
        let mut first = true;
        for (family, series) in &inner.counters {
            for (labels, value) in series {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"labels\":\"{}\",\"value\":{}}}",
                    escape(family),
                    escape(labels),
                    value
                ));
            }
        }
        out.push_str("],\"gauges\":[");
        let mut first = true;
        for (family, series) in &inner.gauges {
            for (labels, value) in series {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"labels\":\"{}\",\"value\":{}}}",
                    escape(family),
                    escape(labels),
                    value
                ));
            }
        }
        out.push_str("],\"histograms\":[");
        let mut first = true;
        for (family, series) in &inner.histograms {
            for (labels, histogram) in series {
                if !first {
                    out.push(',');
                }
                first = false;
                let buckets: Vec<String> = histogram
                    .bucket_counts()
                    .iter()
                    .map(|c| c.to_string())
                    .collect();
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"labels\":\"{}\",\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
                    escape(family),
                    escape(labels),
                    histogram.count(),
                    histogram.sum(),
                    buckets.join(",")
                ));
            }
        }
        out.push_str("]}");
        out
    }
}

fn register_help(help: &mut BTreeMap<String, String>, family: &str, text: &str) {
    if !help.contains_key(family) {
        help.insert(family.to_string(), text.to_string());
    }
}

fn header(out: &mut String, help: &BTreeMap<String, String>, family: &str, kind: &str) {
    if let Some(text) = help.get(family) {
        out.push_str(&format!("# HELP {family} {text}\n"));
    }
    out.push_str(&format!("# TYPE {family} {kind}\n"));
}

fn sample(out: &mut String, family: &str, suffix: &str, labels: &str, value: &str) {
    if labels.is_empty() {
        out.push_str(&format!("{family}{suffix} {value}\n"));
    } else {
        out.push_str(&format!("{family}{suffix}{{{labels}}} {value}\n"));
    }
}

fn join_labels(base: &str, extra: &str) -> String {
    if base.is_empty() {
        extra.to_string()
    } else {
        format!("{base},{extra}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_clock_is_scriptable() {
        let clock = TestClock::new();
        assert_eq!(clock.now_nanos(), 0);
        clock.advance(5);
        assert_eq!(clock.now_nanos(), 5);
        clock.set(100);
        assert_eq!(clock.now_nanos(), 100);
        let stepping = TestClock::with_step(10);
        assert_eq!(stepping.now_nanos(), 0);
        assert_eq!(stepping.now_nanos(), 10);
        assert_eq!(stepping.now_nanos(), 20);
    }

    #[test]
    fn monotonic_clock_is_monotonic() {
        let clock = MonotonicClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn trace_attributes_exclusive_span_time() {
        // Step clock: every read advances 10 ns, so timings are exact.
        let clock: Arc<dyn Clock> = Arc::new(TestClock::with_step(10));
        let ((), timings) = trace(&clock, || {
            span(Phase::Filter, || {
                span(Phase::Graph, || {});
            });
            span(Phase::Drill, || {});
        });
        // Reads: trace-start(0), filter-enter(10), graph-enter(20,
        // charges 10 to filter), graph-exit(30, charges 10 to graph),
        // filter-exit(40, charges 10 to filter), drill-enter(50),
        // drill-exit(60, charges 10 to drill), trace-end(70).
        assert_eq!(timings.nanos(Phase::Filter), 20);
        assert_eq!(timings.nanos(Phase::Graph), 10);
        assert_eq!(timings.nanos(Phase::Drill), 10);
        assert_eq!(timings.nanos(Phase::Arrange), 0);
        assert_eq!(timings.total_nanos, 70);
    }

    #[test]
    fn span_without_tracer_is_a_passthrough() {
        let value = span(Phase::Filter, || 41) + 1;
        assert_eq!(value, 42);
    }

    #[test]
    fn nested_traces_shadow_cleanly() {
        let outer: Arc<dyn Clock> = Arc::new(TestClock::with_step(1));
        let inner_clock: Arc<dyn Clock> = Arc::new(TestClock::with_step(100));
        let ((), outer_timings) = trace(&outer, || {
            let ((), inner_timings) = trace(&inner_clock, || {
                span(Phase::Filter, || {});
            });
            assert_eq!(inner_timings.nanos(Phase::Filter), 100);
            // After the inner trace, the outer tracer is restored.
            span(Phase::Drill, || {});
        });
        assert_eq!(outer_timings.nanos(Phase::Drill), 1);
        assert!(outer_timings.total_nanos > 0);
    }

    #[test]
    fn frozen_clock_yields_zero_timings() {
        let clock: Arc<dyn Clock> = Arc::new(TestClock::new());
        let ((), timings) = trace(&clock, || {
            span(Phase::Filter, || span(Phase::Arrange, || {}));
        });
        assert!(timings.is_zero());
    }

    #[test]
    fn phase_timings_absorb_sums_elementwise() {
        let mut a = PhaseTimings::default();
        a.record(Phase::Filter, 5);
        a.total_nanos = 10;
        let mut b = PhaseTimings::default();
        b.record(Phase::Filter, 7);
        b.record(Phase::Drill, 3);
        b.total_nanos = 15;
        a.absorb(&b);
        assert_eq!(a.nanos(Phase::Filter), 12);
        assert_eq!(a.nanos(Phase::Drill), 3);
        assert_eq!(a.total_nanos, 25);
    }

    #[test]
    fn phase_timings_json_shape() {
        let mut t = PhaseTimings::default();
        t.record(Phase::Serialize, 9);
        t.total_nanos = 11;
        assert_eq!(
            t.to_json(),
            "{\"total_nanos\":11,\"filter_nanos\":0,\"screen_nanos\":0,\
             \"graph_nanos\":0,\"drill_nanos\":0,\"arrange_nanos\":0,\
             \"serialize_nanos\":9}"
        );
    }

    #[test]
    fn histogram_bucket_boundaries_are_exact() {
        // Bucket index is the bit length; bucket i's inclusive upper
        // bound is 2^i − 1.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(1), 1);
        assert_eq!(Histogram::bucket_upper_bound(3), 7);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
        // Every boundary is tight: 2^i − 1 lands in bucket i, 2^i in
        // bucket i + 1.
        for i in 1..64usize {
            let ub = Histogram::bucket_upper_bound(i);
            assert_eq!(Histogram::bucket_index(ub), i);
            assert_eq!(Histogram::bucket_index(ub + 1), i + 1);
        }
    }

    #[test]
    fn histogram_merge_equals_whole_stream() {
        let samples: Vec<u64> = vec![0, 1, 1, 2, 3, 7, 8, 100, 1_000_000, u64::MAX];
        let mut whole = Histogram::new();
        for &s in &samples {
            whole.record(s);
        }
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, &s) in samples.iter().enumerate() {
            if i % 2 == 0 {
                left.record(s);
            } else {
                right.record(s);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn registry_renders_deterministically() {
        let registry = MetricsRegistry::new();
        registry.counter_add("utk_requests_total", "Requests by op.", "op=\"query\"", 2);
        registry.counter_add("utk_requests_total", "Requests by op.", "op=\"batch\"", 1);
        registry.gauge_set("utk_inflight", "In-flight requests.", "", 0);
        registry.observe("utk_request_nanos", "Latency.", "op=\"query\"", 0);
        let text = registry.render_prometheus();
        // Headers present, labels sorted, histogram shape correct.
        assert!(text.contains("# TYPE utk_requests_total counter"));
        assert!(text.contains("utk_requests_total{op=\"batch\"} 1\n"));
        assert!(text.contains("utk_requests_total{op=\"query\"} 2\n"));
        assert!(text.contains("utk_inflight 0\n"));
        assert!(text.contains("utk_request_nanos_bucket{op=\"query\",le=\"0\"} 1\n"));
        assert!(text.contains("utk_request_nanos_bucket{op=\"query\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("utk_request_nanos_sum{op=\"query\"} 0\n"));
        assert!(text.contains("utk_request_nanos_count{op=\"query\"} 1\n"));
        // batch sorts before query (BTreeMap order), and repeated
        // renders are byte-identical.
        let batch_at = text.find("op=\"batch\"").expect("batch series");
        let query_at = text.find("op=\"query\"").expect("query series");
        assert!(batch_at < query_at);
        assert_eq!(text, registry.render_prometheus());
    }

    #[test]
    fn registry_json_twin_matches() {
        let registry = MetricsRegistry::new();
        registry.counter_add("a_total", "A.", "", 3);
        registry.observe("b_nanos", "B.", "", 5);
        let json = registry.render_json();
        assert!(json.starts_with("{\"counters\":["));
        assert!(json.contains("{\"name\":\"a_total\",\"labels\":\"\",\"value\":3}"));
        assert!(json.contains("\"count\":1,\"sum\":5,\"buckets\":[0,0,0,1,"));
        assert_eq!(json, registry.render_json());
    }

    #[test]
    fn histogram_buckets_monotone_cumulative_in_exposition() {
        let registry = MetricsRegistry::new();
        for v in [0u64, 1, 2, 5, 9, 100] {
            registry.observe("h", "H.", "", v);
        }
        let text = registry.render_prometheus();
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines() {
            let Some(rest) = line.strip_prefix("h_bucket{le=\"") else {
                continue;
            };
            let value: u64 = rest
                .split("} ")
                .nth(1)
                .expect("sample value")
                .parse()
                .expect("numeric sample");
            assert!(value >= last, "cumulative buckets must be monotone");
            last = value;
            bucket_lines += 1;
        }
        assert_eq!(bucket_lines, HISTOGRAM_BUCKETS);
        assert_eq!(last, 6);
    }
}
