//! Instrumentation counters for the experiments.
//!
//! The paper's primary metric is wall-clock time, plus the space
//! overhead of arrangement indexing (Figure 13(b)). [`Stats`] tracks
//! both, alongside work counters useful for the ablation benches.
//!
//! [`Stats::timings`] carries the per-phase wall-clock breakdown from
//! [`crate::obs`]. Like [`Stats::stolen_tasks`] and
//! [`Stats::dataset_epoch`], timings are hardware- and scheduling-
//! dependent and therefore **never** part of the deterministic JSON
//! wire format ([`crate::wire::stats_json`] does not serialize them).

/// Work and space counters accumulated during one UTK query.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Records retained by the filtering step (r-skyband or k-skyband
    /// / onion candidates).
    pub candidates: usize,
    /// Half-spaces inserted into arrangements.
    pub halfspaces_inserted: usize,
    /// Arrangement cells created (including split children).
    pub cells_created: usize,
    /// Local arrangements constructed (one per `Verify`/`Partition`
    /// call, §4.5).
    pub arrangements_built: usize,
    /// Drill operations executed (§4.3).
    pub drills: usize,
    /// Drills that verified the candidate directly.
    pub drill_hits: usize,
    /// r-dominance tests performed.
    pub rdom_tests: usize,
    /// R-tree entries (nodes + records) popped during BBS.
    pub bbs_pops: usize,
    /// Current bytes held by live arrangement indices.
    pub live_arrangement_bytes: usize,
    /// Peak of [`Stats::live_arrangement_bytes`] — the paper's space
    /// requirement metric.
    pub peak_arrangement_bytes: usize,
    /// kSPR invocations (baselines only).
    pub kspr_calls: usize,
    /// Queries whose filtering step (r-skyband + graph) was served
    /// from the [`crate::engine::UtkEngine`] cache instead of being
    /// recomputed.
    pub filter_cache_hits: usize,
    /// Queries whose filtering was rebuilt by re-screening a cached
    /// candidate set of a containing region (`R' ⊇ R`) instead of
    /// running BBS over the whole tree.
    pub superset_hits: usize,
    /// Bytes resident in the engine's filter cache after this query's
    /// filtering step (a gauge, not a counter; 0 when the cache is
    /// disabled or bypassed).
    pub filter_cache_bytes: usize,
    /// Cache entries evicted while inserting this query's filtering
    /// output (LRU, byte-budget driven).
    pub evictions: usize,
    /// Members the r-skyband screen skipped via the pivot-order
    /// prefix cut (members whose pivot score is provably too low to
    /// r-dominate the probe).
    pub screen_prefix_skips: usize,
    /// Member blocks swept by the blocked screen kernel (each block is
    /// `utk_geom::SCORE_LANES` members wide; 0 on the scalar oracle
    /// path).
    pub kernel_blocks: usize,
    /// Blocks the `f32` reject-only prefilter disposed of without an
    /// exact `f64` verification.
    pub prefilter_rejects: usize,
    /// Blocks that survived the `f32` prefilter and were verified with
    /// the exact `f64` kernel.
    pub prefilter_verifies: usize,
    /// Worker threads of the pool that executed this query's parallel
    /// phase (0 for a fully sequential query). Parallel RSA and
    /// parallel JAA populate it; deterministic for a given engine.
    pub pool_threads: usize,
    /// Pool tasks of this query executed by a worker other than the
    /// one that queued them (work actually stolen). Scheduling-
    /// dependent, hence *not* part of the JSON wire format.
    pub stolen_tasks: usize,
    /// Number of distinct `(k, region, scoring)` groups in the
    /// [`crate::engine::UtkEngine::run_many`] batch this query was
    /// part of (0 for a standalone query).
    pub batch_group_count: usize,
    /// Epoch of the dataset snapshot this query ran against: 0 for a
    /// freshly built engine, bumped by every
    /// [`crate::engine::UtkEngine::apply_update`]. Engine-history
    /// dependent (a rebuilt engine restarts at 0), so — like
    /// [`Stats::stolen_tasks`] — it is *not* part of the JSON wire
    /// format.
    pub dataset_epoch: usize,
    /// Per-phase wall-clock breakdown recorded by the
    /// [`crate::obs`] tracer when the query ran under
    /// [`crate::engine::UtkEngine::run`]. Zeroed for untraced paths
    /// (the legacy free functions). Durations are non-deterministic,
    /// so — like [`Stats::stolen_tasks`] — they are *not* part of the
    /// JSON wire format.
    pub timings: crate::obs::PhaseTimings,
}

impl Stats {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `bytes` of newly built arrangement index.
    pub fn arrangement_grew(&mut self, bytes: usize) {
        self.live_arrangement_bytes += bytes;
        if self.live_arrangement_bytes > self.peak_arrangement_bytes {
            self.peak_arrangement_bytes = self.live_arrangement_bytes;
        }
    }

    /// Registers `bytes` of discarded arrangement index.
    pub fn arrangement_dropped(&mut self, bytes: usize) {
        self.live_arrangement_bytes = self.live_arrangement_bytes.saturating_sub(bytes);
    }

    /// Merges counters from another run (used when averaging over the
    /// 50 query boxes of an experiment).
    pub fn absorb(&mut self, other: &Stats) {
        self.candidates += other.candidates;
        self.halfspaces_inserted += other.halfspaces_inserted;
        self.cells_created += other.cells_created;
        self.arrangements_built += other.arrangements_built;
        self.drills += other.drills;
        self.drill_hits += other.drill_hits;
        self.rdom_tests += other.rdom_tests;
        self.bbs_pops += other.bbs_pops;
        self.peak_arrangement_bytes = self
            .peak_arrangement_bytes
            .max(other.peak_arrangement_bytes);
        self.kspr_calls += other.kspr_calls;
        self.filter_cache_hits += other.filter_cache_hits;
        self.superset_hits += other.superset_hits;
        // A gauge: a merged run reports its high-water mark.
        self.filter_cache_bytes = self.filter_cache_bytes.max(other.filter_cache_bytes);
        self.evictions += other.evictions;
        self.screen_prefix_skips += other.screen_prefix_skips;
        self.kernel_blocks += other.kernel_blocks;
        self.prefilter_rejects += other.prefilter_rejects;
        self.prefilter_verifies += other.prefilter_verifies;
        // Configuration-like counters: a merge keeps the widest value
        // rather than a meaningless sum.
        self.pool_threads = self.pool_threads.max(other.pool_threads);
        self.stolen_tasks += other.stolen_tasks;
        self.batch_group_count = self.batch_group_count.max(other.batch_group_count);
        self.dataset_epoch = self.dataset_epoch.max(other.dataset_epoch);
        self.timings.absorb(&other.timings);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut s = Stats::new();
        s.arrangement_grew(100);
        s.arrangement_grew(50);
        s.arrangement_dropped(120);
        s.arrangement_grew(10);
        assert_eq!(s.peak_arrangement_bytes, 150);
        assert_eq!(s.live_arrangement_bytes, 40);
    }

    #[test]
    fn absorb_takes_max_peak() {
        let mut a = Stats::new();
        a.arrangement_grew(10);
        let mut b = Stats::new();
        b.arrangement_grew(99);
        a.absorb(&b);
        assert_eq!(a.peak_arrangement_bytes, 99);
    }
}
