//! Exact `d = 2` oracle via the dual-line sweep of §3.2.
//!
//! For two-dimensional data the preference domain is the interval
//! `w1 ∈ [0, 1]`, records are dual lines `S(p)(w1)`, and the UTK
//! answers are read off the ≤k-level of the line arrangement: between
//! two consecutive crossing points of any pair of lines the score
//! ranking is constant. Enumerating all pairwise crossings inside `R`
//! therefore yields the exact UTK1/UTK2 output in `O(n² log n)` —
//! far too slow for real processing, but a perfect independent ground
//! truth for testing RSA and JAA.

use crate::topk::top_k_brute;

/// An oracle interval `(lo, hi, top_k)`: the exact sorted top-k set
/// holding on `(lo, hi)`.
pub type SweepInterval = (f64, f64, Vec<u32>);

/// Exact UTK2 for `d = 2`: returns `(intervals, utk1)`, where each
/// interval carries the exact (sorted) top-k set holding on its open
/// range, and `utk1` is the sorted union.
pub fn sweep_2d(points: &[Vec<f64>], lo: f64, hi: f64, k: usize) -> (Vec<SweepInterval>, Vec<u32>) {
    assert!(points.iter().all(|p| p.len() == 2), "oracle is d = 2 only");
    assert!(lo <= hi);

    // Crossing points of all dual-line pairs inside (lo, hi):
    // S(p)(w) = p1·w + p2·(1 − w), so lines cross where
    // (p1 − p2 − q1 + q2)·w = q2 − p2.
    let mut cuts = vec![lo, hi];
    for i in 0..points.len() {
        for j in i + 1..points.len() {
            let (p, q) = (&points[i], &points[j]);
            let denom = (p[0] - p[1]) - (q[0] - q[1]);
            if denom.abs() < 1e-15 {
                continue; // parallel lines
            }
            let w = (q[1] - p[1]) / denom;
            if w > lo && w < hi {
                cuts.push(w);
            }
        }
    }
    cuts.sort_by(|a, b| a.total_cmp(b));
    cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let mut intervals = Vec::new();
    let mut union: Vec<u32> = Vec::new();
    for seg in cuts.windows(2) {
        let (a, b) = (seg[0], seg[1]);
        if b - a < 1e-12 {
            continue;
        }
        let mid = 0.5 * (a + b);
        let mut top = top_k_brute(points, &[mid], k);
        top.sort_unstable();
        union.extend_from_slice(&top);
        // Merge with the previous interval when the set is unchanged
        // (crossings among lines outside the top-k don't matter).
        if let Some((_, prev_hi, prev_set)) = intervals.last_mut() {
            if *prev_set == top {
                *prev_hi = b;
                continue;
            }
        }
        intervals.push((a, b, top));
    }
    union.sort_unstable();
    union.dedup();
    (intervals, union)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaa::{jaa, JaaOptions};
    use crate::rsa::{rsa, RsaOptions};
    use rand::prelude::*;
    use utk_geom::Region;

    fn random_points(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
            .collect()
    }

    #[test]
    fn sweep_simple_crossover() {
        // Two lines crossing at w = 0.5.
        let pts = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let (intervals, utk1) = sweep_2d(&pts, 0.2, 0.8, 1);
        assert_eq!(utk1, vec![0, 1]);
        assert_eq!(intervals.len(), 2);
        assert_eq!(intervals[0].2, vec![1]); // small w1 favours record 1
        assert_eq!(intervals[1].2, vec![0]);
        assert!((intervals[0].1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn intervals_tile_the_query_range() {
        let pts = random_points(40, 5);
        let (intervals, _) = sweep_2d(&pts, 0.1, 0.9, 3);
        assert!((intervals[0].0 - 0.1).abs() < 1e-12);
        assert!((intervals.last().unwrap().1 - 0.9).abs() < 1e-12);
        for pair in intervals.windows(2) {
            assert!((pair[0].1 - pair[1].0).abs() < 1e-12, "gap in tiling");
            assert_ne!(pair[0].2, pair[1].2, "unmerged duplicate sets");
        }
    }

    #[test]
    fn rsa_matches_oracle_d2() {
        for (seed, k) in [(1u64, 1usize), (2, 3), (3, 5), (4, 2)] {
            let pts = random_points(80, seed);
            let (lo, hi) = (0.25, 0.55);
            let (_, want) = sweep_2d(&pts, lo, hi, k);
            let region = Region::hyperrect(vec![lo], vec![hi]);
            let got = rsa(&pts, &region, k, &RsaOptions::default());
            assert_eq!(got.records, want, "seed {seed}, k {k}");
        }
    }

    #[test]
    fn jaa_matches_oracle_d2() {
        for (seed, k) in [(11u64, 2usize), (12, 4)] {
            let pts = random_points(60, seed);
            let (lo, hi) = (0.3, 0.7);
            let (want_intervals, want_union) = sweep_2d(&pts, lo, hi, k);
            let region = Region::hyperrect(vec![lo], vec![hi]);
            let got = jaa(&pts, &region, k, &JaaOptions::default());
            assert_eq!(got.records, want_union, "seed {seed}");
            // Distinct top-k sets must match exactly.
            let mut got_sets: Vec<Vec<u32>> = got.cells.iter().map(|c| c.top_k.clone()).collect();
            got_sets.sort();
            got_sets.dedup();
            let mut want_sets: Vec<Vec<u32>> =
                want_intervals.iter().map(|(_, _, s)| s.clone()).collect();
            want_sets.sort();
            want_sets.dedup();
            assert_eq!(got_sets, want_sets, "seed {seed}, k {k}");
        }
    }
}
