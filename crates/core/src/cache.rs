//! Byte-budgeted LRU caching for the engine's memoized state.
//!
//! The engine memoizes two expensive artifacts: r-skyband candidate
//! sets (per `(k, region, scoring)`) and transformed datasets (per
//! generalized scoring). Both used to live in plain `HashMap`s bounded
//! by *entry count* with arbitrary eviction — fine until one entry is
//! a thousand times larger than another. [`ByteLru`] replaces that
//! with a real cache policy:
//!
//! * **byte-budget accounting** — each entry carries its payload size
//!   (the `CandidateSet` / transformed-dataset bytes, not an entry
//!   count), and the cache holds entries until their *total* bytes
//!   exceed the budget;
//! * **LRU eviction** — entries are stamped on insert and on every
//!   hit; eviction removes the least-recently-used entry first (an
//!   `O(entries)` min-scan per eviction, deliberately simple — the
//!   byte budget keeps entry counts small, and a scan has no unsafe
//!   intrusive-list bookkeeping to get wrong);
//! * **oversized entries are not cached** — a single payload larger
//!   than the whole budget would only evict everything else and then
//!   get evicted itself, so it is returned to the caller uncached.
//!
//! The cache is deliberately *not* internally synchronized: the engine
//! wraps it in the same `Mutex` it already used, keeping lock behavior
//! identical to the previous implementation.
//!
//! Cross-region *superset reuse* (an r-skyband cached for `R' ⊇ R` is
//! a valid superset filter for `R`) lives in the engine, not here —
//! the cache only exposes the non-touching [`ByteLru::scan`] iterator
//! that the probe is built on.

use std::collections::HashMap;
use std::hash::Hash;

/// One cached payload with its size and recency stamp.
#[derive(Debug, Clone)]
struct Slot<V> {
    value: V,
    bytes: usize,
    stamp: u64,
}

/// A byte-budgeted LRU map. See the [module docs](self) for the
/// policy.
#[derive(Debug)]
pub struct ByteLru<K, V> {
    map: HashMap<K, Slot<V>>,
    budget: usize,
    used: usize,
    tick: u64,
    evictions: usize,
}

impl<K: Eq + Hash + Clone, V> ByteLru<K, V> {
    /// An empty cache holding at most `budget` payload bytes.
    pub fn new(budget: usize) -> Self {
        Self {
            map: HashMap::new(),
            budget,
            used: 0,
            tick: 0,
            evictions: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Payload bytes currently held.
    pub fn bytes_used(&self) -> usize {
        self.used
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Total evictions over the cache's lifetime.
    pub fn evictions(&self) -> usize {
        self.evictions
    }

    /// Looks up `key`, marking the entry most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|slot| {
            slot.stamp = tick;
            &slot.value
        })
    }

    /// Marks `key` most-recently-used without returning it (used when
    /// a superset entry serves a containment probe).
    pub fn touch(&mut self, key: &K) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(slot) = self.map.get_mut(key) {
            slot.stamp = tick;
        }
    }

    /// Iterates `(key, value)` pairs without touching recency — the
    /// substrate of the engine's superset-containment probe.
    pub fn scan(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter().map(|(k, slot)| (k, &slot.value))
    }

    /// Inserts `key → value` accounted at `bytes`, evicting
    /// least-recently-used entries until the budget holds again.
    /// Returns how many entries were evicted. Payloads larger than the
    /// whole budget are not cached (returns 0; nothing is disturbed).
    pub fn insert(&mut self, key: K, value: V, bytes: usize) -> usize {
        if bytes > self.budget {
            return 0;
        }
        self.tick += 1;
        let slot = Slot {
            value,
            bytes,
            stamp: self.tick,
        };
        if let Some(old) = self.map.insert(key, slot) {
            self.used -= old.bytes;
        }
        self.used += bytes;
        self.evict_over_budget()
    }

    /// Drops every entry, keeping the budget, the recency clock and
    /// the lifetime eviction counter (cleared entries are *not*
    /// evictions — they were invalidated, not displaced).
    pub fn clear(&mut self) {
        self.map.clear();
        self.used = 0;
    }

    /// Removes and returns every entry as `(key, value, bytes)`,
    /// ordered least-recently-used first, leaving the cache empty
    /// (budget, clock and eviction counter intact). Re-inserting a
    /// subset in the returned order reproduces the original relative
    /// recency — this is the engine's dataset-mutation hook: entries
    /// are drained, re-validated, re-keyed under the new epoch, and
    /// put back without disturbing LRU order.
    pub fn take_entries(&mut self) -> Vec<(K, V, usize)> {
        let mut slots: Vec<(K, Slot<V>)> = self.map.drain().collect();
        self.used = 0;
        slots.sort_by_key(|(_, slot)| slot.stamp);
        slots
            .into_iter()
            .map(|(k, slot)| (k, slot.value, slot.bytes))
            .collect()
    }

    /// Re-sizes the byte budget in place, evicting LRU entries if the
    /// new budget is smaller than the bytes currently held (growing is
    /// free and disturbs nothing). Returns how many entries were
    /// evicted. This is what lets a registry *share* one budget across
    /// many engines: each engine's slice can shrink or grow as
    /// datasets load and unload, without discarding a still-valid
    /// cache wholesale.
    pub fn set_budget(&mut self, budget: usize) -> usize {
        self.budget = budget;
        self.evict_over_budget()
    }

    /// Evicts least-recently-used entries until `used ≤ budget`;
    /// returns the number evicted.
    fn evict_over_budget(&mut self) -> usize {
        let mut evicted = 0;
        while self.used > self.budget {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.stamp)
                .map(|(k, _)| k.clone())
                // utk-lint: allow(panic) -- invariant: used > budget implies the map is non-empty
                .expect("over-budget cache cannot be empty");
            // utk-lint: allow(panic) -- invariant: victim key was just drawn from this map
            let slot = self.map.remove(&victim).expect("victim exists");
            self.used -= slot.bytes;
            self.evictions += 1;
            evicted += 1;
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used_first() {
        let mut cache: ByteLru<&str, u32> = ByteLru::new(30);
        cache.insert("a", 1, 10);
        cache.insert("b", 2, 10);
        cache.insert("c", 3, 10);
        assert_eq!(cache.len(), 3);
        // Touch "a" so "b" becomes the LRU victim.
        assert_eq!(cache.get(&"a"), Some(&1));
        let evicted = cache.insert("d", 4, 10);
        assert_eq!(evicted, 1);
        assert!(cache.get(&"b").is_none(), "LRU entry must go first");
        assert_eq!(cache.get(&"a"), Some(&1));
        assert_eq!(cache.get(&"c"), Some(&3));
        assert_eq!(cache.get(&"d"), Some(&4));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn byte_budget_not_entry_count_bounds_the_cache() {
        let mut cache: ByteLru<u32, u32> = ByteLru::new(100);
        for i in 0..10 {
            cache.insert(i, i, 5); // 50 bytes total: all fit
        }
        assert_eq!(cache.len(), 10);
        assert_eq!(cache.bytes_used(), 50);
        // One big entry forces several small ones out.
        let evicted = cache.insert(99, 99, 80);
        assert!(evicted >= 3, "evicted {evicted}");
        assert!(cache.bytes_used() <= 100);
        assert_eq!(cache.get(&99), Some(&99));
    }

    #[test]
    fn oversized_payloads_are_not_cached() {
        let mut cache: ByteLru<u32, u32> = ByteLru::new(10);
        cache.insert(1, 1, 4);
        assert_eq!(cache.insert(2, 2, 11), 0);
        assert!(cache.get(&2).is_none());
        assert_eq!(cache.get(&1), Some(&1), "existing entries undisturbed");
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn reinsert_replaces_accounting() {
        let mut cache: ByteLru<&str, u32> = ByteLru::new(20);
        cache.insert("a", 1, 8);
        cache.insert("a", 2, 12);
        assert_eq!(cache.bytes_used(), 12);
        assert_eq!(cache.get(&"a"), Some(&2));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn scan_does_not_touch_recency() {
        let mut cache: ByteLru<&str, u32> = ByteLru::new(20);
        cache.insert("old", 1, 10);
        cache.insert("new", 2, 10);
        // Scanning "old" must not rescue it from eviction.
        let seen: Vec<&str> = cache.scan().map(|(k, _)| *k).collect();
        assert_eq!(seen.len(), 2);
        cache.insert("next", 3, 10);
        assert!(cache.get(&"old").is_none());
    }

    #[test]
    fn set_budget_shrinks_by_evicting_lru_and_grows_for_free() {
        let mut cache: ByteLru<&str, u32> = ByteLru::new(30);
        cache.insert("a", 1, 10);
        cache.insert("b", 2, 10);
        cache.insert("c", 3, 10);
        // Touch "a": "b" is now the LRU victim when the budget halves.
        assert_eq!(cache.get(&"a"), Some(&1));
        let evicted = cache.set_budget(20);
        assert_eq!(evicted, 1);
        assert_eq!(cache.budget(), 20);
        assert!(cache.get(&"b").is_none());
        assert_eq!(cache.bytes_used(), 20);
        // Growing evicts nothing and keeps entries resident.
        assert_eq!(cache.set_budget(100), 0);
        assert_eq!(cache.get(&"a"), Some(&1));
        assert_eq!(cache.get(&"c"), Some(&3));
        // New headroom is usable immediately.
        assert_eq!(cache.insert("d", 4, 60), 0);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn take_entries_orders_lru_first_and_preserves_recency_on_reinsert() {
        let mut cache: ByteLru<&str, u32> = ByteLru::new(100);
        cache.insert("a", 1, 10);
        cache.insert("b", 2, 10);
        cache.insert("c", 3, 10);
        assert_eq!(cache.get(&"a"), Some(&1)); // "b" is now LRU
        let drained = cache.take_entries();
        assert!(cache.is_empty());
        assert_eq!(cache.bytes_used(), 0);
        let keys: Vec<&str> = drained.iter().map(|(k, _, _)| *k).collect();
        assert_eq!(keys, vec!["b", "c", "a"]);
        // Re-inserting in drain order reproduces the recency: after
        // shrinking, "b" (the old LRU) is evicted first again.
        for (k, v, bytes) in drained {
            cache.insert(k, v, bytes);
        }
        cache.set_budget(20);
        assert!(cache.get(&"b").is_none());
        assert_eq!(cache.get(&"a"), Some(&1));
        assert_eq!(cache.get(&"c"), Some(&3));
    }

    #[test]
    fn clear_drops_entries_but_not_counters() {
        let mut cache: ByteLru<&str, u32> = ByteLru::new(10);
        cache.insert("a", 1, 6);
        cache.insert("b", 2, 6); // evicts "a"
        assert_eq!(cache.evictions(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.bytes_used(), 0);
        assert_eq!(cache.budget(), 10);
        assert_eq!(cache.evictions(), 1, "clear is not an eviction");
    }

    #[test]
    fn zero_budget_caches_nothing() {
        let mut cache: ByteLru<u32, u32> = ByteLru::new(0);
        assert_eq!(cache.insert(1, 1, 1), 0);
        assert!(cache.is_empty());
        // Zero-byte payloads do fit a zero budget (degenerate but
        // consistent).
        cache.insert(2, 2, 0);
        assert_eq!(cache.get(&2), Some(&2));
    }
}
