//! Exact processing of uncertain top-k queries (UTK) in multi-criteria
//! settings — a Rust implementation of Mouratidis & Tang, PVLDB 11(8),
//! VLDB 2018.
//!
//! Given a dataset of `d`-dimensional records, a value `k`, and a
//! convex region `R` of the preference domain (approximate user
//! preferences), the **uncertain top-k query** comes in two versions:
//!
//! * **UTK1** — the minimal set of records appearing in the top-k set
//!   for at least one weight vector in `R`;
//! * **UTK2** — the partitioning of `R` into cells, each labelled with
//!   its exact top-k set.
//!
//! # Quick start: the engine
//!
//! [`engine::UtkEngine`] is the public entry point: it owns the
//! dataset, builds the R-tree once, memoizes the per-`(k, R)`
//! r-skyband state, and answers queries described by the
//! [`engine::UtkQuery`] builder with typed results and
//! [`error::UtkError`] errors instead of panics.
//!
//! ```
//! use utk_core::prelude::*;
//!
//! // Figure 1 of the paper: 7 hotels, k = 2,
//! // R = [0.05, 0.45] × [0.05, 0.25].
//! let hotels = vec![
//!     vec![8.3, 9.1, 7.2], vec![2.4, 9.6, 8.6], vec![5.4, 1.6, 4.1],
//!     vec![2.6, 6.9, 9.4], vec![7.3, 3.1, 2.4], vec![7.9, 6.4, 6.6],
//!     vec![8.6, 7.1, 4.3],
//! ];
//! let engine = UtkEngine::new(hotels)?;
//! let region = Region::hyperrect(vec![0.05, 0.05], vec![0.45, 0.25]);
//!
//! // UTK1: {p1, p2, p4, p6} can enter the top-2 somewhere in R.
//! let utk1 = engine.run(&UtkQuery::utk1(2).region(region.clone()))?;
//! assert_eq!(utk1.records(), &[0, 1, 3, 5]);
//!
//! // UTK2 reuses the engine's memoized r-skyband for the same (k, R).
//! let utk2 = engine.run(&UtkQuery::utk2(2).region(region))?;
//! assert_eq!(utk2.records(), utk1.records());
//! assert_eq!(utk2.stats().filter_cache_hits, 1);
//! # Ok::<(), utk_core::UtkError>(())
//! ```
//!
//! The pre-engine free functions ([`rsa::rsa`], [`jaa::jaa`],
//! [`baseline::baseline_utk1`], …) remain as thin wrappers over the
//! same machinery for existing call sites; they rebuild all state per
//! call and panic on malformed input.
//!
//! # Paper map
//!
//! | module | paper section |
//! |---|---|
//! | [`engine`] | unified query API (extension beyond the paper) |
//! | [`error`] | typed query errors (extension beyond the paper) |
//! | [`rdominance`] | Definition 1 (r-dominance) |
//! | [`skyband`] | §2 BBS k-skyband, §4.1 r-skyband filtering |
//! | [`graph`] | §4.1 r-dominance graph `G` |
//! | [`drill`] | §4.3 drill optimization (graph top-k) |
//! | [`rsa`] | §4 RSA algorithm (UTK1) |
//! | [`jaa`] | §5 JAA algorithm (UTK2) |
//! | [`scoring`] | §6 generalized scoring functions |
//! | [`parallel`] | work-stealing pool, parallel RSA/JAA (extension beyond the paper) |
//! | [`obs`] | §6 wall-clock measurement substrate (extension beyond the paper) |
//! | [`onion`] | §3.3 onion layers (filter of the ON baseline) |
//! | [`kspr`] | §3.3 kSPR building block \[45\] |
//! | [`baseline`] | §3.3 SK and ON baselines |
//! | [`oracle`] | §3.2 exact `d = 2` sweep (ground truth for tests) |

#![warn(missing_docs)]
// The 2026 unsafe audit found zero unsafe blocks workspace-wide;
// keep it that way. Any future unsafe must demote this to deny,
// carry a `// SAFETY:` comment (utk-lint enforces it), and say why
// no safe formulation works.
#![forbid(unsafe_code)]

pub mod baseline;
pub mod cache;
pub mod drill;
pub mod engine;
pub mod error;
pub mod graph;
pub mod jaa;
pub mod kspr;
pub mod obs;
pub mod onion;
pub mod oracle;
pub mod parallel;
pub mod rdominance;
pub mod rsa;
pub mod scoring;
pub mod skyband;
pub mod stats;
pub mod topk;
pub mod wire;

/// One-stop imports for typical use: the engine API, the legacy free
/// functions, and the shared substrate types.
pub mod prelude {
    pub use crate::baseline::{baseline_utk1, baseline_utk2, FilterKind};
    pub use crate::cache::ByteLru;
    pub use crate::engine::{Algo, QueryKind, QueryResult, TopKResult, UtkEngine, UtkQuery};
    pub use crate::error::UtkError;
    pub use crate::jaa::{jaa, jaa_parallel, jaa_with_tree, JaaOptions, Utk2Cell, Utk2Result};
    pub use crate::obs::{
        Clock, Histogram, MetricsRegistry, MonotonicClock, Phase, PhaseTimings, TestClock,
    };
    pub use crate::parallel::{rsa_parallel, rsa_parallel_with_tree, TaskSet, ThreadPool};
    pub use crate::rdominance::ScreenKernel;
    pub use crate::rsa::{rsa, rsa_with_tree, RsaOptions, Utk1Result};
    pub use crate::scoring::GeneralScoring;
    pub use crate::skyband::{
        k_skyband, r_skyband, r_skyband_from_superset, r_skyband_from_superset_with_kernel,
        r_skyband_with_kernel, CandidateSet,
    };
    pub use crate::stats::Stats;
    pub use utk_geom::{PointStore, PointStoreBuilder, Region};
}

pub use prelude::*;
