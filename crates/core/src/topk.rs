//! Plain top-k scoring utilities (brute force), used by the oracle,
//! the examples and the tests as an independent reference, and by the
//! Figure 10(b) incremental-top-k comparison.

use utk_geom::{pref_score, PointStore};

/// The `k` highest-scoring record indices under reduced weights `w`,
/// in descending score order; ties break toward the smaller index
/// (deterministic).
pub fn top_k_brute(points: &[Vec<f64>], w: &[f64], k: usize) -> Vec<u32> {
    top_k_scored(points.iter().map(|p| p.as_slice()), w, k)
}

/// [`top_k_brute`] over a flat [`PointStore`] — the engine's hot
/// path; identical scoring, sort, and tie-break.
pub fn top_k_store(points: &PointStore, w: &[f64], k: usize) -> Vec<u32> {
    top_k_scored(points.iter(), w, k)
}

fn top_k_scored<'a>(points: impl Iterator<Item = &'a [f64]>, w: &[f64], k: usize) -> Vec<u32> {
    let mut scored: Vec<(f64, u32)> = points
        .enumerate()
        .map(|(i, p)| (pref_score(p, w), i as u32))
        .collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    scored.truncate(k);
    scored.into_iter().map(|(_, i)| i).collect()
}

/// Top-k over a subset of record indices.
pub fn top_k_brute_subset(points: &[Vec<f64>], subset: &[u32], w: &[f64], k: usize) -> Vec<u32> {
    let mut scored: Vec<(f64, u32)> = subset
        .iter()
        .map(|&i| (pref_score(&points[i as usize], w), i))
        .collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    scored.truncate(k);
    scored.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_top2_at_weights() {
        // Figure 1: at the user's indicative weights (0.3, 0.5, 0.2)
        // the top-2 hotels are p1 (8.48) and p2 (7.24).
        let hotels = vec![
            vec![8.3, 9.1, 7.2],
            vec![2.4, 9.6, 8.6],
            vec![5.4, 1.6, 4.1],
            vec![2.6, 6.9, 9.4],
            vec![7.3, 3.1, 2.4],
            vec![7.9, 6.4, 6.6],
            vec![8.6, 7.1, 4.3],
        ];
        let top = top_k_brute(&hotels, &[0.3, 0.5], 2);
        assert_eq!(top, vec![0, 1]);
    }

    #[test]
    fn deterministic_tie_break() {
        let pts = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![0.0, 0.0]];
        assert_eq!(top_k_brute(&pts, &[0.5], 2), vec![0, 1]);
    }

    #[test]
    fn subset_restricts_candidates() {
        let pts = vec![vec![9.0], vec![5.0], vec![7.0]];
        assert_eq!(top_k_brute_subset(&pts, &[1, 2], &[], 1), vec![2]);
    }

    #[test]
    fn store_variant_matches_rows() {
        use rand::prelude::*;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let pts: Vec<Vec<f64>> = (0..100)
            .map(|_| (0..3).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let store = utk_geom::PointStore::from_rows(&pts);
        for k in [1, 5, 20] {
            assert_eq!(
                top_k_brute(&pts, &[0.2, 0.3], k),
                top_k_store(&store, &[0.2, 0.3], k)
            );
        }
    }
}
