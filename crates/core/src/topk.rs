//! Plain top-k scoring utilities (brute force), used by the oracle,
//! the examples and the tests as an independent reference, and by the
//! Figure 10(b) incremental-top-k comparison.

use utk_geom::pref_score;

/// The `k` highest-scoring record indices under reduced weights `w`,
/// in descending score order; ties break toward the smaller index
/// (deterministic).
pub fn top_k_brute(points: &[Vec<f64>], w: &[f64], k: usize) -> Vec<u32> {
    let mut scored: Vec<(f64, u32)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (pref_score(p, w), i as u32))
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    scored.truncate(k);
    scored.into_iter().map(|(_, i)| i).collect()
}

/// Top-k over a subset of record indices.
pub fn top_k_brute_subset(points: &[Vec<f64>], subset: &[u32], w: &[f64], k: usize) -> Vec<u32> {
    let mut scored: Vec<(f64, u32)> = subset
        .iter()
        .map(|&i| (pref_score(&points[i as usize], w), i))
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    scored.truncate(k);
    scored.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_top2_at_weights() {
        // Figure 1: at the user's indicative weights (0.3, 0.5, 0.2)
        // the top-2 hotels are p1 (8.48) and p2 (7.24).
        let hotels = vec![
            vec![8.3, 9.1, 7.2],
            vec![2.4, 9.6, 8.6],
            vec![5.4, 1.6, 4.1],
            vec![2.6, 6.9, 9.4],
            vec![7.3, 3.1, 2.4],
            vec![7.9, 6.4, 6.6],
            vec![8.6, 7.1, 4.3],
        ];
        let top = top_k_brute(&hotels, &[0.3, 0.5], 2);
        assert_eq!(top, vec![0, 1]);
    }

    #[test]
    fn deterministic_tie_break() {
        let pts = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![0.0, 0.0]];
        assert_eq!(top_k_brute(&pts, &[0.5], 2), vec![0, 1]);
    }

    #[test]
    fn subset_restricts_candidates() {
        let pts = vec![vec![9.0], vec![5.0], vec![7.0]];
        assert_eq!(top_k_brute_subset(&pts, &[1, 2], &[], 1), vec![2]);
    }
}
