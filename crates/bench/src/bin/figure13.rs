//! Regenerates Figure 13 (effect of dimensionality d; time and space).
//!
//! Usage: `cargo run --release -p utk-bench --bin figure13 [--paper]`

use utk_bench::figures::{figure13, print_figures};
use utk_bench::Config;

fn main() {
    let cfg = Config::from_args();
    print_figures(&figure13(&cfg));
}
