//! Regenerates Figure 12 (effect of cardinality n and distribution).
//!
//! Usage: `cargo run --release -p utk-bench --bin figure12 [--paper]`

use utk_bench::figures::{figure12, print_figures};
use utk_bench::Config;

fn main() {
    let cfg = Config::from_args();
    print_figures(&figure12(&cfg));
}
