//! Engine filter-cache figure: hit rate and dominance tests saved as
//! query locality rises — the ROADMAP follow-up figure for the LRU +
//! byte-budget + superset-reuse cache.
//!
//! Workload: `BASES` random query boxes; each base is followed by
//! `ZOOMS` progressively contained boxes (served by cross-region
//! superset reuse) and `REPEATS` exact repeats (served by exact cache
//! hits). The same sequence runs against a cache-less engine for the
//! cold per-query baseline. All comparisons use the deterministic
//! work counters (`rdom_tests`, `bbs_pops`), which stay meaningful on
//! noisy single-core containers where wall-clock is not.
//!
//! Usage: `cargo run --release -p utk-bench --bin filter_cache
//! [--scale f] [--queries n] [--seed s]`
//!
//! Prints Markdown tables and records the raw numbers — including the
//! byte-identity check of superset re-screens against cold runs and
//! the ablation-order prefix-cut savings — in
//! `BENCH_FILTER_CACHE.json` in the working directory.

use utk_bench::{query_workload, Config, Table};
use utk_core::prelude::*;
use utk_data::synthetic::{generate, Distribution};
use utk_geom::Region;
use utk_rtree::RTree;

const D: usize = 3;
const K: usize = 10;
const ZOOMS: usize = 3;
const REPEATS: usize = 2;

/// The `zoom`-th contained box of a base region: shrunk symmetrically
/// by 12% per level from each side.
fn zoom_region(lo: &[f64], hi: &[f64], zoom: usize) -> Region {
    let f = 0.12 * zoom as f64;
    let ilo: Vec<f64> = lo.iter().zip(hi).map(|(l, h)| l + f * (h - l)).collect();
    let ihi: Vec<f64> = lo.iter().zip(hi).map(|(l, h)| h - f * (h - l)).collect();
    Region::hyperrect(ilo, ihi)
}

fn main() {
    let cfg = Config::from_args();
    let n = cfg.n(400_000);
    let points = generate(Distribution::Anti, n, D, cfg.seed).points;
    let bases = query_workload(D, 0.08, &cfg);

    // The full locality sequence: base, its zooms, then repeats of the
    // base. `true` marks queries a warmed cache is expected to serve
    // without a cold BBS run (zooms via superset reuse, repeats via
    // exact hits).
    let mut sequence: Vec<(Region, bool)> = Vec::new();
    for qb in &bases {
        sequence.push((Region::hyperrect(qb.lo.clone(), qb.hi.clone()), false));
        for z in 1..=ZOOMS {
            sequence.push((zoom_region(&qb.lo, &qb.hi, z), true));
        }
        for _ in 0..REPEATS {
            sequence.push((Region::hyperrect(qb.lo.clone(), qb.hi.clone()), true));
        }
    }

    let warm_engine = UtkEngine::new(points.clone()).expect("bench dataset");
    let cold_engine = UtkEngine::new(points.clone())
        .expect("bench dataset")
        .without_filter_cache();

    let mut warm_total = Stats::new();
    let mut cold_total = Stats::new();
    // Counters restricted to the warm-served part of the sequence
    // (zooms + repeats) — the acceptance comparison.
    let mut warm_served = Stats::new();
    let mut cold_served = Stats::new();
    for (region, served_warm) in &sequence {
        let w = warm_engine.utk1(region, K).expect("warm query");
        let c = cold_engine.utk1(region, K).expect("cold query");
        assert_eq!(w.records, c.records, "cache must never change answers");
        warm_total.absorb(&w.stats);
        cold_total.absorb(&c.stats);
        if *served_warm {
            warm_served.absorb(&w.stats);
            cold_served.absorb(&c.stats);
        }
    }
    let (hits, misses) = warm_engine.filter_cache_counters();
    let superset_hits = warm_engine.filter_superset_hits();
    let cache_bytes = warm_engine.filter_cache_bytes();
    let evictions = warm_engine.filter_cache_evictions();
    let hit_rate = hits as f64 / (hits + misses) as f64;
    let ratio = cold_served.rdom_tests as f64 / warm_served.rdom_tests.max(1) as f64;

    // Byte-identity of superset re-screens, library-level: every zoom
    // region rebuilt from its base's candidate set must equal the cold
    // run exactly (ids, flat points, graph arcs).
    let tree = RTree::bulk_load(&points);
    let store = PointStore::from_rows(&points);
    let mut identical = true;
    for qb in &bases {
        let outer = Region::hyperrect(qb.lo.clone(), qb.hi.clone());
        let sup = r_skyband(&store, &tree, &outer, K, true, &mut Stats::new());
        for z in 1..=ZOOMS {
            let inner = zoom_region(&qb.lo, &qb.hi, z);
            let cold = r_skyband(&store, &tree, &inner, K, true, &mut Stats::new());
            let warm = r_skyband_from_superset(&sup, &inner, K, &mut Stats::new());
            identical &= warm == cold;
        }
    }

    // Prefix-cut ablation: under the coordinate-sum heap key the
    // member list is not in pivot order, so the pivot-score prefix cut
    // skips provably-futile dominance tests. (Under the pivot key BBS
    // already delivers the invariant and skips are zero.)
    let mut ablation = Stats::new();
    for qb in &bases {
        let region = Region::hyperrect(qb.lo.clone(), qb.hi.clone());
        r_skyband(&store, &tree, &region, K, false, &mut ablation);
    }
    let ablation_saved = ablation.screen_prefix_skips as f64
        / (ablation.screen_prefix_skips + ablation.rdom_tests).max(1) as f64;

    println!(
        "Filter cache (ANTI, n = {n}, d = {D}, k = {K}, {} bases × ({ZOOMS} zooms + {REPEATS} repeats))",
        bases.len()
    );
    let mut table = Table::new(vec!["serving", "rdom_tests", "bbs_pops"]);
    table.row(vec![
        "cold (all queries)".to_string(),
        cold_total.rdom_tests.to_string(),
        cold_total.bbs_pops.to_string(),
    ]);
    table.row(vec![
        "warm (all queries)".to_string(),
        warm_total.rdom_tests.to_string(),
        warm_total.bbs_pops.to_string(),
    ]);
    table.row(vec![
        "cold (zoom+repeat)".to_string(),
        cold_served.rdom_tests.to_string(),
        cold_served.bbs_pops.to_string(),
    ]);
    table.row(vec![
        "warm (zoom+repeat)".to_string(),
        warm_served.rdom_tests.to_string(),
        warm_served.bbs_pops.to_string(),
    ]);
    table.print();
    println!(
        "hit rate {:.2} ({hits} exact hits, {superset_hits} superset reuses, {misses} misses); \
         warm-served saves {ratio:.1}x rdom_tests; superset re-screens byte-identical: {identical}; \
         cache {cache_bytes} bytes, {evictions} evictions; \
         ablation prefix cut skips {:.0}% of screen tests",
        hit_rate,
        ablation_saved * 100.0
    );

    assert!(identical, "superset re-screen diverged from cold BBS");
    assert!(
        ratio >= 2.0,
        "locality workload must save at least 2x rdom_tests (got {ratio:.2}x)"
    );

    let cores = utk_bench::recorded_parallelism();
    let json = format!(
        concat!(
            r#"{{"schema_version":1,"figure":"filter_cache","dataset":"ANTI","n":{},"d":{},"k":{},"sigma":0.08,"#,
            r#""bases":{},"zooms_per_base":{},"repeats_per_base":{},"seed":{},"#,
            r#""available_parallelism":{},"#,
            r#""cold":{{"rdom_tests":{},"bbs_pops":{}}},"#,
            r#""warm":{{"rdom_tests":{},"bbs_pops":{},"exact_hits":{},"superset_hits":{},"#,
            r#""misses":{},"hit_rate":{:.4},"cache_bytes":{},"evictions":{}}},"#,
            r#""warm_served":{{"rdom_tests":{},"rdom_tests_cold_same_queries":{},"#,
            r#""saved_ratio":{:.3}}},"superset_rescreen_byte_identical":{},"#,
            r#""ablation_prefix_cut":{{"skips":{},"tests":{},"saved_fraction":{:.4}}}}}"#
        ),
        n,
        D,
        K,
        bases.len(),
        ZOOMS,
        REPEATS,
        cfg.seed,
        cores,
        cold_total.rdom_tests,
        cold_total.bbs_pops,
        warm_total.rdom_tests,
        warm_total.bbs_pops,
        hits,
        superset_hits,
        misses,
        hit_rate,
        cache_bytes,
        evictions,
        warm_served.rdom_tests,
        cold_served.rdom_tests,
        ratio,
        identical,
        ablation.screen_prefix_skips,
        ablation.rdom_tests,
        ablation_saved,
    );
    std::fs::write("BENCH_FILTER_CACHE.json", json + "\n").expect("write figure json");
    eprintln!("wrote BENCH_FILTER_CACHE.json");
}
