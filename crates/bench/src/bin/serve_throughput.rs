//! Serving figure: `utk serve` end-to-end throughput and admission
//! behavior, the serving follow-up of the ROADMAP's
//! millions-of-users north star.
//!
//! Two phases against an in-process server on a Unix socket:
//!
//! 1. **throughput** — several client threads stream batch requests
//!    over two datasets; records queries/sec plus the server's own
//!    counters, and asserts every response is byte-identical to the
//!    expected local answer;
//! 2. **admission** — `max_inflight = 1` with concurrent clients
//!    hammering single queries; records how many were shed with the
//!    typed `busy` error vs accepted, and cross-checks the observed
//!    counts against the server's `busy_rejections` counter.
//!
//! Counter-based metrics stay meaningful on noisy single-core
//! containers; wall-clock queries/sec is recorded but is *not* the
//! load-bearing number there.
//!
//! Usage: `cargo run --release -p utk-bench --bin serve_throughput
//! [--scale f] [--queries n] [--seed s]`
//!
//! Prints Markdown tables and records the raw numbers in
//! `BENCH_SERVE_THROUGHPUT.json` in the working directory.

use std::path::{Path, PathBuf};
use std::time::Instant;
use utk_bench::{query_workload, secs, Config, Table};
use utk_core::engine::UtkEngine;
use utk_data::csv::{parse_csv, write_csv};
use utk_data::synthetic::{generate, Distribution};
use utk_server::client::{BatchReply, Connection};
use utk_server::proto::{code, Request, Response};
use utk_server::server::{Bind, Server, ServerConfig, ServerHandle};

const D: usize = 3;
const K: usize = 10;
/// Concurrent client threads per phase.
const CLIENTS: usize = 4;
/// Batch requests each throughput client sends.
const BATCHES_PER_CLIENT: usize = 3;
/// Single-query probes each admission client sends.
const PROBES_PER_CLIENT: usize = 32;

/// Writes the two bench datasets into a fresh directory.
fn datasets_dir(cfg: &Config, n: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("utk_serve_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench dir");
    for (name, dist) in [("ind", Distribution::Ind), ("anti", Distribution::Anti)] {
        let csv = write_csv(&generate(dist, n, D, cfg.seed), None);
        std::fs::write(dir.join(format!("{name}.csv")), csv).expect("bench dataset");
    }
    dir
}

fn start_server(dir: &Path, max_inflight: usize, tag: &str) -> ServerHandle {
    let socket = dir.join(format!("bench_{tag}.sock"));
    let mut config = ServerConfig::new(Bind::Unix(socket), dir.to_path_buf());
    config.max_inflight = max_inflight;
    Server::bind(config).expect("bind bench server").spawn()
}

fn shutdown(handle: ServerHandle) -> utk_server::ServeSnapshot {
    let mut conn = Connection::connect(handle.bind_addr()).expect("shutdown connection");
    conn.round_trip(&Request::Shutdown.to_json())
        .expect("shutdown request");
    handle.join().expect("clean server exit")
}

fn main() {
    let cfg = Config::from_args();
    let n = cfg.n(100_000);
    let dir = datasets_dir(&cfg, n);

    // One query file per dataset: utk1/utk2/topk lines over random
    // boxes (σ = 1%), duplicated regions included via the workload.
    let boxes = query_workload(D, 0.01, &cfg);
    let mut file_text = String::new();
    for (i, qb) in boxes.iter().enumerate() {
        let kind = ["utk1", "utk2"][i % 2];
        file_text.push_str(&format!(
            "{kind} --k {K} --lo {},{} --hi {},{}\n",
            qb.lo[0], qb.lo[1], qb.hi[0], qb.hi[1]
        ));
    }
    file_text.push_str(&format!("topk --k {K} --weights 0.3,0.4\n"));
    let queries_per_batch = file_text.lines().count();

    // --- phase 1: throughput ----------------------------------------
    let handle = start_server(&dir, 64, "throughput");
    let bind = handle.bind_addr().clone();
    // Warm-up batch per dataset (forces both engines resident before
    // timing), checked **byte-identical** against a fresh local
    // engine answering the same file — the serving ≡ batch contract.
    let mut expected: Vec<(String, Vec<String>)> = Vec::new();
    for name in ["ind", "anti"] {
        let mut conn = Connection::connect(&bind).expect("warmup connection");
        let BatchReply::Lines(lines) = conn.batch(name, &file_text).expect("warmup batch") else {
            panic!("warmup batch rejected");
        };
        let csv = std::fs::read_to_string(dir.join(format!("{name}.csv"))).expect("bench csv");
        let data = parse_csv(&csv, name).expect("bench csv parses");
        let engine = UtkEngine::new(data.dataset.points.clone()).expect("local engine");
        let parsed = utk_server::spec::parse_query_file(&file_text, D);
        let local = utk_server::spec::answer_query_file(&engine, &data, &parsed);
        assert_eq!(lines, local, "cold served batch must be byte-identical");
        expected.push((name.to_string(), lines));
    }

    let t0 = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let bind = bind.clone();
            let file_text = file_text.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut conn = Connection::connect(&bind).expect("client connection");
                for b in 0..BATCHES_PER_CLIENT {
                    let (name, want) = &expected[(c + b) % expected.len()];
                    let BatchReply::Lines(lines) =
                        conn.batch(name, &file_text).expect("client batch")
                    else {
                        panic!("throughput batch rejected");
                    };
                    // Stats fields vary with cache warmth; the answer
                    // payload (records/cells/errors) must not. Compare
                    // everything before the stats object.
                    for (got, want) in lines.iter().zip(want) {
                        let strip =
                            |s: &str| s.split(",\"stats\":").next().unwrap_or(s).to_string();
                        assert_eq!(strip(got), strip(want), "served answer diverged");
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("throughput client");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let total_queries = CLIENTS * BATCHES_PER_CLIENT * queries_per_batch;
    let qps = total_queries as f64 / elapsed;
    let throughput_snap = shutdown(handle);
    // Warm-ups + timed batches, plus the shutdown op.
    assert_eq!(
        throughput_snap.requests_served as usize,
        2 + CLIENTS * BATCHES_PER_CLIENT + 1,
        "{throughput_snap:?}"
    );
    assert_eq!(throughput_snap.busy_rejections, 0, "{throughput_snap:?}");

    // --- phase 2: admission under overload --------------------------
    let handle = start_server(&dir, 1, "admission");
    let bind = handle.bind_addr().clone();
    // Force the dataset resident so probes measure admission, not
    // loading.
    Connection::connect(&bind)
        .expect("load connection")
        .round_trip(
            &Request::Load {
                dataset: "anti".into(),
            }
            .to_json(),
        )
        .expect("load");
    let probes: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let bind = bind.clone();
            std::thread::spawn(move || {
                let mut conn = Connection::connect(&bind).expect("probe connection");
                let mut accepted = 0usize;
                let mut busy = 0usize;
                for i in 0..PROBES_PER_CLIENT {
                    let q = format!(
                        "utk1 --k {K} --center 0.{}{},0.2 --width 0.05",
                        2 + (c + i) % 3,
                        i % 10
                    );
                    let line = conn
                        .round_trip(
                            &Request::Query {
                                dataset: "anti".into(),
                                q,
                            }
                            .to_json(),
                        )
                        .expect("probe");
                    match Response::parse(&line).expect("parseable response") {
                        Response::Error(e) if e.code == code::BUSY => busy += 1,
                        Response::Result(l) => {
                            assert!(
                                l.starts_with(r#"{"query":"utk1""#),
                                "accepted probe must be a result: {l}"
                            );
                            accepted += 1;
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                }
                (accepted, busy)
            })
        })
        .collect();
    let (mut accepted, mut busy) = (0usize, 0usize);
    for p in probes {
        let (a, b) = p.join().expect("admission client");
        accepted += a;
        busy += b;
    }
    let admission_snap = shutdown(handle);
    assert_eq!(accepted + busy, CLIENTS * PROBES_PER_CLIENT);
    assert!(busy >= 1, "concurrent clients never overloaded the slot");
    assert!(accepted >= 1, "admission must still accept work");
    assert_eq!(
        admission_snap.busy_rejections as usize, busy,
        "server counter must match observed rejections"
    );

    // --- report ------------------------------------------------------
    println!("Serve throughput (n = {n} × 2 datasets, d = {D}, k = {K}, {CLIENTS} clients)");
    let mut table = Table::new(vec!["phase", "requests", "queries", "busy", "elapsed"]);
    table.row(vec![
        "throughput".into(),
        throughput_snap.requests_served.to_string(),
        total_queries.to_string(),
        "0".into(),
        secs(elapsed),
    ]);
    table.row(vec![
        "admission (max_inflight=1)".into(),
        admission_snap.requests_served.to_string(),
        accepted.to_string(),
        busy.to_string(),
        "-".into(),
    ]);
    table.print();
    println!("queries/sec (batch phase): {qps:.1}");

    let cores = utk_bench::recorded_parallelism();
    let json = format!(
        concat!(
            r#"{{"schema_version":1,"figure":"serve_throughput","n":{},"d":{},"k":{},"datasets":2,"#,
            r#""clients":{},"seed":{},"available_parallelism":{},"#,
            r#""throughput":{{"batches":{},"queries":{},"elapsed_seconds":{:.6},"#,
            r#""queries_per_second":{:.3},"requests_served":{},"busy_rejections":{},"#,
            r#""cold_answers_byte_identical_to_local":true}},"#,
            r#""admission":{{"max_inflight":1,"attempts":{},"accepted":{},"busy":{},"#,
            r#""busy_counter_matches_observed":true,"accepted_all_correct":true}},"#,
            r#""note":"counter-based metrics are the load-bearing part; queries/sec is "#,
            r#"noise-dominated on single-core containers"}}"#
        ),
        n,
        D,
        K,
        CLIENTS,
        cfg.seed,
        cores,
        CLIENTS * BATCHES_PER_CLIENT,
        total_queries,
        elapsed,
        qps,
        throughput_snap.requests_served,
        throughput_snap.busy_rejections,
        CLIENTS * PROBES_PER_CLIENT,
        accepted,
        busy,
    );
    std::fs::write("BENCH_SERVE_THROUGHPUT.json", json + "\n").expect("write figure json");
    eprintln!("wrote BENCH_SERVE_THROUGHPUT.json (available_parallelism = {cores})");
}
