//! Regenerates Figure 10 (UTK vs traditional operators on NBA).
//!
//! Usage: `cargo run --release -p utk-bench --bin figure10 [--paper]`

use utk_bench::figures::{figure10, print_figures};
use utk_bench::Config;

fn main() {
    let cfg = Config::from_args();
    print_figures(&figure10(&cfg));
}
