//! Regenerates Figure 14 (effect of region size σ).
//!
//! Usage: `cargo run --release -p utk-bench --bin figure14 [--paper]`

use utk_bench::figures::{figure14, print_figures};
use utk_bench::Config;

fn main() {
    let cfg = Config::from_args();
    print_figures(&figure14(&cfg));
}
