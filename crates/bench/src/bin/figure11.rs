//! Regenerates Figure 11 (RSA/JAA vs the SK/ON baselines, varying k).
//!
//! Usage: `cargo run --release -p utk-bench --bin figure11 [--paper]`

use utk_bench::figures::{figure11, print_figures};
use utk_bench::Config;

fn main() {
    let cfg = Config::from_args();
    print_figures(&figure11(&cfg));
}
