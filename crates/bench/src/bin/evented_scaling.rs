//! Serving figure: evented-transport connection scaling — the reason
//! the readiness-driven reactor exists. A thread-per-connection
//! transport tops out at its thread cap; the reactor holds thousands
//! of sockets on one thread and sheds the rest with a *typed* busy
//! line, never a silent drop.
//!
//! Two phases against an in-process evented server on TCP:
//!
//! 1. **scaling** — opens 1088 concurrent connections (past the 1024
//!    mark and far past the threads transport's 256 default), then
//!    serves a query on every one of them, twice, asserting all
//!    answers are identical — every connection stays live end to end;
//! 2. **shedding** — caps the server at 256 connections and opens the
//!    same 1088: exactly the cap is served, every over-cap connection
//!    reads a typed `busy` error line (then EOF), and the observed
//!    split matches the server's own `busy_rejections` counter.
//!
//! Counter-based metrics stay meaningful on noisy single-core
//! containers; wall-clock connections/sec is recorded but is *not*
//! the load-bearing number there.
//!
//! Usage: `cargo run --release -p utk-bench --bin evented_scaling
//! [--scale f] [--seed s]`
//!
//! Prints Markdown tables and records the raw numbers in
//! `BENCH_EVENTED.json` in the working directory.

use std::path::{Path, PathBuf};
use std::time::Instant;
use utk_bench::{secs, Config, Table};
use utk_data::csv::write_csv;
use utk_data::synthetic::{generate, Distribution};
use utk_server::client::Connection;
use utk_server::proto::{code, Request, Response};
use utk_server::server::{Bind, Server, ServerConfig, ServerHandle, Transport};

const D: usize = 3;
const K: usize = 10;
/// Concurrent connections in the scaling phase: past 1024, and 4×
/// the threads transport's default connection cap.
const CONNECTIONS: usize = 1088;
/// The connection cap in the shedding phase.
const SHED_CAP: usize = 256;

fn dataset_dir(cfg: &Config, n: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("utk_evented_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench dir");
    let csv = write_csv(&generate(Distribution::Ind, n, D, cfg.seed), None);
    std::fs::write(dir.join("ind.csv"), csv).expect("bench dataset");
    dir
}

fn start_server(dir: &Path, max_connections: usize) -> ServerHandle {
    let mut config = ServerConfig::new(Bind::Tcp(0), dir.to_path_buf());
    config.transport = Transport::Evented;
    config.max_connections = max_connections;
    Server::bind(config).expect("bind bench server").spawn()
}

fn shutdown(handle: ServerHandle) -> utk_server::ServeSnapshot {
    let mut conn = Connection::connect(handle.bind_addr()).expect("shutdown connection");
    conn.round_trip(&Request::Shutdown.to_json())
        .expect("shutdown request");
    handle.join().expect("clean server exit")
}

fn query_line() -> String {
    Request::Query {
        dataset: "ind".into(),
        q: format!("topk --k {K} --weights 0.3,0.4"),
    }
    .to_json()
}

fn main() {
    let cfg = Config::from_args();
    let n = cfg.n(2_000);
    let dir = dataset_dir(&cfg, n);

    // --- phase 1: connection scaling ---------------------------------
    let handle = start_server(&dir, 2 * CONNECTIONS);
    let bind = handle.bind_addr().clone();
    // Force the dataset resident so per-connection queries measure the
    // transport, not loading.
    Connection::connect(&bind)
        .expect("load connection")
        .round_trip(
            &Request::Load {
                dataset: "ind".into(),
            }
            .to_json(),
        )
        .expect("load");

    let t0 = Instant::now();
    let mut conns: Vec<Connection> = (0..CONNECTIONS)
        .map(|i| Connection::connect(&bind).unwrap_or_else(|e| panic!("connection {i}: {e}")))
        .collect();
    let open_elapsed = t0.elapsed().as_secs_f64();

    // Two query rounds over every open connection: the second round
    // proves each socket is still live after the sweep touched all of
    // them, not just accept-then-forgotten.
    let line = query_line();
    let t1 = Instant::now();
    let mut answers = 0usize;
    let mut first: Option<String> = None;
    for round in 0..2 {
        for (i, conn) in conns.iter_mut().enumerate() {
            let got = conn
                .round_trip(&line)
                .unwrap_or_else(|e| panic!("round {round}, connection {i}: {e}"));
            assert!(
                got.starts_with(r#"{"query":"topk""#),
                "connection {i} got a non-result: {got}"
            );
            match &first {
                None => first = Some(got),
                Some(want) => assert_eq!(&got, want, "answers diverged on connection {i}"),
            }
            answers += 1;
        }
    }
    let query_elapsed = t1.elapsed().as_secs_f64();
    drop(conns);
    let scaling_snap = shutdown(handle);
    // load + 2 rounds of queries + shutdown, zero sheds.
    assert_eq!(
        scaling_snap.requests_served as usize,
        1 + 2 * CONNECTIONS + 1,
        "{scaling_snap:?}"
    );
    assert_eq!(scaling_snap.busy_rejections, 0, "{scaling_snap:?}");

    // --- phase 2: typed shedding over the cap ------------------------
    let handle = start_server(&dir, SHED_CAP);
    let bind = handle.bind_addr().clone();
    let mut held: Vec<Connection> = Vec::new();
    let (mut served, mut shed) = (0usize, 0usize);
    for i in 0..CONNECTIONS {
        let mut conn = Connection::connect(&bind).unwrap_or_else(|e| panic!("shed conn {i}: {e}"));
        // Held connections answer; over-cap ones were sent a typed
        // busy line before we even wrote (read here as the response).
        let got = conn
            .round_trip(&Request::Stats.to_json())
            .unwrap_or_else(|e| panic!("shed probe {i}: {e}"));
        match Response::parse(&got).expect("parseable response") {
            Response::Stats(_) => {
                served += 1;
                held.push(conn);
            }
            Response::Error(e) if e.code == code::BUSY => shed += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    let shed_snap = {
        let first = held.first_mut().expect("held connection");
        first
            .round_trip(&Request::Shutdown.to_json())
            .expect("shutdown request");
        drop(held);
        handle.join().expect("clean server exit")
    };
    assert_eq!(served, SHED_CAP, "exactly the cap is served");
    assert_eq!(
        shed,
        CONNECTIONS - SHED_CAP,
        "everything over the cap sheds"
    );
    assert_eq!(
        shed_snap.busy_rejections as usize, shed,
        "server counter must match observed sheds"
    );

    // --- report ------------------------------------------------------
    println!("Evented connection scaling (n = {n}, d = {D}, k = {K})");
    let mut table = Table::new(vec!["phase", "connections", "served", "busy", "elapsed"]);
    table.row(vec![
        "scaling (2 query rounds)".into(),
        CONNECTIONS.to_string(),
        answers.to_string(),
        "0".into(),
        secs(open_elapsed + query_elapsed),
    ]);
    table.row(vec![
        format!("shedding (cap={SHED_CAP})"),
        CONNECTIONS.to_string(),
        served.to_string(),
        shed.to_string(),
        "-".into(),
    ]);
    table.print();

    let cores = utk_bench::recorded_parallelism();
    let json = format!(
        concat!(
            r#"{{"schema_version":1,"figure":"evented_scaling","n":{},"d":{},"k":{},"#,
            r#""seed":{},"available_parallelism":{},"transport":"evented","#,
            r#""scaling":{{"concurrent_connections":{},"query_rounds":2,"answers":{},"#,
            r#""open_seconds":{:.6},"query_seconds":{:.6},"requests_served":{},"#,
            r#""busy_rejections":0,"all_answers_identical":true}},"#,
            r#""shedding":{{"max_connections":{},"attempted":{},"served":{},"shed":{},"#,
            r#""busy_counter_matches_observed":true,"shed_errors_typed":true}},"#,
            r#""note":"counter-based metrics are the load-bearing part; timings are "#,
            r#"noise-dominated on single-core containers"}}"#
        ),
        n,
        D,
        K,
        cfg.seed,
        cores,
        CONNECTIONS,
        answers,
        open_elapsed,
        query_elapsed,
        scaling_snap.requests_served,
        SHED_CAP,
        CONNECTIONS,
        served,
        shed,
    );
    std::fs::write("BENCH_EVENTED.json", json + "\n").expect("write figure json");
    eprintln!("wrote BENCH_EVENTED.json (available_parallelism = {cores})");
}
