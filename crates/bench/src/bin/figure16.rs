//! Regenerates Figure 16 (JAA on the real datasets, varying σ).
//!
//! Usage: `cargo run --release -p utk-bench --bin figure16 [--paper]`

use utk_bench::figures::{figure16, print_figures};
use utk_bench::Config;

fn main() {
    let cfg = Config::from_args();
    print_figures(&figure16(&cfg));
}
