//! Regenerates Figure 9 (the NBA 2016–17 case studies).
//!
//! Usage: `cargo run --release -p utk-bench --bin figure09`

use utk_bench::figures::{figure09, print_figures};
use utk_bench::Config;

fn main() {
    let cfg = Config::from_args();
    print_figures(&figure09(&cfg));
}
