//! Regenerates Figure 15 (JAA on the real datasets, varying k).
//!
//! Usage: `cargo run --release -p utk-bench --bin figure15 [--paper]`

use utk_bench::figures::{figure15, print_figures};
use utk_bench::Config;

fn main() {
    let cfg = Config::from_args();
    print_figures(&figure15(&cfg));
}
