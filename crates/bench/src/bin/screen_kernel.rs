//! Screen-kernel figure: scalar vs blocked vs blocked+f32-prefilter
//! r-skyband screening throughput, with whole-output byte-identity as
//! the admission ticket for every number reported.
//!
//! Workload: `bases` query regions over an ANTI dataset; every kernel
//! answers each region fresh (tree walk + screen) and then re-screens
//! its own cached superset for a nested region — the two paths the
//! engine serves in production. Outputs are compared structurally
//! (ids, points, dominator graph) against the scalar oracle; a single
//! divergent byte fails the run. Timing is wall-clock over `PASSES`
//! repetitions; the deterministic screen counters (`rdom_tests`,
//! `kernel_blocks`, `prefilter_rejects`/`prefilter_verifies`) carry
//! the machine-independent story on noisy single-core containers.
//!
//! Usage: `cargo run --release -p utk-bench --bin screen_kernel
//! [--scale f] [--queries n] [--seed s]`
//!
//! Prints a Markdown table and records the raw numbers in
//! `BENCH_SCREEN_KERNEL.json` in the working directory.

use std::time::Instant;

use utk_bench::{query_workload, Config, Table};
use utk_core::prelude::*;
use utk_data::synthetic::{generate, Distribution};
use utk_geom::Region;
use utk_rtree::RTree;

const D: usize = 3;
const K: usize = 10;
/// Timing passes per kernel; counters are absorbed across all passes
/// (deterministic, so pass count scales them uniformly).
const PASSES: usize = 3;

/// One kernel's measured numbers over the full workload.
struct KernelRun {
    name: &'static str,
    fresh: Vec<CandidateSet>,
    warm: Vec<CandidateSet>,
    elapsed: f64,
    stats: Stats,
}

fn kernel_name(kernel: ScreenKernel) -> &'static str {
    match kernel {
        ScreenKernel::Scalar => "scalar",
        ScreenKernel::Blocked => "blocked",
        ScreenKernel::BlockedPrefilter => "blocked+prefilter",
    }
}

/// Shrinks a region toward its center: the nested re-screen target.
fn nested(region_lo: &[f64], region_hi: &[f64]) -> Region {
    let lo: Vec<f64> = region_lo
        .iter()
        .zip(region_hi)
        .map(|(l, h)| l + 0.25 * (h - l))
        .collect();
    let hi: Vec<f64> = region_lo
        .iter()
        .zip(region_hi)
        .map(|(l, h)| l + 0.75 * (h - l))
        .collect();
    Region::hyperrect(lo, hi)
}

fn run_kernel(
    kernel: ScreenKernel,
    store: &PointStore,
    tree: &RTree,
    regions: &[(Region, Region)],
) -> KernelRun {
    let mut stats = Stats::new();
    let mut fresh = Vec::new();
    let mut warm = Vec::new();
    let start = Instant::now();
    for pass in 0..PASSES {
        for (outer, inner) in regions {
            let sup = r_skyband_with_kernel(store, tree, outer, K, true, kernel, &mut stats);
            let sub = r_skyband_from_superset_with_kernel(&sup, inner, K, kernel, &mut stats);
            if pass == 0 {
                fresh.push(sup);
                warm.push(sub);
            }
        }
    }
    KernelRun {
        name: kernel_name(kernel),
        fresh,
        warm,
        elapsed: start.elapsed().as_secs_f64(),
        stats,
    }
}

fn main() {
    let cfg = Config::from_args();
    let n = cfg.n(400_000);
    let points = generate(Distribution::Anti, n, D, cfg.seed).points;
    let tree = RTree::bulk_load(&points);
    let store = PointStore::from_rows(&points);
    let regions: Vec<(Region, Region)> = query_workload(D, 0.08, &cfg)
        .iter()
        .map(|qb| {
            (
                Region::hyperrect(qb.lo.clone(), qb.hi.clone()),
                nested(&qb.lo, &qb.hi),
            )
        })
        .collect();

    let runs: Vec<KernelRun> = [
        ScreenKernel::Scalar,
        ScreenKernel::Blocked,
        ScreenKernel::BlockedPrefilter,
    ]
    .into_iter()
    .map(|kernel| run_kernel(kernel, &store, &tree, &regions))
    .collect();

    // Byte-identity across kernels: fresh builds and superset
    // re-screens must equal the scalar oracle structurally.
    let oracle = &runs[0];
    let mut identical = true;
    for run in &runs[1..] {
        identical &= run.fresh == oracle.fresh && run.warm == oracle.warm;
    }

    println!(
        "Screen kernel (ANTI, n = {n}, d = {D}, k = {K}, {} regions × {PASSES} passes, \
         fresh + superset re-screen per region)",
        regions.len()
    );
    let mut table = Table::new(vec![
        "kernel",
        "elapsed ms",
        "rdom_tests",
        "kernel_blocks",
        "pf rejects",
        "pf verifies",
        "screens/s",
    ]);
    for run in &runs {
        table.row(vec![
            run.name.to_string(),
            format!("{:.1}", run.elapsed * 1e3),
            run.stats.rdom_tests.to_string(),
            run.stats.kernel_blocks.to_string(),
            run.stats.prefilter_rejects.to_string(),
            run.stats.prefilter_verifies.to_string(),
            format!("{:.0}", run.stats.rdom_tests as f64 / run.elapsed.max(1e-9)),
        ]);
    }
    table.print();
    println!(
        "byte identical across kernels: {identical}; prefilter skipped {} of {} blocks",
        runs[2].stats.prefilter_rejects, runs[2].stats.kernel_blocks
    );

    assert!(identical, "blocked/prefilter outputs diverged from scalar");
    assert_eq!(
        runs[1].stats.rdom_tests, runs[2].stats.rdom_tests,
        "prefilter must process the same live lanes as the plain blocked kernel"
    );
    assert_eq!(
        runs[2].stats.prefilter_rejects + runs[2].stats.prefilter_verifies,
        runs[2].stats.kernel_blocks,
        "every prefilter block is either rejected in f32 or verified in f64"
    );
    assert_eq!(
        runs[0].stats.kernel_blocks, 0,
        "the scalar oracle must never enter the blocked path"
    );

    let cores = utk_bench::recorded_parallelism();
    let kernels_json: Vec<String> = runs
        .iter()
        .map(|run| {
            format!(
                concat!(
                    r#"{{"kernel":"{}","elapsed_ms":{:.3},"rdom_tests":{},"#,
                    r#""kernel_blocks":{},"prefilter_rejects":{},"prefilter_verifies":{},"#,
                    r#""screens_per_sec":{:.0}}}"#
                ),
                run.name,
                run.elapsed * 1e3,
                run.stats.rdom_tests,
                run.stats.kernel_blocks,
                run.stats.prefilter_rejects,
                run.stats.prefilter_verifies,
                run.stats.rdom_tests as f64 / run.elapsed.max(1e-9),
            )
        })
        .collect();
    let json = format!(
        concat!(
            r#"{{"schema_version":1,"figure":"screen_kernel","dataset":"ANTI","n":{},"d":{},"k":{},"#,
            r#""sigma":0.08,"regions":{},"passes":{},"seed":{},"#,
            r#""available_parallelism":{},"byte_identical":{},"kernels":[{}]}}"#
        ),
        n,
        D,
        K,
        regions.len(),
        PASSES,
        cfg.seed,
        cores,
        identical,
        kernels_json.join(","),
    );
    std::fs::write("BENCH_SCREEN_KERNEL.json", json + "\n").expect("write figure json");
    eprintln!("wrote BENCH_SCREEN_KERNEL.json");
}
