//! Batch-serving figure: `UtkEngine::run_many` vs a per-query `run`
//! loop on workloads with realistic query locality (several users
//! asking about the same `(k, region)`), the batching follow-up of
//! the ROADMAP's millions-of-users north star.
//!
//! Usage: `cargo run --release -p utk-bench --bin batch_throughput
//! [--scale f] [--queries n] [--seed s]`
//!
//! Prints the Markdown table and records raw numbers in
//! `BENCH_BATCH_THROUGHPUT.json` in the working directory.

use std::time::Instant;
use utk_bench::{query_workload, secs, Config, Table};
use utk_core::prelude::*;
use utk_data::synthetic::{generate, Distribution};
use utk_geom::Region;

const D: usize = 3;
const K: usize = 10;
/// Queries per distinct region in the batch (locality factor).
const DUPLICATES: [usize; 3] = [1, 4, 16];

fn main() {
    let cfg = Config::from_args();
    let n = cfg.n(400_000);
    let points = generate(Distribution::Ind, n, D, cfg.seed).points;
    let distinct = query_workload(D, 0.01, &cfg);

    let mut table = Table::new(vec![
        "dup",
        "queries",
        "groups",
        "loop run()",
        "run_many()",
        "speedup",
    ]);
    let mut rows_json = Vec::new();

    for &dup in &DUPLICATES {
        let queries: Vec<UtkQuery> = distinct
            .iter()
            .flat_map(|qb| {
                let region = Region::hyperrect(qb.lo.clone(), qb.hi.clone());
                (0..dup).map(move |i| {
                    // Alternate kinds within a group: same filter, two
                    // refinement pipelines.
                    if i % 2 == 0 {
                        UtkQuery::utk1(K).region(region.clone())
                    } else {
                        UtkQuery::utk2(K).region(region.clone())
                    }
                })
            })
            .collect();

        // Fresh engines per arm: each pays its own cold caches.
        let loop_engine = UtkEngine::new(points.clone()).expect("bench dataset");
        let t0 = Instant::now();
        let loop_results: Vec<_> = queries.iter().map(|q| loop_engine.run(q)).collect();
        let loop_secs = t0.elapsed().as_secs_f64();

        let batch_engine = UtkEngine::new(points.clone()).expect("bench dataset");
        let t0 = Instant::now();
        let batch_results = batch_engine.run_many(&queries);
        let batch_secs = t0.elapsed().as_secs_f64();

        let groups = batch_results
            .iter()
            .flatten()
            .map(|r| r.stats().batch_group_count)
            .next()
            .unwrap_or(0);
        for (a, b) in loop_results.iter().zip(&batch_results) {
            let (a, b) = (
                a.as_ref().expect("loop query"),
                b.as_ref().expect("batch query"),
            );
            assert_eq!(a.records(), b.records(), "batch answer diverged");
        }

        let speedup = loop_secs / batch_secs;
        table.row(vec![
            dup.to_string(),
            queries.len().to_string(),
            groups.to_string(),
            secs(loop_secs),
            secs(batch_secs),
            format!("{speedup:.2}x"),
        ]);
        rows_json.push(format!(
            concat!(
                r#"{{"duplicates":{},"queries":{},"groups":{},"loop_seconds":{:.6},"#,
                r#""run_many_seconds":{:.6},"speedup":{:.3}}}"#
            ),
            dup,
            queries.len(),
            groups,
            loop_secs,
            batch_secs,
            speedup
        ));
    }

    println!("Batch throughput (IND, n = {n}, d = {D}, k = {K}, sigma = 1%)");
    table.print();

    let cores = utk_bench::recorded_parallelism();
    let json = format!(
        concat!(
            r#"{{"schema_version":1,"figure":"batch_throughput","dataset":"IND","n":{},"d":{},"k":{},"#,
            r#""distinct_regions":{},"seed":{},"available_parallelism":{},"rows":[{}]}}"#
        ),
        n,
        D,
        K,
        distinct.len(),
        cfg.seed,
        cores,
        rows_json.join(",")
    );
    std::fs::write("BENCH_BATCH_THROUGHPUT.json", json + "\n").expect("write figure json");
    eprintln!("wrote BENCH_BATCH_THROUGHPUT.json (available_parallelism = {cores})");
}
