//! WAL + splice-repair figure: screen tests saved by incremental
//! r-skyband repair over drop-and-recompute on a mutation-heavy
//! locality workload, and write-ahead-log replay time vs dataset
//! size.
//!
//! Workload: `bases` warm query regions; each round mutates the
//! dataset (a cached-member delete, a dominant insert, or a dominated
//! insert batch) and re-answers every region. The same sequence runs
//! against a `without_cache_repair()` twin whose affected entries
//! drop and recompute. Both engines must answer identically — the
//! byte-identity contract — while the repair side pays only the
//! member-prefix screens. Comparisons use the deterministic screen
//! counters (`rdom_tests` + the engine's repair-screen tally), which
//! stay meaningful on noisy single-core containers.
//!
//! Usage: `cargo run --release -p utk-bench --bin wal_repair
//! [--scale f] [--queries n] [--seed s]`
//!
//! Prints Markdown tables and records the raw numbers in
//! `BENCH_WAL_REPAIR.json` in the working directory.

use std::time::Instant;

use utk_bench::{query_workload, Config, Table};
use utk_core::prelude::*;
use utk_data::csv::{parse_csv, write_csv};
use utk_data::synthetic::{generate, Distribution};
use utk_data::wal::{WalFile, WalRecord};
use utk_geom::Region;

const D: usize = 3;
const K: usize = 10;
const ROUNDS: usize = 30;
const REPLAY_RECORDS: u64 = 64;

/// Deterministic xorshift for workload choices (the bench crate is
/// std-only; dataset generation is already seeded separately).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn main() {
    let cfg = Config::from_args();
    let n = cfg.n(400_000);
    let points = generate(Distribution::Anti, n, D, cfg.seed).points;
    let bases = query_workload(D, 0.08, &cfg);
    let regions: Vec<Region> = bases
        .iter()
        .map(|qb| Region::hyperrect(qb.lo.clone(), qb.hi.clone()))
        .collect();
    let mut rng = XorShift(cfg.seed | 1);

    let repaired = UtkEngine::new(points.clone()).expect("bench dataset");
    let baseline = UtkEngine::new(points)
        .expect("bench dataset")
        .without_cache_repair();
    for region in &regions {
        repaired.utk1(region, K).expect("warm query");
        baseline.utk1(region, K).expect("warm query");
    }

    // The mutation rounds. Every mutation is applied identically to
    // both engines; every region is re-answered after each round and
    // the answers must match exactly.
    let mut repaired_query = Stats::new();
    let mut baseline_query = Stats::new();
    let mut identical = true;
    for round in 0..ROUNDS {
        let region = &regions[round % regions.len()];
        let (deletes, inserts): (Vec<u32>, Vec<Vec<f64>>) = match round % 3 {
            // A cached member dies: the repair splices the survivor
            // set, the baseline drops the entry and recomputes.
            0 => {
                let members = repaired.utk1(region, K).expect("member probe").records;
                let victim = members[(rng.next() as usize) % members.len()];
                (vec![victim], Vec::new())
            }
            // A dominant record arrives: the repair admits it into
            // the member prefix, re-screening only what it can affect.
            1 => {
                let jitter = (rng.next() % 32) as f64 * 1e-4;
                (Vec::new(), vec![vec![0.98 + jitter; D]])
            }
            // A dominated batch arrives: provably screened out by
            // cached members on both sides (no recompute either way).
            _ => {
                let lo = (rng.next() % 64) as f64 * 1e-4;
                (
                    Vec::new(),
                    (0..4).map(|i| vec![lo + i as f64 * 1e-4; D]).collect(),
                )
            }
        };
        repaired
            .apply_update(&deletes, inserts.clone())
            .expect("repaired update");
        baseline
            .apply_update(&deletes, inserts)
            .expect("baseline update");
        for region in &regions {
            let r = repaired.utk1(region, K).expect("repaired query");
            let b = baseline.utk1(region, K).expect("baseline query");
            identical &= r.records == b.records;
            repaired_query.absorb(&r.stats);
            baseline_query.absorb(&b.stats);
        }
    }
    // Total screen-test work per serving strategy: dominance tests
    // paid at query time plus (repair side) the member-prefix screens
    // paid inside `apply_update`.
    let repair_screens = repaired.repair_screen_tests() as u64;
    let repaired_total = repaired_query.rdom_tests as u64 + repair_screens;
    let baseline_total = baseline_query.rdom_tests as u64;
    let ratio = baseline_total as f64 / repaired_total.max(1) as f64;
    let repairs = repaired.filter_repairs();

    println!(
        "WAL repair (ANTI, n = {n}, d = {D}, k = {K}, {} regions × {ROUNDS} mutation rounds)",
        regions.len()
    );
    let mut table = Table::new(vec![
        "serving",
        "rdom_tests (queries)",
        "repair screens",
        "total",
    ]);
    table.row(vec![
        "drop-and-recompute".to_string(),
        baseline_query.rdom_tests.to_string(),
        "0".to_string(),
        baseline_total.to_string(),
    ]);
    table.row(vec![
        "splice repair".to_string(),
        repaired_query.rdom_tests.to_string(),
        repair_screens.to_string(),
        repaired_total.to_string(),
    ]);
    table.print();
    println!(
        "repair saves {ratio:.1}x screen tests over {repairs} repairs; \
         answers identical: {identical}"
    );

    assert!(identical, "splice repair diverged from drop-and-recompute");
    assert!(
        ratio >= 2.0,
        "locality workload must save at least 2x screen tests (got {ratio:.2}x)"
    );

    // Replay cost: open (truncate-check + checksum + decode) and
    // replay a fixed-length log over bases of increasing cardinality.
    let mut replay_rows = Vec::new();
    let mut replay_json = Vec::new();
    let wal_path = std::env::temp_dir().join(format!("utk_bench_wal_{}.wal", std::process::id()));
    for paper_n in [100_000usize, 400_000, 1_000_000] {
        let rn = cfg.n(paper_n);
        let ds = generate(Distribution::Anti, rn, D, cfg.seed ^ paper_n as u64);
        let base_csv = write_csv(&ds, None);
        let _ = std::fs::remove_file(&wal_path);
        let mut wal = WalFile::open(&wal_path).expect("bench wal").wal;
        for epoch in 1..=REPLAY_RECORDS {
            let v = (epoch % 97) as f64 * 1e-3;
            wal.append(&WalRecord::Insert {
                epoch,
                rows: vec![vec![v; D]],
                labels: None,
            })
            .expect("bench wal append");
        }
        let wal_bytes = wal.bytes();
        drop(wal);

        let start = Instant::now();
        let opened = WalFile::open(&wal_path).expect("bench wal reopen");
        let mut data = parse_csv(&base_csv, "bench").expect("bench csv");
        let epoch = utk_data::wal::replay(&mut data, &opened.records).expect("bench replay");
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(epoch, REPLAY_RECORDS);
        assert_eq!(data.dataset.len(), rn + REPLAY_RECORDS as usize);

        let per_sec = REPLAY_RECORDS as f64 / elapsed.max(1e-9);
        replay_rows.push(vec![
            rn.to_string(),
            REPLAY_RECORDS.to_string(),
            wal_bytes.to_string(),
            format!("{:.1}", elapsed * 1e3),
            format!("{per_sec:.0}"),
        ]);
        replay_json.push(format!(
            concat!(
                r#"{{"n":{},"records":{},"wal_bytes":{},"#,
                r#""replay_ms":{:.3},"records_per_sec":{:.0}}}"#
            ),
            rn,
            REPLAY_RECORDS,
            wal_bytes,
            elapsed * 1e3,
            per_sec,
        ));
    }
    let _ = std::fs::remove_file(&wal_path);
    let mut table = Table::new(vec!["n", "records", "wal bytes", "replay ms", "records/s"]);
    for row in replay_rows {
        table.row(row);
    }
    table.print();

    let cores = utk_bench::recorded_parallelism();
    let json = format!(
        concat!(
            r#"{{"schema_version":1,"figure":"wal_repair","dataset":"ANTI","n":{},"d":{},"k":{},"sigma":0.08,"#,
            r#""regions":{},"mutation_rounds":{},"seed":{},"available_parallelism":{},"#,
            r#""screen_tests":{{"baseline_recompute":{},"repaired_queries":{},"#,
            r#""repair_screens":{},"repaired_total":{},"saved_ratio":{:.3},"repairs":{}}},"#,
            r#""answers_identical":{},"replay":[{}]}}"#
        ),
        n,
        D,
        K,
        regions.len(),
        ROUNDS,
        cfg.seed,
        cores,
        baseline_total,
        repaired_query.rdom_tests,
        repair_screens,
        repaired_total,
        ratio,
        repairs,
        identical,
        replay_json.join(","),
    );
    std::fs::write("BENCH_WAL_REPAIR.json", json + "\n").expect("write figure json");
    eprintln!("wrote BENCH_WAL_REPAIR.json");
}
