//! Parallel-JAA scaling figure: sequential JAA vs the work-stealing
//! parallel driver at 1/2/4 threads, d = 3, k = 10, ANTI data — the
//! engine-follow-up figure beyond the paper's §7 battery.
//!
//! Usage: `cargo run --release -p utk-bench --bin parallel_jaa
//! [--scale f] [--queries n] [--seed s]`
//!
//! Prints the Markdown table and records the raw numbers (plus the
//! cell-identity check against the sequential run) in
//! `BENCH_PARALLEL_JAA.json` in the working directory.

use std::time::Instant;
use utk_bench::{query_workload, secs, Config, Table};
use utk_core::prelude::*;
use utk_data::synthetic::{generate, Distribution};
use utk_geom::Region;

const D: usize = 3;
const K: usize = 10;
const THREADS: [usize; 3] = [1, 2, 4];

fn main() {
    let cfg = Config::from_args();
    let n = cfg.n(400_000);
    let points = generate(Distribution::Anti, n, D, cfg.seed).points;
    let regions = query_workload(D, 0.05, &cfg);

    // One cache-less engine per thread count so every measurement pays
    // full per-query cost on its own persistent pool.
    let seq_engine = UtkEngine::new(points.clone())
        .expect("bench dataset")
        .without_filter_cache();

    let mut seq_total = 0.0f64;
    let mut seq_cells = Vec::new();
    for qb in &regions {
        let region = Region::hyperrect(qb.lo.clone(), qb.hi.clone());
        let t0 = Instant::now();
        let r = seq_engine.utk2(&region, K).expect("sequential JAA");
        seq_total += t0.elapsed().as_secs_f64();
        seq_cells.push(
            r.cells
                .iter()
                .map(|c| (c.interior.clone(), c.top_k.clone()))
                .collect::<Vec<_>>(),
        );
    }
    let seq_mean = seq_total / regions.len() as f64;

    let mut table = Table::new(vec!["threads", "mean time", "speedup", "cells identical"]);
    table.row(vec![
        "seq".to_string(),
        secs(seq_mean),
        "1.00x".to_string(),
        "-".to_string(),
    ]);

    let mut rows_json = Vec::new();
    for &threads in &THREADS {
        let engine = UtkEngine::new(points.clone())
            .expect("bench dataset")
            .without_filter_cache()
            .with_pool_threads(threads);
        let mut total = 0.0f64;
        let mut identical = true;
        let mut stolen = 0usize;
        for (qi, qb) in regions.iter().enumerate() {
            let region = Region::hyperrect(qb.lo.clone(), qb.hi.clone());
            let query = UtkQuery::utk2(K).region(region).parallel(true);
            let t0 = Instant::now();
            let res = engine.run(&query).expect("parallel JAA");
            total += t0.elapsed().as_secs_f64();
            let cells = res.cells().expect("utk2 cells");
            identical &= cells.len() == seq_cells[qi].len()
                && cells
                    .iter()
                    .zip(&seq_cells[qi])
                    .all(|(c, (i, t))| &c.interior == i && &c.top_k == t);
            stolen += res.stats().stolen_tasks;
        }
        let mean = total / regions.len() as f64;
        let speedup = seq_mean / mean;
        table.row(vec![
            threads.to_string(),
            secs(mean),
            format!("{speedup:.2}x"),
            identical.to_string(),
        ]);
        rows_json.push(format!(
            concat!(
                r#"{{"threads":{},"mean_seconds":{:.6},"speedup_vs_sequential":{:.3},"#,
                r#""cells_identical_to_sequential":{},"stolen_tasks":{}}}"#
            ),
            threads, mean, speedup, identical, stolen
        ));
        assert!(identical, "parallel cells diverged at {threads} threads");
    }

    println!("Parallel JAA (ANTI, n = {n}, d = {D}, k = {K}, sigma = 5%)");
    table.print();

    let cores = utk_bench::recorded_parallelism();
    let json = format!(
        concat!(
            r#"{{"schema_version":1,"figure":"parallel_jaa","dataset":"ANTI","n":{},"d":{},"k":{},"sigma":0.05,"#,
            r#""queries":{},"seed":{},"available_parallelism":{},"#,
            r#""sequential_mean_seconds":{:.6},"parallel":[{}]}}"#
        ),
        n,
        D,
        K,
        regions.len(),
        cfg.seed,
        cores,
        seq_mean,
        rows_json.join(",")
    );
    std::fs::write("BENCH_PARALLEL_JAA.json", json + "\n").expect("write figure json");
    eprintln!("wrote BENCH_PARALLEL_JAA.json (available_parallelism = {cores})");
}
