//! One function per figure of §7; each returns titled Markdown tables
//! so that both the per-figure binaries and the `report` driver can
//! render them.

use crate::{
    bench_engine, count, query_workload, run_batch, secs, Config, Measurement, Method, Table,
    PAPER_D, PAPER_D_DEFAULT, PAPER_K_DEFAULT, PAPER_N, PAPER_N_DEFAULT, PAPER_SIGMA,
    PAPER_SIGMA_DEFAULT,
};
use utk_core::onion::onion_candidates;
use utk_core::prelude::*;
use utk_core::skyband::k_skyband;
use utk_core::stats::Stats;
use utk_core::topk::top_k_brute;
use utk_data::embedded::{nba_2016_17, nba_player_name};
use utk_data::real;
use utk_data::synthetic::{generate, Distribution};
use utk_geom::pref_score;
use utk_geom::Region;

/// A titled table, ready for console or `EXPERIMENTS.md`.
pub struct Figure {
    /// e.g. "Figure 11(a) — UTK1 response time vs k (IND)".
    pub title: String,
    /// Extra context (workload parameters).
    pub caption: String,
    /// The data.
    pub table: Table,
    /// Paper-vs-measured commentary: what the paper's plot shows and
    /// which of those shapes the table above must reproduce.
    pub notes: &'static str,
}

fn ind_engine(cfg: &Config, n: usize, d: usize) -> UtkEngine {
    bench_engine(generate(Distribution::Ind, cfg.n(n), d, cfg.seed).points)
}

/// Figure 9: the NBA 2016–17 case studies (§7.1).
pub fn figure09(_cfg: &Config) -> Vec<Figure> {
    let nba = nba_2016_17();
    let mut out = Vec::new();

    // (a) 2-D: UTK1 vs onion vs 3-skyband.
    let d2 = nba.project(&[0, 1]);
    let region = Region::hyperrect(vec![0.64], vec![0.74]);
    let engine = bench_engine(d2.points.clone());
    let snap = engine.snapshot();
    let utk1 = engine.utk1(&region, 3).expect("case-study query");
    let sky = k_skyband(&d2.points, snap.tree(), 3, &mut Stats::new());
    let onion = onion_candidates(&d2.points, &sky, 3);
    let mut t = Table::new(vec!["operator", "players", "names"]);
    let names = |ids: &[u32]| {
        ids.iter()
            .map(|&i| nba_player_name(i as usize))
            .collect::<Vec<_>>()
            .join(", ")
    };
    t.row(vec![
        "UTK1".to_string(),
        utk1.records.len().to_string(),
        names(&utk1.records),
    ]);
    t.row(vec![
        "3 onion layers".to_string(),
        onion.len().to_string(),
        "(superset of UTK1)".to_string(),
    ]);
    t.row(vec![
        "3-skyband".to_string(),
        sky.len().to_string(),
        "(superset of onion)".to_string(),
    ]);
    out.push(Figure {
        title: "Figure 9(a) — 2D NBA case study (Rebounds, Points)".into(),
        caption: "k = 3, R = [0.64, 0.74] on the rebounds weight; curated 2016-17 table".into(),
        table: t,
        notes: "Paper: UTK1 = {Westbrook, Davis, Whiteside, Drummond}, vs 11 onion \
                players and 13 in the 3-skyband (full league). Measured: identical \
                UTK1 set; the curated table is smaller than the full league, so the \
                onion/skyband counts are proportionally smaller but preserve the \
                UTK ⊂ onion ⊂ skyband gap.",
    });

    // (b) 3-D UTK2 partitions.
    let region3 = Region::hyperrect(vec![0.2, 0.5], vec![0.3, 0.6]);
    let utk2 = bench_engine(nba.points.clone())
        .utk2(&region3, 3)
        .expect("case-study query");
    let mut t = Table::new(vec!["partition interior (wr, wp)", "top-3"]);
    let mut cells: Vec<_> = utk2.cells.iter().collect();
    cells.sort_by(|a, b| {
        (a.interior[0] + a.interior[1]).total_cmp(&(b.interior[0] + b.interior[1]))
    });
    for cell in cells {
        t.row(vec![
            format!("({:.3}, {:.3})", cell.interior[0], cell.interior[1]),
            names(&cell.top_k),
        ]);
    }
    out.push(Figure {
        title: "Figure 9(b) — 3D NBA case study (Rebounds, Points, Assists)".into(),
        caption: "k = 3, R = [0.2, 0.3] × [0.5, 0.6]; UTK2 partitioning".into(),
        table: t,
        notes: "Paper: 5 players total; every top-3 contains Westbrook and Harden, \
                the third slot rotates James → Cousins → Davis across R. Measured: \
                exactly those three top-3 sets, in the same spatial order.",
    });
    out
}

/// Figure 10: UTK vs traditional operators on NBA, varying k.
pub fn figure10(cfg: &Config) -> Vec<Figure> {
    let ds = real::nba(cfg.scale, cfg.seed);
    let d = ds.dim();
    let engine = bench_engine(ds.points.clone());
    let ks: Vec<usize> = if cfg.paper {
        vec![1, 10, 20, 50, 100]
    } else {
        vec![1, 10, 20]
    };
    let regions = query_workload(d, PAPER_SIGMA_DEFAULT, cfg);
    let snap = engine.snapshot();

    let mut ta = Table::new(vec!["k", "k-skyband", "onion", "UTK"]);
    let mut tb = Table::new(vec!["k", "UTK", "TK output", "required k'"]);
    for &k in &ks {
        let sky = k_skyband(&ds.points, snap.tree(), k, &mut Stats::new());
        let onion = onion_candidates(&ds.points, &sky, k);
        let m = run_batch(&regions, |region| Method::Rsa.run(&engine, region, k));
        ta.row(vec![
            k.to_string(),
            sky.len().to_string(),
            onion.len().to_string(),
            count(m.output_size),
        ]);

        // (b) incremental top-k at the pivot until UTK1 is covered.
        let mut needed_sum = 0usize;
        for qb in &regions {
            let region = Region::hyperrect(qb.lo.clone(), qb.hi.clone());
            let utk1 = engine.utk1(&region, k).expect("probe query");
            let want: std::collections::HashSet<u32> = utk1.records.iter().copied().collect();
            let pivot = region.pivot().expect("non-empty");
            let mut covered = 0usize;
            for (rank, (id, _)) in snap
                .tree()
                .descending_iter(
                    |mbb| pref_score(&mbb.hi, &pivot),
                    |id| pref_score(&ds.points[id as usize], &pivot),
                )
                .enumerate()
            {
                if want.contains(&id) {
                    covered += 1;
                }
                if covered == want.len() {
                    needed_sum += rank + 1;
                    break;
                }
            }
        }
        let needed = needed_sum as f64 / regions.len() as f64;
        tb.row(vec![
            k.to_string(),
            count(m.output_size),
            count(needed), // TK must output this many records …
            count(needed), // … i.e. run with k' this large
        ]);
    }
    vec![
        Figure {
            title: "Figure 10(a) — records retained: UTK vs onion vs k-skyband (NBA)".into(),
            caption: format!(
                "simulated NBA ({} records, 8D), σ = 1%, averaged over {} regions",
                ds.len(),
                regions.len()
            ),
            table: ta,
            notes: "Paper: UTK reports 30–100× fewer records than onion/k-skyband, \
                    and the gap widens with k. Measured: the same ordering \
                    UTK ≪ onion ≤ skyband with a gap that grows with k (the \
                    absolute ratio depends on dataset correlation; the simulated \
                    NBA is smaller than the historical one).",
        },
        Figure {
            title: "Figure 10(b) — incremental top-k needed to cover UTK1 (NBA)".into(),
            caption: "plain top-k' at R's pivot, probed until all UTK1 records appear".into(),
            table: tb,
            notes: "Paper: covering UTK1 with a plain top-k' required k' 40–460× \
                    larger than k and 30–230× more output. Measured: k' always \
                    exceeds both k and |UTK1|, growing with k — a plain top-k \
                    cannot simulate UTK1. (The blow-up factor scales with dataset \
                    correlation; see EXPERIMENTS notes.)",
        },
    ]
}

/// Figure 11: RSA/JAA vs the SK and ON baselines, varying k (IND).
pub fn figure11(cfg: &Config) -> Vec<Figure> {
    // Baselines at paper scale take hours by design; the scaled run
    // uses a smaller IND set with the same shape.
    let base_n = if cfg.paper { PAPER_N_DEFAULT } else { 100_000 };
    let engine = ind_engine(cfg, base_n, PAPER_D_DEFAULT);
    let regions = query_workload(PAPER_D_DEFAULT, PAPER_SIGMA_DEFAULT, cfg);
    let ks = cfg.k_values();

    let mut ta = Table::new(vec!["k", "SK", "ON", "RSA"]);
    let mut tb = Table::new(vec!["k", "SK", "ON", "JAA"]);
    for &k in &ks {
        let row_a: Vec<String> = [Method::SkUtk1, Method::OnUtk1, Method::Rsa]
            .iter()
            .map(|m| secs(run_batch(&regions, |r| m.run(&engine, r, k)).seconds))
            .collect();
        ta.row(vec![
            k.to_string(),
            row_a[0].clone(),
            row_a[1].clone(),
            row_a[2].clone(),
        ]);
        let row_b: Vec<String> = [Method::SkUtk2, Method::OnUtk2, Method::Jaa]
            .iter()
            .map(|m| secs(run_batch(&regions, |r| m.run(&engine, r, k)).seconds))
            .collect();
        tb.row(vec![
            k.to_string(),
            row_b[0].clone(),
            row_b[1].clone(),
            row_b[2].clone(),
        ]);
    }
    let caption = format!(
        "IND, n = {}, d = 4, σ = 1%, {} regions per point",
        engine.len(),
        regions.len()
    );
    vec![
        Figure {
            title: "Figure 11(a) — UTK1 response time vs k (IND)".into(),
            caption: caption.clone(),
            table: ta,
            notes: "Paper: RSA beats SK/ON by 1–2 orders of magnitude, growing \
                    with k; ON < SK there because qhull's tighter filter saves \
                    kSPR calls. Measured: RSA is 1.5–2.5 orders faster than both \
                    baselines with the gap widening in k, as published; one \
                    inversion: our ON filter costs more than SK (LP-based hull \
                    membership vs their compiled qhull), so ON > SK here while \
                    both stay orders behind RSA.",
        },
        Figure {
            title: "Figure 11(b) — UTK2 response time vs k (IND)".into(),
            caption,
            table: tb,
            notes: "Paper: same picture with baselines ≈ 2× their UTK1 cost \
                    (kSPR cannot early-terminate). Measured: JAA holds the \
                    1.5–2.5 order lead; baseline UTK2 ≥ UTK1 cost throughout.",
        },
    ]
}

/// Figure 12: effect of cardinality n and data distribution.
pub fn figure12(cfg: &Config) -> Vec<Figure> {
    let dists = Distribution::all();
    let ns: Vec<usize> = PAPER_N.to_vec();
    let mut rsa_t = Table::new(vec!["n", "COR", "IND", "ANTI"]);
    let mut rsa_s = Table::new(vec!["n", "COR", "IND", "ANTI"]);
    let mut jaa_t = Table::new(vec!["n", "COR", "IND", "ANTI"]);
    let mut jaa_s = Table::new(vec!["n", "COR", "IND", "ANTI"]);
    for &paper_n in &ns {
        let n = cfg.n(paper_n);
        let mut cells: Vec<Vec<Measurement>> = Vec::new();
        for dist in dists {
            let engine = bench_engine(generate(dist, n, PAPER_D_DEFAULT, cfg.seed).points);
            let regions = query_workload(PAPER_D_DEFAULT, PAPER_SIGMA_DEFAULT, cfg);
            let mr = run_batch(&regions, |r| Method::Rsa.run(&engine, r, PAPER_K_DEFAULT));
            let mj = run_batch(&regions, |r| Method::Jaa.run(&engine, r, PAPER_K_DEFAULT));
            cells.push(vec![mr, mj]);
        }
        let label = format!("{}K", paper_n / 1000);
        rsa_t.row(vec![
            label.clone(),
            secs(cells[0][0].seconds),
            secs(cells[1][0].seconds),
            secs(cells[2][0].seconds),
        ]);
        rsa_s.row(vec![
            label.clone(),
            count(cells[0][0].output_size),
            count(cells[1][0].output_size),
            count(cells[2][0].output_size),
        ]);
        jaa_t.row(vec![
            label.clone(),
            secs(cells[0][1].seconds),
            secs(cells[1][1].seconds),
            secs(cells[2][1].seconds),
        ]);
        jaa_s.row(vec![
            label,
            count(cells[0][1].output_size),
            count(cells[1][1].output_size),
            count(cells[2][1].output_size),
        ]);
    }
    let caption = format!(
        "d = 4, k = {PAPER_K_DEFAULT}, σ = 1%; n column shows paper cardinality (×{} actual)",
        cfg.scale
    );
    vec![
        Figure {
            title: "Figure 12(a) — RSA response time vs n".into(),
            caption: caption.clone(),
            table: rsa_t,
            notes: "Paper: sub-linear growth in n; COR fastest, ANTI slowest. \
                    Measured: same ordering COR < IND < ANTI at every n and \
                    clearly sub-linear growth (time tracks the r-skyband size, \
                    not n).",
        },
        Figure {
            title: "Figure 12(b) — UTK1 result records vs n".into(),
            caption: caption.clone(),
            table: rsa_s,
            notes: "Paper: output size nearly flat in n, smallest on COR and \
                    largest on ANTI. Measured: identical shape.",
        },
        Figure {
            title: "Figure 12(c) — JAA response time vs n".into(),
            caption: caption.clone(),
            table: jaa_t,
            notes: "Paper: like RSA but costlier on ANTI (more possible top-k \
                    sets to materialize). Measured: same trend; JAA ≥ RSA \
                    per configuration, with the ANTI gap the widest.",
        },
        Figure {
            title: "Figure 12(d) — UTK2 top-k sets vs n".into(),
            caption,
            table: jaa_s,
            notes: "Paper: COR collapses to a single top-k set; ANTI yields the \
                    most. Measured: COR → 1 set at larger n, ANTI consistently \
                    the most diverse — processing time correlates with this \
                    output size exactly as §7.2 observes.",
        },
    ]
}

/// Figure 13: effect of dimensionality d (time and space).
pub fn figure13(cfg: &Config) -> Vec<Figure> {
    let mut tt = Table::new(vec!["d", "RSA", "JAA"]);
    let mut ts = Table::new(vec!["d", "RSA (MB)", "JAA (MB)"]);
    for &d in &PAPER_D {
        let engine = ind_engine(cfg, PAPER_N_DEFAULT, d);
        let regions = query_workload(d, PAPER_SIGMA_DEFAULT, cfg);
        let mr = run_batch(&regions, |r| Method::Rsa.run(&engine, r, PAPER_K_DEFAULT));
        let mj = run_batch(&regions, |r| Method::Jaa.run(&engine, r, PAPER_K_DEFAULT));
        tt.row(vec![d.to_string(), secs(mr.seconds), secs(mj.seconds)]);
        let mb = |s: &Stats| format!("{:.3}", s.peak_arrangement_bytes as f64 / (1024.0 * 1024.0));
        ts.row(vec![d.to_string(), mb(&mr.stats), mb(&mj.stats)]);
    }
    let caption = format!(
        "IND, n = {} (paper 400K), k = {PAPER_K_DEFAULT}, σ = 1%; space = peak live arrangement-index bytes",
        cfg.n(PAPER_N_DEFAULT)
    );
    vec![
        Figure {
            title: "Figure 13(a) — response time vs dimensionality d (IND)".into(),
            caption: caption.clone(),
            table: tt,
            notes: "Paper: cost rises steeply with d (computational-geometry \
                    nature of the problem), to 149s/164s at d = 7 and 400K. \
                    Measured: the same super-linear climb with JAA pulling \
                    ahead of RSA in cost as d grows.",
        },
        Figure {
            title: "Figure 13(b) — space requirements vs d (IND)".into(),
            caption,
            table: ts,
            notes: "Paper: a few MB, growing with d; baselines need ~10× more \
                    at d = 4 due to their single-arrangement indexing. \
                    Measured: peak live arrangement bytes grow with d by \
                    orders of magnitude from d = 2 to d = 7, and stay small in \
                    absolute terms thanks to the disposable per-call indices \
                    of §4.5 (absolute MB scale with the scaled-down candidate \
                    counts).",
        },
    ]
}

/// Figure 14: effect of region size σ (IND).
pub fn figure14(cfg: &Config) -> Vec<Figure> {
    let engine = ind_engine(cfg, PAPER_N_DEFAULT, PAPER_D_DEFAULT);
    let mut tt = Table::new(vec!["σ", "RSA", "JAA"]);
    let mut ts = Table::new(vec!["σ", "RSA records", "JAA top-k sets"]);
    for &sigma in &PAPER_SIGMA {
        let regions = query_workload(PAPER_D_DEFAULT, sigma, cfg);
        let mr = run_batch(&regions, |r| Method::Rsa.run(&engine, r, PAPER_K_DEFAULT));
        let mj = run_batch(&regions, |r| Method::Jaa.run(&engine, r, PAPER_K_DEFAULT));
        let label = format!("{}%", sigma * 100.0);
        tt.row(vec![label.clone(), secs(mr.seconds), secs(mj.seconds)]);
        ts.row(vec![label, count(mr.output_size), count(mj.output_size)]);
    }
    let caption = format!("IND, n = {}, d = 4, k = {PAPER_K_DEFAULT}", engine.len());
    vec![
        Figure {
            title: "Figure 14(a) — response time vs region size σ (IND)".into(),
            caption: caption.clone(),
            table: tt,
            notes: "Paper: larger R ⇒ larger output ⇒ more computation, with \
                    JAA rising faster than RSA. Measured: identical shape; \
                    JAA's cost tracks the number of top-k sets, RSA's the \
                    (slower-growing) number of result records.",
        },
        Figure {
            title: "Figure 14(b) — result size vs region size σ (IND)".into(),
            caption,
            table: ts,
            notes: "Paper: both outputs grow with σ, the partition count much \
                    faster than the record count. Measured: same relationship \
                    (records grow ~2×, top-k sets ~30× over the σ sweep).",
        },
    ]
}

fn real_engines(cfg: &Config) -> Vec<(UtkEngine, String)> {
    real::all_real(cfg.scale, cfg.seed)
        .into_iter()
        .map(|ds| (bench_engine(ds.points), ds.name))
        .collect()
}

/// Figure 15: JAA on the real datasets, varying k.
pub fn figure15(cfg: &Config) -> Vec<Figure> {
    let data = real_engines(cfg);
    let ks = cfg.k_values();
    let mut tt = Table::new(vec!["k", "NBA", "HOUSE", "HOTEL"]);
    let mut ts = Table::new(vec!["k", "NBA", "HOUSE", "HOTEL"]);
    for &k in &ks {
        let mut times = Vec::new();
        let mut sizes = Vec::new();
        for (engine, _) in &data {
            let regions = query_workload(engine.dim(), PAPER_SIGMA_DEFAULT, cfg);
            let m = run_batch(&regions, |r| Method::Jaa.run(engine, r, k));
            times.push(secs(m.seconds));
            sizes.push(count(m.output_size));
        }
        tt.row(vec![
            k.to_string(),
            times[0].clone(),
            times[1].clone(),
            times[2].clone(),
        ]);
        ts.row(vec![
            k.to_string(),
            sizes[0].clone(),
            sizes[1].clone(),
            sizes[2].clone(),
        ]);
    }
    let caption = format!(
        "simulated real datasets at ×{} scale, σ = 1%, {} regions per point",
        cfg.scale, cfg.queries
    );
    vec![
        Figure {
            title: "Figure 15(a) — JAA response time vs k (real datasets)".into(),
            caption: caption.clone(),
            table: tt,
            notes: "Paper: cost grows with k; NBA (8D) is the slowest despite \
                    being the smallest, HOUSE (6D) slower than HOTEL (4D) \
                    despite similar cardinality — dimensionality dominates. \
                    Measured: the same k-growth and the same \
                    NBA ≥ HOUSE ≥ HOTEL ordering at the larger k.",
        },
        Figure {
            title: "Figure 15(b) — UTK2 top-k sets vs k (real datasets)".into(),
            caption,
            table: ts,
            notes: "Paper: output sizes grow with k and correlate with the \
                    running times. Measured: identical correlation.",
        },
    ]
}

/// Figure 16: JAA on the real datasets, varying σ.
pub fn figure16(cfg: &Config) -> Vec<Figure> {
    let data = real_engines(cfg);
    let mut tt = Table::new(vec!["σ", "NBA", "HOUSE", "HOTEL"]);
    let mut ts = Table::new(vec!["σ", "NBA", "HOUSE", "HOTEL"]);
    for &sigma in &PAPER_SIGMA {
        let mut times = Vec::new();
        let mut sizes = Vec::new();
        for (engine, _) in &data {
            let d = engine.dim();
            // High-d simplexes cannot host large cubes; and in the
            // scaled-down mode, large σ on high-d data is skipped —
            // those are the multi-hundred-second points of the
            // paper's own Figure 16 (run `--paper` to reproduce
            // them).
            let volume = (d - 1) as f64 * sigma;
            if volume >= 0.95 || (!cfg.paper && volume > 0.16) {
                times.push("—".to_string());
                sizes.push("—".to_string());
                continue;
            }
            let regions = query_workload(d, sigma, cfg);
            let m = run_batch(&regions, |r| Method::Jaa.run(engine, r, PAPER_K_DEFAULT));
            times.push(secs(m.seconds));
            sizes.push(count(m.output_size));
        }
        let label = format!("{}%", sigma * 100.0);
        tt.row(vec![
            label.clone(),
            times[0].clone(),
            times[1].clone(),
            times[2].clone(),
        ]);
        ts.row(vec![
            label,
            sizes[0].clone(),
            sizes[1].clone(),
            sizes[2].clone(),
        ]);
    }
    let caption = format!(
        "simulated real datasets at ×{} scale, k = {PAPER_K_DEFAULT}",
        cfg.scale
    );
    vec![
        Figure {
            title: "Figure 16(a) — JAA response time vs σ (real datasets)".into(),
            caption: caption.clone(),
            table: tt,
            notes: "Paper: steep growth with σ, reaching ~10³ s at NBA σ = 10%. \
                    Measured: the same blow-up — large σ on the 7-dimensional \
                    NBA preference domain explodes the ≤k-level (66K+ cells \
                    at σ = 5% in a side probe), which is why the scaled-down \
                    run skips those dashes; `--paper` reproduces the paper's \
                    multi-hundred-second points.",
        },
        Figure {
            title: "Figure 16(b) — UTK2 top-k sets vs σ (real datasets)".into(),
            caption,
            table: ts,
            notes: "Paper: output size grows with σ and mirrors the time plot. \
                    Measured: same correlation on every dataset.",
        },
    ]
}

/// Renders a figure set to stdout.
pub fn print_figures(figs: &[Figure]) {
    for f in figs {
        println!("\n### {}\n", f.title);
        println!("_{}_\n", f.caption);
        f.table.print();
        println!("\n> {}", f.notes);
    }
}

#[allow(unused)]
fn unused_top_k_guard() {
    // Keep the brute-force reference linked for doc examples.
    let _ = top_k_brute;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> Config {
        Config {
            scale: 0.01,
            queries: 1,
            seed: 1,
            paper: false,
            positional: Vec::new(),
        }
    }

    #[test]
    fn figure09_reproduces_case_study_tables() {
        let figs = figure09(&tiny_cfg());
        assert_eq!(figs.len(), 2);
        assert!(figs[0].title.contains("9(a)"));
        let md = figs[0].table.to_markdown();
        assert!(md.contains("Russell Westbrook"));
        assert!(md.contains("Hassan Whiteside"));
        let md_b = figs[1].table.to_markdown();
        assert!(md_b.contains("James Harden"));
    }

    #[test]
    fn figure14_emits_all_sigma_rows() {
        let figs = figure14(&tiny_cfg());
        assert_eq!(figs.len(), 2);
        let md = figs[0].table.to_markdown();
        for label in ["0.1%", "0.5%", "1%", "5%", "10%"] {
            assert!(md.contains(label), "missing σ = {label}");
        }
    }

    #[test]
    fn figure16_skips_oversized_regions_in_scaled_mode() {
        let figs = figure16(&tiny_cfg());
        let md = figs[0].table.to_markdown();
        assert!(md.contains('—'), "large σ on 8D NBA must be skipped");
    }
}
