//! Experiment harness for the UTK paper's evaluation (§7).
//!
//! Each `figureNN` binary regenerates one figure of the paper; the
//! `report` binary runs the whole battery and emits Markdown tables
//! (the source of `EXPERIMENTS.md`). Shared here: configuration
//! (paper-scale vs scaled-down), query-workload execution, timing and
//! table formatting.
//!
//! All measurements follow the paper's §7 protocol: each data point
//! averages a batch of UTK queries over random hyper-cube regions of
//! side σ (Table 1 defaults in bold: n = 400K, d = 4, k = 10,
//! σ = 1%, 50 queries). `--paper` runs the original sizes; default is
//! a scaled-down workload with identical shape that completes on a
//! laptop in minutes.

#![warn(missing_docs)]
// The 2026 unsafe audit found zero unsafe blocks workspace-wide;
// keep it that way. Any future unsafe must demote this to deny,
// carry a `// SAFETY:` comment (utk-lint enforces it), and say why
// no safe formulation works.
#![forbid(unsafe_code)]

pub mod figures;

use std::time::{Duration, Instant};
use utk_core::engine::{Algo, QueryResult, UtkQuery};
use utk_core::prelude::*;
use utk_core::stats::Stats;
use utk_data::queries::{random_regions, QueryBox};
use utk_geom::Region;

/// Table 1 of the paper: tested parameter values, defaults in bold.
pub const PAPER_N: [usize; 5] = [100_000, 200_000, 400_000, 800_000, 1_600_000];
/// Default cardinality (bold in Table 1).
pub const PAPER_N_DEFAULT: usize = 400_000;
/// Tested dimensionalities.
pub const PAPER_D: [usize; 6] = [2, 3, 4, 5, 6, 7];
/// Default dimensionality.
pub const PAPER_D_DEFAULT: usize = 4;
/// Tested k values.
pub const PAPER_K: [usize; 6] = [1, 5, 10, 20, 50, 100];
/// Default k.
pub const PAPER_K_DEFAULT: usize = 10;
/// Tested σ values (fraction of the axis).
pub const PAPER_SIGMA: [f64; 5] = [0.001, 0.005, 0.01, 0.05, 0.1];
/// Default σ.
pub const PAPER_SIGMA_DEFAULT: f64 = 0.01;
/// Queries averaged per measurement.
pub const PAPER_QUERIES: usize = 50;

/// Harness configuration parsed from the command line.
#[derive(Debug, Clone)]
pub struct Config {
    /// Cardinality multiplier applied to every dataset (1.0 = paper).
    pub scale: f64,
    /// Number of random query boxes averaged per measurement.
    pub queries: usize,
    /// Workload seed.
    pub seed: u64,
    /// True when `--paper` was passed (full Table 1 grid).
    pub paper: bool,
    /// Positional arguments (e.g. the sub-figure letter).
    pub positional: Vec<String>,
}

impl Config {
    /// Parses `argv[1..]`: positionals plus `--paper`,
    /// `--scale <f>`, `--queries <n>`, `--seed <n>`.
    pub fn from_args() -> Config {
        let mut cfg = Config {
            scale: 0.05,
            queries: 5,
            seed: 2018,
            paper: false,
            positional: Vec::new(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--paper" => {
                    cfg.paper = true;
                    cfg.scale = 1.0;
                    cfg.queries = PAPER_QUERIES;
                }
                "--scale" => {
                    cfg.scale = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale needs a float");
                }
                "--queries" => {
                    cfg.queries = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--queries needs an integer");
                }
                "--seed" => {
                    cfg.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                }
                other => cfg.positional.push(other.to_string()),
            }
        }
        cfg
    }

    /// Scales a paper cardinality, keeping at least 1 000 records.
    pub fn n(&self, paper_n: usize) -> usize {
        ((paper_n as f64 * self.scale) as usize).max(1_000)
    }

    /// The k sweep, truncated in scaled-down mode (large k against
    /// full baselines is a paper-scale exercise).
    pub fn k_values(&self) -> Vec<usize> {
        if self.paper {
            PAPER_K.to_vec()
        } else {
            vec![1, 5, 10, 20]
        }
    }
}

/// One measured data point: mean wall-clock plus averaged counters.
#[derive(Debug, Clone, Default)]
pub struct Measurement {
    /// Mean wall-clock seconds per query.
    pub seconds: f64,
    /// Mean primary output size (records for UTK1, partitions for
    /// UTK2).
    pub output_size: f64,
    /// Aggregated counters over the batch.
    pub stats: Stats,
}

/// Runs `f` once per query region and averages.
pub fn run_batch<F>(regions: &[QueryBox], mut f: F) -> Measurement
where
    F: FnMut(&Region) -> (usize, Stats),
{
    let mut total = Duration::ZERO;
    let mut out_sum = 0usize;
    let mut stats = Stats::new();
    for qb in regions {
        let region = Region::hyperrect(qb.lo.clone(), qb.hi.clone());
        let t0 = Instant::now();
        let (out, s) = f(&region);
        total += t0.elapsed();
        out_sum += out;
        stats.absorb(&s);
    }
    let n = regions.len().max(1) as f64;
    Measurement {
        seconds: total.as_secs_f64() / n,
        output_size: out_sum as f64 / n,
        stats,
    }
}

/// Convenience: random query boxes for `d`-dimensional data.
pub fn query_workload(d: usize, sigma: f64, cfg: &Config) -> Vec<QueryBox> {
    random_regions(d - 1, sigma, cfg.queries, cfg.seed)
}

/// The four measured pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// RSA (UTK1).
    Rsa,
    /// JAA (UTK2).
    Jaa,
    /// Baseline SK, UTK1 or UTK2 mode per the experiment.
    SkUtk1,
    /// Baseline ON.
    OnUtk1,
    /// Baseline SK in UTK2 mode.
    SkUtk2,
    /// Baseline ON in UTK2 mode.
    OnUtk2,
}

impl Method {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            Method::Rsa => "RSA",
            Method::Jaa => "JAA",
            Method::SkUtk1 | Method::SkUtk2 => "SK",
            Method::OnUtk1 | Method::OnUtk2 => "ON",
        }
    }

    /// Runs the method through `engine`, returning `(primary output
    /// size, stats)`.
    ///
    /// Build measurement engines with [`bench_engine`] (filter cache
    /// disabled) so every query pays its full per-query cost, as the
    /// paper's protocol assumes.
    pub fn run(self, engine: &UtkEngine, region: &Region, k: usize) -> (usize, Stats) {
        let query = |algo: Algo| UtkQuery::utk1(k).region(region.clone()).algorithm(algo);
        match self {
            Method::Rsa => {
                let Ok(QueryResult::Utk1(r)) = engine.run(&query(Algo::Rsa)) else {
                    panic!("RSA benchmark query failed");
                };
                (r.records.len(), r.stats)
            }
            Method::Jaa => {
                let r = engine.utk2(region, k).expect("JAA benchmark query failed");
                // The paper's UTK2 output-size metric: the number of
                // different top-k sets.
                (r.num_distinct_sets(), r.stats)
            }
            Method::SkUtk1 => {
                let Ok(QueryResult::Utk1(r)) = engine.run(&query(Algo::Sk)) else {
                    panic!("SK benchmark query failed");
                };
                (r.records.len(), r.stats)
            }
            Method::OnUtk1 => {
                let Ok(QueryResult::Utk1(r)) = engine.run(&query(Algo::On)) else {
                    panic!("ON benchmark query failed");
                };
                (r.records.len(), r.stats)
            }
            // The baselines' UTK2 mode (kSPR run to completion) has no
            // engine counterpart — it answers with witness regions,
            // not a partitioning — so it runs off the engine's
            // substrate directly.
            Method::SkUtk2 => {
                let snap = engine.snapshot();
                let r = baseline_utk2(snap.points(), snap.tree(), region, k, FilterKind::Skyband);
                (r.total_regions(), r.stats)
            }
            Method::OnUtk2 => {
                let snap = engine.snapshot();
                let r = baseline_utk2(snap.points(), snap.tree(), region, k, FilterKind::Onion);
                (r.total_regions(), r.stats)
            }
        }
    }
}

/// An engine for measurements: owns the dataset and its R-tree, with
/// the filter cache disabled so repeated `(k, R)` queries — e.g. the
/// same workload across methods — each pay their full cost.
pub fn bench_engine(points: Vec<Vec<f64>>) -> UtkEngine {
    UtkEngine::new(points)
        .expect("benchmark dataset must be valid")
        .without_filter_cache()
}

/// Markdown/console table writer used by every figure binary.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Renders as a Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = w[i]))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        let sep: Vec<String> = w.iter().map(|&wi| "-".repeat(wi)).collect();
        out.push_str(&format!("| {} |\n", sep.join(" | ")));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.to_markdown());
    }
}

/// The core budget the container grants, warning on stderr when it is
/// a single core — parallel and batch speedup figures measured there
/// say nothing about the algorithms. Every `BENCH_*.json` records the
/// returned value (key `available_parallelism`) so a reader can judge
/// the numbers without knowing the machine they came from.
pub fn recorded_parallelism() -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    if cores <= 1 {
        eprintln!(
            "warning: available_parallelism = 1 — parallel/batch speedups cannot \
             materialize on this machine; treat throughput figures as single-core"
        );
    }
    cores
}

/// Formats seconds with sensible precision.
pub fn secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{:.2}ms", s * 1000.0)
    }
}

/// Formats a float count.
pub fn count(c: f64) -> String {
    if c >= 100.0 {
        format!("{c:.0}")
    } else {
        format!("{c:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(vec!["k", "RSA", "SK"]);
        t.row(vec!["1", "0.5", "12.0"]);
        let md = t.to_markdown();
        assert!(md.contains("| k | RSA |"));
        assert!(md.lines().count() == 3);
    }

    #[test]
    fn batch_runs_every_region() {
        let regions = random_regions(2, 0.05, 3, 1);
        let mut calls = 0;
        let m = run_batch(&regions, |_| {
            calls += 1;
            (calls, Stats::new())
        });
        assert_eq!(calls, 3);
        assert!((m.output_size - 2.0).abs() < 1e-9);
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(0.0123), "12.30ms");
        assert_eq!(secs(7.256), "7.26");
        assert_eq!(secs(250.0), "250");
    }
}
