//! Criterion micro-benchmarks mirroring every figure of §7 at reduced
//! scale: statistically robust *relative* timings (who wins, how
//! growth trends behave), complementing the full-size `figureNN`
//! harness binaries.
//!
//! Run: `cargo bench -p utk-bench --bench figures`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use utk_core::onion::onion_candidates;
use utk_core::prelude::*;
use utk_core::skyband::k_skyband;
use utk_core::stats::Stats;
use utk_data::queries::random_regions;
use utk_data::real;
use utk_data::synthetic::{generate, Distribution};
use utk_geom::Region;
use utk_rtree::RTree;

const BENCH_N: usize = 5_000;
const BENCH_K: usize = 10;
const BENCH_SIGMA: f64 = 0.01;

fn region_for(d: usize, seed: u64) -> Region {
    let qb = &random_regions(d - 1, BENCH_SIGMA, 1, seed)[0];
    Region::hyperrect(qb.lo.clone(), qb.hi.clone())
}

/// Figure 10(a): the three operators whose output sizes the paper
/// compares — here their computation cost on the NBA-like dataset.
fn fig10_operators(c: &mut Criterion) {
    let ds = real::nba(0.2, 7); // ≈ 4 400 records
    let tree = RTree::bulk_load(&ds.points);
    let region = region_for(ds.dim(), 10);
    let mut g = c.benchmark_group("fig10_operators_nba");
    g.sample_size(10);
    g.bench_function("k_skyband", |b| {
        b.iter(|| k_skyband(&ds.points, &tree, BENCH_K, &mut Stats::new()))
    });
    g.bench_function("onion_layers", |b| {
        let sky = k_skyband(&ds.points, &tree, BENCH_K, &mut Stats::new());
        b.iter(|| onion_candidates(&ds.points, &sky, BENCH_K))
    });
    g.bench_function("utk1_rsa", |b| {
        b.iter(|| rsa_with_tree(&ds.points, &tree, &region, BENCH_K, &RsaOptions::default()))
    });
    g.finish();
}

/// Figure 11: RSA/JAA vs the SK/ON baselines, varying k.
fn fig11_methods_vs_k(c: &mut Criterion) {
    let ds = generate(Distribution::Ind, BENCH_N, 4, 1);
    let tree = RTree::bulk_load(&ds.points);
    let region = region_for(4, 11);
    let mut g = c.benchmark_group("fig11_vs_k");
    g.sample_size(10);
    for k in [1usize, 5, 10] {
        g.bench_with_input(BenchmarkId::new("RSA", k), &k, |b, &k| {
            b.iter(|| rsa_with_tree(&ds.points, &tree, &region, k, &RsaOptions::default()))
        });
        g.bench_with_input(BenchmarkId::new("JAA", k), &k, |b, &k| {
            b.iter(|| jaa_with_tree(&ds.points, &tree, &region, k, &JaaOptions::default()))
        });
        g.bench_with_input(BenchmarkId::new("SK", k), &k, |b, &k| {
            b.iter(|| baseline_utk1(&ds.points, &tree, &region, k, FilterKind::Skyband))
        });
        g.bench_with_input(BenchmarkId::new("ON", k), &k, |b, &k| {
            b.iter(|| baseline_utk1(&ds.points, &tree, &region, k, FilterKind::Onion))
        });
    }
    g.finish();
}

/// Figure 12: RSA and JAA across distributions and cardinalities.
fn fig12_distributions(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_dist_n");
    g.sample_size(10);
    for dist in Distribution::all() {
        for n in [2_000usize, 8_000] {
            let ds = generate(dist, n, 4, 2);
            let tree = RTree::bulk_load(&ds.points);
            let region = region_for(4, 12);
            let id = format!("{}_{}", dist.label(), n);
            g.bench_with_input(BenchmarkId::new("RSA", &id), &(), |b, _| {
                b.iter(|| {
                    rsa_with_tree(&ds.points, &tree, &region, BENCH_K, &RsaOptions::default())
                })
            });
            g.bench_with_input(BenchmarkId::new("JAA", &id), &(), |b, _| {
                b.iter(|| {
                    jaa_with_tree(&ds.points, &tree, &region, BENCH_K, &JaaOptions::default())
                })
            });
        }
    }
    g.finish();
}

/// Figure 13: dimensionality sweep.
fn fig13_dimensionality(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_vs_d");
    g.sample_size(10);
    for d in [2usize, 3, 4, 5, 6, 7] {
        let ds = generate(Distribution::Ind, BENCH_N, d, 3);
        let tree = RTree::bulk_load(&ds.points);
        let region = region_for(d, 13);
        g.bench_with_input(BenchmarkId::new("RSA", d), &(), |b, _| {
            b.iter(|| rsa_with_tree(&ds.points, &tree, &region, BENCH_K, &RsaOptions::default()))
        });
        g.bench_with_input(BenchmarkId::new("JAA", d), &(), |b, _| {
            b.iter(|| jaa_with_tree(&ds.points, &tree, &region, BENCH_K, &JaaOptions::default()))
        });
    }
    g.finish();
}

/// Figure 14: region-size sweep.
fn fig14_sigma(c: &mut Criterion) {
    let ds = generate(Distribution::Ind, BENCH_N, 4, 4);
    let tree = RTree::bulk_load(&ds.points);
    let mut g = c.benchmark_group("fig14_vs_sigma");
    g.sample_size(10);
    for (label, sigma) in [("0.1%", 0.001), ("1%", 0.01), ("5%", 0.05), ("10%", 0.1)] {
        let qb = &random_regions(3, sigma, 1, 14)[0];
        let region = Region::hyperrect(qb.lo.clone(), qb.hi.clone());
        g.bench_with_input(BenchmarkId::new("RSA", label), &(), |b, _| {
            b.iter(|| rsa_with_tree(&ds.points, &tree, &region, BENCH_K, &RsaOptions::default()))
        });
        g.bench_with_input(BenchmarkId::new("JAA", label), &(), |b, _| {
            b.iter(|| jaa_with_tree(&ds.points, &tree, &region, BENCH_K, &JaaOptions::default()))
        });
    }
    g.finish();
}

/// Figures 15–16: JAA on the simulated real datasets.
fn fig15_16_real_datasets(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15_16_real");
    g.sample_size(10);
    for ds in real::all_real(0.02, 5) {
        let tree = RTree::bulk_load(&ds.points);
        let region = region_for(ds.dim(), 15);
        let name = ds.name.split('-').next().unwrap_or("?").to_string();
        g.bench_with_input(BenchmarkId::new("JAA", &name), &(), |b, _| {
            b.iter(|| jaa_with_tree(&ds.points, &tree, &region, BENCH_K, &JaaOptions::default()))
        });
    }
    g.finish();
}

criterion_group!(
    figures,
    fig10_operators,
    fig11_methods_vs_k,
    fig12_distributions,
    fig13_dimensionality,
    fig14_sigma,
    fig15_16_real_datasets,
);
criterion_main!(figures);
