//! Ablation benches for the design choices §4–§5 argue for (and
//! DESIGN.md indexes): each group compares the paper's choice against
//! the natural alternative on identical workloads. Correctness is
//! unchanged (the integration tests assert it); only work differs.
//!
//! Run: `cargo bench -p utk-bench --bench ablations`

use criterion::{criterion_group, criterion_main, Criterion};
use utk_core::drill::graph_top_k;
use utk_core::prelude::*;
use utk_core::skyband::r_skyband;
use utk_core::stats::Stats;
use utk_data::queries::random_regions;
use utk_data::synthetic::{generate, Distribution};
use utk_geom::{pref_score, PointStore, Region};
use utk_rtree::RTree;

fn workload(dist: Distribution, n: usize, d: usize, sigma: f64) -> (Vec<Vec<f64>>, RTree, Region) {
    let ds = generate(dist, n, d, 99);
    let tree = RTree::bulk_load(&ds.points);
    let qb = &random_regions(d - 1, sigma, 1, 99)[0];
    let region = Region::hyperrect(qb.lo.clone(), qb.hi.clone());
    (ds.points, tree, region)
}

/// §4.3: drill probe on vs off (RSA). Anticorrelated data stresses
/// refinement, where the drill short-circuits confirmations.
fn ablate_drill(c: &mut Criterion) {
    let (points, tree, region) = workload(Distribution::Anti, 5_000, 4, 0.05);
    let mut g = c.benchmark_group("ablation_drill");
    g.sample_size(10);
    for (name, drill) in [("on", true), ("off", false)] {
        let opts = RsaOptions {
            drill,
            ..Default::default()
        };
        g.bench_function(name, |b| {
            b.iter(|| rsa_with_tree(&points, &tree, &region, 10, &opts))
        });
    }
    g.finish();
}

/// §4.2: Lemma-1 competitor disregarding on vs off.
fn ablate_lemma1(c: &mut Criterion) {
    let (points, tree, region) = workload(Distribution::Anti, 5_000, 4, 0.05);
    let mut g = c.benchmark_group("ablation_lemma1");
    g.sample_size(10);
    for (name, lemma1) in [("on", true), ("off", false)] {
        let opts = RsaOptions {
            lemma1,
            ..Default::default()
        };
        g.bench_function(name, |b| {
            b.iter(|| rsa_with_tree(&points, &tree, &region, 10, &opts))
        });
    }
    g.finish();
}

/// §4.1: pivot-score heap order vs classic coordinate-sum order for
/// the r-skyband BBS (the sum order also yields a looser filter).
fn ablate_pivot_order(c: &mut Criterion) {
    let (points, tree, region) = workload(Distribution::Ind, 20_000, 4, 0.01);
    let store = PointStore::from_rows(&points);
    let mut g = c.benchmark_group("ablation_bbs_order");
    g.sample_size(10);
    for (name, pivot) in [("pivot", true), ("coord_sum", false)] {
        g.bench_function(name, |b| {
            b.iter(|| r_skyband(&store, &tree, &region, 10, pivot, &mut Stats::new()))
        });
    }
    g.finish();
}

/// §4.2: minimal-r-dominance-count competitor batches vs arbitrary
/// index-ordered batches of the same size.
fn ablate_competitor_selection(c: &mut Criterion) {
    let (points, tree, region) = workload(Distribution::Anti, 5_000, 4, 0.05);
    let mut g = c.benchmark_group("ablation_competitor_selection");
    g.sample_size(10);
    for (name, min_sel) in [("min_count", true), ("arbitrary", false)] {
        let opts = RsaOptions {
            min_count_selection: min_sel,
            ..Default::default()
        };
        g.bench_function(name, |b| {
            b.iter(|| rsa_with_tree(&points, &tree, &region, 10, &opts))
        });
    }
    g.finish();
}

/// §5.1: k-th-scorer anchors (guarantee an equal-to partition per
/// round) vs top-1 anchors (never finalize directly).
fn ablate_anchor_strategy(c: &mut Criterion) {
    let (points, tree, region) = workload(Distribution::Anti, 5_000, 4, 0.05);
    let mut g = c.benchmark_group("ablation_anchor");
    g.sample_size(10);
    for (name, kth) in [("kth_scorer", true), ("top1_scorer", false)] {
        let opts = JaaOptions {
            kth_anchor: kth,
            ..Default::default()
        };
        g.bench_function(name, |b| {
            b.iter(|| jaa_with_tree(&points, &tree, &region, 10, &opts))
        });
    }
    g.finish();
}

/// §4.3: drill top-k via the r-dominance graph vs via the R-tree —
/// the paper's argument for never touching the dataset index during
/// drills.
fn ablate_drill_topk_source(c: &mut Criterion) {
    let (points, tree, region) = workload(Distribution::Ind, 20_000, 4, 0.05);
    let cands = r_skyband(
        &PointStore::from_rows(&points),
        &tree,
        &region,
        10,
        true,
        &mut Stats::new(),
    );
    let removed = vec![false; cands.len()];
    let w = region.pivot().unwrap();
    let mut g = c.benchmark_group("ablation_drill_topk");
    g.sample_size(20);
    g.bench_function("graph", |b| {
        b.iter(|| graph_top_k(&cands, &w, 10, &removed))
    });
    g.bench_function("rtree", |b| {
        b.iter(|| {
            tree.top_k(
                10,
                |mbb| pref_score(&mbb.hi, &w),
                |id| pref_score(&points[id as usize], &w),
            )
        })
    });
    g.finish();
}

/// Extension: parallel RSA (std scoped threads) vs sequential, same
/// exact output.
fn ablate_parallel_rsa(c: &mut Criterion) {
    use utk_core::parallel::rsa_parallel_with_tree;
    let (points, tree, region) = workload(Distribution::Anti, 8_000, 4, 0.05);
    let mut g = c.benchmark_group("ablation_parallel_rsa");
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter(|| rsa_with_tree(&points, &tree, &region, 10, &RsaOptions::default()))
    });
    for threads in [2usize, 4] {
        g.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| {
                rsa_parallel_with_tree(&points, &tree, &region, 10, &RsaOptions::default(), threads)
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    ablate_drill,
    ablate_lemma1,
    ablate_pivot_order,
    ablate_competitor_selection,
    ablate_anchor_strategy,
    ablate_drill_topk_source,
    ablate_parallel_rsa,
);
criterion_main!(ablations);
