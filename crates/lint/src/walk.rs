//! Workspace discovery: find the workspace root and every `.rs`
//! source file the rules apply to.

use std::path::{Path, PathBuf};

/// Ascends from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Collects every workspace `.rs` file under `root`, sorted, as
/// workspace-relative forward-slash paths. Vendored shims, build
/// output, VCS metadata, and the linter's own violation fixtures are
/// pruned during the walk; finer-grained scoping is
/// [`crate::config::classify`]'s job.
pub fn workspace_files(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "shims" || name == ".git" || name == "fixtures" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                if let Some(rel) = relative(root, &path) {
                    out.push(rel);
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

/// `path` relative to `root`, forward slashes.
pub fn relative(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let mut s = String::new();
    for part in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&part.as_os_str().to_string_lossy());
    }
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root");
        assert!(root.join("crates/lint/Cargo.toml").exists());
        let files = workspace_files(&root).expect("walk");
        assert!(files.iter().any(|f| f == "crates/core/src/engine.rs"));
        assert!(files.iter().any(|f| f == "crates/lint/src/lib.rs"));
        assert!(!files.iter().any(|f| f.starts_with("shims/")));
        assert!(!files.iter().any(|f| f.contains("fixtures/")));
    }
}
