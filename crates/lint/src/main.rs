//! Driver: lints the workspace (default), explicit paths, or the
//! fixture corpus (`--fixtures`). Exit status: 0 clean, 1 findings
//! or fixture mismatches, 2 usage/environment errors.

use std::path::PathBuf;
use utk_lint::config::LockOrder;
use utk_lint::rules::RULE_IDS;
use utk_lint::selftest::{lint_path, run_fixtures};
use utk_lint::walk::{find_root, workspace_files};

const USAGE: &str = "usage: utk-lint [--root <dir>] [--fixtures | --list-rules | <paths>...]
  (no args)    lint every workspace source file
  <paths>      lint the given workspace-relative files only
  --fixtures   run the rule fixture self-test
  --list-rules print every rule id";

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut root_arg: Option<PathBuf> = None;
    let mut fixtures = false;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(dir) => root_arg = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory"),
            },
            "--fixtures" => fixtures = true,
            "--list-rules" => {
                for rule in RULE_IDS {
                    println!("{rule}");
                }
                return 0;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown flag {other:?}"));
            }
            path => paths.push(path.to_string()),
        }
    }

    let root = match root_arg.or_else(|| std::env::current_dir().ok().and_then(|d| find_root(&d))) {
        Some(root) => root,
        None => return usage_error("no workspace root found (run inside the repo or pass --root)"),
    };

    if fixtures {
        return match run_fixtures(&root) {
            Ok(failures) if failures.is_empty() => {
                eprintln!("utk-lint: fixture self-test passed");
                0
            }
            Ok(failures) => {
                for f in &failures {
                    eprintln!("utk-lint: FAIL {f}");
                }
                eprintln!("utk-lint: {} fixture failure(s)", failures.len());
                1
            }
            Err(e) => usage_error(&e),
        };
    }

    let targets = if paths.is_empty() {
        match workspace_files(&root) {
            Ok(files) => files,
            Err(e) => return usage_error(&e),
        }
    } else {
        paths
    };
    let locks = match LockOrder::load(&root) {
        Ok(locks) => locks,
        Err(e) => return usage_error(&e),
    };
    if locks.is_empty() {
        eprintln!("utk-lint: warning: crates/lint/lock-order.toml missing or empty; lock-order rule disabled");
    }

    let mut findings = 0usize;
    for rel in &targets {
        match lint_path(&root, rel, &locks) {
            Ok(found) => {
                for f in &found {
                    println!("{f}");
                }
                findings += found.len();
            }
            Err(e) => return usage_error(&e),
        }
    }
    if findings == 0 {
        eprintln!("utk-lint: {} file(s) clean", targets.len());
        0
    } else {
        eprintln!(
            "utk-lint: {findings} finding(s) in {} file(s)",
            targets.len()
        );
        1
    }
}

fn usage_error(msg: &str) -> i32 {
    eprintln!("utk-lint: error: {msg}");
    eprintln!("{USAGE}");
    2
}
