//! File classification and the lock-order manifest.
//!
//! Which rules apply where is a *declared contract*, not an
//! inference: the wire-feeding module list and the server
//! request-path list below name the files whose behavior the
//! byte-identity tests lean on (see the "Invariants" section of the
//! facade docs). A fixture or any other file can override its class
//! with a `// utk-lint: class=<name>` comment on its first lines.

use std::collections::HashMap;
use std::path::Path;

/// Which rule families run on a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Determinism: `partial_cmp` ban + comparator totality.
    pub float_cmp: bool,
    /// Determinism: `HashMap`/`HashSet` ban (wire-feeding modules).
    pub hash_iter: bool,
    /// Panic-freedom: `unwrap`/`expect`/`panic!`/`todo!` ban.
    pub panic: bool,
    /// Panic-freedom: slice-index-without-`get` ban (request paths).
    pub index: bool,
    /// Concurrency: guard-across-blocking + lock-order.
    pub concurrency: bool,
    /// Determinism: `Instant::now()`/`SystemTime::now()` ban. Timing
    /// must flow through the injected `utk_core::obs::Clock` so it can
    /// be frozen in tests and provably never reaches the wire format.
    pub wall_clock: bool,
}

impl FileClass {
    /// Library code: every family except the request-path index rule.
    pub const LIB: FileClass = FileClass {
        float_cmp: true,
        hash_iter: false,
        panic: true,
        index: false,
        concurrency: true,
        wall_clock: true,
    };
    /// Wire-feeding module: `LIB` plus the hash-collection ban.
    pub const WIRE: FileClass = FileClass {
        hash_iter: true,
        ..FileClass::LIB
    };
    /// Server request path: `WIRE` plus the index ban.
    pub const SERVER_REQUEST: FileClass = FileClass {
        index: true,
        ..FileClass::WIRE
    };
    /// Bench harness: determinism + concurrency only (setup panics on
    /// bad CLI args are idiomatic in a measurement tool).
    pub const BENCH: FileClass = FileClass {
        float_cmp: true,
        hash_iter: false,
        panic: false,
        index: false,
        concurrency: true,
        // Benches legitimately measure real wall-clock time.
        wall_clock: false,
    };
    /// Tests/examples: no families. (The unsafe-audit and suppression
    /// rules still run — they apply everywhere.)
    pub const TEST: FileClass = FileClass {
        float_cmp: false,
        hash_iter: false,
        panic: false,
        index: false,
        concurrency: false,
        wall_clock: false,
    };

    /// Parses a `class=` directive value.
    pub fn from_name(name: &str) -> Option<FileClass> {
        Some(match name {
            "lib" => FileClass::LIB,
            "wire" => FileClass::WIRE,
            "server-request" => FileClass::SERVER_REQUEST,
            "bench" => FileClass::BENCH,
            "test" => FileClass::TEST,
            _ => return None,
        })
    }
}

/// Modules that assemble bytes the wire format emits. `HashMap`/
/// `HashSet` are banned outright here: iteration order would leak
/// into `server batch ≡ utk batch` byte identity, and at token level
/// "is it iterated?" is undecidable, so the contract is "not even
/// present". (Deliberate, tie-broken hash-map iteration elsewhere —
/// the engine's superset probe, the `ByteLru` — stays legal.)
const WIRE_FEEDING: &[&str] = &[
    "crates/core/src/wire.rs",
    "crates/core/src/stats.rs",
    "crates/server/src/json.rs",
    "crates/server/src/proto.rs",
    "crates/server/src/spec.rs",
    "crates/server/src/client.rs",
    "src/wire.rs",
];

/// Per-request server code: a panic here kills a connection thread
/// and an out-of-bounds index is remotely reachable, so indexing must
/// go through `get`.
const SERVER_REQUEST_PATH: &[&str] = &[
    "crates/server/src/server.rs",
    "crates/server/src/reactor.rs",
    "crates/server/src/conn.rs",
    "crates/server/src/proto.rs",
    "crates/server/src/json.rs",
    "crates/server/src/spec.rs",
    "crates/server/src/registry.rs",
];

/// Classifies a workspace-relative path (forward slashes). `None`
/// means the file is out of scope entirely (vendored shims, the
/// linter's own violation fixtures, build output).
pub fn classify(rel: &str) -> Option<FileClass> {
    if rel.starts_with("shims/")
        || rel.starts_with("target/")
        || rel.starts_with("crates/lint/fixtures/")
        || rel.contains("/target/")
    {
        return None;
    }
    if rel.starts_with("tests/")
        || rel.starts_with("examples/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
    {
        return Some(FileClass::TEST);
    }
    if rel.starts_with("crates/bench/") {
        return Some(FileClass::BENCH);
    }
    if WIRE_FEEDING.contains(&rel) {
        if SERVER_REQUEST_PATH.contains(&rel) {
            return Some(FileClass::SERVER_REQUEST);
        }
        return Some(FileClass::WIRE);
    }
    if SERVER_REQUEST_PATH.contains(&rel) {
        return Some(FileClass::SERVER_REQUEST);
    }
    Some(FileClass::LIB)
}

/// Scans the first lines of `src` for a `// utk-lint: class=<name>`
/// override (used by fixtures, honored anywhere).
pub fn class_override(src: &str) -> Option<FileClass> {
    for line in src.lines().take(10) {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("//") {
            let rest = rest.trim_start_matches(['/', '!']).trim();
            if let Some(value) = rest.strip_prefix("utk-lint: class=") {
                return FileClass::from_name(value.trim());
            }
        }
    }
    None
}

/// The lock-order manifest: lock name (the receiver field the guard
/// is acquired on) → acquisition rank. Lower ranks must be acquired
/// first; acquiring a lower-ranked lock while holding a higher-ranked
/// one is an inversion finding.
#[derive(Debug, Default, Clone)]
pub struct LockOrder {
    ranks: HashMap<String, u32>,
}

impl LockOrder {
    /// Rank of `name`, when declared.
    pub fn rank(&self, name: &str) -> Option<u32> {
        self.ranks.get(name).copied()
    }

    /// True when no manifest was loaded (rule disabled).
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// Parses the manifest's minimal TOML subset: comments, one
    /// optional `[locks]` header, `name = <integer rank>` lines.
    pub fn parse(text: &str) -> Result<LockOrder, String> {
        let mut ranks = HashMap::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            }
            .trim();
            if line.is_empty() || line == "[locks]" {
                continue;
            }
            let (name, rank) = line
                .split_once('=')
                .ok_or_else(|| format!("lock-order.toml:{}: expected `name = rank`", ln + 1))?;
            let rank: u32 = rank
                .trim()
                .parse()
                .map_err(|_| format!("lock-order.toml:{}: rank must be an integer", ln + 1))?;
            if ranks.insert(name.trim().to_string(), rank).is_some() {
                return Err(format!(
                    "lock-order.toml:{}: duplicate lock {:?}",
                    ln + 1,
                    name.trim()
                ));
            }
        }
        Ok(LockOrder { ranks })
    }

    /// Loads the manifest from `crates/lint/lock-order.toml` under
    /// `root`. A missing file disables the rule (empty manifest).
    pub fn load(root: &Path) -> Result<LockOrder, String> {
        let path = root.join("crates/lint/lock-order.toml");
        match std::fs::read_to_string(&path) {
            Ok(text) => Self::parse(&text),
            Err(_) => Ok(LockOrder::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_by_path() {
        assert_eq!(classify("crates/core/src/engine.rs"), Some(FileClass::LIB));
        assert_eq!(classify("crates/core/src/wire.rs"), Some(FileClass::WIRE));
        assert_eq!(
            classify("crates/server/src/json.rs"),
            Some(FileClass::SERVER_REQUEST)
        );
        assert_eq!(
            classify("crates/server/src/registry.rs"),
            Some(FileClass::SERVER_REQUEST)
        );
        assert_eq!(
            classify("crates/server/src/reactor.rs"),
            Some(FileClass::SERVER_REQUEST)
        );
        assert_eq!(
            classify("crates/server/src/conn.rs"),
            Some(FileClass::SERVER_REQUEST)
        );
        assert_eq!(classify("tests/engine.rs"), Some(FileClass::TEST));
        assert_eq!(
            classify("crates/geom/tests/proptests.rs"),
            Some(FileClass::TEST)
        );
        assert_eq!(classify("crates/bench/src/lib.rs"), Some(FileClass::BENCH));
        assert_eq!(classify("shims/rand/src/lib.rs"), None);
        assert_eq!(classify("crates/lint/fixtures/panic_pos.rs"), None);
        assert_eq!(classify("src/bin/utk.rs"), Some(FileClass::LIB));
    }

    #[test]
    fn class_directive_wins() {
        let src = "// utk-lint: class=wire\nfn main() {}\n";
        assert_eq!(class_override(src), Some(FileClass::WIRE));
        assert_eq!(class_override("fn main() {}"), None);
    }

    #[test]
    fn lock_order_parses() {
        let lo = LockOrder::parse("# c\n[locks]\na = 10\nb = 20 # trailing\n").unwrap();
        assert_eq!(lo.rank("a"), Some(10));
        assert_eq!(lo.rank("b"), Some(20));
        assert_eq!(lo.rank("c"), None);
        assert!(LockOrder::parse("a = x\n").is_err());
        assert!(LockOrder::parse("a = 1\na = 2\n").is_err());
    }
}
