//! A hand-rolled Rust lexer: just enough token structure for the
//! invariant rules — identifiers, punctuation, literals — with full
//! string/char/comment awareness so a `partial_cmp` inside a string
//! literal or a doc comment never trips a rule. No parse tree: rules
//! work on the token stream plus a side list of comments.

/// Token payload. Literal values are irrelevant to every rule, so
/// only identifiers carry text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`let`, `fn`, `partial_cmp`, …).
    Ident(String),
    /// Single punctuation character (`.`, `(`, `{`, `#`, …).
    Punct(char),
    /// Numeric literal.
    Num,
    /// String literal (cooked, raw, or byte).
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Payload.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

/// One comment (line or block) with its starting position. Rules read
/// these for `SAFETY:` annotations and `utk-lint:` directives.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// 1-based line of the comment start.
    pub line: u32,
    /// 1-based line of the comment end (differs for block comments).
    pub end_line: u32,
}

/// Lexer output: the token stream plus the comment side list.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// The identifier text of token `i`, if it is one.
    pub fn ident(&self, i: usize) -> Option<&str> {
        match self.tokens.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when token `i` is the punctuation `c`.
    pub fn punct(&self, i: usize, c: char) -> bool {
        matches!(self.tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
    }

    /// Index of the token matching the opener at `open` (`(`/`[`/`{`),
    /// or `tokens.len()` when unbalanced.
    pub fn matching(&self, open: usize) -> usize {
        let (o, c) = match self.tokens.get(open).map(|t| &t.tok) {
            Some(Tok::Punct('(')) => ('(', ')'),
            Some(Tok::Punct('[')) => ('[', ']'),
            Some(Tok::Punct('{')) => ('{', '}'),
            _ => return self.tokens.len(),
        };
        let mut depth = 0usize;
        for i in open..self.tokens.len() {
            match &self.tokens[i].tok {
                Tok::Punct(p) if *p == o => depth += 1,
                Tok::Punct(p) if *p == c => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        self.tokens.len()
    }
}

struct Cursor<'a> {
    rest: std::str::Chars<'a>,
    peeked: Option<char>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            rest: src.chars(),
            peeked: None,
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        if self.peeked.is_none() {
            self.peeked = self.rest.next();
        }
        self.peeked
    }

    fn peek2(&mut self) -> Option<char> {
        self.peek();
        self.rest.clone().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peeked.take().or_else(|| self.rest.next())?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

/// Lexes `src`. The lexer is total: unexpected bytes become punct
/// tokens, so a file the real compiler rejects still produces a
/// best-effort stream instead of an error.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek2() == Some('/') => {
                cur.bump();
                cur.bump();
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if c == '\n' {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                out.comments.push(Comment {
                    text,
                    line,
                    end_line: line,
                });
            }
            '/' if cur.peek2() == Some('*') => {
                cur.bump();
                cur.bump();
                let mut text = String::new();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(), cur.peek2()) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(c), _) => {
                            text.push(c);
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    text,
                    line,
                    end_line: cur.line,
                });
            }
            '"' => {
                cooked_string(&mut cur);
                out.tokens.push(Token {
                    tok: Tok::Str,
                    line,
                    col,
                });
            }
            '\'' => {
                let tok = char_or_lifetime(&mut cur);
                out.tokens.push(Token { tok, line, col });
            }
            c if c.is_ascii_digit() => {
                number(&mut cur);
                out.tokens.push(Token {
                    tok: Tok::Num,
                    line,
                    col,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut name = String::new();
                while let Some(c) = cur.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        name.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                // Raw/byte string prefixes: `r"…"`, `r#"…"#`, `b"…"`,
                // `br#"…"#`, `b'…'`.
                let tok = match (name.as_str(), cur.peek()) {
                    ("r" | "br" | "rb", Some('"' | '#')) => {
                        raw_string(&mut cur);
                        Tok::Str
                    }
                    ("b", Some('"')) => {
                        cooked_string(&mut cur);
                        Tok::Str
                    }
                    ("b", Some('\'')) => char_or_lifetime(&mut cur),
                    _ => Tok::Ident(name),
                };
                out.tokens.push(Token { tok, line, col });
            }
            c => {
                cur.bump();
                out.tokens.push(Token {
                    tok: Tok::Punct(c),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// Consumes a `"…"` string starting at the opening quote.
fn cooked_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes a raw string after its `r`/`br` prefix: `#…#"…"#…#`.
fn raw_string(cur: &mut Cursor) {
    let mut hashes = 0usize;
    while cur.peek() == Some('#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek() != Some('"') {
        return; // not actually a raw string (e.g. `r#ident`)
    }
    cur.bump();
    loop {
        match cur.bump() {
            Some('"') => {
                let mut seen = 0usize;
                while seen < hashes && cur.peek() == Some('#') {
                    seen += 1;
                    cur.bump();
                }
                if seen == hashes {
                    return;
                }
            }
            Some(_) => {}
            None => return,
        }
    }
}

/// Disambiguates `'a'` / `'\n'` (char literal) from `'a` (lifetime),
/// starting at the quote.
fn char_or_lifetime(cur: &mut Cursor) -> Tok {
    cur.bump(); // opening quote
    match (cur.peek(), cur.peek2()) {
        (Some('\\'), _) => {
            cur.bump();
            cur.bump(); // the escaped char
            while let Some(c) = cur.bump() {
                if c == '\'' {
                    break;
                }
            }
            Tok::Char
        }
        (Some(c), Some('\'')) if c != '\'' => {
            cur.bump();
            cur.bump();
            Tok::Char
        }
        (Some(c), _) if c.is_alphabetic() || c == '_' => {
            while let Some(c) = cur.peek() {
                if c.is_alphanumeric() || c == '_' {
                    cur.bump();
                } else {
                    break;
                }
            }
            Tok::Lifetime
        }
        _ => {
            cur.bump();
            Tok::Char
        }
    }
}

/// Consumes a numeric literal (integer, float, suffixed). `1..n`
/// stays three tokens: the `.` is consumed only when a digit follows.
fn number(cur: &mut Cursor) {
    while let Some(c) = cur.peek() {
        let continues = c.is_alphanumeric()
            || c == '_'
            || (c == '.' && cur.peek2().is_some_and(|d| d.is_ascii_digit()));
        if !continues {
            break;
        }
        cur.bump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
            let a = "partial_cmp inside a string";
            // partial_cmp inside a comment
            /* block partial_cmp /* nested */ still comment */
            let b = r#"raw "quoted" partial_cmp"#;
            let c = 'x';
            let d = '\'';
            fn f<'a>(x: &'a str) {}
            real_ident();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"partial_cmp".to_string()), "{ids:?}");
        assert!(ids.contains(&"real_ident".to_string()));
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 2);
        assert!(lx.comments[0].text.contains("partial_cmp"));
    }

    #[test]
    fn positions_are_one_based() {
        let lx = lex("a\n  b");
        assert_eq!((lx.tokens[0].line, lx.tokens[0].col), (1, 1));
        assert_eq!((lx.tokens[1].line, lx.tokens[1].col), (2, 3));
    }

    #[test]
    fn matching_brackets() {
        let lx = lex("f(a, (b), [c{d}])");
        // token 1 is `(`; its match is the final `)`.
        assert!(lx.punct(1, '('));
        assert_eq!(lx.matching(1), lx.tokens.len() - 1);
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        let lx = lex("0..n");
        assert_eq!(lx.tokens.len(), 4); // 0, ., ., n
    }

    #[test]
    fn byte_and_raw_prefixes() {
        let lx = lex(r##"b"bytes" br#"raw"# b'q' r"raw2""##);
        assert!(lx
            .tokens
            .iter()
            .all(|t| matches!(t.tok, Tok::Str | Tok::Char)));
    }
}
