//! Fixture self-test: every rule has a positive fixture (seeded
//! violations, annotated inline) and a negative fixture (the
//! compliant idiom, which must lint clean).
//!
//! Expectation syntax, one comment per violating line:
//!
//! ```text
//! foo.unwrap() //~ panic
//! ```
//!
//! `//~ a, b` expects two findings on the line. Files without any
//! `//~` marker are negative fixtures and must produce no findings.
//! Fixture files declare their rule class with a
//! `// utk-lint: class=<name>` header (default: `lib`).

use crate::config::{class_override, classify, FileClass, LockOrder};
use crate::rules::run_file;
use std::path::Path;

/// Lints one file from disk, resolving its class from the header
/// directive, then the path, then `lib`. Explicitly targeted files
/// are always linted, even ones (like fixtures) a workspace scan
/// would skip.
pub fn lint_path(
    root: &Path,
    rel: &str,
    locks: &LockOrder,
) -> Result<Vec<crate::rules::Finding>, String> {
    let path = root.join(rel);
    let src =
        std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let class = class_override(&src)
        .or_else(|| classify(rel))
        .unwrap_or(FileClass::LIB);
    Ok(run_file(rel, &src, class, locks))
}

/// Expected findings of a fixture: `(line, rule)` pairs from its
/// `//~` markers.
fn expectations(src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let Some(pos) = line.find("//~") else {
            continue;
        };
        for rule in line[pos + 3..].split([',', ' ']).filter(|s| !s.is_empty()) {
            out.push((i as u32 + 1, rule.to_string()));
        }
    }
    out.sort();
    out
}

/// Runs the whole fixture corpus under `root/crates/lint/fixtures`.
/// Returns the list of failure descriptions (empty = pass). Errors
/// are environmental (missing directory, unreadable file).
pub fn run_fixtures(root: &Path) -> Result<Vec<String>, String> {
    let dir = root.join("crates/lint/fixtures");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .map_err(|e| format!("read_dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".rs"))
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!("no fixtures in {}", dir.display()));
    }
    let locks = LockOrder::load(root)?;
    let mut failures = Vec::new();
    for name in &names {
        let rel = format!("crates/lint/fixtures/{name}");
        let src =
            std::fs::read_to_string(dir.join(name)).map_err(|e| format!("read {name}: {e}"))?;
        let expected = expectations(&src);
        let positive = name.contains("_pos");
        if positive && expected.is_empty() {
            failures.push(format!("{name}: positive fixture has no //~ expectations"));
            continue;
        }
        if !positive && !expected.is_empty() {
            failures.push(format!("{name}: negative fixture carries //~ expectations"));
            continue;
        }
        let mut got: Vec<(u32, String)> = lint_path(root, &rel, &locks)?
            .into_iter()
            .map(|f| (f.line, f.rule.to_string()))
            .collect();
        got.sort();
        if got != expected {
            failures.push(format!(
                "{name}: findings mismatch\n  expected: {expected:?}\n  got:      {got:?}"
            ));
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expectation_markers_parse() {
        let src = "a //~ panic\nb\nc //~ float-cmp, index\n";
        assert_eq!(
            expectations(src),
            vec![
                (1, "panic".to_string()),
                (3, "float-cmp".to_string()),
                (3, "index".to_string()),
            ]
        );
    }
}
