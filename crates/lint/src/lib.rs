//! `utk-lint` — the workspace invariant checker.
//!
//! The paper's exactness guarantee survives in this repo as a set of
//! byte-identity contracts (deterministic BBS pop order, `server
//! batch ≡ utk batch`, epoch-keyed cache invalidation). The property
//! tests enforce them *after the fact*; this tool enforces the coding
//! disciplines behind them *at the source line*, the way clippy
//! `-D warnings` gates style:
//!
//! * **determinism** — `float-cmp` (no `partial_cmp`; comparators
//!   must be total) and `hash-iter` (no hash collections in
//!   wire-feeding modules);
//! * **panic-freedom** — `panic` (no `unwrap`/`expect`/`panic!`/
//!   `todo!` in library crates; the poisoned-lock `expect` idiom is
//!   allowlisted) and `index` (no bare indexing in server request
//!   paths);
//! * **concurrency** — `guard-blocking` (no lock guard held across
//!   `join()`/`recv()`/blocking I/O) and `lock-order` (acquisitions
//!   must respect `crates/lint/lock-order.toml`);
//! * **unsafe audit** — `safety-comment` (every `unsafe` carries a
//!   `// SAFETY:` comment).
//!
//! Suppress a finding inline, reason mandatory:
//!
//! ```text
//! // utk-lint: allow(rule-id) -- reason
//! ```
//!
//! No dependencies, no full parse: a hand-rolled lexer
//! ([`lexer`]) plus token-stream rules ([`rules`]). The tool lints
//! itself (it is a workspace member like any other).

#![warn(missing_docs)]
// The 2026 unsafe audit found zero unsafe blocks workspace-wide;
// keep it that way. Any future unsafe must demote this to deny,
// carry a `// SAFETY:` comment (utk-lint enforces it), and say why
// no safe formulation works.
#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod rules;
pub mod selftest;
pub mod walk;
