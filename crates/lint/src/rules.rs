//! The invariant rules. Every rule walks the token stream from
//! [`crate::lexer`]; none of them parse Rust fully. Where a rule
//! cannot decide at token level (e.g. "is this `HashMap` iterated?"),
//! the rule is deliberately stricter than the underlying contract and
//! the escape hatch is an inline suppression *with a reason*:
//!
//! ```text
//! // utk-lint: allow(rule-id) -- why this site is sound
//! ```
//!
//! A suppression applies to findings on its own line and the line
//! directly below. A missing reason, an unknown rule id, or a
//! suppression that matches nothing are themselves findings — the
//! suppression inventory stays auditable.

use crate::config::{FileClass, LockOrder};
use crate::lexer::{lex, Lexed, Tok};

/// Every rule id the tool can emit, for `allow(...)` validation.
pub const RULE_IDS: &[&str] = &[
    "float-cmp",
    "hash-iter",
    "wall-clock",
    "panic",
    "index",
    "guard-blocking",
    "lock-order",
    "safety-comment",
    "bad-suppression",
    "unused-suppression",
];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id (kebab-case, stable).
    pub rule: &'static str,
    /// Human message.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{} {} {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Lints one file. `rel` is the workspace-relative path used in
/// findings; `class` selects the rule families; `locks` is the
/// lock-order manifest (empty disables that rule).
pub fn run_file(rel: &str, src: &str, class: FileClass, locks: &LockOrder) -> Vec<Finding> {
    let lx = lex(src);
    let in_test = test_spans(&lx);
    let mut raw = Vec::new();
    let ctx = Ctx {
        rel,
        lx: &lx,
        in_test: &in_test,
    };
    if class.float_cmp {
        float_cmp(&ctx, &mut raw);
    }
    if class.hash_iter {
        hash_iter(&ctx, &mut raw);
    }
    if class.wall_clock {
        wall_clock(&ctx, &mut raw);
    }
    if class.panic {
        panic_rule(&ctx, &mut raw);
    }
    if class.index {
        index_rule(&ctx, &mut raw);
    }
    if class.concurrency {
        concurrency(&ctx, locks, &mut raw);
    }
    safety_comment(&ctx, &mut raw);
    apply_suppressions(rel, &lx, raw)
}

struct Ctx<'a> {
    rel: &'a str,
    lx: &'a Lexed,
    in_test: &'a [bool],
}

impl Ctx<'_> {
    fn finding(&self, tok: usize, rule: &'static str, message: String) -> Finding {
        let t = &self.lx.tokens[tok];
        Finding {
            file: self.rel.to_string(),
            line: t.line,
            col: t.col,
            rule,
            message,
        }
    }
}

/// Marks every token under a `#[cfg(test)]`-gated item or a
/// `#[test]`/`#[bench]` function. Rules other than the unsafe audit
/// skip those tokens: panics and ad-hoc float ordering are fine in
/// test code.
fn test_spans(lx: &Lexed) -> Vec<bool> {
    let n = lx.tokens.len();
    let mut marked = vec![false; n];
    let mut i = 0usize;
    while i < n {
        if lx.punct(i, '#') && lx.punct(i + 1, '[') {
            let close = lx.matching(i + 1);
            if attr_gates_test(lx, i + 2, close) {
                let end = item_end(lx, close + 1);
                for m in marked.iter_mut().take(end.min(n)).skip(i) {
                    *m = true;
                }
                i = close + 1;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    marked
}

/// True when the attribute tokens in `[start, close)` gate on test
/// compilation: `cfg(test)`, `cfg(all(test, …))`, `test`, `bench`.
fn attr_gates_test(lx: &Lexed, start: usize, close: usize) -> bool {
    let idents: Vec<&str> = (start..close.min(lx.tokens.len()))
        .filter_map(|i| lx.ident(i))
        .collect();
    match idents.as_slice() {
        ["test"] | ["bench"] => true,
        [first, rest @ ..] if *first == "cfg" => rest.contains(&"test"),
        _ => false,
    }
}

/// Token index one past the item starting at `i` (after its gating
/// attribute): skips further attributes, then ends at the matching
/// `}` of the first top-level `{` (item body), or at a top-level `;`
/// (e.g. `use`, `const … = …;` — an `=` demotes later braces to
/// expression nesting).
fn item_end(lx: &Lexed, mut i: usize) -> usize {
    let n = lx.tokens.len();
    while i < n && lx.punct(i, '#') && lx.punct(i + 1, '[') {
        i = lx.matching(i + 1) + 1;
    }
    let mut depth = 0usize;
    let mut seen_eq = false;
    while i < n {
        match &lx.tokens[i].tok {
            Tok::Punct('{') if depth == 0 && !seen_eq => return lx.matching(i) + 1,
            Tok::Punct('(' | '[' | '{') => depth += 1,
            Tok::Punct(')' | ']' | '}') => depth = depth.saturating_sub(1),
            Tok::Punct('=') if depth == 0 => seen_eq = true,
            Tok::Punct(';') if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    n
}

// ---------------------------------------------------------------- //
// determinism                                                      //
// ---------------------------------------------------------------- //

/// `float-cmp`: bans `partial_cmp` calls (the `fn partial_cmp`
/// definition a `PartialOrd` impl owes is exempt) and requires every
/// `sort_by`/`sort_unstable_by`/`max_by`/`min_by` comparator to
/// contain a total ordering (`total_cmp` or `cmp`). This is the BBS
/// pop-order / ranking determinism contract: one `partial_cmp` sort
/// is one NaN away from a panic and one `-0.0` away from an
/// order-dependent result.
fn float_cmp(ctx: &Ctx, out: &mut Vec<Finding>) {
    let lx = ctx.lx;
    for i in 0..lx.tokens.len() {
        if ctx.in_test[i] {
            continue;
        }
        let Some(name) = lx.ident(i) else { continue };
        match name {
            "partial_cmp" => {
                let is_def = i > 0 && lx.ident(i - 1) == Some("fn");
                if !is_def {
                    out.push(
                        ctx.finding(
                            i,
                            "float-cmp",
                            "call to partial_cmp: use total_cmp (floats) or cmp (Ord) so the \
                         order is total and deterministic"
                                .to_string(),
                        ),
                    );
                }
            }
            "sort_by" | "sort_unstable_by" | "max_by" | "min_by" => {
                if !lx.punct(i + 1, '(') {
                    continue;
                }
                let close = lx.matching(i + 1);
                let mut total = false;
                let mut partial = false;
                for j in (i + 2)..close {
                    match lx.ident(j) {
                        Some("total_cmp") | Some("cmp") => total = true,
                        Some("partial_cmp") => partial = true,
                        _ => {}
                    }
                }
                // A comparator built on partial_cmp is already
                // reported at the partial_cmp token itself.
                if !total && !partial {
                    out.push(ctx.finding(
                        i,
                        "float-cmp",
                        format!(
                            "{name} comparator contains no total ordering \
                             (expected total_cmp or cmp)"
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// `hash-iter`: bans `HashMap`/`HashSet` in wire-feeding modules
/// outright — iteration order there would leak straight into the
/// `server batch ≡ utk batch` byte-identity contract, and token-level
/// analysis cannot prove a map is never iterated.
fn hash_iter(ctx: &Ctx, out: &mut Vec<Finding>) {
    for i in 0..ctx.lx.tokens.len() {
        if ctx.in_test[i] {
            continue;
        }
        if let Some(name @ ("HashMap" | "HashSet")) = ctx.lx.ident(i) {
            out.push(ctx.finding(
                i,
                "hash-iter",
                format!(
                    "{name} in a wire-feeding module: iteration order is \
                     nondeterministic; use BTreeMap/BTreeSet or a Vec"
                ),
            ));
        }
    }
}

/// `wall-clock`: bans `Instant::now()`/`SystemTime::now()` outside
/// benches and tests — ambient time reads are how timings would leak
/// into the deterministic wire format, and how metrics goldens would
/// stop being byte-stable. All timing must flow through the injected
/// `utk_core::obs::Clock`; the blessed ambient read (the
/// `MonotonicClock` implementation itself) carries a reasoned
/// suppression.
fn wall_clock(ctx: &Ctx, out: &mut Vec<Finding>) {
    let lx = ctx.lx;
    for i in 0..lx.tokens.len() {
        if ctx.in_test[i] {
            continue;
        }
        let Some(name @ ("Instant" | "SystemTime")) = lx.ident(i) else {
            continue;
        };
        if lx.punct(i + 1, ':')
            && lx.punct(i + 2, ':')
            && lx.ident(i + 3) == Some("now")
            && lx.punct(i + 4, '(')
        {
            out.push(ctx.finding(
                i,
                "wall-clock",
                format!(
                    "{name}::now() in library code: inject utk_core::obs::Clock \
                     so time is test-controllable and stays off the wire format"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------- //
// panic-freedom                                                    //
// ---------------------------------------------------------------- //

/// `panic`: bans `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`
/// in library code. One allowlisted idiom: `.lock().expect(…)` /
/// `.read().expect(…)` / `.write().expect(…)` — a poisoned lock means
/// another thread already panicked, and propagating is the only sound
/// response.
fn panic_rule(ctx: &Ctx, out: &mut Vec<Finding>) {
    let lx = ctx.lx;
    for i in 0..lx.tokens.len() {
        if ctx.in_test[i] {
            continue;
        }
        let Some(name) = lx.ident(i) else { continue };
        match name {
            // Only the method-call spelling panics; a free function
            // that happens to be named `unwrap`/`expect` (or its
            // definition) is not `Option::unwrap`.
            "unwrap" if lx.punct(i + 1, '(') && i >= 1 && lx.punct(i - 1, '.') => {
                out.push(ctx.finding(
                    i,
                    "panic",
                    "unwrap in library code: return a typed error (?, ok_or) instead".to_string(),
                ));
            }
            "expect"
                if lx.punct(i + 1, '(')
                    && i >= 1
                    && lx.punct(i - 1, '.')
                    && !poison_propagation(lx, i) =>
            {
                out.push(
                    ctx.finding(
                        i,
                        "panic",
                        "expect in library code: only panic propagation from another \
                     thread (.lock()/.read()/.write()/.wait()/.join() chains) may \
                     expect; return a typed error"
                            .to_string(),
                    ),
                );
            }
            "panic" | "todo" | "unimplemented" if lx.punct(i + 1, '!') => {
                out.push(ctx.finding(
                    i,
                    "panic",
                    format!("{name}! in library code: return a typed error instead"),
                ));
            }
            _ => {}
        }
    }
}

/// True when the `expect` at `i` directly follows a call that only
/// fails by propagating another thread's panic: `.lock()`, `.read()`,
/// `.write()` (lock poisoning), `.wait()`/`.wait_timeout()` (condvar
/// poisoning), `.join()` (a panicked child). Expecting there is the
/// only sound response — the process is already broken.
fn poison_propagation(lx: &Lexed, i: usize) -> bool {
    if i < 2 || !lx.punct(i - 1, '.') || !lx.punct(i - 2, ')') {
        return false;
    }
    // Walk back over the preceding call's argument list.
    let mut depth = 0usize;
    let mut j = i - 2;
    loop {
        match &lx.tokens[j].tok {
            Tok::Punct(')') => depth += 1,
            Tok::Punct('(') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if j == 0 {
            return false;
        }
        j -= 1;
    }
    j > 0
        && matches!(
            lx.ident(j - 1),
            Some("lock" | "read" | "write" | "wait" | "wait_timeout" | "join")
        )
}

/// `index`: in server request paths, bans `expr[...]` indexing —
/// an out-of-bounds index there is a remotely reachable panic that
/// kills the connection thread. Use `get`/`get_mut` and map `None`
/// to a protocol error.
fn index_rule(ctx: &Ctx, out: &mut Vec<Finding>) {
    let lx = ctx.lx;
    for i in 1..lx.tokens.len() {
        if ctx.in_test[i] {
            continue;
        }
        if !lx.punct(i, '[') {
            continue;
        }
        let indexes = match &lx.tokens[i - 1].tok {
            // A keyword before `[` starts a slice pattern or an array
            // expression (`let [a, b] = …`, `return [x]`), not an
            // index.
            Tok::Ident(id) => !matches!(
                id.as_str(),
                "let"
                    | "in"
                    | "if"
                    | "while"
                    | "match"
                    | "return"
                    | "break"
                    | "continue"
                    | "else"
                    | "mut"
                    | "ref"
                    | "move"
                    | "as"
                    | "box"
                    | "dyn"
                    | "impl"
            ),
            Tok::Punct(')') | Tok::Punct(']') => true,
            _ => false,
        };
        if indexes {
            out.push(
                ctx.finding(
                    i,
                    "index",
                    "indexing in a server request path: use get()/get_mut() and \
                 handle None as a protocol error"
                        .to_string(),
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- //
// concurrency                                                      //
// ---------------------------------------------------------------- //

/// Calls that block indefinitely only when written with zero
/// arguments (`handle.join()`, `rx.recv()`, `child.wait()` — while
/// `vec.join(",")` and `condvar.wait(guard)` stay legal).
const BLOCKING_ZERO_ARG: &[&str] = &["join", "recv", "wait", "accept", "flush"];
/// Calls that block regardless of arity.
const BLOCKING_ANY_ARG: &[&str] = &[
    "recv_timeout",
    "read_line",
    "read_to_string",
    "read_to_end",
    "read_exact",
    "write_all",
    "sleep",
];

#[derive(Debug)]
struct Guard {
    name: String,
    recv: String,
    rank: Option<u32>,
    brace_depth: usize,
    line: u32,
}

/// `guard-blocking` + `lock-order`: tracks `let`-bound lock guards
/// (`let g = x.lock()/.read()/.write()…;`) through lexical scopes.
/// While a guard is live, a blocking call (`join()`, `recv()`,
/// `write_all(…)`, …) in the same block is a `guard-blocking`
/// finding — the engine/server discipline is "snapshot under the
/// lock, work outside it". Acquiring a manifest-ranked lock below a
/// live higher-ranked one is a `lock-order` finding.
///
/// Scope model: a guard dies when its enclosing brace closes, at
/// `drop(name)`, or at the end of the file. Expression-temporary
/// guards (`*x.lock().expect(…) = v;`) are not tracked — they die at
/// the statement's end — but their acquisition still participates in
/// lock-order checking.
fn concurrency(ctx: &Ctx, locks: &LockOrder, out: &mut Vec<Finding>) {
    let lx = ctx.lx;
    let n = lx.tokens.len();
    let mut live: Vec<Guard> = Vec::new();
    let mut brace = 0usize;
    // Current `let` binding: (name, brace depth, bracket depth at the
    // `=`); cleared at the terminating `;`.
    let mut binding: Option<(String, usize)> = None;
    let mut nest = 0usize; // (), [] and non-statement {} nesting inside a let
    let mut i = 0usize;
    while i < n {
        if ctx.in_test[i] {
            i += 1;
            continue;
        }
        match &lx.tokens[i].tok {
            Tok::Punct('{') => {
                brace += 1;
                if binding.is_some() {
                    nest += 1;
                }
            }
            Tok::Punct('}') => {
                brace = brace.saturating_sub(1);
                if binding.is_some() {
                    nest = nest.saturating_sub(1);
                }
                live.retain(|g| g.brace_depth <= brace);
            }
            Tok::Punct('(' | '[') if binding.is_some() => nest += 1,
            Tok::Punct(')' | ']') if binding.is_some() => nest = nest.saturating_sub(1),
            Tok::Punct(';') if binding.is_some() && nest == 0 => binding = None,
            Tok::Ident(id) if id == "let" => {
                // `let`, optional `mut`, then the bound name.
                // Conditional lets (`if let` / `while let`) bind
                // patterns whose guard lifetime this pass cannot
                // model; skip them rather than leak a stale binding.
                let conditional = i > 0 && matches!(lx.ident(i - 1), Some("if" | "while"));
                let mut j = i + 1;
                if lx.ident(j) == Some("mut") {
                    j += 1;
                }
                if let Some(name) = lx.ident(j) {
                    // `let _ = …` drops immediately; not a binding.
                    if name != "_" && !conditional {
                        binding = Some((name.to_string(), brace));
                        nest = 0;
                    }
                }
            }
            Tok::Ident(id) if id == "drop" && lx.punct(i + 1, '(') => {
                if let Some(name) = lx.ident(i + 2) {
                    if lx.punct(i + 3, ')') {
                        live.retain(|g| g.name != name);
                    }
                }
            }
            Tok::Ident(method)
                if matches!(method.as_str(), "lock" | "read" | "write")
                    && i >= 1
                    && lx.punct(i - 1, '.')
                    && lx.punct(i + 1, '(')
                    && lx.punct(i + 2, ')') =>
            {
                let recv = receiver_name(lx, i - 1);
                let rank = locks.rank(&recv);
                if let Some(new_rank) = rank {
                    for g in &live {
                        if let Some(held) = g.rank {
                            if new_rank < held {
                                out.push(ctx.finding(
                                    i,
                                    "lock-order",
                                    format!(
                                        "acquired lock {recv:?} (rank {new_rank}) while \
                                         holding {:?} (rank {held}, bound line {}): \
                                         inverts lint/lock-order.toml",
                                        g.recv, g.line
                                    ),
                                ));
                            }
                        }
                    }
                }
                // The binding owns this guard only when the lock call
                // is the statement's top-level expression (`nest == 0`
                // — not inside a scoping block or an argument list)
                // and the chain ends after an optional `.expect(…)`.
                // `let v = m.lock().expect("p").clone();` binds a
                // clone, not a guard — the guard dies at the `;`.
                if let Some((name, depth)) = &binding {
                    if nest == 0 && chain_ends_as_guard(lx, i) {
                        live.push(Guard {
                            name: name.clone(),
                            recv,
                            rank,
                            brace_depth: *depth,
                            line: lx.tokens[i].line,
                        });
                    }
                    let _ = method;
                }
            }
            Tok::Ident(id)
                if lx.punct(i + 1, '(')
                    && !live.is_empty()
                    && (BLOCKING_ANY_ARG.contains(&id.as_str())
                        || (BLOCKING_ZERO_ARG.contains(&id.as_str()) && lx.punct(i + 2, ')'))) =>
            {
                let held: Vec<&str> = live.iter().map(|g| g.recv.as_str()).collect();
                out.push(ctx.finding(
                    i,
                    "guard-blocking",
                    format!(
                        "blocking call {id}() while lock guard(s) {held:?} are live: \
                         snapshot under the lock, block outside it"
                    ),
                ));
            }
            _ => {}
        }
        i += 1;
    }
}

/// True when the acquisition chain at the `lock`/`read`/`write`
/// ident `i` ends the expression as a guard: optionally one
/// `.expect(…)`, then anything but another method call.
fn chain_ends_as_guard(lx: &Lexed, i: usize) -> bool {
    let mut j = i + 3; // past `lock ( )`
    if lx.punct(j, '.') && lx.ident(j + 1) == Some("expect") && lx.punct(j + 2, '(') {
        j = lx.matching(j + 2) + 1;
    }
    !lx.punct(j, '.')
}

/// The receiver field of a lock acquisition: the identifier directly
/// before the `.` at `dot` (`self.inner.filter_cache.lock()` →
/// `filter_cache`), looking through one index expression
/// (`deques[i].lock()` → `deques`).
fn receiver_name(lx: &Lexed, dot: usize) -> String {
    if dot == 0 {
        return String::new();
    }
    let before = dot - 1;
    if let Some(name) = lx.ident(before) {
        return name.to_string();
    }
    if lx.punct(before, ']') {
        // Walk back over the index expression to its opening `[`.
        let mut depth = 0usize;
        let mut j = before;
        loop {
            match &lx.tokens[j].tok {
                Tok::Punct(']') => depth += 1,
                Tok::Punct('[') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                return String::new();
            }
            j -= 1;
        }
        if j > 0 {
            if let Some(name) = lx.ident(j - 1) {
                return name.to_string();
            }
        }
    }
    String::new()
}

// ---------------------------------------------------------------- //
// unsafe audit                                                     //
// ---------------------------------------------------------------- //

/// `safety-comment`: every `unsafe` keyword (block, fn, impl) must
/// carry a `// SAFETY:` comment on the same line or within the three
/// lines above. Applies everywhere, including tests — an unsound
/// test is still unsound.
fn safety_comment(ctx: &Ctx, out: &mut Vec<Finding>) {
    let lx = ctx.lx;
    for i in 0..lx.tokens.len() {
        if lx.ident(i) != Some("unsafe") {
            continue;
        }
        let line = lx.tokens[i].line;
        let documented = lx
            .comments
            .iter()
            .any(|c| c.text.contains("SAFETY:") && c.end_line + 3 >= line && c.line <= line);
        if !documented {
            out.push(
                ctx.finding(
                    i,
                    "safety-comment",
                    "unsafe without a `// SAFETY:` comment on the same line or \
                 the 3 lines above"
                        .to_string(),
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- //
// suppressions                                                     //
// ---------------------------------------------------------------- //

#[derive(Debug)]
struct Suppression {
    line: u32,
    end_line: u32,
    rules: Vec<String>,
    used: bool,
}

/// Applies `// utk-lint: allow(rule, …) -- reason` suppressions and
/// appends the suppression-hygiene findings (`bad-suppression`,
/// `unused-suppression`).
fn apply_suppressions(rel: &str, lx: &Lexed, raw: Vec<Finding>) -> Vec<Finding> {
    let mut sups: Vec<Suppression> = Vec::new();
    let mut hygiene: Vec<Finding> = Vec::new();
    for c in &lx.comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("utk-lint:") else {
            continue;
        };
        let rest = rest.trim();
        if rest.starts_with("class=") {
            continue; // file-class directive, handled by config
        }
        let bad = |message: String| Finding {
            file: rel.to_string(),
            line: c.line,
            col: 1,
            rule: "bad-suppression",
            message,
        };
        let Some(args) = rest.strip_prefix("allow(") else {
            hygiene.push(bad(format!(
                "unrecognized utk-lint directive {text:?} (expected allow(rule) -- reason \
                 or class=<name>)"
            )));
            continue;
        };
        let Some((ids, tail)) = args.split_once(')') else {
            hygiene.push(bad("unterminated allow( in suppression".to_string()));
            continue;
        };
        let rules: Vec<String> = ids
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let unknown: Vec<&String> = rules
            .iter()
            .filter(|r| !RULE_IDS.contains(&r.as_str()))
            .collect();
        if rules.is_empty() || !unknown.is_empty() {
            hygiene.push(bad(format!(
                "allow() lists unknown rule id(s) {unknown:?} (known: {RULE_IDS:?})"
            )));
            continue;
        }
        let reason = tail.trim().strip_prefix("--").map(str::trim);
        match reason {
            Some(r) if !r.is_empty() => sups.push(Suppression {
                line: c.line,
                end_line: c.end_line,
                rules,
                used: false,
            }),
            _ => hygiene.push(bad(
                "suppression without a reason: write `utk-lint: allow(rule) -- reason`".to_string(),
            )),
        }
    }

    let mut out: Vec<Finding> = Vec::new();
    for f in raw {
        let mut suppressed = false;
        for s in sups.iter_mut() {
            if s.rules.iter().any(|r| r == f.rule)
                && (s.line == f.line || s.end_line == f.line || s.end_line + 1 == f.line)
            {
                s.used = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(f);
        }
    }
    for s in &sups {
        if !s.used {
            hygiene.push(Finding {
                file: rel.to_string(),
                line: s.line,
                col: 1,
                rule: "unused-suppression",
                message: format!(
                    "suppression for {:?} matches no finding: remove it",
                    s.rules
                ),
            });
        }
    }
    out.extend(hygiene);
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FileClass;

    fn lint(src: &str, class: FileClass) -> Vec<Finding> {
        run_file("test.rs", src, class, &LockOrder::default())
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn partial_cmp_call_flagged_definition_exempt() {
        let src = "
            impl PartialOrd for X {
                fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                    Some(self.cmp(other))
                }
            }
            fn f(a: f64, b: f64) { a.partial_cmp(&b); }
        ";
        let f = lint(src, FileClass::LIB);
        assert_eq!(rules_of(&f), vec!["float-cmp"]);
        assert_eq!(f[0].line, 7);
    }

    #[test]
    fn sort_comparator_totality() {
        let ok = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }";
        assert!(lint(ok, FileClass::LIB).is_empty());
        let ok2 = "fn f(v: &mut Vec<u32>) { v.sort_by(|a, b| a.cmp(b)); }";
        assert!(lint(ok2, FileClass::LIB).is_empty());
        let bad = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| if a < b { L } else { G }); }";
        assert_eq!(rules_of(&lint(bad, FileClass::LIB)), vec!["float-cmp"]);
    }

    #[test]
    fn strings_and_tests_are_exempt() {
        let src = "
            fn f() { let s = \"partial_cmp unwrap()\"; }
            #[cfg(test)]
            mod tests {
                fn g(a: f64, b: f64) { a.partial_cmp(&b).unwrap(); }
            }
            #[test]
            fn h() { None::<u32>.unwrap(); }
        ";
        assert!(lint(src, FileClass::LIB).is_empty());
    }

    #[test]
    fn hash_collections_banned_in_wire_class_only() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {}";
        assert_eq!(
            rules_of(&lint(src, FileClass::WIRE)),
            vec!["hash-iter", "hash-iter"]
        );
        assert!(lint(src, FileClass::LIB).is_empty());
    }

    #[test]
    fn wall_clock_flagged_outside_tests_and_benches() {
        let src = "
            fn f() -> Instant { Instant::now() }
            fn g() -> SystemTime { SystemTime::now() }
        ";
        assert_eq!(
            rules_of(&lint(src, FileClass::LIB)),
            vec!["wall-clock", "wall-clock"]
        );
        assert!(lint(src, FileClass::BENCH).is_empty());
        assert!(lint(src, FileClass::TEST).is_empty());
        // A suppressed blessed site and non-call mentions are clean.
        let ok = "
            fn clock() -> Instant {
                // utk-lint: allow(wall-clock) -- the one blessed ambient read
                Instant::now()
            }
            fn ty(t: Instant, s: SystemTime) {}
            #[test]
            fn t() { let _ = Instant::now(); }
        ";
        assert!(lint(ok, FileClass::LIB).is_empty());
    }

    #[test]
    fn panic_family_and_lock_idiom() {
        let bad = "
            fn f(o: Option<u32>) -> u32 { o.unwrap() }
            fn g(o: Option<u32>) -> u32 { o.expect(\"set\") }
            fn h() { panic!(\"boom\"); }
            fn i() { todo!(); }
        ";
        assert_eq!(
            rules_of(&lint(bad, FileClass::LIB)),
            vec!["panic", "panic", "panic", "panic"]
        );
        let ok = "fn f(m: &Mutex<u32>) -> u32 { *m.lock().expect(\"lock\") }";
        assert!(lint(ok, FileClass::LIB).is_empty());
    }

    #[test]
    fn indexing_flagged_in_request_paths() {
        let src = "fn f(v: &[u32], i: usize) -> u32 { v[i] }";
        assert_eq!(
            rules_of(&lint(src, FileClass::SERVER_REQUEST)),
            vec!["index"]
        );
        assert!(lint(src, FileClass::LIB).is_empty());
        // Attributes and array literals are not indexing.
        let ok = "#[derive(Debug)] struct S;\nfn g() -> [u8; 2] { [0; 2] }";
        assert!(lint(ok, FileClass::SERVER_REQUEST).is_empty());
    }

    #[test]
    fn guard_across_blocking() {
        let bad = "
            fn f(m: &Mutex<u32>, h: JoinHandle<()>) {
                let g = m.lock().expect(\"lock\");
                h.join();
            }
        ";
        assert_eq!(rules_of(&lint(bad, FileClass::LIB)), vec!["guard-blocking"]);
        // Scoped guard released before the join: clean.
        let ok = "
            fn f(m: &Mutex<u32>, h: JoinHandle<()>) {
                { let g = m.lock().expect(\"lock\"); }
                h.join();
            }
            fn g(m: &Mutex<u32>, h: JoinHandle<()>) {
                let g = m.lock().expect(\"lock\");
                drop(g);
                h.join();
            }
            fn h(parts: Vec<String>) -> String { parts.join(\",\") }
            fn cv(c: &Condvar, g: MutexGuard<u32>) { let _g = c.wait(g); }
        ";
        assert!(lint(ok, FileClass::LIB).is_empty());
    }

    #[test]
    fn lock_order_inversion() {
        let locks = LockOrder::parse("a = 10\nb = 20\n").unwrap();
        let bad = "
            fn f(s: &S) {
                let g = s.b.lock().expect(\"b\");
                let h = s.a.lock().expect(\"a\");
            }
        ";
        let f = run_file("t.rs", bad, FileClass::LIB, &locks);
        assert_eq!(rules_of(&f), vec!["lock-order"]);
        let ok = "
            fn f(s: &S) {
                let g = s.a.lock().expect(\"a\");
                let h = s.b.lock().expect(\"b\");
            }
        ";
        assert!(run_file("t.rs", ok, FileClass::LIB, &locks).is_empty());
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }";
        assert_eq!(rules_of(&lint(bad, FileClass::LIB)), vec!["safety-comment"]);
        let ok = "
            fn f(p: *const u8) -> u8 {
                // SAFETY: caller guarantees p is valid.
                unsafe { *p }
            }
        ";
        assert!(lint(ok, FileClass::LIB).is_empty());
        // The audit also runs on test code.
        let bad_test = "#[cfg(test)] mod t { fn f(p: *const u8) -> u8 { unsafe { *p } } }";
        assert_eq!(
            rules_of(&lint(bad_test, FileClass::LIB)),
            vec!["safety-comment"]
        );
    }

    #[test]
    fn suppression_with_reason_works_and_is_tracked() {
        let ok = "
            fn f(o: Option<u32>) -> u32 {
                // utk-lint: allow(panic) -- invariant: caller checked is_some
                o.unwrap()
            }
        ";
        assert!(lint(ok, FileClass::LIB).is_empty());
        let same_line =
            "fn f(o: Option<u32>) -> u32 { o.unwrap() } // utk-lint: allow(panic) -- checked";
        assert!(lint(same_line, FileClass::LIB).is_empty());
    }

    #[test]
    fn reasonless_unknown_and_unused_suppressions_are_findings() {
        let no_reason = "
            fn f(o: Option<u32>) -> u32 {
                // utk-lint: allow(panic)
                o.unwrap()
            }
        ";
        // The invalid suppression does not suppress.
        assert_eq!(
            rules_of(&lint(no_reason, FileClass::LIB)),
            vec!["bad-suppression", "panic"]
        );
        let unknown = "// utk-lint: allow(no-such-rule) -- whatever\nfn f() {}";
        assert_eq!(
            rules_of(&lint(unknown, FileClass::LIB)),
            vec!["bad-suppression"]
        );
        let unused = "// utk-lint: allow(panic) -- nothing here\nfn f() {}";
        assert_eq!(
            rules_of(&lint(unused, FileClass::LIB)),
            vec!["unused-suppression"]
        );
    }

    #[test]
    fn findings_format_as_file_line_col() {
        let f = lint("fn f(o: Option<u32>) -> u32 { o.unwrap() }", FileClass::LIB);
        assert_eq!(f.len(), 1);
        let line = f[0].to_string();
        assert!(line.starts_with("test.rs:1:"), "{line}");
        assert!(line.contains(" panic "), "{line}");
    }
}
