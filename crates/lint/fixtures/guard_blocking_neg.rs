// utk-lint: class=lib
// The compliant shapes: snapshot-and-release, explicit drop before
// blocking, and the calls that merely look blocking.

use std::sync::mpsc::Receiver;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

pub fn snapshot_then_join(m: &Mutex<Vec<u32>>, h: JoinHandle<()>) -> Vec<u32> {
    let snapshot = { m.lock().expect("poisoned").clone() };
    let _ = h.join();
    snapshot
}

pub fn drop_then_recv(m: &Mutex<u32>, rx: &Receiver<u32>) -> Option<u32> {
    let state = m.lock().expect("poisoned");
    drop(state);
    rx.recv().ok()
}

pub fn scoped_guard(m: &Mutex<u32>, h: JoinHandle<()>) {
    {
        let _guard = m.lock().expect("poisoned");
    }
    let _ = h.join();
}

pub fn derived_value_not_guard(m: &Mutex<Vec<u32>>, h: JoinHandle<()>) -> usize {
    let len = m.lock().expect("poisoned").len();
    let _ = h.join();
    len
}

pub fn strings_can_join(parts: &[String]) -> String {
    parts.join(",")
}

pub fn condvar_wait_is_legal(cv: &Condvar, guard: MutexGuard<'_, u32>) -> u32 {
    *cv.wait(guard).expect("poisoned")
}
