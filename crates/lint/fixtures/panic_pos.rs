// utk-lint: class=lib
// Seeded panic-freedom violations in library code.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap() //~ panic
}

pub fn must(o: Option<u32>) -> u32 {
    o.expect("value must be present") //~ panic
}

pub fn boom() {
    panic!("library code must not abort"); //~ panic
}

pub fn later() -> u32 {
    todo!() //~ panic
}

pub fn never() -> u32 {
    unimplemented!() //~ panic
}
