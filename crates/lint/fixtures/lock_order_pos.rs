// utk-lint: class=lib
// Lock-order inversion against crates/lint/lock-order.toml: the
// manifest ranks `mutation` (20) before `data` (40), so acquiring
// `mutation` while a `data` guard is live inverts the declared order.

use std::sync::{Mutex, RwLock};

pub struct Engine {
    pub mutation: Mutex<()>,
    pub data: RwLock<u32>,
}

pub fn inverted(e: &Engine) {
    let snapshot = e.data.write().expect("poisoned");
    let _mutating = e.mutation.lock().expect("poisoned"); //~ lock-order
    drop(snapshot);
}
