// utk-lint: class=wire
// Hash collections in a wire-feeding module: banned outright, since
// iteration order would leak into the byte-identity contract.

use std::collections::HashMap; //~ hash-iter
use std::collections::HashSet; //~ hash-iter

pub fn render(fields: &HashMap<String, String>) -> String { //~ hash-iter
    let mut out = String::new();
    for (k, v) in fields {
        out.push_str(k);
        out.push(':');
        out.push_str(v);
    }
    out
}
