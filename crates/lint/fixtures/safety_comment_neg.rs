// utk-lint: class=lib
// Documented unsafe: a SAFETY: comment on the same line or within
// the three lines above, doc comments included.

pub fn read_unchecked(xs: &[u8], i: usize) -> u8 {
    // SAFETY: every caller bounds-checks i against xs.len() first.
    unsafe { *xs.get_unchecked(i) }
}

/// Reads one byte.
///
/// SAFETY: callers must pass a pointer valid for one byte read.
pub unsafe fn documented_contract(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: the function contract above covers this read.
}
