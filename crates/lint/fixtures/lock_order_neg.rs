// utk-lint: class=lib
// The declared order: `mutation` (rank 20) before `data` (rank 40),
// matching the engine's apply_update discipline.

use std::sync::{Mutex, RwLock};

pub struct Engine {
    pub mutation: Mutex<()>,
    pub data: RwLock<u32>,
}

pub fn ordered(e: &Engine) -> u32 {
    let _mutating = e.mutation.lock().expect("poisoned");
    let snapshot = e.data.write().expect("poisoned");
    *snapshot
}

pub fn sequential_not_nested(e: &Engine) -> u32 {
    let value = { *e.data.read().expect("poisoned") };
    let _mutating = e.mutation.lock().expect("poisoned");
    value
}
