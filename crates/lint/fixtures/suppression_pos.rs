// utk-lint: class=lib
// Suppression hygiene violations: a reasonless suppression does not
// suppress (and is itself a finding), unknown rule ids are findings,
// and a suppression matching nothing is a finding.

pub fn missing_reason(o: Option<u32>) -> u32 {
    // utk-lint: allow(panic) //~ bad-suppression
    o.unwrap() //~ panic
}

pub fn unknown_rule(o: Option<u32>) -> u32 {
    // utk-lint: allow(frobnicate) -- not a rule id //~ bad-suppression
    o.unwrap_or(0)
}

// utk-lint: allow(panic) -- nothing below ever panics //~ unused-suppression
pub fn nothing_to_suppress() -> u32 {
    7
}
