// utk-lint: class=lib
// Panic-free library idioms, including the allowlisted
// poison-propagation expects.

use std::sync::{Condvar, Mutex, MutexGuard, RwLock};

pub fn first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

pub fn must(o: Option<u32>) -> Result<u32, String> {
    o.ok_or_else(|| "missing".to_string())
}

pub fn fallback(o: Option<u32>) -> u32 {
    o.unwrap_or(0)
}

pub fn counter(m: &Mutex<u32>) -> u32 {
    *m.lock().expect("poisoned: a holder panicked")
}

pub fn snapshot(l: &RwLock<u32>) -> u32 {
    *l.read().expect("poisoned: a writer panicked")
}

pub fn parked(cv: &Condvar, guard: MutexGuard<'_, u32>) -> u32 {
    *cv.wait(guard).expect("poisoned: a holder panicked")
}

pub fn reap(h: std::thread::JoinHandle<u32>) -> u32 {
    h.join().expect("worker panicked")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        if false {
            panic!("fine in tests");
        }
    }
}
