// utk-lint: class=server-request
// Request-path access through get(), plus the bracket forms that are
// not indexing: attributes, array types, array literals, patterns.

pub fn field(parts: &[&str], i: usize) -> Option<String> {
    parts.get(i).map(|s| s.to_string())
}

pub fn first_byte(line: &str) -> Option<u8> {
    line.as_bytes().first().copied()
}

#[derive(Clone)]
pub struct Header {
    pub magic: [u8; 4],
}

pub fn zeroed() -> [u8; 4] {
    [0; 4]
}

pub fn pair(xs: &[u32]) -> Option<(u32, u32)> {
    if let [a, b] = xs {
        return Some((*a, *b));
    }
    None
}
