// utk-lint: class=lib
// Seeded determinism violations. Not compiled — scanned by the
// fixture self-test; every marked line must fire exactly once.

use std::cmp::Ordering;

pub fn sorts(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal)); //~ float-cmp
    xs.sort_by(|a, b| if a < b { Ordering::Less } else { Ordering::Greater }); //~ float-cmp
    xs.sort_unstable_by(|a, b| b.abs().partial_cmp(&a.abs()).unwrap_or(Ordering::Equal)); //~ float-cmp
}

pub fn extremes(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().max_by(|a, b| heuristic(*a, *b)) //~ float-cmp
}

pub fn smallest(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().min_by(|a, b| heuristic(*a, *b)) //~ float-cmp
}

fn heuristic(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or(Ordering::Equal) //~ float-cmp
}
