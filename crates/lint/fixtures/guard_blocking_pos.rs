// utk-lint: class=lib
// Lock guards held across blocking calls: the engine/server
// discipline is "snapshot under the lock, block outside it".

use std::sync::mpsc::Receiver;
use std::sync::Mutex;
use std::thread::JoinHandle;

pub fn join_under_lock(m: &Mutex<u32>, h: JoinHandle<()>) {
    let _guard = m.lock().expect("poisoned");
    let _ = h.join(); //~ guard-blocking
}

pub fn recv_under_lock(m: &Mutex<u32>, rx: &Receiver<u32>) {
    let _state = m.lock().expect("poisoned");
    while let Ok(v) = rx.recv() { //~ guard-blocking
        drop(v);
    }
}

pub fn write_under_lock(m: &Mutex<Vec<u8>>, w: &mut dyn std::io::Write) -> std::io::Result<()> {
    let buf = m.lock().expect("poisoned");
    w.write_all(&buf) //~ guard-blocking
}

pub fn sleep_under_lock(m: &Mutex<u32>) {
    let _held = m.lock().expect("poisoned");
    std::thread::sleep(std::time::Duration::from_millis(1)); //~ guard-blocking
}
