// utk-lint: class=lib
// unsafe without the mandatory safety comment. (The marker comments
// below deliberately do not contain the magic annotation word.)

pub fn read_unchecked(xs: &[u8], i: usize) -> u8 {
    unsafe { *xs.get_unchecked(i) } //~ safety-comment
}

pub unsafe fn undocumented_contract(p: *const u8) -> u8 { //~ safety-comment
    *p
}
