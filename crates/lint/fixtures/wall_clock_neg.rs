// utk-lint: class=lib
// The compliant patterns: inject a Clock, suppress the one blessed
// ambient read with a reason, and keep type mentions free.

use std::time::Instant;

pub trait Clock {
    fn now_nanos(&self) -> u64;
}

pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    pub fn new() -> Self {
        MonotonicClock {
            // utk-lint: allow(wall-clock) -- the one blessed ambient read: everything else injects Clock
            origin: Instant::now(),
        }
    }
}

pub fn measure(clock: &dyn Clock) -> u64 {
    let start = clock.now_nanos();
    clock.now_nanos() - start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_time_is_fine_in_tests() {
        let _ = Instant::now();
    }
}
