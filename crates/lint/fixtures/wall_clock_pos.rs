// utk-lint: class=lib
// Ambient time reads in library code: banned — timing must flow
// through the injected utk_core::obs::Clock so tests can freeze it
// and timings provably never reach the deterministic wire format.

use std::time::{Instant, SystemTime};

pub fn elapsed_nanos(origin: Instant) -> u128 {
    let now = Instant::now(); //~ wall-clock
    now.duration_since(origin).as_nanos()
}

pub fn stamp() -> SystemTime {
    SystemTime::now() //~ wall-clock
}
