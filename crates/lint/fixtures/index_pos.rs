// utk-lint: class=server-request
// Bare indexing in a server request path: remotely reachable panics.

pub fn field(parts: &[&str], i: usize) -> String {
    parts[i].to_string() //~ index
}

pub fn first_byte(line: &str) -> u8 {
    line.as_bytes()[0] //~ index
}

pub fn cell(m: &[Vec<f64>], r: usize, c: usize) -> f64 {
    m[r][c] //~ index index
}
