// utk-lint: class=wire
// The deterministic alternatives: ordered collections or vectors.

use std::collections::BTreeMap;

pub fn render(fields: &BTreeMap<String, String>) -> String {
    let mut out = String::new();
    for (k, v) in fields {
        out.push_str(k);
        out.push(':');
        out.push_str(v);
    }
    out
}

pub fn render_pairs(fields: &[(String, String)]) -> String {
    fields
        .iter()
        .map(|(k, v)| format!("{k}:{v}"))
        .collect::<Vec<_>>()
        .join(",")
}
