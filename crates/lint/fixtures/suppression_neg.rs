// utk-lint: class=lib
// A valid suppression: rule id the tool knows, reason after `--`,
// adjacent to the finding it silences (line above or same line).

pub fn boundary_checked(o: Option<u32>) -> u32 {
    // utk-lint: allow(panic) -- boundary: caller constructs o as Some two lines up
    o.unwrap()
}

pub fn same_line(o: Option<u32>) -> u32 {
    o.unwrap() // utk-lint: allow(panic) -- invariant: o verified Some by new()
}
