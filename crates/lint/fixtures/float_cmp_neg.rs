// utk-lint: class=lib
// The compliant determinism idioms: total_cmp for floats, cmp for
// Ord keys, and the `fn partial_cmp` a PartialOrd impl owes.

use std::cmp::Ordering;

pub fn sorts(xs: &mut [f64], ids: &mut [u32]) {
    xs.sort_by(|a, b| a.total_cmp(b));
    ids.sort_by(|a, b| b.cmp(a));
    xs.sort_unstable_by(|a, b| b.total_cmp(a).then(Ordering::Equal));
}

pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().max_by(|a, b| a.total_cmp(b))
}

pub struct Key(pub f64);

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

pub fn in_strings_and_comments() -> &'static str {
    // partial_cmp in a comment is fine
    "and partial_cmp in a string is fine"
}
