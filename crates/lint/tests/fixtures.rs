//! The fixture self-test as a regular `cargo test`: every `_pos`
//! fixture must produce exactly its `//~` expected findings, every
//! other fixture must lint clean. `cargo run -p utk-lint -- --fixtures`
//! runs the same check as a binary (the CI lint job uses both).

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn seeded_violation_fixtures_match_expectations() {
    let failures =
        utk_lint::selftest::run_fixtures(&workspace_root()).expect("fixture dir readable");
    assert!(
        failures.is_empty(),
        "fixture self-test failed:\n{}",
        failures.join("\n")
    );
}

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let locks = utk_lint::config::LockOrder::load(&root).expect("lock-order manifest parses");
    let mut findings = Vec::new();
    for rel in utk_lint::walk::workspace_files(&root).expect("workspace walk") {
        let Ok(src) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        let class =
            utk_lint::config::class_override(&src).or_else(|| utk_lint::config::classify(&rel));
        if let Some(class) = class {
            findings.extend(utk_lint::rules::run_file(&rel, &src, class, &locks));
        }
    }
    assert!(
        findings.is_empty(),
        "the workspace must stay lint-clean; run `cargo run -p utk-lint`:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
