//! R-tree node representation.

use crate::mbb::Mbb;

/// Payload of a node: record ids (leaf) or child node ids (inner).
#[derive(Debug, Clone)]
pub enum NodeKind {
    /// A leaf holding record ids.
    Leaf {
        /// Ids of the records stored in this leaf.
        items: Vec<u32>,
    },
    /// An inner node holding child node ids.
    Inner {
        /// Ids of child nodes (indices into the tree's node arena).
        children: Vec<usize>,
    },
}

/// One node of the R-tree: its bounding box plus payload.
#[derive(Debug, Clone)]
pub struct Node {
    /// Minimum bounding box of everything below this node.
    pub mbb: Mbb,
    /// Leaf or inner payload.
    pub kind: NodeKind,
}

impl Node {
    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf { .. })
    }

    /// Number of direct entries (records or children).
    pub fn fanout(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf { items } => items.len(),
            NodeKind::Inner { children } => children.len(),
        }
    }
}
