//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! STR packs `n` points into `⌈n / cap⌉` leaves by recursively sorting
//! along successive dimensions and slicing into `⌈P^(1/d)⌉` vertical
//! slabs, producing near-square leaf MBBs. Upper levels are packed the
//! same way over child-box centers.

use crate::mbb::Mbb;
use crate::node::{Node, NodeKind};

/// Packs `points` into an STR R-tree; returns the node arena and the
/// root id.
pub fn pack<P: AsRef<[f64]>>(
    points: &[P],
    dim: usize,
    leaf_capacity: usize,
    inner_capacity: usize,
) -> (Vec<Node>, usize) {
    let mut nodes: Vec<Node> = Vec::new();

    // Level 0: tile the record ids into leaves.
    let mut ids: Vec<u32> = (0..points.len() as u32).collect();
    let mut leaves: Vec<usize> = Vec::with_capacity(points.len() / leaf_capacity + 1);
    tile(
        &mut ids,
        dim,
        0,
        leaf_capacity,
        &mut |chunk: &[u32]| {
            let mbb = Mbb::of_points(chunk.iter().map(|&i| points[i as usize].as_ref()));
            nodes.push(Node {
                mbb,
                kind: NodeKind::Leaf {
                    items: chunk.to_vec(),
                },
            });
            leaves.push(nodes.len() - 1);
        },
        &mut |id: &u32, d: usize| points[*id as usize].as_ref()[d],
    );

    // Upper levels: tile node ids by their MBB centers.
    let mut level = leaves;
    while level.len() > 1 {
        let centers: Vec<Vec<f64>> = level
            .iter()
            .map(|&nid| {
                let m = &nodes[nid].mbb;
                (0..dim).map(|i| 0.5 * (m.lo[i] + m.hi[i])).collect()
            })
            .collect();
        // Positions into `level`/`centers`.
        let mut pos: Vec<u32> = (0..level.len() as u32).collect();
        let mut next: Vec<usize> = Vec::with_capacity(level.len() / inner_capacity + 1);
        let mut chunks: Vec<Vec<usize>> = Vec::new();
        tile(
            &mut pos,
            dim,
            0,
            inner_capacity,
            &mut |chunk: &[u32]| {
                chunks.push(chunk.iter().map(|&p| level[p as usize]).collect());
            },
            &mut |p: &u32, d: usize| centers[*p as usize][d],
        );
        for children in chunks {
            let mbb = Mbb::of_mbbs(children.iter().map(|&c| &nodes[c].mbb));
            nodes.push(Node {
                mbb,
                kind: NodeKind::Inner { children },
            });
            next.push(nodes.len() - 1);
        }
        level = next;
    }

    let root = level[0];
    (nodes, root)
}

/// Recursive STR tiling: sorts `ids` along dimension `axis`, slices
/// into `⌈(len/cap)^(1/(dim−axis))⌉` slabs and recurses; emits chunks
/// of at most `cap` entries on the final axis.
fn tile<T: Copy>(
    ids: &mut [T],
    dim: usize,
    axis: usize,
    cap: usize,
    emit: &mut impl FnMut(&[T]),
    coord: &mut impl FnMut(&T, usize) -> f64,
) {
    if ids.len() <= cap {
        if !ids.is_empty() {
            emit(ids);
        }
        return;
    }
    // total_cmp: NaN coordinates sort last instead of aborting the
    // bulk load (the skyband layer degrades NaN records explicitly).
    ids.sort_by(|a, b| coord(a, axis).total_cmp(&coord(b, axis)));
    if axis + 1 == dim {
        for chunk in ids.chunks(cap) {
            emit(chunk);
        }
        return;
    }
    let groups = ids.len().div_ceil(cap);
    let remaining = dim - axis;
    let slabs = (groups as f64).powf(1.0 / remaining as f64).ceil() as usize;
    let slab_size = ids.len().div_ceil(slabs);
    for chunk in ids.chunks_mut(slab_size.max(cap)) {
        tile(chunk, dim, axis + 1, cap, emit, coord);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_grid_points() {
        // 16 grid points, leaf cap 4 → 4 leaves, 1 root.
        let pts: Vec<Vec<f64>> = (0..16)
            .map(|i| vec![(i % 4) as f64, (i / 4) as f64])
            .collect();
        let (nodes, root) = pack(&pts, 2, 4, 16);
        let leaf_count = nodes.iter().filter(|n| n.is_leaf()).count();
        assert_eq!(leaf_count, 4);
        assert!(matches!(nodes[root].kind, NodeKind::Inner { .. }));
        // Every record appears exactly once.
        let mut seen = [false; 16];
        for n in &nodes {
            if let NodeKind::Leaf { items } = &n.kind {
                for &i in items {
                    assert!(!seen[i as usize]);
                    seen[i as usize] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn str_leaves_are_spatially_tight() {
        // STR on a 2-D grid should produce leaves that don't all span
        // the full extent: total leaf area well below naive packing.
        let pts: Vec<Vec<f64>> = (0..64)
            .map(|i| vec![(i % 8) as f64, (i / 8) as f64])
            .collect();
        let (nodes, _) = pack(&pts, 2, 8, 16);
        let area: f64 = nodes
            .iter()
            .filter(|n| n.is_leaf())
            .map(|n| (n.mbb.hi[0] - n.mbb.lo[0]).max(1e-9) * (n.mbb.hi[1] - n.mbb.lo[1]).max(1e-9))
            .sum();
        // 8 leaves of a perfect tiling would have area ≈ 8·(7·0.875);
        // allow generous slack but reject full-extent (49 each) strips.
        assert!(area < 8.0 * 20.0, "leaf area too large: {area}");
    }
}
