//! In-memory d-dimensional R-tree with STR bulk loading.
//!
//! The UTK paper (§3.1) assumes the dataset is organised by a spatial
//! index such as an R-tree \[Guttman 84\] and processes it with
//! best-first branch-and-bound traversals (the BBS paradigm of
//! Papadias et al., used for k-skyband and r-skyband computation, and
//! plain monotone top-k search). This crate provides that substrate:
//!
//! * [`RTree::bulk_load`] — Sort-Tile-Recursive packing;
//! * [`RTree::search_descending`] — generic best-first traversal with
//!   caller-supplied monotone keys (node key from the MBB *top
//!   corner*, record key from the record itself);
//! * [`DescendingIter`] — the same traversal as a lazy iterator, used
//!   for the incremental top-k probe of Figure 10(b);
//! * [`RTree::range_query`] — axis-parallel window search (testing).
//!
//! The tree stores only geometry (MBBs) and record ids; record
//! coordinates are borrowed from the caller per call, so one tree can
//! outlive transient scoring closures.

#![warn(missing_docs)]
// The 2026 unsafe audit found zero unsafe blocks workspace-wide;
// keep it that way. Any future unsafe must demote this to deny,
// carry a `// SAFETY:` comment (utk-lint enforces it), and say why
// no safe formulation works.
#![forbid(unsafe_code)]

pub mod mbb;
pub mod node;
pub mod search;
pub mod str_pack;

pub use mbb::Mbb;
pub use node::{Node, NodeKind};
pub use search::DescendingIter;

use std::fmt;

/// Default maximum entries per leaf node.
pub const DEFAULT_LEAF_CAPACITY: usize = 64;
/// Default maximum children per inner node.
pub const DEFAULT_INNER_CAPACITY: usize = 16;

/// A bulk-loaded, read-only R-tree over `n` records of dimension `d`.
pub struct RTree {
    dim: usize,
    len: usize,
    nodes: Vec<Node>,
    root: usize,
}

impl fmt::Debug for RTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RTree")
            .field("dim", &self.dim)
            .field("len", &self.len)
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl RTree {
    /// Bulk loads with default capacities.
    ///
    /// # Panics
    /// Panics if `points` is empty or dimensions are inconsistent.
    pub fn bulk_load<P: AsRef<[f64]>>(points: &[P]) -> Self {
        Self::with_capacity(points, DEFAULT_LEAF_CAPACITY, DEFAULT_INNER_CAPACITY)
    }

    /// Bulk loads with explicit leaf/inner capacities via STR packing.
    pub fn with_capacity<P: AsRef<[f64]>>(
        points: &[P],
        leaf_capacity: usize,
        inner_capacity: usize,
    ) -> Self {
        assert!(!points.is_empty(), "cannot index an empty dataset");
        assert!(leaf_capacity >= 2 && inner_capacity >= 2);
        let dim = points[0].as_ref().len();
        assert!(
            points.iter().all(|p| p.as_ref().len() == dim),
            "inconsistent record dimensionality"
        );
        let (nodes, root) = str_pack::pack(points, dim, leaf_capacity, inner_capacity);
        Self {
            dim,
            len: points.len(),
            nodes,
            root,
        }
    }

    /// Data dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false: empty datasets cannot be indexed.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total number of tree nodes (leaves + inner).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Root node id.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Node accessor.
    pub fn node(&self, id: usize) -> &Node {
        &self.nodes[id]
    }

    /// All nodes (arena order; useful for structural inspection and
    /// tests).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Approximate heap bytes held by the tree (MBB buffers plus node
    /// payload lists) — used by byte-budgeted caches of derived
    /// indexes.
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Self>();
        for node in &self.nodes {
            bytes += std::mem::size_of::<Node>();
            bytes += (node.mbb.lo.len() + node.mbb.hi.len()) * std::mem::size_of::<f64>();
            bytes += match &node.kind {
                NodeKind::Leaf { items } => items.len() * std::mem::size_of::<u32>(),
                NodeKind::Inner { children } => children.len() * std::mem::size_of::<usize>(),
            };
        }
        bytes
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut id = self.root;
        loop {
            match &self.nodes[id].kind {
                NodeKind::Leaf { .. } => return h,
                NodeKind::Inner { children } => {
                    id = children[0];
                    h += 1;
                }
            }
        }
    }

    /// Best-first traversal in *descending* key order.
    ///
    /// `node_key` must upper-bound `record_key` of every record in the
    /// node (give it the MBB and score its top corner — any monotone
    /// scoring function then satisfies the bound). `visit` receives
    /// records in non-increasing key order; returning `false` stops
    /// the search. Returns the number of records visited.
    pub fn search_descending<NK, RK, V>(&self, node_key: NK, record_key: RK, visit: V) -> usize
    where
        NK: Fn(&Mbb) -> f64,
        RK: Fn(u32) -> f64,
        V: FnMut(u32, f64) -> bool,
    {
        search::search_descending(self, node_key, record_key, visit)
    }

    /// Lazy descending-order record iterator (incremental top-k).
    pub fn descending_iter<NK, RK>(
        &self,
        node_key: NK,
        record_key: RK,
    ) -> DescendingIter<'_, NK, RK>
    where
        NK: Fn(&Mbb) -> f64,
        RK: Fn(u32) -> f64,
    {
        DescendingIter::new(self, node_key, record_key)
    }

    /// The `k` records with the highest `record_key`, in descending
    /// order, via branch-and-bound.
    pub fn top_k<NK, RK>(&self, k: usize, node_key: NK, record_key: RK) -> Vec<(u32, f64)>
    where
        NK: Fn(&Mbb) -> f64,
        RK: Fn(u32) -> f64,
    {
        let mut out = Vec::with_capacity(k);
        self.search_descending(node_key, record_key, |id, key| {
            out.push((id, key));
            out.len() < k
        });
        out
    }

    /// Ids of all records whose coordinates fall inside `[lo, hi]`.
    pub fn range_query<P: AsRef<[f64]>>(&self, points: &[P], lo: &[f64], hi: &[f64]) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if !node.mbb.intersects_box(lo, hi) {
                continue;
            }
            match &node.kind {
                NodeKind::Inner { children } => stack.extend_from_slice(children),
                NodeKind::Leaf { items } => {
                    for &rid in items {
                        let p = points[rid as usize].as_ref();
                        if p.iter()
                            .zip(lo.iter().zip(hi))
                            .all(|(x, (l, h))| *x >= *l && *x <= *h)
                        {
                            out.push(rid);
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn bulk_load_covers_all_records() {
        let pts = random_points(1000, 3, 1);
        let tree = RTree::bulk_load(&pts);
        assert_eq!(tree.len(), 1000);
        let mut all = tree.range_query(&pts, &[0.0; 3], &[1.0; 3]);
        all.sort_unstable();
        assert_eq!(all.len(), 1000);
        assert!(all.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let pts = random_points(500, 2, 2);
        let tree = RTree::bulk_load(&pts);
        for (lo, hi) in [
            ([0.2, 0.3], [0.6, 0.9]),
            ([0.0, 0.0], [0.1, 0.1]),
            ([0.5, 0.5], [0.5, 0.5]),
        ] {
            let mut got = tree.range_query(&pts, &lo, &hi);
            got.sort_unstable();
            let mut want: Vec<u32> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| {
                    p.iter()
                        .zip(lo.iter().zip(&hi))
                        .all(|(x, (l, h))| x >= l && x <= h)
                })
                .map(|(i, _)| i as u32)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn top_k_matches_brute_force() {
        let pts = random_points(400, 4, 3);
        let tree = RTree::bulk_load(&pts);
        let w = [0.1, 0.4, 0.3, 0.2];
        let score = |p: &[f64]| p.iter().zip(&w).map(|(x, wi)| x * wi).sum::<f64>();
        let got = tree.top_k(10, |mbb| score(&mbb.hi), |id| score(&pts[id as usize]));
        let mut want: Vec<(u32, f64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u32, score(p)))
            .collect();
        want.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        want.truncate(10);
        assert_eq!(got.len(), 10);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.1 - w.1).abs() < 1e-12);
        }
    }

    #[test]
    fn descending_iter_is_sorted_and_complete() {
        let pts = random_points(300, 2, 4);
        let tree = RTree::bulk_load(&pts);
        let score = |p: &[f64]| p[0] + 2.0 * p[1];
        let keys: Vec<f64> = tree
            .descending_iter(|mbb| score(&mbb.hi), |id| score(&pts[id as usize]))
            .map(|(_, k)| k)
            .collect();
        assert_eq!(keys.len(), 300);
        assert!(keys.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn single_record_tree() {
        let pts = vec![vec![0.5, 0.5]];
        let tree = RTree::bulk_load(&pts);
        assert_eq!(tree.height(), 1);
        let got = tree.top_k(5, |mbb| mbb.hi[0], |id| pts[id as usize][0]);
        assert_eq!(got, vec![(0, 0.5)]);
    }

    #[test]
    fn tree_respects_capacities() {
        let pts = random_points(10_000, 2, 5);
        let tree = RTree::with_capacity(&pts, 32, 8);
        for node in tree.nodes() {
            match &node.kind {
                NodeKind::Leaf { items } => assert!(items.len() <= 32 && !items.is_empty()),
                NodeKind::Inner { children } => {
                    assert!(children.len() <= 8 && !children.is_empty())
                }
            }
        }
        assert!(tree.height() >= 3);
    }

    #[test]
    fn mbbs_contain_children() {
        let pts = random_points(2000, 3, 6);
        let tree = RTree::bulk_load(&pts);
        for node in tree.nodes() {
            match &node.kind {
                NodeKind::Leaf { items } => {
                    for &rid in items {
                        assert!(node.mbb.contains_point(&pts[rid as usize]));
                    }
                }
                NodeKind::Inner { children } => {
                    for &c in children {
                        assert!(node.mbb.contains_mbb(&tree.nodes()[c].mbb));
                    }
                }
            }
        }
    }

    #[test]
    fn early_stop_counts_visits() {
        let pts = random_points(100, 2, 7);
        let tree = RTree::bulk_load(&pts);
        let visited = tree.search_descending(
            |mbb| mbb.hi[0] + mbb.hi[1],
            |id| pts[id as usize].iter().sum(),
            |_, _| false,
        );
        assert_eq!(visited, 1);
    }
}
