//! Best-first (branch-and-bound) traversal.
//!
//! Nodes and records share one max-heap keyed by a caller-supplied
//! score; as long as a node's key upper-bounds its content (true when
//! the node key is any monotone function of the MBB top corner),
//! records pop in globally non-increasing key order. This is the
//! traversal pattern of both BBS (§2 of the paper) and plain monotone
//! top-k search.

use crate::mbb::Mbb;
use crate::node::NodeKind;
use crate::RTree;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy)]
enum HeapItem {
    Node(usize),
    Record(u32),
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    key: f64,
    item: HeapItem,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on key. NaN keys order last (they compare below
        // every finite key) so a pathological dataset degrades the
        // search order instead of aborting it.
        match (self.key.is_nan(), other.key.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => self.key.total_cmp(&other.key),
        }
    }
}

/// Runs the best-first search; see [`RTree::search_descending`].
pub fn search_descending<NK, RK, V>(
    tree: &RTree,
    node_key: NK,
    record_key: RK,
    mut visit: V,
) -> usize
where
    NK: Fn(&Mbb) -> f64,
    RK: Fn(u32) -> f64,
    V: FnMut(u32, f64) -> bool,
{
    let mut heap = BinaryHeap::with_capacity(128);
    heap.push(Entry {
        key: node_key(&tree.node(tree.root()).mbb),
        item: HeapItem::Node(tree.root()),
    });
    let mut visited = 0;
    while let Some(Entry { key, item }) = heap.pop() {
        match item {
            HeapItem::Record(id) => {
                visited += 1;
                if !visit(id, key) {
                    break;
                }
            }
            HeapItem::Node(nid) => match &tree.node(nid).kind {
                NodeKind::Leaf { items } => {
                    for &rid in items {
                        heap.push(Entry {
                            key: record_key(rid),
                            item: HeapItem::Record(rid),
                        });
                    }
                }
                NodeKind::Inner { children } => {
                    for &c in children {
                        heap.push(Entry {
                            key: node_key(&tree.node(c).mbb),
                            item: HeapItem::Node(c),
                        });
                    }
                }
            },
        }
    }
    visited
}

/// Lazy best-first record iterator in descending key order.
///
/// Created by [`RTree::descending_iter`]; yields `(record_id, key)`
/// pairs one at a time, expanding only the nodes needed so far — the
/// incremental top-k probe used in Figure 10(b) of the paper.
pub struct DescendingIter<'a, NK, RK> {
    tree: &'a RTree,
    node_key: NK,
    record_key: RK,
    heap: BinaryHeap<Entry>,
}

impl<'a, NK, RK> DescendingIter<'a, NK, RK>
where
    NK: Fn(&Mbb) -> f64,
    RK: Fn(u32) -> f64,
{
    pub(crate) fn new(tree: &'a RTree, node_key: NK, record_key: RK) -> Self {
        let mut heap = BinaryHeap::with_capacity(128);
        heap.push(Entry {
            key: node_key(&tree.node(tree.root()).mbb),
            item: HeapItem::Node(tree.root()),
        });
        Self {
            tree,
            node_key,
            record_key,
            heap,
        }
    }
}

impl<NK, RK> Iterator for DescendingIter<'_, NK, RK>
where
    NK: Fn(&Mbb) -> f64,
    RK: Fn(u32) -> f64,
{
    type Item = (u32, f64);

    fn next(&mut self) -> Option<(u32, f64)> {
        while let Some(Entry { key, item }) = self.heap.pop() {
            match item {
                HeapItem::Record(id) => return Some((id, key)),
                HeapItem::Node(nid) => match &self.tree.node(nid).kind {
                    NodeKind::Leaf { items } => {
                        for &rid in items {
                            self.heap.push(Entry {
                                key: (self.record_key)(rid),
                                item: HeapItem::Record(rid),
                            });
                        }
                    }
                    NodeKind::Inner { children } => {
                        for &c in children {
                            self.heap.push(Entry {
                                key: (self.node_key)(&self.tree.node(c).mbb),
                                item: HeapItem::Node(c),
                            });
                        }
                    }
                },
            }
        }
        None
    }
}
