//! Minimum bounding boxes.

/// An axis-parallel minimum bounding box in data space.
///
/// For UTK processing the interesting corner is [`Mbb::hi`], the *top
/// corner*: under any monotone scoring function it upper-bounds the
/// score/dominance behaviour of every record inside the box (§2, §4.1
/// of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct Mbb {
    /// Per-dimension minima.
    pub lo: Vec<f64>,
    /// Per-dimension maxima (the top corner).
    pub hi: Vec<f64>,
}

impl Mbb {
    /// The degenerate box around a single point.
    pub fn of_point(p: &[f64]) -> Self {
        Self {
            lo: p.to_vec(),
            hi: p.to_vec(),
        }
    }

    /// The tight box around a non-empty set of points.
    ///
    /// # Panics
    /// Panics if the iterator is empty.
    pub fn of_points<'a, I: IntoIterator<Item = &'a [f64]>>(points: I) -> Self {
        let mut it = points.into_iter();
        // utk-lint: allow(panic) -- documented # Panics contract: non-empty input required
        let first = it.next().expect("Mbb of empty point set");
        let mut mbb = Self::of_point(first);
        for p in it {
            mbb.expand_point(p);
        }
        mbb
    }

    /// The tight box around a non-empty set of boxes.
    pub fn of_mbbs<'a, I: IntoIterator<Item = &'a Mbb>>(mbbs: I) -> Self {
        let mut it = mbbs.into_iter();
        // utk-lint: allow(panic) -- documented # Panics contract: non-empty input required
        let mut out = it.next().expect("Mbb of empty box set").clone();
        for m in it {
            out.expand_mbb(m);
        }
        out
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Grows the box to cover `p`.
    pub fn expand_point(&mut self, p: &[f64]) {
        for (i, &x) in p.iter().enumerate() {
            if x < self.lo[i] {
                self.lo[i] = x;
            }
            if x > self.hi[i] {
                self.hi[i] = x;
            }
        }
    }

    /// Grows the box to cover `other`.
    pub fn expand_mbb(&mut self, other: &Mbb) {
        for i in 0..self.lo.len() {
            if other.lo[i] < self.lo[i] {
                self.lo[i] = other.lo[i];
            }
            if other.hi[i] > self.hi[i] {
                self.hi[i] = other.hi[i];
            }
        }
    }

    /// True if `p` lies inside (boundary inclusive).
    pub fn contains_point(&self, p: &[f64]) -> bool {
        p.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .all(|(x, (l, h))| *x >= *l && *x <= *h)
    }

    /// True if `other` lies fully inside.
    pub fn contains_mbb(&self, other: &Mbb) -> bool {
        self.contains_point(&other.lo) && self.contains_point(&other.hi)
    }

    /// True if the box intersects the window `[lo, hi]`.
    pub fn intersects_box(&self, lo: &[f64], hi: &[f64]) -> bool {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .zip(lo.iter().zip(hi))
            .all(|((sl, sh), (l, h))| *sh >= *l && *sl <= *h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_points_is_tight() {
        let a = [1.0, 5.0];
        let b = [3.0, 2.0];
        let mbb = Mbb::of_points([a.as_slice(), b.as_slice()]);
        assert_eq!(mbb.lo, vec![1.0, 2.0]);
        assert_eq!(mbb.hi, vec![3.0, 5.0]);
    }

    #[test]
    fn containment_and_intersection() {
        let mbb = Mbb {
            lo: vec![0.0, 0.0],
            hi: vec![1.0, 1.0],
        };
        assert!(mbb.contains_point(&[0.5, 1.0]));
        assert!(!mbb.contains_point(&[1.5, 0.5]));
        assert!(mbb.intersects_box(&[0.9, 0.9], &[2.0, 2.0]));
        assert!(!mbb.intersects_box(&[1.1, 0.0], &[2.0, 1.0]));
    }

    #[test]
    fn expand_merges() {
        let mut a = Mbb::of_point(&[0.0, 0.0]);
        a.expand_mbb(&Mbb::of_point(&[2.0, -1.0]));
        assert_eq!(a.lo, vec![0.0, -1.0]);
        assert_eq!(a.hi, vec![2.0, 0.0]);
    }
}
