//! Property-based tests for the R-tree substrate.

use proptest::prelude::*;
use utk_rtree::RTree;

fn points(n: std::ops::Range<usize>, d: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0f64..1.0, d), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Range queries return exactly the linear-scan answer.
    #[test]
    fn range_query_equals_scan(
        pts in points(1..120, 3),
        lo in prop::collection::vec(0.0f64..0.8, 3),
        side in 0.1f64..0.8,
    ) {
        let hi: Vec<f64> = lo.iter().map(|l| (l + side).min(1.0)).collect();
        let tree = RTree::with_capacity(&pts, 4, 3); // tiny caps: deep trees
        let mut got = tree.range_query(&pts, &lo, &hi);
        got.sort_unstable();
        let mut want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                p.iter()
                    .zip(lo.iter().zip(&hi))
                    .all(|(x, (l, h))| x >= l && x <= h)
            })
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Best-first iteration yields every record exactly once, in
    /// non-increasing key order, for arbitrary positive weights.
    #[test]
    fn descending_iter_total_and_sorted(
        pts in points(1..150, 2),
        w0 in 0.01f64..1.0,
        w1 in 0.01f64..1.0,
    ) {
        let tree = RTree::with_capacity(&pts, 4, 4);
        let score = |p: &[f64]| w0 * p[0] + w1 * p[1];
        let out: Vec<(u32, f64)> = tree
            .descending_iter(|mbb| score(&mbb.hi), |id| score(&pts[id as usize]))
            .collect();
        prop_assert_eq!(out.len(), pts.len());
        let mut seen = vec![false; pts.len()];
        for (id, key) in &out {
            prop_assert!(!seen[*id as usize]);
            seen[*id as usize] = true;
            prop_assert!((key - score(&pts[*id as usize])).abs() < 1e-12);
        }
        prop_assert!(out.windows(2).all(|p| p[0].1 >= p[1].1 - 1e-12));
    }

    /// top_k agrees with sorting, for any k.
    #[test]
    fn top_k_equals_sorted_prefix(
        pts in points(1..100, 3),
        k in 1usize..20,
    ) {
        let tree = RTree::bulk_load(&pts);
        let score = |p: &[f64]| p.iter().sum::<f64>();
        let got = tree.top_k(k, |mbb| score(&mbb.hi), |id| score(&pts[id as usize]));
        let mut want: Vec<f64> = pts.iter().map(|p| score(p)).collect();
        want.sort_by(|a, b| b.partial_cmp(a).unwrap());
        want.truncate(k);
        prop_assert_eq!(got.len(), k.min(pts.len()));
        for ((_, gk), wk) in got.iter().zip(&want) {
            prop_assert!((gk - wk).abs() < 1e-12);
        }
    }

    /// Duplicate coordinates are handled (STR must not lose records).
    #[test]
    fn duplicates_survive_bulk_load(
        base in prop::collection::vec(0.0f64..1.0, 2),
        copies in 2usize..40,
    ) {
        let pts: Vec<Vec<f64>> = (0..copies).map(|_| base.clone()).collect();
        let tree = RTree::with_capacity(&pts, 4, 4);
        let mut all = tree.range_query(&pts, &[0.0, 0.0], &[1.0, 1.0]);
        all.sort_unstable();
        prop_assert_eq!(all.len(), copies);
    }
}
