//! Half-spaces and linear constraints of the preference domain.
//!
//! For two records `p`, `q` the inequality `S(p) ≥ S(q)` is a
//! half-space of the preference domain (§4 of the paper). A
//! [`Halfspace`] stores it in the form `coef·w ≥ rhs`; a [`Constraint`]
//! is the generic `a·w ≤ b` building block used by regions and LPs.

use crate::pref::pref_score_delta;
use crate::tol::EPS;

/// A linear constraint `a·w ≤ b` over the preference domain,
/// normalized to unit infinity-norm for numeric stability.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Coefficient vector `a`.
    pub a: Vec<f64>,
    /// Right-hand side `b`.
    pub b: f64,
}

impl Constraint {
    /// Builds (and normalizes) the constraint `a·w ≤ b`.
    pub fn le(a: Vec<f64>, b: f64) -> Self {
        let mut c = Self { a, b };
        c.normalize();
        c
    }

    /// Builds the constraint `a·w ≥ b` (stored negated).
    pub fn ge(a: &[f64], b: f64) -> Self {
        Self::le(a.iter().map(|v| -v).collect(), -b)
    }

    fn normalize(&mut self) {
        let scale = self.a.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        if scale > 0.0 {
            for v in &mut self.a {
                *v /= scale;
            }
            self.b /= scale;
        }
    }

    /// Signed violation `a·w − b`; ≤ 0 means `w` satisfies the
    /// constraint.
    #[inline]
    pub fn eval(&self, w: &[f64]) -> f64 {
        debug_assert_eq!(w.len(), self.a.len());
        self.a.iter().zip(w).map(|(ai, wi)| ai * wi).sum::<f64>() - self.b
    }

    /// True if `w` satisfies the constraint within tolerance.
    #[inline]
    pub fn satisfied_by(&self, w: &[f64]) -> bool {
        self.eval(w) <= EPS
    }

    /// A constraint with all-zero coefficients constrains nothing
    /// (if `b ≥ 0`) or everything (if `b < 0`).
    pub fn is_degenerate(&self) -> bool {
        self.a.iter().all(|v| v.abs() <= EPS)
    }
}

/// The half-space `{ w : coef·w ≥ rhs }` of the preference domain,
/// normalized to unit infinity-norm.
///
/// For half-spaces built by [`Halfspace::beats`], the *inside* is where
/// the first record scores at least as high as the second.
#[derive(Debug, Clone, PartialEq)]
pub struct Halfspace {
    /// Coefficient vector.
    pub coef: Vec<f64>,
    /// Threshold: inside ⇔ `coef·w ≥ rhs`.
    pub rhs: f64,
}

impl Halfspace {
    /// Builds the half-space `coef·w ≥ rhs`, normalized.
    pub fn ge(coef: Vec<f64>, rhs: f64) -> Self {
        let mut h = Self { coef, rhs };
        let scale = h.coef.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        if scale > 0.0 {
            for v in &mut h.coef {
                *v /= scale;
            }
            h.rhs /= scale;
        }
        h
    }

    /// The half-space of the preference domain where `S(p) ≥ S(q)`.
    pub fn beats(p: &[f64], q: &[f64]) -> Self {
        let (a, c) = pref_score_delta(p, q);
        // a·w + c ≥ 0  ⇔  a·w ≥ −c
        Self::ge(a, -c)
    }

    /// Preference-domain dimensionality.
    pub fn dim(&self) -> usize {
        self.coef.len()
    }

    /// Signed slack `coef·w − rhs`; ≥ 0 means `w` is inside.
    #[inline]
    pub fn eval(&self, w: &[f64]) -> f64 {
        debug_assert_eq!(w.len(), self.coef.len());
        self.coef.iter().zip(w).map(|(ai, wi)| ai * wi).sum::<f64>() - self.rhs
    }

    /// True if `w` lies inside (within tolerance).
    #[inline]
    pub fn contains(&self, w: &[f64]) -> bool {
        self.eval(w) >= -EPS
    }

    /// The constraint expressing membership in the half-space
    /// (`coef·w ≥ rhs`, i.e. `−coef·w ≤ −rhs`).
    pub fn inside_constraint(&self) -> Constraint {
        Constraint::ge(&self.coef, self.rhs)
    }

    /// The constraint expressing membership in the complement
    /// (`coef·w ≤ rhs`).
    pub fn outside_constraint(&self) -> Constraint {
        Constraint::le(self.coef.clone(), self.rhs)
    }

    /// True if the boundary hyperplane does not exist (zero normal):
    /// the half-space is then all of space (`rhs ≤ 0`) or empty.
    pub fn is_degenerate(&self) -> bool {
        self.coef.iter().all(|v| v.abs() <= EPS)
    }

    /// For a degenerate half-space: whether it covers everything.
    pub fn degenerate_covers_all(&self) -> bool {
        debug_assert!(self.is_degenerate());
        self.rhs <= EPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pref::pref_score;

    #[test]
    fn beats_halfspace_agrees_with_scores() {
        let p = [8.3, 9.1, 7.2];
        let q = [2.4, 9.6, 8.6];
        let h = Halfspace::beats(&p, &q);
        for w in [[0.1, 0.1], [0.4, 0.2], [0.05, 0.25], [0.8, 0.1]] {
            let direct = pref_score(&p, &w) >= pref_score(&q, &w);
            assert_eq!(h.contains(&w), direct, "w = {w:?}");
        }
    }

    #[test]
    fn inside_and_outside_constraints_partition() {
        let h = Halfspace::ge(vec![1.0, -2.0], 0.3);
        let win = [0.9, 0.1]; // 0.9 − 0.2 = 0.7 ≥ 0.3: inside
        let wout = [0.1, 0.2]; // 0.1 − 0.4 = −0.3 < 0.3: outside
        assert!(h.inside_constraint().satisfied_by(&win));
        assert!(!h.inside_constraint().satisfied_by(&wout));
        assert!(h.outside_constraint().satisfied_by(&wout));
        assert!(!h.outside_constraint().satisfied_by(&win));
    }

    #[test]
    fn normalization_preserves_geometry() {
        let h1 = Halfspace::ge(vec![10.0, -20.0], 3.0);
        let h2 = Halfspace::ge(vec![1.0, -2.0], 0.3);
        assert!((h1.coef[0] - h2.coef[0]).abs() < 1e-12);
        assert!((h1.rhs - h2.rhs).abs() < 1e-12);
    }

    #[test]
    fn identical_records_yield_degenerate_allspace() {
        let p = [1.0, 2.0, 3.0];
        let h = Halfspace::beats(&p, &p);
        assert!(h.is_degenerate());
        assert!(h.degenerate_covers_all());
    }

    #[test]
    fn dominating_record_covers_whole_domain() {
        // p dominates q classically: S(p) ≥ S(q) for every w in the
        // simplex, so every simplex point is inside.
        let p = [5.0, 5.0, 5.0];
        let q = [1.0, 2.0, 3.0];
        let h = Halfspace::beats(&p, &q);
        for w in [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [0.3, 0.3]] {
            assert!(h.contains(&w));
        }
    }

    #[test]
    fn constraint_eval_signs() {
        let c = Constraint::le(vec![1.0, 1.0], 1.0);
        assert!(c.satisfied_by(&[0.2, 0.3]));
        assert!(!c.satisfied_by(&[0.8, 0.8]));
        let g = Constraint::ge(&[1.0, 0.0], 0.5);
        assert!(g.satisfied_by(&[0.6, 0.0]));
        assert!(!g.satisfied_by(&[0.4, 0.0]));
    }
}
