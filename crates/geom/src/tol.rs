//! Numeric tolerances shared by all geometric predicates.
//!
//! All geometry in this workspace is computed in `f64` over data
//! normalized to small ranges (unit cube or `[0, 10]`), so absolute
//! tolerances are meaningful. Constraints are normalized to unit
//! infinity-norm on construction, which keeps the predicates
//! scale-free in practice.

/// General-purpose comparison tolerance for normalized quantities.
pub const EPS: f64 = 1e-9;

/// Minimum interior slack for a cell to be considered full-dimensional.
///
/// A region/cell "exists" only if it contains a point whose distance to
/// every bounding hyperplane exceeds this value. Cells thinner than
/// this are treated as degenerate (measure-zero) and dropped, matching
/// the open-cell semantics documented in `DESIGN.md`.
pub const INTERIOR_EPS: f64 = 1e-8;

/// Tolerance used inside the simplex solver for pivoting decisions.
pub const LP_EPS: f64 = 1e-10;

/// Returns true if `a` and `b` are equal within [`EPS`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}

/// Returns true if `a` is definitely greater than `b` (beyond [`EPS`]).
#[inline]
pub fn definitely_gt(a: f64, b: f64) -> bool {
    a > b + EPS
}

/// Returns true if `a ≥ b` within tolerance.
#[inline]
pub fn ge(a: f64, b: f64) -> bool {
    a >= b - EPS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_within_eps() {
        assert!(approx_eq(1.0, 1.0 + EPS / 2.0));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
    }

    #[test]
    fn definitely_gt_requires_margin() {
        assert!(definitely_gt(1.0 + 1e-6, 1.0));
        assert!(!definitely_gt(1.0 + EPS / 2.0, 1.0));
    }

    #[test]
    fn ge_tolerates_eps() {
        assert!(ge(1.0 - EPS / 2.0, 1.0));
        assert!(!ge(1.0 - 1e-6, 1.0));
    }
}
